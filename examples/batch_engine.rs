//! Batch prediction through the engine: a suite of blocks fanned out over
//! several predictors and microarchitectures on a worker pool, with
//! annotations shared through the engine's cache and failures reported as
//! structured per-row errors.
//!
//! ```text
//! cargo run --release --example batch_engine
//! ```

use facile::prelude::*;

fn main() {
    let engine = Engine::with_builtins().with_threads(8);

    // A mixed batch: generated benchmarks on two uarchs, plus junk input.
    let suite = facile::bhive::generate_suite(12, 42);
    let mut items: Vec<BatchItem> = Vec::new();
    for b in &suite {
        for uarch in [Uarch::Skl, Uarch::Rkl] {
            items.push(BatchItem::block(b.unrolled.clone(), uarch));
        }
    }
    items.push(BatchItem::hex("deadbeefff", Uarch::Skl)); // undecodable

    let rows = engine.predict_batch(&items, "facile,sim,llvm-mca").unwrap();
    println!(
        "{} rows ((blocks x uarchs + 1 junk line) x 3 predictors):\n",
        rows.len()
    );
    for r in rows.iter().take(9) {
        match &r.prediction {
            Ok(p) => println!(
                "  {:<22} {:<4} {:<9} {:>6.2} cyc/iter  {}",
                r.block_hex,
                r.uarch.to_string(),
                r.predictor,
                p.throughput,
                p.bottleneck.map_or("-", |b| b.name()),
            ),
            Err(e) => println!(
                "  {:<22} {:<4} {:<9} error: {e}",
                r.block_hex,
                r.uarch.to_string(),
                r.predictor
            ),
        }
    }
    println!("  ...");
    for r in rows
        .iter()
        .rev()
        .take(3)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        match &r.prediction {
            Ok(p) => println!(
                "  {:<22} {:<4} {:<9} {:>6.2} cyc/iter",
                r.block_hex,
                r.uarch.to_string(),
                r.predictor,
                p.throughput
            ),
            Err(e) => println!(
                "  {:<22} {:<4} {:<9} error: {e}",
                r.block_hex,
                r.uarch.to_string(),
                r.predictor
            ),
        }
    }

    let stats = engine.snapshot();
    println!(
        "\nannotation cache: {} entries, {} hits, {} misses \
         (annotations shared across the 3 predictors)",
        stats.annotation.entries, stats.annotation.hits, stats.annotation.misses
    );
}
