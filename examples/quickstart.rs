//! Quickstart: predict the throughput of a basic block and explain it.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use facile::prelude::*;
use facile_x86::reg::names::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a block with the assembler API: a small dot-product-style
    // kernel body.
    let block = Block::assemble(&[
        (
            Mnemonic::Movsd,
            vec![
                Reg::Xmm(0).into(),
                Mem::base(RSI, facile_x86::Width::W64).into(),
            ],
        ),
        (
            Mnemonic::Mulsd,
            vec![Reg::Xmm(0).into(), Reg::Xmm(1).into()],
        ),
        (
            Mnemonic::Addsd,
            vec![Reg::Xmm(2).into(), Reg::Xmm(0).into()],
        ),
        (Mnemonic::Add, vec![RSI.into(), Operand::Imm(8)]),
    ])?;

    println!("analyzing:\n{block}");

    // One prediction per microarchitecture: Facile is fast enough that
    // sweeping all nine is instantaneous.
    for uarch in Uarch::ALL {
        let ab = AnnotatedBlock::new(block.clone(), uarch);
        let p = Facile::new().predict(&ab, Mode::Unrolled);
        println!(
            "{:>4}: {:>5.2} cycles/iter  (bottleneck: {})",
            uarch,
            p.throughput,
            p.primary_bottleneck().map_or("-".into(), |c| c.to_string()),
        );
    }

    // The full typed explanation for one microarchitecture: the Report is
    // a thin text renderer over it, and the same data drives the CLI's
    // --explain JSON output.
    let ab = AnnotatedBlock::new(block, Uarch::Skl);
    let explanation = Facile::new().explain(&ab, Mode::Unrolled);
    println!("\n{}", Report::new(&ab, &explanation));
    for step in explanation.critical_chain() {
        println!(
            "chain hop: inst #{} produces {} after {:.2} cycles{}",
            step.inst,
            step.value,
            step.latency,
            if step.loop_carried {
                " (loop-carried)"
            } else {
                ""
            }
        );
    }
    Ok(())
}
