//! A toy superoptimizer (the paper's motivating use case): enumerate
//! candidate instruction sequences for a small computation and rank them
//! with Facile. Fast throughput prediction is what makes exploring many
//! candidates feasible, and interpretability tells the optimizer *what* to
//! fix.
//!
//! The task: compute `rax = 8*rcx + rcx` (i.e. `9 * rcx`). We compare
//! semantically equivalent candidate sequences.
//!
//! Run with:
//! ```text
//! cargo run --release --example superoptimizer
//! ```

use facile::prelude::*;
use facile_x86::reg::names::*;
use facile_x86::Width;
use std::time::Instant;

type Candidate = (&'static str, Vec<(Mnemonic, Vec<Operand>)>);

fn candidates() -> Vec<Candidate> {
    vec![
        (
            "imul (one multiply)",
            vec![(
                Mnemonic::Imul,
                vec![RAX.into(), RCX.into(), Operand::Imm(9)],
            )],
        ),
        (
            "lea (shift-add in the AGU)",
            vec![(
                Mnemonic::Lea,
                vec![
                    RAX.into(),
                    Mem::base_index(RCX, RCX, 8, 0, Width::W64).into(),
                ],
            )],
        ),
        (
            "shl + add (two ALU ops)",
            vec![
                (Mnemonic::Mov, vec![RAX.into(), RCX.into()]),
                (Mnemonic::Shl, vec![RAX.into(), Operand::Imm(3)]),
                (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
            ],
        ),
        (
            "add chain (naive)",
            vec![
                (Mnemonic::Mov, vec![RAX.into(), RCX.into()]),
                (Mnemonic::Add, vec![RAX.into(), RAX.into()]),
                (Mnemonic::Add, vec![RAX.into(), RAX.into()]),
                (Mnemonic::Add, vec![RAX.into(), RAX.into()]),
                (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
            ],
        ),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let uarch = Uarch::Skl;
    let f = Facile::new();
    println!(
        "ranking candidates for rax = 9*rcx on {}:\n",
        uarch.full_name()
    );

    let t0 = Instant::now();
    let mut ranked: Vec<(f64, String, String)> = Vec::new();
    for (name, prog) in candidates() {
        let block = Block::assemble(&prog)?;
        let ab = AnnotatedBlock::new(block, uarch);
        let p = f.predict(&ab, Mode::Unrolled);
        ranked.push((
            p.throughput,
            name.to_string(),
            p.primary_bottleneck().map_or("-".into(), |c| c.to_string()),
        ));
    }
    let elapsed = t0.elapsed();
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaNs"));

    for (i, (tp, name, bottleneck)) in ranked.iter().enumerate() {
        println!(
            "{}. {name:<28} {tp:>5.2} cycles/iter (bottleneck: {bottleneck})",
            i + 1
        );
    }
    println!(
        "\nranked {} candidates in {:.1} µs — fast enough to explore \
         thousands of rewrites per second",
        ranked.len(),
        elapsed.as_secs_f64() * 1e6
    );
    Ok(())
}
