//! Microarchitecture evolution study (the §6.4 analysis in miniature):
//! classify a benchmark suite by bottleneck on each microarchitecture and
//! watch the front end become the limiting factor over the decade.
//!
//! Run with:
//! ```text
//! cargo run --release --example uarch_evolution
//! ```

use facile::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let suite = facile::bhive::generate_suite(400, 7);
    println!("bottleneck distribution under TPU, per microarchitecture:\n");
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "uarch", "Predec", "Dec", "Issue", "Ports", "Precedence"
    );
    for uarch in Uarch::ALL {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for b in &suite {
            let ab = AnnotatedBlock::new(b.unrolled.clone(), uarch);
            let p = Facile::new().predict(&ab, Mode::Unrolled);
            // Front-end-first tie break, as in the paper's Fig. 6.
            let order = [
                Component::Predec,
                Component::Dec,
                Component::Issue,
                Component::Ports,
                Component::Precedence,
            ];
            let b = order
                .into_iter()
                .find(|c| p.bottlenecks.contains(c))
                .unwrap_or(Component::Precedence);
            *counts.entry(b.name()).or_default() += 1;
        }
        let pct = |k: &str| -> String {
            format!(
                "{:.1}%",
                100.0 * *counts.get(k).unwrap_or(&0) as f64 / suite.len() as f64
            )
        };
        println!(
            "{:<6} {:>8} {:>8} {:>8} {:>8} {:>10}",
            uarch.abbrev(),
            pct("Predec"),
            pct("Dec"),
            pct("Issue"),
            pct("Ports"),
            pct("Precedence"),
        );
    }
    println!(
        "\nAs in the paper, the share of predecode-bound blocks grows as the\n\
         back end widens while the 16-byte fetch stays fixed."
    );
}
