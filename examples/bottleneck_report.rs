//! Interpretability demo: analyze the built-in stress-kernel corpus and
//! show that Facile pinpoints each kernel's designed bottleneck, including
//! the critical dependence chain and the contended ports.
//!
//! Run with:
//! ```text
//! cargo run --release --example bottleneck_report
//! ```

use facile::prelude::*;

fn main() {
    for kernel in facile::bhive::kernels() {
        let mode = if kernel.block.ends_in_branch() {
            Mode::Loop
        } else {
            Mode::Unrolled
        };
        let ab = AnnotatedBlock::new(kernel.block.clone(), Uarch::Skl);
        let p = Facile::new().explain(&ab, mode);
        println!(
            "=== {} (designed to stress: {}) ===",
            kernel.name, kernel.stresses
        );
        println!("{}", Report::new(&ab, &p));

        // Counterfactual: how much faster would the block run if the
        // bottleneck component were idealized?
        if let Some(b) = p.primary_bottleneck() {
            let speedup = Facile::new().speedup_if_idealized(&ab, mode, b);
            println!("idealizing {b} would speed this block up {speedup:.2}x\n");
        }
    }
}
