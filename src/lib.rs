//! # facile
//!
//! A Rust reproduction of **“Facile: Fast, Accurate, and Interpretable
//! Basic-Block Throughput Prediction”** (Abel, Sharma, Reineke — IISWC
//! 2023): an analytical model that predicts the steady-state throughput of
//! x86-64 basic blocks on nine Intel Core microarchitectures by analyzing
//! a small set of potential pipeline bottlenecks independently.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`engine`] — the unified prediction API: the object-safe `Predictor`
//!   trait, the string-keyed `PredictorRegistry`, and the batched
//!   `Engine` with its annotation cache;
//! * [`x86`] — from-scratch x86-64 decoder/assembler (the XED stand-in);
//! * [`isa`] — per-µarch instruction performance descriptors (the
//!   uops.info stand-in);
//! * [`uarch`] — microarchitecture configurations (Table 1);
//! * [`model`] — the Facile analytical model itself (the paper's §4);
//! * [`explain`] — the typed explanation data model: per-component
//!   evidence, critical-chain edges, port-load maps, bottleneck
//!   attribution, and JSON/text renderers;
//! * [`sim`] — a cycle-accurate pipeline simulator used as measurement
//!   oracle and as the simulation-based baseline;
//! * [`baselines`] — the competing predictors of Table 2, in spirit;
//! * [`bhive`] — the synthetic BHive-like benchmark suite and profiler;
//! * [`metrics`] — MAPE, Kendall's τ-b, timing and table utilities;
//! * [`diff`] — the differential-testing harness: cross-predictor
//!   inconsistency hunting with deterministic block shrinking;
//! * [`server`] — prediction-as-a-service: the NDJSON daemon with
//!   cross-connection micro-batching and the persistent on-disk
//!   annotation snapshot behind `facile serve` / `facile client`.
//!
//! ## Quickstart: one block, interpretable
//!
//! ```
//! use facile::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // add rax, rcx ; imul rdx, rax — a latency chain through rax/rdx.
//! let block = Block::from_hex("4801c8480fafd0")?;
//! let ab = AnnotatedBlock::new(block, Uarch::Skl);
//! let prediction = Facile::new().predict(&ab, Mode::Unrolled);
//! assert!(prediction.throughput >= 1.0);
//! println!(
//!     "{:.2} cycles/iter, bottleneck: {:?}",
//!     prediction.throughput,
//!     prediction.primary_bottleneck()
//! );
//! # Ok(())
//! # }
//! ```
//!
//! ## Quickstart: batches, registry, structured errors
//!
//! The engine serves every predictor in the workspace under string keys
//! (`"facile"`, `"sim"`, `"llvm-mca"`, ... — glob patterns work too) and
//! fans batches out over a worker pool, memoizing block annotation per
//! `(block bytes, uarch)`. Bad input becomes per-row errors, not panics,
//! and output order is deterministic regardless of thread count:
//!
//! ```
//! use facile::prelude::*;
//!
//! let engine = Engine::with_builtins().with_threads(4);
//! let items = vec![
//!     BatchItem::hex("4801c8480fafd0", Uarch::Skl),
//!     BatchItem::hex("4801c8480fafd0", Uarch::Rkl),
//!     BatchItem::hex("not-hex", Uarch::Skl),
//! ];
//! let rows = engine.predict_batch(&items, "facile,sim").unwrap();
//! assert_eq!(rows.len(), 6); // 3 items x 2 predictors
//! assert!(rows[0].prediction.is_ok());
//! assert!(rows[4].prediction.is_err()); // structured, not a panic
//! ```
//!
//! The same path is scriptable from the CLI:
//!
//! ```text
//! echo 4801c8 | facile --batch --predictors 'facile,sim' --json
//! ```

#![warn(missing_docs)]

pub use facile_baselines as baselines;
pub use facile_bhive as bhive;
pub use facile_core as model;
pub use facile_diff as diff;
pub use facile_engine as engine;
pub use facile_explain as explain;
pub use facile_isa as isa;
pub use facile_metrics as metrics;
pub use facile_server as server;
pub use facile_sim as sim;
pub use facile_uarch as uarch;
pub use facile_x86 as x86;

/// The most common imports for working with the model.
pub mod prelude {
    pub use facile_core::{
        Component, Detail, Explanation, Facile, FacileConfig, Mode, Prediction, Report,
    };
    pub use facile_engine::{
        BatchItem, BlockInput, Engine, ItemResult, PredictError, PredictRequest, PredictorRegistry,
    };
    pub use facile_isa::AnnotatedBlock;
    pub use facile_uarch::{PortMask, Uarch, UarchConfig};
    pub use facile_x86::{Block, Cond, Inst, Mem, Mnemonic, Operand, Reg};
}
