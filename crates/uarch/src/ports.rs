//! Execution-port sets represented as bit masks.

use std::fmt;

/// A set of execution ports, as a bit mask (bit *i* = port *i*).
///
/// Port masks are the currency of the back-end models: every µop carries the
/// mask of ports it may be dispatched to, and the port-contention predictor
/// reasons about unions and subsets of these masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PortMask(pub u16);

impl PortMask {
    /// The empty port set.
    pub const EMPTY: PortMask = PortMask(0);

    /// Build a mask from a list of port numbers.
    ///
    /// # Panics
    /// Panics if a port number is 16 or larger.
    #[must_use]
    pub fn of(ports: &[u8]) -> PortMask {
        let mut m = 0u16;
        for &p in ports {
            assert!(p < 16, "port number out of range: {p}");
            m |= 1 << p;
        }
        PortMask(m)
    }

    /// Number of ports in the set.
    #[must_use]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `self` is a subset of `other`.
    #[must_use]
    pub fn is_subset_of(self, other: PortMask) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether port `p` is in the set.
    #[must_use]
    pub fn contains(self, p: u8) -> bool {
        p < 16 && self.0 & (1 << p) != 0
    }

    /// Union of two port sets.
    #[must_use]
    pub fn union(self, other: PortMask) -> PortMask {
        PortMask(self.0 | other.0)
    }

    /// Intersection of two port sets.
    #[must_use]
    pub fn intersect(self, other: PortMask) -> PortMask {
        PortMask(self.0 & other.0)
    }

    /// Iterate over the port numbers in the set, ascending.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0u8..16).filter(move |p| self.contains(*p))
    }
}

impl std::ops::BitOr for PortMask {
    type Output = PortMask;

    fn bitor(self, rhs: PortMask) -> PortMask {
        self.union(rhs)
    }
}

impl fmt::Display for PortMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("p-");
        }
        f.write_str("p")?;
        for p in self.iter() {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Binary for PortMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// The port sets used by each µop class on a given microarchitecture.
///
/// This is the structural summary of the uops.info port-mapping data: the
/// instruction database maps each µop of each instruction to one of these
/// classes, and the class resolves to a concrete port set per µarch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortClasses {
    /// Simple integer ALU operations (add, mov, logic, flags).
    pub alu: PortMask,
    /// Integer shifts and rotates.
    pub shift: PortMask,
    /// Branch/jump µops.
    pub branch: PortMask,
    /// Integer multiply.
    pub mul: PortMask,
    /// Integer divide (port binding; the divider is also serialized).
    pub div: PortMask,
    /// Simple `lea` (base + disp or base + index, no scale*8/3-component).
    pub lea_simple: PortMask,
    /// Complex `lea` (three components or RIP-relative).
    pub lea_complex: PortMask,
    /// Load µops (load data + AGU).
    pub load: PortMask,
    /// Store-address µops.
    pub store_addr: PortMask,
    /// Store-data µops.
    pub store_data: PortMask,
    /// Floating-point add.
    pub fp_add: PortMask,
    /// Floating-point multiply.
    pub fp_mul: PortMask,
    /// Fused multiply-add.
    pub fp_fma: PortMask,
    /// Floating-point divide / square root.
    pub fp_div: PortMask,
    /// Vector integer ALU.
    pub vec_ialu: PortMask,
    /// Vector integer multiply.
    pub vec_imul: PortMask,
    /// Vector logic (bitwise).
    pub vec_logic: PortMask,
    /// Vector shuffles / permutes / packs.
    pub vec_shuffle: PortMask,
    /// Slow scalar integer ops (popcnt, bit scans, cmov on some µarchs).
    pub slow_int: PortMask,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let m = PortMask::of(&[0, 1, 5]);
        assert_eq!(m.count(), 3);
        assert!(m.contains(0) && m.contains(5) && !m.contains(2));
        assert_eq!(m.to_string(), "p015");
    }

    #[test]
    fn subset_and_union() {
        let a = PortMask::of(&[0, 1]);
        let b = PortMask::of(&[0, 1, 5]);
        assert!(a.is_subset_of(b));
        assert!(!b.is_subset_of(a));
        assert_eq!(a | PortMask::of(&[5]), b);
        assert_eq!(a.intersect(b), a);
    }

    #[test]
    fn iteration_order() {
        let m = PortMask::of(&[7, 2, 3]);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![2, 3, 7]);
    }

    #[test]
    fn empty_display() {
        assert_eq!(PortMask::EMPTY.to_string(), "p-");
        assert!(PortMask::EMPTY.is_subset_of(PortMask::of(&[1])));
    }

    #[test]
    #[should_panic(expected = "port number out of range")]
    fn out_of_range_port() {
        let _ = PortMask::of(&[16]);
    }
}
