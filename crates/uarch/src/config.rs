//! Per-microarchitecture configuration (the uiCA `microArchConfigs`
//! counterpart).
//!
//! The values are synthesized from public documentation of these
//! microarchitectures; they are internally consistent with the pipeline
//! simulator in `facile-sim`, which consumes the same structures.

use crate::ports::{PortClasses, PortMask};
use std::fmt;
use std::str::FromStr;

/// The nine Intel Core microarchitectures evaluated in the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Uarch {
    /// Sandy Bridge (2011).
    Snb,
    /// Ivy Bridge (2012).
    Ivb,
    /// Haswell (2013).
    Hsw,
    /// Broadwell (2015).
    Bdw,
    /// Skylake (2015).
    Skl,
    /// Cascade Lake (2019).
    Clx,
    /// Ice Lake (2019).
    Icl,
    /// Tiger Lake (2020).
    Tgl,
    /// Rocket Lake (2021).
    Rkl,
}

impl Uarch {
    /// All microarchitectures, oldest first.
    pub const ALL: [Uarch; 9] = [
        Uarch::Snb,
        Uarch::Ivb,
        Uarch::Hsw,
        Uarch::Bdw,
        Uarch::Skl,
        Uarch::Clx,
        Uarch::Icl,
        Uarch::Tgl,
        Uarch::Rkl,
    ];

    /// Position of this microarchitecture in [`Uarch::ALL`] (variant
    /// declaration order matches the array, oldest first). Used to index
    /// per-uarch columns in generated descriptor tables.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Three-letter abbreviation used in the paper.
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            Uarch::Snb => "SNB",
            Uarch::Ivb => "IVB",
            Uarch::Hsw => "HSW",
            Uarch::Bdw => "BDW",
            Uarch::Skl => "SKL",
            Uarch::Clx => "CLX",
            Uarch::Icl => "ICL",
            Uarch::Tgl => "TGL",
            Uarch::Rkl => "RKL",
        }
    }

    /// Full microarchitecture name.
    #[must_use]
    pub fn full_name(self) -> &'static str {
        match self {
            Uarch::Snb => "Sandy Bridge",
            Uarch::Ivb => "Ivy Bridge",
            Uarch::Hsw => "Haswell",
            Uarch::Bdw => "Broadwell",
            Uarch::Skl => "Skylake",
            Uarch::Clx => "Cascade Lake",
            Uarch::Icl => "Ice Lake",
            Uarch::Tgl => "Tiger Lake",
            Uarch::Rkl => "Rocket Lake",
        }
    }

    /// Release year (Table 1).
    #[must_use]
    pub fn released(self) -> u16 {
        match self {
            Uarch::Snb => 2011,
            Uarch::Ivb => 2012,
            Uarch::Hsw => 2013,
            Uarch::Bdw | Uarch::Skl => 2015,
            Uarch::Clx | Uarch::Icl => 2019,
            Uarch::Tgl => 2020,
            Uarch::Rkl => 2021,
        }
    }

    /// Representative CPU (Table 1).
    #[must_use]
    pub fn example_cpu(self) -> &'static str {
        match self {
            Uarch::Snb => "Intel Core i7-2600",
            Uarch::Ivb => "Intel Core i5-3470",
            Uarch::Hsw => "Intel Xeon E3-1225 v3",
            Uarch::Bdw => "Intel Core i5-5200U",
            Uarch::Skl => "Intel Core i7-6500U",
            Uarch::Clx => "Intel Core i9-10980XE",
            Uarch::Icl => "Intel Core i5-1035G1",
            Uarch::Tgl => "Intel Core i7-1165G7",
            Uarch::Rkl => "Intel Core i9-11900",
        }
    }

    /// The configuration for this microarchitecture.
    #[must_use]
    pub fn config(self) -> &'static UarchConfig {
        config(self)
    }
}

impl fmt::Display for Uarch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Error returned when parsing an unknown microarchitecture name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUarchError(String);

impl fmt::Display for ParseUarchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown microarchitecture: {}", self.0)
    }
}

impl std::error::Error for ParseUarchError {}

impl FromStr for Uarch {
    type Err = ParseUarchError;

    fn from_str(s: &str) -> Result<Uarch, ParseUarchError> {
        let up = s.to_ascii_uppercase();
        Uarch::ALL
            .into_iter()
            .find(|u| u.abbrev() == up)
            .ok_or_else(|| ParseUarchError(s.to_string()))
    }
}

/// Which micro-fused µops the renamer splits ("unlaminates") before issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnlaminationPolicy {
    /// All micro-fused µops with an indexed memory operand unlaminate
    /// (Sandy Bridge / Ivy Bridge).
    AllIndexed,
    /// Indexed µops unlaminate only if the instruction has more than two
    /// register sources or also writes flags from an RMW form
    /// (Haswell and later keep simple indexed loads fused).
    IndexedRmw,
}

/// Complete static description of one microarchitecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UarchConfig {
    /// Which microarchitecture this is.
    pub arch: Uarch,

    // ---- front end ----
    /// Instructions the predecoder can predecode per cycle.
    pub predecode_width: u8,
    /// Total number of decoders (one complex + the rest simple).
    pub n_decoders: u8,
    /// Maximum µops the decode group can emit per cycle.
    pub decode_uop_width: u8,
    /// Whether a macro-fusible instruction can be decoded on the last
    /// decoder (it must peek at the next instruction, which older
    /// microarchitectures cannot do on the last decoder).
    pub fuse_on_last_decoder: bool,
    /// µops the DSB (µop cache) can deliver per cycle.
    pub dsb_width: u8,
    /// Capacity of the instruction decode queue, in µops (bounds the LSD).
    pub idq_size: u16,
    /// Whether the loop stream detector is enabled (disabled on
    /// Skylake-derived cores by the SKL150 erratum).
    pub lsd_enabled: bool,
    /// Whether the JCC-erratum mitigation applies: blocks with a jump that
    /// crosses or ends on a 32-byte boundary are not cached in DSB/LSD.
    pub jcc_erratum: bool,
    /// Maximum LSD unroll factor.
    pub lsd_max_unroll: u8,

    // ---- back end ----
    /// Rename/issue width, in fused-domain µops per cycle.
    pub issue_width: u8,
    /// Number of execution ports.
    pub n_ports: u8,
    /// Port assignment per µop class.
    pub ports: PortClasses,
    /// Whether register-to-register GPR moves can be eliminated by the
    /// renamer (disabled on Ice Lake by an erratum).
    pub move_elim_gpr: bool,
    /// Whether vector register moves can be eliminated.
    pub move_elim_vec: bool,
    /// Unlamination policy for micro-fused µops with indexed addressing.
    pub unlamination: UnlaminationPolicy,
    /// Reorder buffer size, in µops.
    pub rob_size: u16,
    /// Reservation station (scheduler) size, in µops.
    pub rs_size: u16,
    /// Retirement width, in µops per cycle.
    pub retire_width: u8,
    /// L1 load-to-use latency in cycles (simple addressing).
    pub load_latency: u8,
    /// Which flag-writing mnemonic classes macro-fuse with a following
    /// conditional branch: `true` = the extended Haswell+ set (test/and/
    /// cmp/add/sub/inc/dec), `false` = the Sandy Bridge set (cmp/test only).
    pub extended_macro_fusion: bool,
}

impl UarchConfig {
    /// A union of all port masks, i.e. every port usable by some µop class.
    #[must_use]
    pub fn all_ports(&self) -> PortMask {
        let p = &self.ports;
        [
            p.alu,
            p.shift,
            p.branch,
            p.mul,
            p.div,
            p.lea_simple,
            p.lea_complex,
            p.load,
            p.store_addr,
            p.store_data,
            p.fp_add,
            p.fp_mul,
            p.fp_fma,
            p.fp_div,
            p.vec_ialu,
            p.vec_imul,
            p.vec_logic,
            p.vec_shuffle,
            p.slow_int,
        ]
        .into_iter()
        .fold(PortMask::EMPTY, PortMask::union)
    }

    /// The LSD unroll factor for a loop of `n_uops` fused-domain µops:
    /// the hardware unrolls small loops inside the IDQ so that close to
    /// `issue_width` µops can be streamed per cycle (reverse engineered in
    /// the uiCA paper). We model it as the smallest factor that maximizes
    /// the streaming rate subject to the IDQ capacity and a per-µarch cap.
    #[must_use]
    pub fn lsd_unroll(&self, n_uops: u32) -> u32 {
        if n_uops == 0 {
            return 1;
        }
        let iw = u32::from(self.issue_width);
        let cap = u32::from(self.idq_size);
        let max_u = u32::from(self.lsd_max_unroll)
            .min(cap / n_uops.max(1))
            .max(1);
        let mut best_u = 1;
        let mut best_rate = rate(n_uops, 1, iw);
        for u in 2..=max_u {
            if n_uops * u > cap {
                break;
            }
            let r = rate(n_uops, u, iw);
            if r > best_rate + 1e-9 {
                best_rate = r;
                best_u = u;
            }
        }
        best_u
    }
}

/// µops streamed per cycle when unrolling `u` times.
fn rate(n: u32, u: u32, iw: u32) -> f64 {
    let cycles = (n * u).div_ceil(iw);
    f64::from(n * u) / f64::from(cycles)
}

fn pm(ports: &[u8]) -> PortMask {
    PortMask::of(ports)
}

/// Port classes for the Sandy Bridge / Ivy Bridge port topology (6 ports).
fn ports_snb() -> PortClasses {
    PortClasses {
        alu: pm(&[0, 1, 5]),
        shift: pm(&[0, 5]),
        branch: pm(&[5]),
        mul: pm(&[1]),
        div: pm(&[0]),
        lea_simple: pm(&[1, 5]),
        lea_complex: pm(&[1]),
        load: pm(&[2, 3]),
        store_addr: pm(&[2, 3]),
        store_data: pm(&[4]),
        fp_add: pm(&[1]),
        fp_mul: pm(&[0]),
        fp_fma: pm(&[0]), // no FMA unit; FMA-class maps to the multiplier
        fp_div: pm(&[0]),
        vec_ialu: pm(&[1, 5]),
        vec_imul: pm(&[0]),
        vec_logic: pm(&[0, 1, 5]),
        vec_shuffle: pm(&[5]),
        slow_int: pm(&[1]),
    }
}

/// Port classes for Haswell / Broadwell (8 ports, p6 scalar, p7 store AGU).
fn ports_hsw() -> PortClasses {
    PortClasses {
        alu: pm(&[0, 1, 5, 6]),
        shift: pm(&[0, 6]),
        branch: pm(&[0, 6]),
        mul: pm(&[1]),
        div: pm(&[0]),
        lea_simple: pm(&[1, 5]),
        lea_complex: pm(&[1]),
        load: pm(&[2, 3]),
        store_addr: pm(&[2, 3, 7]),
        store_data: pm(&[4]),
        fp_add: pm(&[1]),
        fp_mul: pm(&[0, 1]),
        fp_fma: pm(&[0, 1]),
        fp_div: pm(&[0]),
        vec_ialu: pm(&[1, 5]),
        vec_imul: pm(&[0]),
        vec_logic: pm(&[0, 1, 5]),
        vec_shuffle: pm(&[5]),
        slow_int: pm(&[1]),
    }
}

/// Port classes for Skylake / Cascade Lake (FP add moved to p01).
fn ports_skl() -> PortClasses {
    PortClasses {
        fp_add: pm(&[0, 1]),
        vec_ialu: pm(&[0, 1, 5]),
        vec_imul: pm(&[0, 1]),
        ..ports_hsw()
    }
}

/// Port classes for Ice Lake / Tiger Lake / Rocket Lake (10 ports:
/// dedicated store AGUs p7/p8 and a second store-data port p9).
fn ports_icl() -> PortClasses {
    PortClasses {
        store_addr: pm(&[7, 8]),
        store_data: pm(&[4, 9]),
        vec_shuffle: pm(&[1, 5]),
        ..ports_skl()
    }
}

fn config(arch: Uarch) -> &'static UarchConfig {
    use std::sync::OnceLock;
    static CONFIGS: OnceLock<Vec<UarchConfig>> = OnceLock::new();
    let all = CONFIGS.get_or_init(|| Uarch::ALL.iter().map(|u| build(*u)).collect());
    &all[Uarch::ALL
        .iter()
        .position(|u| *u == arch)
        .expect("all uarchs built")]
}

fn build(arch: Uarch) -> UarchConfig {
    use Uarch::*;
    let pre_skl = matches!(arch, Snb | Ivb | Hsw | Bdw);
    let icl_plus = matches!(arch, Icl | Tgl | Rkl);
    UarchConfig {
        arch,
        predecode_width: 5,
        n_decoders: if icl_plus { 5 } else { 4 },
        decode_uop_width: match arch {
            Snb | Ivb | Hsw | Bdw => 4,
            Skl | Clx => 5,
            Icl | Tgl | Rkl => 6,
        },
        fuse_on_last_decoder: icl_plus,
        dsb_width: if pre_skl { 4 } else { 6 },
        idq_size: match arch {
            Snb | Ivb => 28,
            Hsw | Bdw => 56,
            Skl | Clx => 64,
            Icl | Tgl | Rkl => 70,
        },
        lsd_enabled: !matches!(arch, Skl | Clx),
        jcc_erratum: matches!(arch, Skl | Clx),
        lsd_max_unroll: 8,
        issue_width: if icl_plus { 5 } else { 4 },
        n_ports: match arch {
            Snb | Ivb => 6,
            Hsw | Bdw | Skl | Clx => 8,
            Icl | Tgl | Rkl => 10,
        },
        ports: match arch {
            Snb | Ivb => ports_snb(),
            Hsw | Bdw => ports_hsw(),
            Skl | Clx => ports_skl(),
            Icl | Tgl | Rkl => ports_icl(),
        },
        move_elim_gpr: arch != Snb && arch != Icl,
        move_elim_vec: arch != Snb,
        unlamination: if matches!(arch, Snb | Ivb) {
            UnlaminationPolicy::AllIndexed
        } else {
            UnlaminationPolicy::IndexedRmw
        },
        rob_size: match arch {
            Snb | Ivb => 168,
            Hsw | Bdw => 192,
            Skl | Clx => 224,
            Icl | Tgl | Rkl => 352,
        },
        rs_size: match arch {
            Snb | Ivb => 54,
            Hsw | Bdw => 60,
            Skl | Clx => 97,
            Icl | Tgl | Rkl => 160,
        },
        retire_width: if icl_plus { 8 } else { 4 },
        load_latency: 5,
        extended_macro_fusion: !matches!(arch, Snb | Ivb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_build() {
        for u in Uarch::ALL {
            let c = u.config();
            assert_eq!(c.arch, u);
            assert!(c.n_decoders >= 4);
            assert!(c.issue_width >= 4);
            assert_eq!(c.all_ports().count(), u32::from(c.n_ports));
        }
    }

    #[test]
    fn skylake_errata() {
        assert!(!Uarch::Skl.config().lsd_enabled);
        assert!(Uarch::Skl.config().jcc_erratum);
        assert!(!Uarch::Clx.config().lsd_enabled);
        assert!(Uarch::Hsw.config().lsd_enabled);
        assert!(!Uarch::Hsw.config().jcc_erratum);
    }

    #[test]
    fn icelake_gpr_move_elim_disabled() {
        assert!(!Uarch::Icl.config().move_elim_gpr);
        assert!(Uarch::Icl.config().move_elim_vec);
        assert!(Uarch::Tgl.config().move_elim_gpr);
    }

    #[test]
    fn parse_roundtrip() {
        for u in Uarch::ALL {
            assert_eq!(u.abbrev().parse::<Uarch>().unwrap(), u);
            assert_eq!(u.abbrev().to_lowercase().parse::<Uarch>().unwrap(), u);
        }
        assert!("XYZ".parse::<Uarch>().is_err());
    }

    #[test]
    fn lsd_unroll_small_loops() {
        let c = Uarch::Rkl.config(); // issue width 5
                                     // A 1-µop loop streams 1 µop/cycle un-unrolled; unrolling helps.
        assert!(c.lsd_unroll(1) > 1);
        // A loop of exactly issue-width µops needs no unrolling.
        assert_eq!(c.lsd_unroll(5), 1);
        // Large loops cannot be unrolled within the IDQ.
        assert_eq!(c.lsd_unroll(60), 1);
    }

    #[test]
    fn lsd_unroll_respects_idq_capacity() {
        for u in Uarch::ALL {
            let c = u.config();
            for n in 1..=c.idq_size as u32 {
                let f = c.lsd_unroll(n);
                assert!(n * f <= u32::from(c.idq_size), "{u}: {n} * {f} exceeds IDQ");
                assert!(f >= 1 && f <= u32::from(c.lsd_max_unroll));
            }
        }
    }

    #[test]
    fn table1_metadata() {
        assert_eq!(Uarch::Rkl.released(), 2021);
        assert_eq!(Uarch::Snb.full_name(), "Sandy Bridge");
        assert_eq!(Uarch::Hsw.example_cpu(), "Intel Xeon E3-1225 v3");
    }

    #[test]
    fn port_counts_grow_over_time() {
        assert!(Uarch::Snb.config().n_ports < Uarch::Hsw.config().n_ports);
        assert!(Uarch::Skl.config().n_ports < Uarch::Rkl.config().n_ports);
    }
}
