//! # facile-uarch
//!
//! Microarchitecture configurations for the nine Intel Core generations
//! evaluated in the Facile paper (Table 1), from Sandy Bridge (2011) to
//! Rocket Lake (2021).
//!
//! This crate is the counterpart of uiCA's `microArchConfigs.py`: it
//! provides the high-level pipeline parameters (decoder counts, issue and
//! DSB widths, IDQ capacity, LSD and JCC-erratum status) and the execution
//! port topology that both the analytical model (`facile-core`) and the
//! cycle-accurate simulator (`facile-sim`) consume.
//!
//! ```
//! use facile_uarch::Uarch;
//!
//! let skl = Uarch::Skl.config();
//! assert_eq!(skl.issue_width, 4);
//! assert!(!skl.lsd_enabled); // SKL150 erratum
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod ports;

pub use config::{ParseUarchError, Uarch, UarchConfig, UnlaminationPolicy};
pub use ports::{PortClasses, PortMask};
