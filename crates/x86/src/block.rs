//! Basic blocks: instruction sequences with their byte-level layout.

use crate::decode::decode_one;
use crate::encode::assemble_one;
use crate::error::{DecodeError, EncodeError};
use crate::inst::Inst;
use crate::mnemonic::Mnemonic;
use crate::operand::Operand;
use std::fmt;

/// A basic block: a straight-line sequence of instructions together with
/// its machine code, assumed to start at a 16-byte-aligned address (offset
/// 0), as in the BHive measurement setup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    insts: Vec<Inst>,
    bytes: Vec<u8>,
    /// Start offset of each instruction within `bytes`.
    offsets: Vec<usize>,
}

impl Block {
    /// Decode a block from machine code.
    ///
    /// # Errors
    /// Returns the first [`DecodeError`] encountered.
    pub fn decode(bytes: &[u8]) -> Result<Block, DecodeError> {
        let mut insts = Vec::new();
        let mut offsets = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            let (inst, len) = decode_one(bytes, pos)?;
            offsets.push(pos);
            insts.push(inst);
            pos += len;
        }
        Ok(Block {
            insts,
            bytes: bytes.to_vec(),
            offsets,
        })
    }

    /// Assemble a block from `(mnemonic, operands)` pairs.
    ///
    /// # Errors
    /// Returns the first [`EncodeError`] encountered.
    pub fn assemble(prog: &[(Mnemonic, Vec<Operand>)]) -> Result<Block, EncodeError> {
        let mut insts = Vec::with_capacity(prog.len());
        let mut bytes = Vec::new();
        let mut offsets = Vec::with_capacity(prog.len());
        for (m, ops) in prog {
            let (inst, code) = assemble_one(*m, ops)?;
            offsets.push(bytes.len());
            insts.push(inst);
            bytes.extend_from_slice(&code);
        }
        Ok(Block {
            insts,
            bytes,
            offsets,
        })
    }

    /// The instructions of the block.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The machine code of the block.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of instructions.
    #[must_use]
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Length of the block in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Start offset of instruction `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Iterate over `(start_offset, instruction)` pairs.
    pub fn iter_with_offsets(&self) -> impl Iterator<Item = (usize, &Inst)> {
        self.offsets.iter().copied().zip(self.insts.iter())
    }

    /// Whether the block ends in a branch instruction (i.e. is a *loop*
    /// benchmark in the paper's TPL sense).
    #[must_use]
    pub fn ends_in_branch(&self) -> bool {
        self.insts.last().is_some_and(Inst::is_branch)
    }

    /// Whether the block is affected by the JCC erratum: it contains a
    /// branch instruction that crosses or ends on a 32-byte boundary.
    /// (On affected microarchitectures such blocks are not cached in the
    /// DSB; macro-fused jumps are subject to the same rule, which callers
    /// model by checking the fused pair's span.)
    #[must_use]
    pub fn jcc_erratum_applies(&self) -> bool {
        self.iter_with_offsets().any(|(start, inst)| {
            inst.is_branch() && Self::crosses_or_ends_on_32(start, inst.len as usize)
        })
    }

    /// Whether an instruction spanning `[start, start+len)` crosses or ends
    /// on a 32-byte boundary.
    #[must_use]
    pub fn crosses_or_ends_on_32(start: usize, len: usize) -> bool {
        let end = start + len; // exclusive end == "ends on boundary" if divisible
        start / 32 != (end - 1) / 32 || end.is_multiple_of(32)
    }

    /// Hex representation of the machine code (lowercase, no separators),
    /// the format used by the BHive suite.
    #[must_use]
    pub fn to_hex(&self) -> String {
        const DIGITS: &[u8; 16] = b"0123456789abcdef";
        let mut s = String::with_capacity(2 * self.bytes.len());
        for b in &self.bytes {
            s.push(DIGITS[usize::from(b >> 4)] as char);
            s.push(DIGITS[usize::from(b & 0xf)] as char);
        }
        s
    }

    /// Decode a block from a BHive-style hex string.
    ///
    /// # Errors
    /// Returns [`DecodeError::Invalid`] for non-hex input, otherwise
    /// decodes the bytes.
    pub fn from_hex(hex: &str) -> Result<Block, DecodeError> {
        let hex = hex.trim();
        if !hex.len().is_multiple_of(2) || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(DecodeError::Invalid {
                offset: 0,
                what: "malformed hex string",
            });
        }
        let bytes: Vec<u8> = (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("validated hex"))
            .collect();
        Block::decode(&bytes)
    }
}

/// Accounting: the three backing vectors plus each instruction's
/// operand list. Used by the byte-bounded caches that store decoded
/// blocks.
impl facile_util::HeapSize for Block {
    fn heap_bytes(&self) -> usize {
        use facile_util::HeapSize;
        self.insts.capacity() * std::mem::size_of::<Inst>()
            + self.insts.iter().map(HeapSize::heap_bytes).sum::<usize>()
            + self.bytes.capacity()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (off, inst) in self.iter_with_offsets() {
            writeln!(f, "{off:4x}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::Operand;
    use crate::reg::names::*;

    #[test]
    fn assemble_decode_roundtrip() {
        let prog = vec![
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Imul, vec![RDX.into(), RAX.into()]),
            (Mnemonic::Xor, vec![EBX.into(), EBX.into()]),
        ];
        let b = Block::assemble(&prog).unwrap();
        let b2 = Block::decode(b.bytes()).unwrap();
        assert_eq!(b, b2);
        assert_eq!(b.num_insts(), 3);
    }

    #[test]
    fn hex_roundtrip() {
        let b = Block::assemble(&[(Mnemonic::Add, vec![EAX.into(), ECX.into()])]).unwrap();
        assert_eq!(b.to_hex(), "01c8");
        assert_eq!(Block::from_hex("01c8").unwrap(), b);
        assert!(Block::from_hex("01c").is_err());
        assert!(Block::from_hex("zz").is_err());
    }

    #[test]
    fn ends_in_branch() {
        let b = Block::assemble(&[
            (Mnemonic::Dec, vec![RCX.into()]),
            (
                Mnemonic::Jcc(crate::mnemonic::Cond::Ne),
                vec![Operand::Rel(-5)],
            ),
        ])
        .unwrap();
        assert!(b.ends_in_branch());
        let b = Block::assemble(&[(Mnemonic::Dec, vec![RCX.into()])]).unwrap();
        assert!(!b.ends_in_branch());
    }

    #[test]
    fn boundary_crossing_predicate() {
        // ends exactly on a 32-byte boundary
        assert!(Block::crosses_or_ends_on_32(30, 2));
        // crosses it
        assert!(Block::crosses_or_ends_on_32(30, 4));
        // strictly inside
        assert!(!Block::crosses_or_ends_on_32(28, 2));
        assert!(!Block::crosses_or_ends_on_32(32, 4));
    }

    #[test]
    fn offsets_track_lengths() {
        let prog = vec![
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]), // 3 bytes
            (Mnemonic::Nop, vec![]),                       // 1 byte
            (Mnemonic::Add, vec![EAX.into(), ECX.into()]), // 2 bytes
        ];
        let b = Block::assemble(&prog).unwrap();
        assert_eq!(b.offset(0), 0);
        assert_eq!(b.offset(1), 3);
        assert_eq!(b.offset(2), 4);
        assert_eq!(b.byte_len(), 6);
    }

    #[test]
    fn empty_block() {
        let b = Block::decode(&[]).unwrap();
        assert!(b.is_empty());
    }
}
