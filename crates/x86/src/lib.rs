//! # facile-x86
//!
//! A from-scratch x86-64 machine-code decoder and assembler covering the
//! instruction subset needed for basic-block throughput analysis.
//!
//! This crate plays the role that the Intel XED library plays for the
//! original Facile tool: it turns raw bytes into structured [`Inst`] values
//! carrying everything the performance models need — mnemonic, operands,
//! encoded length, the offset of the nominal opcode byte (for predecoder
//! modeling), length-changing-prefix (LCP) detection, and full architectural
//! read/write effects including flag groups and implicit operands.
//!
//! It is also an *assembler* for the same instruction representation, so
//! that synthetic benchmark generators can produce byte-accurate blocks and
//! property tests can check `decode(encode(i)) == i`.
//!
//! ## Example
//!
//! ```
//! use facile_x86::{Block, Mnemonic, reg::names::*};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let block = Block::assemble(&[
//!     (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
//!     (Mnemonic::Imul, vec![RDX.into(), RAX.into()]),
//! ])?;
//! assert_eq!(block.num_insts(), 2);
//! let reparsed = Block::decode(block.bytes())?;
//! assert_eq!(reparsed, block);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod decode;
pub mod encode;
pub mod error;
pub mod flags;
pub mod forms;
pub mod inst;
pub mod mnemonic;
pub mod operand;
pub mod reg;

mod table;

pub use block::Block;
pub use decode::decode_one;
pub use encode::assemble_one;
pub use error::{DecodeError, EncodeError};
pub use inst::{Effects, Inst};
pub use mnemonic::{Cond, Mnemonic};
pub use operand::{Mem, Operand};
pub use reg::{Reg, Width};
