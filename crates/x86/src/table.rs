//! The instruction encoding table shared by the encoder and the decoder.
//!
//! Each [`Entry`] describes one encodable *form* of an instruction:
//! mnemonic, operand pattern, operand-size class, mandatory prefix, opcode
//! map and byte, ModRM extension digit, immediate kind, and (for AVX) the
//! VEX parameters. The assembler scans entries by mnemonic; the disassembler
//! indexes them by `(map, opcode)`.

use crate::mnemonic::{Cond, Mnemonic};
use crate::reg::Width;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Mandatory (SSE) prefix of an entry, or `N` for none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pfx {
    N,
    P66,
    PF2,
    PF3,
}

/// Opcode map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Map {
    /// Single-byte opcodes.
    M1,
    /// `0F`-escaped opcodes.
    M0F,
    /// `0F 38`-escaped opcodes.
    M38,
    /// `0F 3A`-escaped opcodes.
    M3A,
}

/// Operand-size class of an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Osz {
    /// Fixed 8-bit.
    B,
    /// Variable: 32-bit default, 16 with `66`, 64 with `REX.W`.
    V,
    /// Fixed 64-bit, requires `REX.W`.
    Q,
    /// Default 64-bit in long mode (no `REX.W` needed): push/pop/branches.
    D64,
    /// Vector instruction: GPR operand size not applicable.
    X,
}

/// Immediate kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ImmK {
    NoImm,
    /// 8-bit immediate.
    Ib,
    /// 8-bit sign-extended immediate.
    IbS,
    /// 16- or 32-bit immediate depending on operand size (the LCP case).
    Iz,
    /// Full operand-size immediate: 16, 32, or 64 bits.
    Iv,
}

/// Operand pattern: where each operand lives in the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pat {
    /// No operands.
    NoOps,
    /// `r/m, r` (MR direction).
    RmR,
    /// `r, r/m` (RM direction).
    RRm,
    /// `r/m, r, imm8` (shld/shrd).
    RmRI,
    /// `r/m, imm`.
    RmI,
    /// Single `r/m` operand.
    Rm,
    /// `r/m, cl` (shifts by CL).
    RmCl,
    /// Register encoded in the low 3 opcode bits.
    OpReg,
    /// Register in opcode plus immediate (`mov r, imm`).
    OpRegI,
    /// Accumulator short form: `al/ax/eax/rax, imm` (decode-only).
    AccI,
    /// `r, r/m, imm` (imul).
    RRmI,
    /// `r, m` with memory required (lea).
    RM,
    /// Branch with relative displacement (`ImmK::Ib` = rel8, `Iz` = rel32).
    Rel,
    /// `xmm, xmm/m`.
    XXm,
    /// `xmm/m, xmm` (MR direction).
    XmX,
    /// `xmm, xmm/m, imm8`.
    XXmI,
    /// `xmm, r/m` (movd/movq/cvtsi2*).
    XRm,
    /// `r/m, xmm` (movd MR direction).
    RmX,
    /// `r, xmm/m` (cvttss2si, movmskps, pmovmskb).
    RXm,
    /// `xmm, imm8` with ModRM extension digit (vector shifts).
    XI,
    /// VEX three-operand: `dest, vvvv, r/m`.
    VXXm,
    /// VEX three-operand plus imm8.
    VXXmI,
    /// VEX two-operand `dest(reg), r/m` (vvvv unused).
    VXm,
    /// VEX two-operand MR `r/m, reg` (vvvv unused).
    VXmX,
    /// `vinsertf128 ymm, ymm(vvvv), xmm/m128, imm8`.
    VYXmI,
    /// `vextractf128 xmm/m128, ymm, imm8`.
    VXmYI,
}

/// VEX parameters of an AVX entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Vex {
    /// Implied prefix: 0 = none, 1 = 66, 2 = F3, 3 = F2.
    pub pp: u8,
    /// Vector length: 0 = 128-bit, 1 = 256-bit.
    pub l: u8,
    /// VEX.W: 0, 1, or 2 for "ignored".
    pub w: u8,
}

/// One encodable instruction form.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub mnem: Mnemonic,
    pub pat: Pat,
    pub osz: Osz,
    pub pfx: Pfx,
    pub map: Map,
    pub op: u8,
    /// ModRM `reg` extension digit for `/digit` forms, or `NO_EXT`.
    pub ext: u8,
    pub imm: ImmK,
    pub vex: Option<Vex>,
    /// Fixed width of the memory / r-m operand when it differs from the
    /// operand size (e.g. `movss` accesses 32 bits, `movzx r32, r/m8`).
    pub rmw: Option<Width>,
    /// The disassembler accepts this form but the assembler never emits it
    /// (redundant encodings such as the accumulator short forms).
    pub decode_only: bool,
}

/// Marker for "no ModRM extension digit".
pub(crate) const NO_EXT: u8 = 0xFF;

impl Entry {
    const fn new(mnem: Mnemonic, pat: Pat, osz: Osz, pfx: Pfx, map: Map, op: u8) -> Entry {
        Entry {
            mnem,
            pat,
            osz,
            pfx,
            map,
            op,
            ext: NO_EXT,
            imm: ImmK::NoImm,
            vex: None,
            rmw: None,
            decode_only: false,
        }
    }

    const fn ext(mut self, d: u8) -> Entry {
        self.ext = d;
        self
    }

    const fn imm(mut self, k: ImmK) -> Entry {
        self.imm = k;
        self
    }

    const fn vex(mut self, pp: u8, l: u8, w: u8) -> Entry {
        self.vex = Some(Vex { pp, l, w });
        self
    }

    const fn rmw(mut self, w: Width) -> Entry {
        self.rmw = Some(w);
        self
    }

    const fn decode_only(mut self) -> Entry {
        self.decode_only = true;
        self
    }

    /// Whether this entry uses the register-in-opcode encoding.
    pub(crate) fn is_opreg(&self) -> bool {
        matches!(self.pat, Pat::OpReg | Pat::OpRegI)
    }

    /// Whether this entry has a ModRM byte.
    pub(crate) fn has_modrm(&self) -> bool {
        !matches!(
            self.pat,
            Pat::NoOps | Pat::OpReg | Pat::OpRegI | Pat::AccI | Pat::Rel
        )
    }
}

/// The full set of encoding/decoding tables, built once.
pub(crate) struct Tables {
    pub entries: Vec<Entry>,
    /// Encoder index: entries per mnemonic, in table order.
    pub by_mnem: HashMap<Mnemonic, Vec<usize>>,
    /// Decoder index: entries per (map, opcode byte). Register-in-opcode
    /// entries are registered under all eight opcode bytes they cover.
    pub by_opcode: HashMap<(Map, u8), Vec<usize>>,
}

static TABLES: OnceLock<Tables> = OnceLock::new();

/// Access the shared tables.
pub(crate) fn tables() -> &'static Tables {
    TABLES.get_or_init(build)
}

#[allow(clippy::too_many_lines)]
fn build() -> Tables {
    use ImmK::*;
    use Map::*;
    use Mnemonic::*;
    use Osz::*;
    use Pat::*;
    use Pfx::*;

    let mut v: Vec<Entry> = Vec::with_capacity(320);
    let e = Entry::new;

    // ---- scalar integer ALU: standard /r and /digit families ----
    // (mnemonic, base opcode, /digit for the 81/83 immediate group)
    let alu: &[(Mnemonic, u8, u8)] = &[
        (Add, 0x00, 0),
        (Or, 0x08, 1),
        (Adc, 0x10, 2),
        (Sbb, 0x18, 3),
        (And, 0x20, 4),
        (Sub, 0x28, 5),
        (Xor, 0x30, 6),
        (Cmp, 0x38, 7),
    ];
    for &(m, base, digit) in alu {
        v.push(e(m, RmR, B, N, M1, base));
        v.push(e(m, RmR, V, N, M1, base + 1));
        v.push(e(m, RRm, B, N, M1, base + 2));
        v.push(e(m, RRm, V, N, M1, base + 3));
        v.push(e(m, RmI, V, N, M1, 0x83).ext(digit).imm(IbS)); // short form first
        v.push(e(m, RmI, B, N, M1, 0x80).ext(digit).imm(Ib));
        v.push(e(m, RmI, V, N, M1, 0x81).ext(digit).imm(Iz)); // the LCP form
                                                              // accumulator short forms, accepted on decode for real-world code
        v.push(e(m, AccI, B, N, M1, base + 4).imm(Ib).decode_only());
        v.push(e(m, AccI, V, N, M1, base + 5).imm(Iz).decode_only());
    }

    v.push(e(Test, RmR, B, N, M1, 0x84));
    v.push(e(Test, RmR, V, N, M1, 0x85));
    v.push(e(Test, RmI, B, N, M1, 0xF6).ext(0).imm(Ib));
    v.push(e(Test, RmI, V, N, M1, 0xF7).ext(0).imm(Iz));
    v.push(e(Test, AccI, B, N, M1, 0xA8).imm(Ib).decode_only());
    v.push(e(Test, AccI, V, N, M1, 0xA9).imm(Iz).decode_only());

    // mov
    v.push(e(Mov, RmR, B, N, M1, 0x88));
    v.push(e(Mov, RmR, V, N, M1, 0x89));
    v.push(e(Mov, RRm, B, N, M1, 0x8A));
    v.push(e(Mov, RRm, V, N, M1, 0x8B));
    v.push(e(Mov, OpRegI, V, N, M1, 0xB8).imm(Iv));
    v.push(e(Mov, RmI, B, N, M1, 0xC6).ext(0).imm(Ib));
    v.push(e(Mov, RmI, V, N, M1, 0xC7).ext(0).imm(Iz));

    // movzx/movsx/movsxd
    v.push(e(Movzx, RRm, V, N, M0F, 0xB6).rmw(Width::W8));
    v.push(e(Movzx, RRm, V, N, M0F, 0xB7).rmw(Width::W16));
    v.push(e(Movsx, RRm, V, N, M0F, 0xBE).rmw(Width::W8));
    v.push(e(Movsx, RRm, V, N, M0F, 0xBF).rmw(Width::W16));
    v.push(e(Movsxd, RRm, Q, N, M1, 0x63).rmw(Width::W32));

    v.push(e(Lea, RM, V, N, M1, 0x8D));

    // unary group F6/F7 and FE/FF
    v.push(e(Not, Rm, B, N, M1, 0xF6).ext(2));
    v.push(e(Not, Rm, V, N, M1, 0xF7).ext(2));
    v.push(e(Neg, Rm, B, N, M1, 0xF6).ext(3));
    v.push(e(Neg, Rm, V, N, M1, 0xF7).ext(3));
    v.push(e(Mul, Rm, B, N, M1, 0xF6).ext(4));
    v.push(e(Mul, Rm, V, N, M1, 0xF7).ext(4));
    v.push(e(Imul, Rm, V, N, M1, 0xF7).ext(5));
    v.push(e(Div, Rm, B, N, M1, 0xF6).ext(6));
    v.push(e(Div, Rm, V, N, M1, 0xF7).ext(6));
    v.push(e(Idiv, Rm, V, N, M1, 0xF7).ext(7));
    v.push(e(Inc, Rm, B, N, M1, 0xFE).ext(0));
    v.push(e(Inc, Rm, V, N, M1, 0xFF).ext(0));
    v.push(e(Dec, Rm, B, N, M1, 0xFE).ext(1));
    v.push(e(Dec, Rm, V, N, M1, 0xFF).ext(1));

    // imul r, r/m [, imm]
    v.push(e(Imul, RRm, V, N, M0F, 0xAF));
    v.push(e(Imul, RRmI, V, N, M1, 0x6B).imm(IbS));
    v.push(e(Imul, RRmI, V, N, M1, 0x69).imm(Iz));

    // shifts: C0/C1 /digit ib, D2/D3 /digit (by cl)
    let shifts: &[(Mnemonic, u8)] = &[(Rol, 0), (Ror, 1), (Shl, 4), (Shr, 5), (Sar, 7)];
    for &(m, digit) in shifts {
        v.push(e(m, RmI, B, N, M1, 0xC0).ext(digit).imm(Ib));
        v.push(e(m, RmI, V, N, M1, 0xC1).ext(digit).imm(Ib));
        v.push(e(m, RmCl, B, N, M1, 0xD2).ext(digit));
        v.push(e(m, RmCl, V, N, M1, 0xD3).ext(digit));
    }
    v.push(e(Shld, RmRI, V, N, M0F, 0xA4).imm(Ib));
    v.push(e(Shrd, RmRI, V, N, M0F, 0xAC).imm(Ib));

    // bit scans & counts
    v.push(e(Bsf, RRm, V, N, M0F, 0xBC));
    v.push(e(Bsr, RRm, V, N, M0F, 0xBD));
    v.push(e(Bt, RmR, V, N, M0F, 0xA3));
    v.push(e(Popcnt, RRm, V, PF3, M0F, 0xB8));
    v.push(e(Lzcnt, RRm, V, PF3, M0F, 0xBD));
    v.push(e(Tzcnt, RRm, V, PF3, M0F, 0xBC));
    v.push(e(Bswap, OpReg, V, N, M0F, 0xC8));

    v.push(e(Xchg, RmR, B, N, M1, 0x86));
    v.push(e(Xchg, RmR, V, N, M1, 0x87));

    v.push(e(Cdq, NoOps, V, N, M1, 0x99));
    v.push(e(Cqo, NoOps, Q, N, M1, 0x99));
    v.push(e(Nop, NoOps, V, N, M1, 0x90));
    v.push(e(Nop, Rm, V, N, M0F, 0x1F).ext(0)); // multi-byte NOP

    v.push(e(Push, OpReg, D64, N, M1, 0x50));
    v.push(e(Pop, OpReg, D64, N, M1, 0x58));

    // branches
    v.push(e(Jmp, Rel, D64, N, M1, 0xEB).imm(Ib));
    v.push(e(Jmp, Rel, D64, N, M1, 0xE9).imm(Iz));
    for c in Cond::ALL {
        v.push(e(Jcc(c), Rel, D64, N, M1, 0x70 + c.code()).imm(Ib));
        v.push(e(Jcc(c), Rel, D64, N, M0F, 0x80 + c.code()).imm(Iz));
        v.push(e(Setcc(c), Rm, B, N, M0F, 0x90 + c.code()).ext(0));
        v.push(e(Cmovcc(c), RRm, V, N, M0F, 0x40 + c.code()));
    }

    // ---- SSE / SSE2 floating point ----
    v.push(e(Movaps, XXm, X, N, M0F, 0x28));
    v.push(e(Movaps, XmX, X, N, M0F, 0x29));
    v.push(e(Movups, XXm, X, N, M0F, 0x10));
    v.push(e(Movups, XmX, X, N, M0F, 0x11));
    v.push(e(Movdqa, XXm, X, P66, M0F, 0x6F));
    v.push(e(Movdqa, XmX, X, P66, M0F, 0x7F));
    v.push(e(Movdqu, XXm, X, PF3, M0F, 0x6F));
    v.push(e(Movdqu, XmX, X, PF3, M0F, 0x7F));
    v.push(e(Movss, XXm, X, PF3, M0F, 0x10).rmw(Width::W32));
    v.push(e(Movss, XmX, X, PF3, M0F, 0x11).rmw(Width::W32));
    v.push(e(Movsd, XXm, X, PF2, M0F, 0x10).rmw(Width::W64));
    v.push(e(Movsd, XmX, X, PF2, M0F, 0x11).rmw(Width::W64));
    v.push(e(Movd, XRm, V, P66, M0F, 0x6E).rmw(Width::W32));
    v.push(e(Movd, RmX, V, P66, M0F, 0x7E).rmw(Width::W32));
    v.push(e(Movq, XRm, Q, P66, M0F, 0x6E).rmw(Width::W64));
    v.push(e(Movq, RmX, Q, P66, M0F, 0x7E).rmw(Width::W64));

    // packed/scalar arithmetic: (op byte, ps/pd/ss/sd mnemonics)
    let fp4: &[(u8, Mnemonic, Mnemonic, Mnemonic, Mnemonic)] = &[
        (0x58, Addps, Addpd, Addss, Addsd),
        (0x5C, Subps, Subpd, Subss, Subsd),
        (0x59, Mulps, Mulpd, Mulss, Mulsd),
        (0x5E, Divps, Divpd, Divss, Divsd),
        (0x51, Sqrtps, Sqrtpd, Sqrtss, Sqrtsd),
    ];
    for &(op, ps, pd, ss, sd) in fp4 {
        v.push(e(ps, XXm, X, N, M0F, op));
        v.push(e(pd, XXm, X, P66, M0F, op));
        v.push(e(ss, XXm, X, PF3, M0F, op).rmw(Width::W32));
        v.push(e(sd, XXm, X, PF2, M0F, op).rmw(Width::W64));
    }
    v.push(e(Minps, XXm, X, N, M0F, 0x5D));
    v.push(e(Maxps, XXm, X, N, M0F, 0x5F));
    v.push(e(Minss, XXm, X, PF3, M0F, 0x5D).rmw(Width::W32));
    v.push(e(Maxss, XXm, X, PF3, M0F, 0x5F).rmw(Width::W32));
    v.push(e(Minsd, XXm, X, PF2, M0F, 0x5D).rmw(Width::W64));
    v.push(e(Maxsd, XXm, X, PF2, M0F, 0x5F).rmw(Width::W64));
    v.push(e(Andps, XXm, X, N, M0F, 0x54));
    v.push(e(Andpd, XXm, X, P66, M0F, 0x54));
    v.push(e(Orps, XXm, X, N, M0F, 0x56));
    v.push(e(Orpd, XXm, X, P66, M0F, 0x56));
    v.push(e(Xorps, XXm, X, N, M0F, 0x57));
    v.push(e(Xorpd, XXm, X, P66, M0F, 0x57));
    v.push(e(Ucomiss, XXm, X, N, M0F, 0x2E).rmw(Width::W32));
    v.push(e(Ucomisd, XXm, X, P66, M0F, 0x2E).rmw(Width::W64));
    v.push(e(Cvtsi2ss, XRm, V, PF3, M0F, 0x2A));
    v.push(e(Cvtsi2sd, XRm, V, PF2, M0F, 0x2A));
    v.push(e(Cvttss2si, RXm, V, PF3, M0F, 0x2C).rmw(Width::W32));
    v.push(e(Cvttsd2si, RXm, V, PF2, M0F, 0x2C).rmw(Width::W64));
    v.push(e(Cvtps2pd, XXm, X, N, M0F, 0x5A).rmw(Width::W64));
    v.push(e(Cvtpd2ps, XXm, X, P66, M0F, 0x5A));
    v.push(e(Shufps, XXmI, X, N, M0F, 0xC6).imm(Ib));
    v.push(e(Unpcklps, XXm, X, N, M0F, 0x14));
    v.push(e(Unpckhps, XXm, X, N, M0F, 0x15));
    v.push(e(Movmskps, RXm, V, N, M0F, 0x50));
    v.push(e(Pmovmskb, RXm, V, P66, M0F, 0xD7));

    // ---- SSE integer ----
    let pint: &[(Mnemonic, Map, u8)] = &[
        (Paddb, M0F, 0xFC),
        (Paddw, M0F, 0xFD),
        (Paddd, M0F, 0xFE),
        (Paddq, M0F, 0xD4),
        (Psubb, M0F, 0xF8),
        (Psubw, M0F, 0xF9),
        (Psubd, M0F, 0xFA),
        (Psubq, M0F, 0xFB),
        (Pmullw, M0F, 0xD5),
        (Pmulld, M38, 0x40),
        (Pmuludq, M0F, 0xF4),
        (Pand, M0F, 0xDB),
        (Pandn, M0F, 0xDF),
        (Por, M0F, 0xEB),
        (Pxor, M0F, 0xEF),
        (Pcmpeqb, M0F, 0x74),
        (Pcmpeqw, M0F, 0x75),
        (Pcmpeqd, M0F, 0x76),
        (Pcmpgtb, M0F, 0x64),
        (Pcmpgtw, M0F, 0x65),
        (Pcmpgtd, M0F, 0x66),
        (Pshufb, M38, 0x00),
        (Punpcklbw, M0F, 0x60),
        (Punpckldq, M0F, 0x62),
        (Psllw, M0F, 0xF1),
        (Pslld, M0F, 0xF2),
        (Psllq, M0F, 0xF3),
        (Psrlw, M0F, 0xD1),
        (Psrld, M0F, 0xD2),
        (Psrlq, M0F, 0xD3),
        (Psraw, M0F, 0xE1),
        (Psrad, M0F, 0xE2),
    ];
    for &(m, map, op) in pint {
        v.push(e(m, XXm, X, P66, map, op));
    }
    v.push(e(Pshufd, XXmI, X, P66, M0F, 0x70).imm(Ib));
    // immediate shift forms
    v.push(e(Psllw, XI, X, P66, M0F, 0x71).ext(6).imm(Ib));
    v.push(e(Pslld, XI, X, P66, M0F, 0x72).ext(6).imm(Ib));
    v.push(e(Psllq, XI, X, P66, M0F, 0x73).ext(6).imm(Ib));
    v.push(e(Psrlw, XI, X, P66, M0F, 0x71).ext(2).imm(Ib));
    v.push(e(Psrld, XI, X, P66, M0F, 0x72).ext(2).imm(Ib));
    v.push(e(Psrlq, XI, X, P66, M0F, 0x73).ext(2).imm(Ib));
    v.push(e(Psraw, XI, X, P66, M0F, 0x71).ext(4).imm(Ib));
    v.push(e(Psrad, XI, X, P66, M0F, 0x72).ext(4).imm(Ib));

    // ---- AVX ----
    // Three-operand packed arithmetic, xmm (L0) and ymm (L1) variants.
    let vfp: &[(Mnemonic, u8, u8)] = &[
        // (mnemonic, pp, opcode)
        (Vaddps, 0, 0x58),
        (Vaddpd, 1, 0x58),
        (Vsubps, 0, 0x5C),
        (Vsubpd, 1, 0x5C),
        (Vmulps, 0, 0x59),
        (Vmulpd, 1, 0x59),
        (Vdivps, 0, 0x5E),
        (Vdivpd, 1, 0x5E),
        (Vxorps, 0, 0x57),
        (Vandps, 0, 0x54),
        (Vorps, 0, 0x56),
        (Vminps, 0, 0x5D),
        (Vmaxps, 0, 0x5F),
        (Vpaddd, 1, 0xFE),
        (Vpaddq, 1, 0xD4),
        (Vpsubd, 1, 0xFA),
        (Vpand, 1, 0xDB),
        (Vpor, 1, 0xEB),
        (Vpxor, 1, 0xEF),
    ];
    for &(m, pp, op) in vfp {
        v.push(e(m, VXXm, X, N, M0F, op).vex(pp, 0, 2));
        v.push(e(m, VXXm, X, N, M0F, op).vex(pp, 1, 2));
    }
    v.push(e(Vpmulld, VXXm, X, N, M38, 0x40).vex(1, 0, 0));
    v.push(e(Vpmulld, VXXm, X, N, M38, 0x40).vex(1, 1, 0));
    v.push(
        e(Vaddss, VXXm, X, N, M0F, 0x58)
            .vex(2, 2, 2)
            .rmw(Width::W32),
    );
    v.push(
        e(Vaddsd, VXXm, X, N, M0F, 0x58)
            .vex(3, 2, 2)
            .rmw(Width::W64),
    );
    v.push(
        e(Vmulss, VXXm, X, N, M0F, 0x59)
            .vex(2, 2, 2)
            .rmw(Width::W32),
    );
    v.push(
        e(Vmulsd, VXXm, X, N, M0F, 0x59)
            .vex(3, 2, 2)
            .rmw(Width::W64),
    );
    v.push(e(Vshufps, VXXmI, X, N, M0F, 0xC6).vex(0, 0, 2).imm(Ib));
    v.push(e(Vshufps, VXXmI, X, N, M0F, 0xC6).vex(0, 1, 2).imm(Ib));
    // moves (two-operand, vvvv unused)
    let vmov: &[(Mnemonic, u8, u8, u8)] = &[
        // (mnemonic, pp, load op, store op)
        (Vmovaps, 0, 0x28, 0x29),
        (Vmovups, 0, 0x10, 0x11),
        (Vmovdqa, 1, 0x6F, 0x7F),
        (Vmovdqu, 2, 0x6F, 0x7F),
    ];
    for &(m, pp, lop, sop) in vmov {
        for l in [0u8, 1] {
            v.push(e(m, VXm, X, N, M0F, lop).vex(pp, l, 2));
            v.push(e(m, VXmX, X, N, M0F, sop).vex(pp, l, 2));
        }
    }
    v.push(e(Vsqrtps, VXm, X, N, M0F, 0x51).vex(0, 0, 2));
    v.push(e(Vsqrtps, VXm, X, N, M0F, 0x51).vex(0, 1, 2));
    v.push(
        e(Vbroadcastss, VXm, X, N, M38, 0x18)
            .vex(1, 0, 0)
            .rmw(Width::W32),
    );
    v.push(
        e(Vbroadcastss, VXm, X, N, M38, 0x18)
            .vex(1, 1, 0)
            .rmw(Width::W32),
    );
    v.push(
        e(Vinsertf128, VYXmI, X, N, M3A, 0x18)
            .vex(1, 1, 0)
            .imm(Ib)
            .rmw(Width::W128),
    );
    v.push(
        e(Vextractf128, VXmYI, X, N, M3A, 0x19)
            .vex(1, 1, 0)
            .imm(Ib)
            .rmw(Width::W128),
    );
    // FMA
    v.push(e(Vfmadd231ps, VXXm, X, N, M38, 0xB8).vex(1, 0, 0));
    v.push(e(Vfmadd231ps, VXXm, X, N, M38, 0xB8).vex(1, 1, 0));
    v.push(e(Vfmadd231pd, VXXm, X, N, M38, 0xB8).vex(1, 0, 1));
    v.push(e(Vfmadd231pd, VXXm, X, N, M38, 0xB8).vex(1, 1, 1));
    v.push(
        e(Vfmadd231ss, VXXm, X, N, M38, 0xB9)
            .vex(1, 2, 0)
            .rmw(Width::W32),
    );
    v.push(
        e(Vfmadd231sd, VXXm, X, N, M38, 0xB9)
            .vex(1, 2, 1)
            .rmw(Width::W64),
    );

    // Build indexes.
    let mut by_mnem: HashMap<Mnemonic, Vec<usize>> = HashMap::new();
    let mut by_opcode: HashMap<(Map, u8), Vec<usize>> = HashMap::new();
    for (i, ent) in v.iter().enumerate() {
        by_mnem.entry(ent.mnem).or_default().push(i);
        if ent.is_opreg() {
            for r in 0..8u8 {
                by_opcode.entry((ent.map, ent.op + r)).or_default().push(i);
            }
        } else {
            by_opcode.entry((ent.map, ent.op)).or_default().push(i);
        }
    }
    Tables {
        entries: v,
        by_mnem,
        by_opcode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_build() {
        let t = tables();
        assert!(
            t.entries.len() > 250,
            "expected a rich table, got {}",
            t.entries.len()
        );
        assert!(t.by_mnem.contains_key(&Mnemonic::Add));
        assert!(t.by_mnem.contains_key(&Mnemonic::Vfmadd231ps));
    }

    #[test]
    fn opreg_entries_cover_eight_opcodes() {
        let t = tables();
        // push r64 occupies 0x50..=0x57
        for op in 0x50..=0x57u8 {
            let hits = &t.by_opcode[&(Map::M1, op)];
            assert!(hits.iter().any(|&i| t.entries[i].mnem == Mnemonic::Push));
        }
    }

    #[test]
    fn every_mnemonic_in_some_entry_has_consistent_index() {
        let t = tables();
        for (m, idxs) in &t.by_mnem {
            for &i in idxs {
                assert_eq!(t.entries[i].mnem, *m);
            }
        }
    }

    #[test]
    fn conditional_families_complete() {
        let t = tables();
        for c in Cond::ALL {
            assert!(t.by_mnem.contains_key(&Mnemonic::Jcc(c)));
            assert!(t.by_mnem.contains_key(&Mnemonic::Setcc(c)));
            assert!(t.by_mnem.contains_key(&Mnemonic::Cmovcc(c)));
        }
    }
}
