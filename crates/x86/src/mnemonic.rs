//! Instruction mnemonics and condition codes.

use std::fmt;

/// x86 condition codes, in hardware encoding order (the low nibble of the
/// `Jcc`/`SETcc`/`CMOVcc` opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow (`jo`).
    O = 0,
    /// Not overflow (`jno`).
    No = 1,
    /// Below / carry (`jb`).
    B = 2,
    /// Above or equal / not carry (`jae`).
    Ae = 3,
    /// Equal / zero (`je`).
    E = 4,
    /// Not equal / not zero (`jne`).
    Ne = 5,
    /// Below or equal (`jbe`).
    Be = 6,
    /// Above (`ja`).
    A = 7,
    /// Sign (`js`).
    S = 8,
    /// Not sign (`jns`).
    Ns = 9,
    /// Parity (`jp`).
    P = 10,
    /// Not parity (`jnp`).
    Np = 11,
    /// Less (`jl`).
    L = 12,
    /// Greater or equal (`jge`).
    Ge = 13,
    /// Less or equal (`jle`).
    Le = 14,
    /// Greater (`jg`).
    G = 15,
}

impl Cond {
    /// All 16 condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// Hardware encoding (0..=15).
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Condition from its hardware encoding.
    #[must_use]
    pub fn from_code(code: u8) -> Cond {
        Cond::ALL[(code & 0xF) as usize]
    }

    /// Suffix used in assembly mnemonics (`e` in `jne` is `Ne`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::O => "o",
            Cond::No => "no",
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::P => "p",
            Cond::Np => "np",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        }
    }

    /// EFLAGS groups read by this condition, as a [`crate::flags`] mask.
    #[must_use]
    pub fn flags_read(self) -> u8 {
        use crate::flags;
        match self {
            Cond::O | Cond::No => flags::O,
            Cond::B | Cond::Ae => flags::C,
            Cond::E | Cond::Ne | Cond::S | Cond::Ns | Cond::P | Cond::Np => flags::SPAZ,
            Cond::Be | Cond::A => flags::C | flags::SPAZ,
            Cond::L | Cond::Ge | Cond::Le | Cond::G => flags::O | flags::SPAZ,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

macro_rules! mnemonics {
    ($($variant:ident => $name:expr),* $(,)?) => {
        /// An instruction mnemonic.
        ///
        /// Conditional instructions (`Jcc`, `Setcc`, `Cmovcc`) carry their
        /// [`Cond`] so that every concrete instruction has exactly one
        /// mnemonic value.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[allow(missing_docs)] // the names *are* the documentation
        pub enum Mnemonic {
            $($variant,)*
            /// Conditional jump.
            Jcc(Cond),
            /// Conditional set-byte.
            Setcc(Cond),
            /// Conditional move.
            Cmovcc(Cond),
        }

        impl Mnemonic {
            /// The assembly name of this mnemonic (lowercase, Intel syntax).
            #[must_use]
            pub fn name(self) -> String {
                match self {
                    $(Mnemonic::$variant => $name.to_string(),)*
                    Mnemonic::Jcc(c) => format!("j{}", c.suffix()),
                    Mnemonic::Setcc(c) => format!("set{}", c.suffix()),
                    Mnemonic::Cmovcc(c) => format!("cmov{}", c.suffix()),
                }
            }
        }
    };
}

mnemonics! {
    // --- scalar integer ---
    Add => "add", Adc => "adc", And => "and", Or => "or", Sbb => "sbb",
    Sub => "sub", Xor => "xor", Cmp => "cmp", Test => "test",
    Mov => "mov", Movzx => "movzx", Movsx => "movsx", Movsxd => "movsxd",
    Lea => "lea", Inc => "inc", Dec => "dec", Neg => "neg", Not => "not",
    Imul => "imul", Mul => "mul", Div => "div", Idiv => "idiv",
    Shl => "shl", Shr => "shr", Sar => "sar", Rol => "rol", Ror => "ror",
    Shld => "shld", Shrd => "shrd",
    Bsf => "bsf", Bsr => "bsr", Bt => "bt",
    Popcnt => "popcnt", Lzcnt => "lzcnt", Tzcnt => "tzcnt",
    Bswap => "bswap", Xchg => "xchg", Cdq => "cdq", Cqo => "cqo",
    Nop => "nop", Push => "push", Pop => "pop", Jmp => "jmp",
    // --- SSE floating point ---
    Movaps => "movaps", Movups => "movups", Movdqa => "movdqa", Movdqu => "movdqu",
    Movss => "movss", Movsd => "movsd", Movd => "movd", Movq => "movq",
    Addps => "addps", Addpd => "addpd", Addss => "addss", Addsd => "addsd",
    Subps => "subps", Subpd => "subpd", Subss => "subss", Subsd => "subsd",
    Mulps => "mulps", Mulpd => "mulpd", Mulss => "mulss", Mulsd => "mulsd",
    Divps => "divps", Divpd => "divpd", Divss => "divss", Divsd => "divsd",
    Sqrtps => "sqrtps", Sqrtpd => "sqrtpd", Sqrtss => "sqrtss", Sqrtsd => "sqrtsd",
    Minps => "minps", Maxps => "maxps", Minss => "minss", Maxss => "maxss",
    Minsd => "minsd", Maxsd => "maxsd",
    Andps => "andps", Andpd => "andpd", Orps => "orps", Orpd => "orpd",
    Xorps => "xorps", Xorpd => "xorpd",
    Ucomiss => "ucomiss", Ucomisd => "ucomisd",
    Cvtsi2ss => "cvtsi2ss", Cvtsi2sd => "cvtsi2sd",
    Cvttss2si => "cvttss2si", Cvttsd2si => "cvttsd2si",
    Cvtps2pd => "cvtps2pd", Cvtpd2ps => "cvtpd2ps",
    Shufps => "shufps", Unpcklps => "unpcklps", Unpckhps => "unpckhps",
    Movmskps => "movmskps", Pmovmskb => "pmovmskb",
    // --- SSE integer ---
    Paddb => "paddb", Paddw => "paddw", Paddd => "paddd", Paddq => "paddq",
    Psubb => "psubb", Psubw => "psubw", Psubd => "psubd", Psubq => "psubq",
    Pmullw => "pmullw", Pmulld => "pmulld", Pmuludq => "pmuludq",
    Pand => "pand", Pandn => "pandn", Por => "por", Pxor => "pxor",
    Pcmpeqb => "pcmpeqb", Pcmpeqw => "pcmpeqw", Pcmpeqd => "pcmpeqd",
    Pcmpgtb => "pcmpgtb", Pcmpgtw => "pcmpgtw", Pcmpgtd => "pcmpgtd",
    Pshufd => "pshufd", Pshufb => "pshufb",
    Punpcklbw => "punpcklbw", Punpckldq => "punpckldq",
    Psllw => "psllw", Pslld => "pslld", Psllq => "psllq",
    Psrlw => "psrlw", Psrld => "psrld", Psrlq => "psrlq",
    Psraw => "psraw", Psrad => "psrad",
    // --- AVX (VEX-encoded) ---
    Vaddps => "vaddps", Vaddpd => "vaddpd", Vsubps => "vsubps", Vsubpd => "vsubpd",
    Vmulps => "vmulps", Vmulpd => "vmulpd", Vdivps => "vdivps", Vdivpd => "vdivpd",
    Vxorps => "vxorps", Vandps => "vandps", Vorps => "vorps",
    Vminps => "vminps", Vmaxps => "vmaxps", Vsqrtps => "vsqrtps",
    Vaddss => "vaddss", Vaddsd => "vaddsd", Vmulss => "vmulss", Vmulsd => "vmulsd",
    Vmovaps => "vmovaps", Vmovups => "vmovups", Vmovdqa => "vmovdqa", Vmovdqu => "vmovdqu",
    Vpaddd => "vpaddd", Vpaddq => "vpaddq", Vpsubd => "vpsubd",
    Vpand => "vpand", Vpor => "vpor", Vpxor => "vpxor", Vpmulld => "vpmulld",
    Vshufps => "vshufps", Vbroadcastss => "vbroadcastss",
    Vinsertf128 => "vinsertf128", Vextractf128 => "vextractf128",
    Vfmadd231ps => "vfmadd231ps", Vfmadd231pd => "vfmadd231pd",
    Vfmadd231ss => "vfmadd231ss", Vfmadd231sd => "vfmadd231sd",
}

impl Mnemonic {
    /// Whether this is a control-flow instruction (conditional or not).
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, Mnemonic::Jmp | Mnemonic::Jcc(_))
    }

    /// Whether this is a *conditional* branch (a `Jcc`).
    #[must_use]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Mnemonic::Jcc(_))
    }

    /// Whether this instruction can macro-fuse with a preceding flag-writing
    /// instruction, i.e. whether it is a `Jcc`. (Which *producers* fuse with
    /// it is microarchitecture-specific and modeled in `facile-isa`.)
    #[must_use]
    pub fn is_fusible_branch(self) -> bool {
        self.is_cond_branch()
    }

    /// Whether this mnemonic is VEX-encoded (AVX).
    #[must_use]
    pub fn is_vex(self) -> bool {
        use Mnemonic::*;
        matches!(
            self,
            Vaddps
                | Vaddpd
                | Vsubps
                | Vsubpd
                | Vmulps
                | Vmulpd
                | Vdivps
                | Vdivpd
                | Vxorps
                | Vandps
                | Vorps
                | Vminps
                | Vmaxps
                | Vsqrtps
                | Vaddss
                | Vaddsd
                | Vmulss
                | Vmulsd
                | Vmovaps
                | Vmovups
                | Vmovdqa
                | Vmovdqu
                | Vpaddd
                | Vpaddq
                | Vpsubd
                | Vpand
                | Vpor
                | Vpxor
                | Vpmulld
                | Vshufps
                | Vbroadcastss
                | Vinsertf128
                | Vextractf128
                | Vfmadd231ps
                | Vfmadd231pd
                | Vfmadd231ss
                | Vfmadd231sd
        )
    }
}

impl fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_roundtrip() {
        for (i, c) in Cond::ALL.iter().enumerate() {
            assert_eq!(c.code() as usize, i);
            assert_eq!(Cond::from_code(c.code()), *c);
        }
    }

    #[test]
    fn cond_flag_reads() {
        use crate::flags;
        assert_eq!(Cond::E.flags_read(), flags::SPAZ);
        assert_eq!(Cond::B.flags_read(), flags::C);
        assert_eq!(Cond::A.flags_read(), flags::C | flags::SPAZ);
        assert_eq!(Cond::L.flags_read(), flags::O | flags::SPAZ);
    }

    #[test]
    fn names() {
        assert_eq!(Mnemonic::Add.name(), "add");
        assert_eq!(Mnemonic::Jcc(Cond::Ne).name(), "jne");
        assert_eq!(Mnemonic::Cmovcc(Cond::Le).name(), "cmovle");
        assert_eq!(Mnemonic::Vfmadd231ps.name(), "vfmadd231ps");
    }

    #[test]
    fn branch_classification() {
        assert!(Mnemonic::Jmp.is_branch());
        assert!(Mnemonic::Jcc(Cond::E).is_branch());
        assert!(Mnemonic::Jcc(Cond::E).is_cond_branch());
        assert!(!Mnemonic::Jmp.is_cond_branch());
        assert!(!Mnemonic::Add.is_branch());
    }

    #[test]
    fn vex_classification() {
        assert!(Mnemonic::Vaddps.is_vex());
        assert!(!Mnemonic::Addps.is_vex());
    }
}
