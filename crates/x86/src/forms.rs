//! Structural enumeration of every decoder-reachable instruction form.
//!
//! The decoder's operand shapes are fully determined by its encoding
//! tables: each table `Entry` plus an operand-size choice yields one
//! operand-slot *template* — which slots are registers (and of which
//! class), which slot may alternatively be memory, where immediates and
//! branch targets sit. Downstream table generation (the `facile-isa`
//! build script) instantiates these templates with concrete registers
//! and addressing shapes and runs the instruction classifier over them,
//! producing static descriptor tables for the common forms.
//!
//! The mapping from `Pat` to slots here mirrors `decode.rs`'s
//! `decode_with_entry` operand construction exactly; a template that the
//! decoder can never produce is harmless (its table entry is simply
//! never looked up), but a *missing* template only costs performance
//! (runtime fallback), never correctness.

use crate::mnemonic::Mnemonic;
use crate::reg::Width;
use crate::table::{tables, Entry, Map, Osz, Pat};

/// The register class a slot accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// General-purpose register of the given width.
    Gpr(Width),
    /// 128-bit vector register.
    Xmm,
    /// 256-bit vector register.
    Ymm,
}

/// One operand slot of a form template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// A register operand of the given class.
    Reg(RegClass),
    /// A ModRM r/m operand: either a register of the given class or a
    /// memory operand of the given width.
    RegOrMem(RegClass, Width),
    /// A mandatory memory operand of the given width (`lea`).
    Mem(Width),
    /// An immediate operand.
    Imm,
    /// A branch-relative displacement operand.
    Rel,
}

/// One structural instruction form: a mnemonic plus its operand slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FormTemplate {
    /// The instruction mnemonic.
    pub mnemonic: Mnemonic,
    /// Operand slots in decoder order.
    pub slots: Vec<SlotKind>,
}

/// GPR operand widths reachable for an entry's operand-size class.
fn gpr_widths(osz: Osz) -> &'static [Width] {
    match osz {
        Osz::B => &[Width::W8],
        Osz::V => &[Width::W16, Width::W32, Width::W64],
        Osz::Q | Osz::D64 => &[Width::W64],
        // Vector entries: GPR slots (RXm) always use the `V` widths via
        // `rmw`; a single placeholder iteration is enough.
        Osz::X => &[Width::W32],
    }
}

fn entry_templates(entry: &Entry, out: &mut Vec<FormTemplate>) {
    use SlotKind::{Imm, Mem, Reg, RegOrMem, Rel};

    // Effective VEX vector length: `l == 2` in the table means
    // length-ignored scalar, which the decoder treats as L0.
    let eff_l = entry.vex.map_or(0, |v| if v.l == 2 { 0 } else { v.l });
    let vecw = if eff_l == 1 { Width::W256 } else { Width::W128 };
    let vclass = if eff_l == 1 {
        RegClass::Ymm
    } else {
        RegClass::Xmm
    };

    for &gw in gpr_widths(entry.osz) {
        // Memory width of the r/m slot (`mem_w` in the decoder).
        let mem_w = entry.rmw.unwrap_or(match entry.osz {
            Osz::X => vecw,
            _ => gw,
        });
        // Register width of a GPR r/m slot when the entry overrides it
        // (movzx r32, r/m8 and friends).
        let rm_gw = entry.rmw.filter(|w| w.is_gpr()).unwrap_or(gw);

        let gpr = Reg(RegClass::Gpr(gw));
        let gpr_rm = RegOrMem(RegClass::Gpr(rm_gw), mem_w);
        let xmm_rm = RegOrMem(RegClass::Xmm, mem_w);

        let slots: Vec<SlotKind> = match entry.pat {
            Pat::NoOps => vec![],
            Pat::RmR => vec![gpr_rm, gpr],
            Pat::RRm => vec![gpr, gpr_rm],
            Pat::RmRI => vec![gpr_rm, gpr, Imm],
            Pat::RmI => vec![gpr_rm, Imm],
            Pat::Rm => vec![gpr_rm],
            Pat::RmCl => vec![gpr_rm, Reg(RegClass::Gpr(Width::W8))],
            Pat::OpReg => vec![gpr],
            Pat::OpRegI | Pat::AccI => vec![gpr, Imm],
            Pat::RRmI => vec![gpr, gpr_rm, Imm],
            Pat::RM => vec![gpr, Mem(mem_w)],
            Pat::Rel => vec![Rel],
            Pat::XXm => vec![Reg(RegClass::Xmm), xmm_rm],
            Pat::XmX => vec![xmm_rm, Reg(RegClass::Xmm)],
            Pat::XXmI => vec![Reg(RegClass::Xmm), xmm_rm, Imm],
            Pat::XRm => vec![Reg(RegClass::Xmm), gpr_rm],
            Pat::RmX => vec![gpr_rm, Reg(RegClass::Xmm)],
            Pat::RXm => vec![gpr, xmm_rm],
            Pat::XI => vec![Reg(RegClass::Xmm), Imm],
            Pat::VXXm => vec![Reg(vclass), Reg(vclass), RegOrMem(vclass, mem_w)],
            Pat::VXXmI => vec![Reg(vclass), Reg(vclass), RegOrMem(vclass, mem_w), Imm],
            Pat::VXm => {
                // vbroadcastss reads an xmm/m32 source regardless of L,
                // matching the decoder's special case.
                let src = if entry.map == Map::M38 && entry.op == 0x18 {
                    RegClass::Xmm
                } else {
                    vclass
                };
                vec![Reg(vclass), RegOrMem(src, mem_w)]
            }
            Pat::VXmX => vec![RegOrMem(vclass, mem_w), Reg(vclass)],
            Pat::VYXmI => vec![
                Reg(RegClass::Ymm),
                Reg(RegClass::Ymm),
                RegOrMem(RegClass::Xmm, mem_w),
                Imm,
            ],
            Pat::VXmYI => vec![RegOrMem(RegClass::Xmm, mem_w), Reg(RegClass::Ymm), Imm],
        };
        out.push(FormTemplate {
            mnemonic: entry.mnem,
            slots,
        });
        // Non-`V` operand sizes and vector entries don't iterate widths.
        if !matches!(entry.osz, Osz::V) {
            break;
        }
    }
}

/// Every decoder-reachable instruction form, deduplicated, in a
/// deterministic order (encoding-table order, then operand width).
///
/// Includes decode-only entries: they are reachable through
/// [`crate::decode_one`] even though the assembler never emits them.
#[must_use]
pub fn form_templates() -> Vec<FormTemplate> {
    let mut out = Vec::with_capacity(1024);
    for entry in &tables().entries {
        entry_templates(entry, &mut out);
    }
    let mut seen = std::collections::HashSet::with_capacity(out.len());
    out.retain(|t| seen.insert(t.clone()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_are_deduplicated_and_deterministic() {
        let a = form_templates();
        let b = form_templates();
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().cloned().collect();
        assert_eq!(set.len(), a.len(), "duplicate templates survived");
        assert!(a.len() > 200, "suspiciously few templates: {}", a.len());
    }

    #[test]
    fn known_shapes_present() {
        let all = form_templates();
        // add r64, r/m64
        assert!(all.iter().any(|t| t.mnemonic == Mnemonic::Add
            && t.slots
                == [
                    SlotKind::Reg(RegClass::Gpr(Width::W64)),
                    SlotKind::RegOrMem(RegClass::Gpr(Width::W64), Width::W64),
                ]));
        // movzx r32, r/m8: rm register class is W8, memory width W8
        assert!(all.iter().any(|t| t.mnemonic == Mnemonic::Movzx
            && t.slots
                == [
                    SlotKind::Reg(RegClass::Gpr(Width::W32)),
                    SlotKind::RegOrMem(RegClass::Gpr(Width::W8), Width::W8),
                ]));
        // lea r64, m
        assert!(all.iter().any(|t| t.mnemonic == Mnemonic::Lea
            && t.slots
                == [
                    SlotKind::Reg(RegClass::Gpr(Width::W64)),
                    SlotKind::Mem(Width::W64),
                ]));
        // vaddps ymm, ymm, ymm/m256
        assert!(all.iter().any(|t| t.mnemonic == Mnemonic::Vaddps
            && t.slots
                == [
                    SlotKind::Reg(RegClass::Ymm),
                    SlotKind::Reg(RegClass::Ymm),
                    SlotKind::RegOrMem(RegClass::Ymm, Width::W256),
                ]));
        // vbroadcastss ymm, xmm/m32 (the decoder's L-insensitive source)
        assert!(all.iter().any(|t| t.mnemonic == Mnemonic::Vbroadcastss
            && t.slots
                == [
                    SlotKind::Reg(RegClass::Ymm),
                    SlotKind::RegOrMem(RegClass::Xmm, Width::W32),
                ]));
    }
}
