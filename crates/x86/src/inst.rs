//! The decoded-instruction representation and its architectural effects.

use crate::flags;
use crate::mnemonic::Mnemonic;
use crate::operand::{Mem, Operand};
use crate::reg::{Reg, Width};
use facile_util::SmallVec;
use std::fmt;

/// A fully decoded (or assembled) instruction.
///
/// Instances are produced by [`crate::decode`] or [`crate::encode`]; both
/// fill in the encoding metadata (`len`, `opcode_offset`, `has_lcp`) that the
/// front-end models depend on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The instruction mnemonic.
    pub mnemonic: Mnemonic,
    /// Explicit operands, in Intel (destination-first) order.
    pub operands: Vec<Operand>,
    /// Total encoded length in bytes (1..=15).
    pub len: u8,
    /// Offset of the first *nominal opcode* byte within the instruction,
    /// i.e. the first byte that is not a legacy or REX prefix. (For
    /// VEX-encoded instructions this is the offset of the VEX prefix, which
    /// predecoders treat as the start of the opcode.)
    pub opcode_offset: u8,
    /// Whether the instruction has a length-changing prefix (a `0x66`
    /// operand-size override that changes the immediate size), which incurs
    /// a predecoder penalty.
    pub has_lcp: bool,
}

/// The architectural reads and writes of one instruction.
///
/// Memory is described structurally (the [`Mem`] operand plus load/store
/// direction); the registers feeding address generation are included in
/// [`Effects::reg_reads`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Effects {
    /// Registers read (explicit, implicit, and address registers).
    /// Inline up to 6 entries — enough for every decodable form (the
    /// worst case, an indexed RMW with implicit operands, reads 5).
    pub reg_reads: SmallVec<Reg, 6>,
    /// Registers written.
    pub reg_writes: SmallVec<Reg, 6>,
    /// Flag groups read (see [`crate::flags`]).
    pub flags_read: u8,
    /// Flag groups written.
    pub flags_written: u8,
    /// Whether the instruction loads from memory.
    pub loads: bool,
    /// Whether the instruction stores to memory.
    pub stores: bool,
    /// The memory operand, if any.
    pub mem: Option<Mem>,
}

/// How an explicit destination operand participates in data flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DstKind {
    /// Destination is written only (`mov`, `lea`, most vector moves).
    Write,
    /// Destination is read and written (`add`, `cmov`, SSE two-operand ops).
    ReadWrite,
    /// There is no register/memory destination (`cmp`, `test`, branches).
    None,
}

impl Inst {
    /// Create an instruction value without encoding metadata. Prefer
    /// [`Block::assemble`](crate::Block::assemble); this is mainly useful in tests.
    #[must_use]
    pub fn synthetic(mnemonic: Mnemonic, operands: Vec<Operand>) -> Inst {
        Inst {
            mnemonic,
            operands,
            len: 0,
            opcode_offset: 0,
            has_lcp: false,
        }
    }

    /// The memory operand, if the instruction has one.
    #[must_use]
    pub fn mem_operand(&self) -> Option<Mem> {
        self.operands.iter().find_map(|o| o.mem())
    }

    /// Whether this instruction is a branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.mnemonic.is_branch()
    }

    /// Byte offset one past the last byte, given the instruction start.
    #[must_use]
    pub fn end_offset(&self, start: usize) -> usize {
        start + self.len as usize
    }

    /// Whether this instruction is a dependency-breaking *zero idiom*
    /// (e.g. `xor eax, eax`, `pxor xmm0, xmm0`): the destination is written
    /// without depending on the source values.
    #[must_use]
    pub fn is_zero_idiom(&self) -> bool {
        use Mnemonic::*;
        let zeroing = matches!(
            self.mnemonic,
            Xor | Sub
                | Pxor
                | Xorps
                | Xorpd
                | Psubb
                | Psubw
                | Psubd
                | Psubq
                | Pcmpgtb
                | Pcmpgtw
                | Pcmpgtd
                | Vpxor
                | Vxorps
        );
        zeroing && self.same_two_regs()
    }

    /// Whether this is a dependency-breaking *ones idiom* (`pcmpeqX x, x`).
    /// It breaks the dependence on its sources but still occupies an
    /// execution port, unlike most zero idioms.
    #[must_use]
    pub fn is_ones_idiom(&self) -> bool {
        use Mnemonic::*;
        matches!(self.mnemonic, Pcmpeqb | Pcmpeqw | Pcmpeqd) && self.same_two_regs()
    }

    fn same_two_regs(&self) -> bool {
        match self.operands.as_slice() {
            [Operand::Reg(a), Operand::Reg(b)] => a == b,
            _ => false,
        }
    }

    /// Whether this is a register-to-register move that is a *candidate* for
    /// move elimination by the renamer (whether it is actually eliminated is
    /// microarchitecture-specific).
    #[must_use]
    pub fn is_reg_reg_move(&self) -> bool {
        use Mnemonic::*;
        let movlike = matches!(
            self.mnemonic,
            Mov | Movaps | Movups | Movdqa | Movdqu | Vmovaps | Vmovups | Vmovdqa | Vmovdqu
        );
        if !movlike {
            return false;
        }
        match self.operands.as_slice() {
            [Operand::Reg(d), Operand::Reg(s)] => {
                // Only full-width moves are eliminable: 32/64-bit GPR moves
                // and whole-register vector moves.
                if self.mnemonic == Mov {
                    matches!(d.width(), Width::W32 | Width::W64) && d.width() == s.width()
                } else {
                    true
                }
            }
            _ => false,
        }
    }

    /// How the first explicit operand participates in data flow.
    fn dst_kind(&self) -> DstKind {
        use Mnemonic::*;
        match self.mnemonic {
            // Pure writes.
            Mov | Movzx | Movsx | Movsxd | Lea | Movaps | Movups | Movdqa | Movdqu | Movd
            | Movq | Pshufd | Sqrtps | Sqrtpd | Sqrtss | Sqrtsd | Cvttss2si | Cvttsd2si
            | Cvtps2pd | Cvtpd2ps | Movmskps | Pmovmskb | Setcc(_) | Bsf | Bsr | Popcnt | Lzcnt
            | Tzcnt | Pop | Vaddps | Vaddpd | Vsubps | Vsubpd | Vmulps | Vmulpd | Vdivps
            | Vdivpd | Vxorps | Vandps | Vorps | Vminps | Vmaxps | Vsqrtps | Vaddss | Vaddsd
            | Vmulss | Vmulsd | Vmovaps | Vmovups | Vmovdqa | Vmovdqu | Vpaddd | Vpaddq
            | Vpsubd | Vpand | Vpor | Vpxor | Vpmulld | Vshufps | Vbroadcastss | Vextractf128 => {
                DstKind::Write
            }
            // imul has both a 2-operand RMW form and a 3-operand write form.
            Imul => {
                if self.operands.len() == 3 {
                    DstKind::Write
                } else {
                    DstKind::ReadWrite
                }
            }
            // No destination.
            Cmp | Test | Bt | Ucomiss | Ucomisd | Jmp | Jcc(_) | Nop | Push | Cdq | Cqo | Mul
            | Div | Idiv => DstKind::None,
            // Everything else reads and writes its destination. This
            // includes `cmovcc` (dest is preserved when the condition is
            // false), `movss/movsd xmm, xmm` and `cvtsi2ss/sd` (they merge
            // into the destination), FMA (dest is an addend), and all
            // two-operand SSE arithmetic.
            _ => {
                // movss/movsd only merge in their register-register form;
                // the load form zeroes the upper bits and the store form is
                // a plain store — both are pure writes.
                if matches!(self.mnemonic, Movss | Movsd)
                    && self.operands.iter().any(|o| o.is_mem())
                {
                    DstKind::Write
                } else {
                    DstKind::ReadWrite
                }
            }
        }
    }

    /// Flag groups (read, written) by this instruction.
    #[must_use]
    pub fn flag_effects(&self) -> (u8, u8) {
        use Mnemonic::*;
        match self.mnemonic {
            Add | Sub | Cmp | Neg => (0, flags::ALL),
            Adc | Sbb => (flags::C, flags::ALL),
            And | Or | Xor | Test => (0, flags::ALL),
            Inc | Dec => (0, flags::O | flags::SPAZ),
            Shl | Shr | Sar => (0, flags::ALL),
            Rol | Ror => (0, flags::C | flags::O),
            Shld | Shrd => (0, flags::ALL),
            Mul | Imul => (0, flags::ALL),
            // Division leaves flags undefined; hardware still renames the
            // groups, so we model them as written.
            Div | Idiv => (0, flags::ALL),
            Bsf | Bsr => (0, flags::SPAZ),
            Bt => (0, flags::C),
            Popcnt | Lzcnt | Tzcnt => (0, flags::ALL),
            Ucomiss | Ucomisd => (0, flags::ALL),
            Jcc(c) => (c.flags_read(), 0),
            Setcc(c) | Cmovcc(c) => (c.flags_read(), 0),
            _ => (0, 0),
        }
    }

    /// Compute the full architectural [`Effects`] of this instruction.
    ///
    /// Zero/ones idioms report no register or flag *reads* (they are
    /// dependency-breaking), but they still report their writes.
    #[must_use]
    pub fn effects(&self) -> Effects {
        use Mnemonic::*;
        let mut e = Effects::default();
        let (fr, fw) = self.flag_effects();
        e.flags_read = fr;
        e.flags_written = fw;

        // Memory operand: loads/stores plus address-register reads.
        if let Some(m) = self.mem_operand() {
            e.mem = Some(m);
            e.reg_reads.extend(m.addr_regs());
            let mem_is_dst = self.operands.first().is_some_and(|o| o.is_mem());
            match self.dst_kind() {
                _ if self.mnemonic == Lea => {} // lea only computes the address
                DstKind::Write if mem_is_dst => e.stores = true,
                DstKind::ReadWrite if mem_is_dst => {
                    e.loads = true;
                    e.stores = true;
                }
                DstKind::None if self.mnemonic == Push => e.stores = true,
                _ => e.loads = true,
            }
        }

        // Explicit register operands.
        for (i, op) in self.operands.iter().enumerate() {
            let Operand::Reg(r) = *op else { continue };
            if i == 0 {
                match self.dst_kind() {
                    DstKind::Write => {
                        e.reg_writes.push(r);
                        // Partial-width writes merge into the old value.
                        if r.write_merges() {
                            e.reg_reads.push(r);
                        }
                    }
                    DstKind::ReadWrite => {
                        e.reg_writes.push(r);
                        e.reg_reads.push(r);
                    }
                    DstKind::None => e.reg_reads.push(r),
                }
            } else {
                e.reg_reads.push(r);
            }
        }

        // Implicit operands.
        match self.mnemonic {
            Mul | Div | Idiv => {
                let w = self.opsize_width();
                e.reg_reads.push(Reg::Gpr { num: 0, width: w });
                if matches!(self.mnemonic, Div | Idiv) {
                    e.reg_reads.push(Reg::Gpr { num: 2, width: w });
                }
                e.reg_writes.push(Reg::Gpr { num: 0, width: w });
                e.reg_writes.push(Reg::Gpr { num: 2, width: w });
            }
            Cdq => {
                e.reg_reads.push(Reg::gpr(0, Width::W32));
                e.reg_writes.push(Reg::gpr(2, Width::W32));
            }
            Cqo => {
                e.reg_reads.push(Reg::gpr(0, Width::W64));
                e.reg_writes.push(Reg::gpr(2, Width::W64));
            }
            Push | Pop => {
                e.reg_reads.push(Reg::gpr(4, Width::W64));
                e.reg_writes.push(Reg::gpr(4, Width::W64));
                if self.mnemonic == Push && !self.operands[0].is_mem() {
                    // handled above for reg operand; mem handled via loads
                } else if self.mnemonic == Pop {
                    e.loads = true;
                    if e.mem.is_none() {
                        e.mem = Some(Mem::base(Reg::gpr(4, Width::W64), Width::W64));
                    }
                }
                if self.mnemonic == Push {
                    e.stores = true;
                    if e.mem.is_none() {
                        e.mem = Some(Mem::base(Reg::gpr(4, Width::W64), Width::W64));
                    }
                }
            }
            Xchg => {
                // both operands are read and written
                if let Some(Operand::Reg(r)) = self.operands.get(1) {
                    e.reg_writes.push(*r);
                }
            }
            _ => {}
        }

        // Dependency-breaking idioms read nothing.
        if self.is_zero_idiom() || self.is_ones_idiom() {
            e.reg_reads.clear();
            e.flags_read = 0;
        }

        e.reg_reads.sort();
        e.reg_reads.dedup();
        e.reg_writes.sort();
        e.reg_writes.dedup();
        e
    }

    /// The operand-size width of the instruction, derived from its first
    /// register operand (64-bit if none is present).
    #[must_use]
    pub fn opsize_width(&self) -> Width {
        self.operands
            .iter()
            .find_map(|o| o.reg())
            .map_or(Width::W64, Reg::width)
    }
}

/// Accounting: an instruction's only heap storage is its operand list
/// (operands are `Copy` leaves).
impl facile_util::HeapSize for Inst {
    fn heap_bytes(&self) -> usize {
        self.operands.capacity() * std::mem::size_of::<Operand>()
    }
}

/// Accounting: the register small-vectors are the only possible heap
/// storage (they spill past 6 entries; `mem` is a `Copy` leaf).
impl facile_util::HeapSize for Effects {
    fn heap_bytes(&self) -> usize {
        self.reg_reads.spill_bytes() + self.reg_writes.spill_bytes()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic)?;
        for (i, op) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " {op}")?;
            } else {
                write!(f, ", {op}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnemonic::Cond;
    use crate::reg::names::*;

    fn inst(m: Mnemonic, ops: Vec<Operand>) -> Inst {
        Inst::synthetic(m, ops)
    }

    #[test]
    fn add_reg_reg_effects() {
        let i = inst(Mnemonic::Add, vec![RAX.into(), RCX.into()]);
        let e = i.effects();
        assert_eq!(e.reg_writes, vec![RAX]);
        assert!(e.reg_reads.contains(&RAX) && e.reg_reads.contains(&RCX));
        assert_eq!(e.flags_written, flags::ALL);
        assert!(!e.loads && !e.stores);
    }

    #[test]
    fn mov_is_write_only() {
        let i = inst(Mnemonic::Mov, vec![RAX.into(), RCX.into()]);
        let e = i.effects();
        assert_eq!(e.reg_reads, vec![RCX]);
        assert_eq!(e.reg_writes, vec![RAX]);
    }

    #[test]
    fn partial_write_merges() {
        let i = inst(Mnemonic::Mov, vec![AL.into(), CL.into()]);
        let e = i.effects();
        // An 8-bit mov destination merges: reads the old al (full rax).
        assert!(e.reg_reads.contains(&AL));
        // A 32-bit mov zero-extends: no merge read.
        let i = inst(Mnemonic::Mov, vec![EAX.into(), ECX.into()]);
        assert!(!i.effects().reg_reads.contains(&EAX));
    }

    #[test]
    fn zero_idiom_breaks_deps() {
        let i = inst(Mnemonic::Xor, vec![EAX.into(), EAX.into()]);
        assert!(i.is_zero_idiom());
        let e = i.effects();
        assert!(e.reg_reads.is_empty());
        assert_eq!(e.reg_writes, vec![EAX]);
        assert_eq!(e.flags_written, flags::ALL);
        // xor with distinct registers is not an idiom
        let i = inst(Mnemonic::Xor, vec![EAX.into(), ECX.into()]);
        assert!(!i.is_zero_idiom());
        assert!(!i.effects().reg_reads.is_empty());
    }

    #[test]
    fn load_effects() {
        let m = Mem::base_index(RSI, RDI, 4, 8, Width::W64);
        let i = inst(Mnemonic::Mov, vec![RAX.into(), m.into()]);
        let e = i.effects();
        assert!(e.loads && !e.stores);
        assert!(e.reg_reads.contains(&RSI) && e.reg_reads.contains(&RDI));
        assert_eq!(e.reg_writes, vec![RAX]);
    }

    #[test]
    fn store_effects() {
        let m = Mem::base(RDI, Width::W32);
        let i = inst(Mnemonic::Mov, vec![m.into(), EAX.into()]);
        let e = i.effects();
        assert!(e.stores && !e.loads);
        assert!(e.reg_reads.contains(&EAX) && e.reg_reads.contains(&RDI));
    }

    #[test]
    fn rmw_memory_destination() {
        let m = Mem::base(RDI, Width::W32);
        let i = inst(Mnemonic::Add, vec![m.into(), EAX.into()]);
        let e = i.effects();
        assert!(e.stores && e.loads);
    }

    #[test]
    fn lea_does_not_load() {
        let m = Mem::base_index(RAX, RCX, 2, 4, Width::W64);
        let i = inst(Mnemonic::Lea, vec![RDX.into(), m.into()]);
        let e = i.effects();
        assert!(!e.loads && !e.stores);
        assert!(e.reg_reads.contains(&RAX) && e.reg_reads.contains(&RCX));
        assert_eq!(e.reg_writes, vec![RDX]);
    }

    #[test]
    fn cmov_reads_dest_and_flags() {
        let i = inst(Mnemonic::Cmovcc(Cond::E), vec![RAX.into(), RCX.into()]);
        let e = i.effects();
        assert!(e.reg_reads.contains(&RAX));
        assert_eq!(e.flags_read, flags::SPAZ);
    }

    #[test]
    fn inc_preserves_carry() {
        let i = inst(Mnemonic::Inc, vec![RAX.into()]);
        let (_, fw) = i.flag_effects();
        assert_eq!(fw & flags::C, 0);
        assert_ne!(fw & flags::SPAZ, 0);
    }

    #[test]
    fn div_implicit_operands() {
        let i = inst(Mnemonic::Div, vec![RCX.into()]);
        let e = i.effects();
        assert!(e.reg_reads.contains(&RAX) && e.reg_reads.contains(&RDX));
        assert!(e.reg_writes.contains(&RAX) && e.reg_writes.contains(&RDX));
    }

    #[test]
    fn push_pop_stack_effects() {
        let i = inst(Mnemonic::Push, vec![RAX.into()]);
        let e = i.effects();
        assert!(e.stores);
        assert!(e.reg_reads.contains(&RSP) && e.reg_writes.contains(&RSP));
        let i = inst(Mnemonic::Pop, vec![RAX.into()]);
        let e = i.effects();
        assert!(e.loads);
        assert!(e.reg_writes.contains(&RAX));
    }

    #[test]
    fn movss_merge_vs_load() {
        use crate::reg::names::xmm;
        let i = inst(Mnemonic::Movss, vec![xmm(0).into(), xmm(1).into()]);
        assert!(i.effects().reg_reads.contains(&Reg::Xmm(0)));
        let m = Mem::base(RDI, Width::W32);
        let i = inst(Mnemonic::Movss, vec![xmm(0).into(), m.into()]);
        assert!(!i.effects().reg_reads.contains(&Reg::Xmm(0)));
    }

    #[test]
    fn mov_elimination_candidates() {
        assert!(inst(Mnemonic::Mov, vec![RAX.into(), RCX.into()]).is_reg_reg_move());
        assert!(inst(Mnemonic::Mov, vec![EAX.into(), ECX.into()]).is_reg_reg_move());
        assert!(!inst(Mnemonic::Mov, vec![AX.into(), CX.into()]).is_reg_reg_move());
        assert!(!inst(
            Mnemonic::Mov,
            vec![RAX.into(), Mem::base(RCX, Width::W64).into()]
        )
        .is_reg_reg_move());
        assert!(inst(
            Mnemonic::Movaps,
            vec![Reg::Xmm(1).into(), Reg::Xmm(2).into()]
        )
        .is_reg_reg_move());
    }

    #[test]
    fn fma_reads_destination() {
        let i = inst(
            Mnemonic::Vfmadd231ps,
            vec![Reg::Ymm(0).into(), Reg::Ymm(1).into(), Reg::Ymm(2).into()],
        );
        let e = i.effects();
        assert!(e.reg_reads.contains(&Reg::Ymm(0)));
        assert!(e.reg_writes.contains(&Reg::Ymm(0)));
    }

    #[test]
    fn vex_3op_write_only_dest() {
        let i = inst(
            Mnemonic::Vaddps,
            vec![Reg::Ymm(0).into(), Reg::Ymm(1).into(), Reg::Ymm(2).into()],
        );
        let e = i.effects();
        assert!(!e.reg_reads.contains(&Reg::Ymm(0)));
        assert!(e.reg_reads.contains(&Reg::Ymm(1)) && e.reg_reads.contains(&Reg::Ymm(2)));
    }

    #[test]
    fn display_format() {
        let m = Mem::base_disp(RSI, 8, Width::W64);
        let i = inst(Mnemonic::Mov, vec![RAX.into(), m.into()]);
        assert_eq!(i.to_string(), "mov rax, qword ptr [rsi+0x8]");
    }
}
