//! Instruction operands: registers, memory references, immediates, and
//! branch displacements.

use crate::reg::{Reg, Width};
use std::fmt;

/// A memory operand of the form `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Base register ([`Reg::Rip`] for RIP-relative addressing), if any.
    pub base: Option<Reg>,
    /// Index register (never `rsp`), if any.
    pub index: Option<Reg>,
    /// Scale factor applied to the index: 1, 2, 4, or 8.
    pub scale: u8,
    /// Signed displacement.
    pub disp: i32,
    /// Access width of the memory reference.
    pub width: Width,
}

impl Mem {
    /// `[base]` with the given access width.
    #[must_use]
    pub fn base(base: Reg, width: Width) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            scale: 1,
            disp: 0,
            width,
        }
    }

    /// `[base + disp]`.
    #[must_use]
    pub fn base_disp(base: Reg, disp: i32, width: Width) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
            width,
        }
    }

    /// `[base + index*scale + disp]`.
    ///
    /// # Panics
    /// Panics if `scale` is not 1, 2, 4, or 8, or if `index` is `rsp`.
    #[must_use]
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i32, width: Width) -> Mem {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "invalid scale {scale}");
        assert!(
            !(matches!(index, Reg::Gpr { num: 4, .. })),
            "rsp cannot be an index register"
        );
        Mem {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
            width,
        }
    }

    /// RIP-relative `[rip + disp]`.
    #[must_use]
    pub fn rip_rel(disp: i32, width: Width) -> Mem {
        Mem {
            base: Some(Reg::Rip),
            index: None,
            scale: 1,
            disp,
            width,
        }
    }

    /// Whether this operand uses an index register. Indexed addressing is
    /// what triggers µop unlamination on several microarchitectures.
    #[must_use]
    pub fn is_indexed(self) -> bool {
        self.index.is_some()
    }

    /// Whether this is a RIP-relative reference.
    #[must_use]
    pub fn is_rip_relative(self) -> bool {
        self.base == Some(Reg::Rip)
    }

    /// Registers read to compute the effective address.
    pub fn addr_regs(self) -> impl Iterator<Item = Reg> {
        self.base
            .into_iter()
            .filter(|r| *r != Reg::Rip)
            .chain(self.index)
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unit = match self.width {
            Width::W8 => "byte",
            Width::W16 => "word",
            Width::W32 => "dword",
            Width::W64 => "qword",
            Width::W128 => "xmmword",
            Width::W256 => "ymmword",
        };
        write!(f, "{unit} ptr [")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some(i) = self.index {
            if !first {
                f.write_str("+")?;
            }
            write!(f, "{i}*{}", self.scale)?;
            first = false;
        }
        if self.disp != 0 || first {
            if first {
                write!(f, "{:#x}", self.disp)?;
            } else if self.disp < 0 {
                write!(f, "-{:#x}", -(i64::from(self.disp)))?;
            } else {
                write!(f, "+{:#x}", self.disp)?;
            }
        }
        f.write_str("]")
    }
}

/// A single instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// A memory operand.
    Mem(Mem),
    /// An immediate value (sign-extended to 64 bits).
    Imm(i64),
    /// A branch displacement, relative to the end of the instruction.
    Rel(i32),
}

impl Operand {
    /// The register if this is a register operand.
    #[must_use]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// The memory operand if this is one.
    #[must_use]
    pub fn mem(self) -> Option<Mem> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// The immediate value if this is an immediate operand.
    #[must_use]
    pub fn imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this operand references memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, Operand::Mem(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<Mem> for Operand {
    fn from(m: Mem) -> Operand {
        Operand::Mem(m)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Imm(v) => write!(f, "{v:#x}"),
            Operand::Rel(d) => write!(f, ".{d:+}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn mem_display() {
        let m = Mem::base_index(RAX, RCX, 4, 16, Width::W32);
        assert_eq!(m.to_string(), "dword ptr [rax+rcx*4+0x10]");
        let m = Mem::base_disp(RSP, -8, Width::W64);
        assert_eq!(m.to_string(), "qword ptr [rsp-0x8]");
        let m = Mem::rip_rel(0x100, Width::W64);
        assert_eq!(m.to_string(), "qword ptr [rip+0x100]");
    }

    #[test]
    fn indexed_detection() {
        assert!(Mem::base_index(RAX, RCX, 1, 0, Width::W64).is_indexed());
        assert!(!Mem::base(RAX, Width::W64).is_indexed());
    }

    #[test]
    fn addr_regs_excludes_rip() {
        let m = Mem::rip_rel(4, Width::W32);
        assert_eq!(m.addr_regs().count(), 0);
        let m = Mem::base_index(RBX, RDI, 8, 0, Width::W32);
        let regs: Vec<_> = m.addr_regs().collect();
        assert_eq!(regs, vec![RBX, RDI]);
    }

    #[test]
    #[should_panic(expected = "invalid scale")]
    fn scale_validated() {
        let _ = Mem::base_index(RAX, RCX, 3, 0, Width::W64);
    }
}
