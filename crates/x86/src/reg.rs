//! Architectural registers of the x86-64 ISA subset modeled by this crate.

use std::fmt;

/// Operand / access width in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8-bit.
    W8,
    /// 16-bit.
    W16,
    /// 32-bit.
    W32,
    /// 64-bit.
    W64,
    /// 128-bit (XMM).
    W128,
    /// 256-bit (YMM).
    W256,
}

impl Width {
    /// Width in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
            Width::W128 => 128,
            Width::W256 => 256,
        }
    }

    /// Width in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        self.bits() / 8
    }

    /// Whether this is a general-purpose-register width (8..=64 bits).
    #[must_use]
    pub fn is_gpr(self) -> bool {
        matches!(self, Width::W8 | Width::W16 | Width::W32 | Width::W64)
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// An architectural register.
///
/// General-purpose registers are identified by their hardware encoding number
/// (0 = `rax` … 15 = `r15`) plus an access [`Width`]. The legacy high-byte
/// registers (`ah`, `ch`, `dh`, `bh`) get their own variant because they
/// alias bits 8..16 of GPRs 0..=3 while *encoding* as numbers 4..=7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// General-purpose register `num` (0..=15) accessed at `width`.
    Gpr {
        /// Hardware register number, 0..=15.
        num: u8,
        /// Access width (8, 16, 32, or 64 bits).
        width: Width,
    },
    /// Legacy high-byte register: 0 = `ah`, 1 = `ch`, 2 = `dh`, 3 = `bh`.
    HighByte(u8),
    /// 128-bit vector register `xmm0`..=`xmm15`.
    Xmm(u8),
    /// 256-bit vector register `ymm0`..=`ymm15`.
    Ymm(u8),
    /// The instruction pointer (only valid as a memory base).
    Rip,
}

/// `rip` — a placeholder so `Reg` can pad the unused tail of inline
/// small-vector buffers; never observed through the live elements.
impl Default for Reg {
    fn default() -> Reg {
        Reg::Rip
    }
}

const GPR64: [&str; 16] = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11", "r12", "r13",
    "r14", "r15",
];
const GPR32: [&str; 16] = [
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi", "r8d", "r9d", "r10d", "r11d", "r12d",
    "r13d", "r14d", "r15d",
];
const GPR16: [&str; 16] = [
    "ax", "cx", "dx", "bx", "sp", "bp", "si", "di", "r8w", "r9w", "r10w", "r11w", "r12w", "r13w",
    "r14w", "r15w",
];
const GPR8: [&str; 16] = [
    "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil", "r8b", "r9b", "r10b", "r11b", "r12b",
    "r13b", "r14b", "r15b",
];
const HIGH8: [&str; 4] = ["ah", "ch", "dh", "bh"];

impl Reg {
    /// The canonical "full" register this register aliases, used for
    /// dependence tracking: every GPR view maps to its 64-bit register, and
    /// `ymmN`/`xmmN` both map to `ymmN`.
    #[must_use]
    pub fn full(self) -> Reg {
        match self {
            Reg::Gpr { num, .. } => Reg::Gpr {
                num,
                width: Width::W64,
            },
            Reg::HighByte(i) => Reg::Gpr {
                num: i,
                width: Width::W64,
            },
            Reg::Xmm(n) | Reg::Ymm(n) => Reg::Ymm(n),
            Reg::Rip => Reg::Rip,
        }
    }

    /// Hardware encoding number (0..=15).
    #[must_use]
    pub fn num(self) -> u8 {
        match self {
            Reg::Gpr { num, .. } => num,
            Reg::HighByte(i) => i + 4,
            Reg::Xmm(n) | Reg::Ymm(n) => n,
            Reg::Rip => 0,
        }
    }

    /// Access width of this register view.
    #[must_use]
    pub fn width(self) -> Width {
        match self {
            Reg::Gpr { width, .. } => width,
            Reg::HighByte(_) => Width::W8,
            Reg::Xmm(_) => Width::W128,
            Reg::Ymm(_) => Width::W256,
            Reg::Rip => Width::W64,
        }
    }

    /// Whether this is a general-purpose register (any width, incl. high-byte).
    #[must_use]
    pub fn is_gpr(self) -> bool {
        matches!(self, Reg::Gpr { .. } | Reg::HighByte(_))
    }

    /// Whether this is a vector (XMM/YMM) register.
    #[must_use]
    pub fn is_vec(self) -> bool {
        matches!(self, Reg::Xmm(_) | Reg::Ymm(_))
    }

    /// Whether writing this register view only *merges* into the full
    /// register (8/16-bit GPR writes), creating a dependence on the previous
    /// value, as opposed to replacing it (32/64-bit GPR writes zero-extend).
    ///
    /// XMM writes of legacy SSE instructions also merge into the YMM upper
    /// half, but we follow the common modeling assumption (and uops.info)
    /// that this does not create a relevant dependence in 64-bit SSE code.
    #[must_use]
    pub fn write_merges(self) -> bool {
        match self {
            Reg::Gpr { width, .. } => matches!(width, Width::W8 | Width::W16),
            Reg::HighByte(_) => true,
            _ => false,
        }
    }

    /// Requires a REX prefix to encode (r8..r15, spl/bpl/sil/dil).
    #[must_use]
    pub fn needs_rex(self) -> bool {
        match self {
            Reg::Gpr { num, width } => num >= 8 || (width == Width::W8 && (4..=7).contains(&num)),
            Reg::HighByte(_) => false,
            Reg::Xmm(n) | Reg::Ymm(n) => n >= 8,
            Reg::Rip => false,
        }
    }

    /// Cannot be encoded in the presence of a REX prefix (ah/ch/dh/bh).
    #[must_use]
    pub fn forbids_rex(self) -> bool {
        matches!(self, Reg::HighByte(_))
    }

    /// Convenience constructor for a GPR of the given number and width.
    ///
    /// # Panics
    /// Panics if `num > 15`.
    #[must_use]
    pub fn gpr(num: u8, width: Width) -> Reg {
        assert!(num <= 15, "GPR number out of range: {num}");
        Reg::Gpr { num, width }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::Gpr { num, width } => {
                let table = match width {
                    Width::W8 => &GPR8,
                    Width::W16 => &GPR16,
                    Width::W32 => &GPR32,
                    _ => &GPR64,
                };
                f.write_str(table[num as usize])
            }
            Reg::HighByte(i) => f.write_str(HIGH8[i as usize]),
            Reg::Xmm(n) => write!(f, "xmm{n}"),
            Reg::Ymm(n) => write!(f, "ymm{n}"),
            Reg::Rip => f.write_str("rip"),
        }
    }
}

/// Named constants for commonly-used registers.
pub mod names {
    use super::{Reg, Width};

    macro_rules! gpr_consts {
        ($($name:ident = ($num:expr, $w:ident);)*) => {
            $(
                #[doc = concat!("The `", stringify!($name), "` register.")]
                pub const $name: Reg = Reg::Gpr { num: $num, width: Width::$w };
            )*
        };
    }

    gpr_consts! {
        RAX = (0, W64); RCX = (1, W64); RDX = (2, W64); RBX = (3, W64);
        RSP = (4, W64); RBP = (5, W64); RSI = (6, W64); RDI = (7, W64);
        R8 = (8, W64); R9 = (9, W64); R10 = (10, W64); R11 = (11, W64);
        R12 = (12, W64); R13 = (13, W64); R14 = (14, W64); R15 = (15, W64);
        EAX = (0, W32); ECX = (1, W32); EDX = (2, W32); EBX = (3, W32);
        ESP = (4, W32); EBP = (5, W32); ESI = (6, W32); EDI = (7, W32);
        R8D = (8, W32); R9D = (9, W32); R10D = (10, W32); R11D = (11, W32);
        AX = (0, W16); CX = (1, W16); DX = (2, W16); BX = (3, W16);
        AL = (0, W8); CL = (1, W8); DL = (2, W8); BL = (3, W8);
    }

    /// The `xmm0`..`xmm15` registers.
    #[must_use]
    pub const fn xmm(n: u8) -> Reg {
        Reg::Xmm(n)
    }

    /// The `ymm0`..`ymm15` registers.
    #[must_use]
    pub const fn ymm(n: u8) -> Reg {
        Reg::Ymm(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_register_aliasing() {
        assert_eq!(names::EAX.full(), names::RAX);
        assert_eq!(names::AL.full(), names::RAX);
        assert_eq!(Reg::HighByte(0).full(), names::RAX);
        assert_eq!(Reg::Xmm(3).full(), Reg::Ymm(3));
        assert_eq!(Reg::Ymm(3).full(), Reg::Ymm(3));
    }

    #[test]
    fn high_byte_encoding_numbers() {
        assert_eq!(Reg::HighByte(0).num(), 4); // ah encodes as 4
        assert_eq!(Reg::HighByte(3).num(), 7); // bh encodes as 7
    }

    #[test]
    fn merge_semantics() {
        assert!(names::AL.write_merges());
        assert!(names::AX.write_merges());
        assert!(!names::EAX.write_merges());
        assert!(!names::RAX.write_merges());
        assert!(Reg::HighByte(1).write_merges());
        assert!(!Reg::Xmm(0).write_merges());
    }

    #[test]
    fn rex_requirements() {
        assert!(Reg::gpr(8, Width::W64).needs_rex());
        assert!(Reg::gpr(6, Width::W8).needs_rex()); // sil
        assert!(!Reg::gpr(6, Width::W16).needs_rex()); // si
        assert!(Reg::HighByte(2).forbids_rex()); // dh
    }

    #[test]
    fn display_names() {
        assert_eq!(names::RAX.to_string(), "rax");
        assert_eq!(Reg::gpr(12, Width::W32).to_string(), "r12d");
        assert_eq!(Reg::gpr(4, Width::W8).to_string(), "spl");
        assert_eq!(Reg::HighByte(0).to_string(), "ah");
        assert_eq!(Reg::Xmm(9).to_string(), "xmm9");
    }

    #[test]
    #[should_panic(expected = "GPR number out of range")]
    fn gpr_ctor_validates() {
        let _ = Reg::gpr(16, Width::W64);
    }
}
