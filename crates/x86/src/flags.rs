//! EFLAGS dependence groups.
//!
//! For dependence analysis we follow the grouping used by uiCA and
//! uops.info: the carry flag (`C`), the overflow flag (`O`), and the
//! remaining status flags `SF/PF/AF/ZF` (`SPAZ`) are renamed as three
//! independent units on modern Intel CPUs. Instructions like `inc` write
//! `SPAZ` and `O` but leave `C` intact, which is why a finer grouping than a
//! single "flags register" is required to avoid false dependencies.

/// The carry flag group.
pub const C: u8 = 1 << 0;
/// The overflow flag group.
pub const O: u8 = 1 << 1;
/// The SF/PF/AF/ZF flag group.
pub const SPAZ: u8 = 1 << 2;
/// All status flag groups.
pub const ALL: u8 = C | O | SPAZ;

/// Iterate over the individual groups contained in `mask`.
pub fn groups(mask: u8) -> impl Iterator<Item = u8> {
    [C, O, SPAZ].into_iter().filter(move |g| mask & g != 0)
}

/// Human-readable name of a single flag group.
///
/// # Panics
/// Panics if `group` is not exactly one of [`C`], [`O`], [`SPAZ`].
#[must_use]
pub fn group_name(group: u8) -> &'static str {
    match group {
        x if x == C => "CF",
        x if x == O => "OF",
        x if x == SPAZ => "SPAZF",
        _ => panic!("not a single flag group: {group:#b}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_iteration() {
        assert_eq!(groups(ALL).count(), 3);
        assert_eq!(groups(C | SPAZ).collect::<Vec<_>>(), vec![C, SPAZ]);
        assert_eq!(groups(0).count(), 0);
    }

    #[test]
    fn names() {
        assert_eq!(group_name(C), "CF");
        assert_eq!(group_name(O), "OF");
        assert_eq!(group_name(SPAZ), "SPAZF");
    }
}
