//! The disassembler: turns machine code back into [`Inst`] values.
//!
//! The decoder is strict: byte sequences outside the supported subset
//! produce a [`DecodeError`] (never a panic), which the property tests
//! exercise with arbitrary byte streams.

use crate::error::DecodeError;
use crate::inst::Inst;
use crate::operand::{Mem, Operand};
use crate::reg::{Reg, Width};
use crate::table::{tables, Entry, ImmK, Map, Osz, Pat, Pfx, NO_EXT};

/// A byte cursor with bounds-checked reads.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    start: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], start: usize) -> Cursor<'a> {
        Cursor {
            bytes,
            pos: start,
            start,
        }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or(DecodeError::Truncated { offset: self.start })?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn i8(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from(self.u8()? as i8))
    }

    fn i16(&mut self) -> Result<i64, DecodeError> {
        let lo = self.u8()?;
        let hi = self.u8()?;
        Ok(i64::from(i16::from_le_bytes([lo, hi])))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let mut b = [0u8; 4];
        for x in &mut b {
            *x = self.u8()?;
        }
        Ok(i32::from_le_bytes(b))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let mut b = [0u8; 8];
        for x in &mut b {
            *x = self.u8()?;
        }
        Ok(i64::from_le_bytes(b))
    }

    fn len_from_start(&self) -> usize {
        self.pos - self.start
    }
}

#[derive(Default, Clone, Copy)]
struct Prefixes {
    has66: bool,
    rep: Option<u8>, // 0xF2 or 0xF3
    rex: Option<u8>,
    n_legacy: usize,
}

impl Prefixes {
    fn rex_w(self) -> bool {
        self.rex.is_some_and(|r| r & 0x08 != 0)
    }

    fn rex_r(self) -> u8 {
        u8::from(self.rex.is_some_and(|r| r & 0x04 != 0))
    }

    fn rex_x(self) -> u8 {
        u8::from(self.rex.is_some_and(|r| r & 0x02 != 0))
    }

    fn rex_b(self) -> u8 {
        u8::from(self.rex.is_some_and(|r| r & 0x01 != 0))
    }
}

#[derive(Clone, Copy)]
struct VexInfo {
    pp: u8,
    l: u8,
    w: u8,
    vvvv: u8,
    r: u8,
    x: u8,
    b: u8,
    map: Map,
}

/// Decode a single instruction starting at `offset`.
///
/// Returns the instruction and its length in bytes.
///
/// # Errors
/// See [`DecodeError`] for the failure modes; no byte sequence panics.
pub fn decode_one(bytes: &[u8], offset: usize) -> Result<(Inst, usize), DecodeError> {
    let mut c = Cursor::new(bytes, offset);
    let mut pfx = Prefixes::default();

    // Legacy prefixes (only the ones our subset uses).
    loop {
        match c.peek() {
            Some(0x66) => {
                pfx.has66 = true;
                pfx.n_legacy += 1;
                c.pos += 1;
            }
            Some(b @ (0xF2 | 0xF3)) => {
                pfx.rep = Some(b);
                pfx.n_legacy += 1;
                c.pos += 1;
            }
            _ => break,
        }
        if pfx.n_legacy > 14 {
            return Err(DecodeError::TooLong { offset });
        }
    }

    // REX.
    if let Some(b) = c.peek() {
        if (0x40..=0x4F).contains(&b) {
            pfx.rex = Some(b);
            c.pos += 1;
        }
    }

    // VEX or opcode map.
    let first = c.u8()?;
    let (vex, map, opcode) = match first {
        0xC5 | 0xC4 if pfx.rex.is_none() && !pfx.has66 && pfx.rep.is_none() => {
            let v = if first == 0xC5 {
                let b1 = c.u8()?;
                VexInfo {
                    pp: b1 & 3,
                    l: (b1 >> 2) & 1,
                    w: 0,
                    vvvv: (!(b1 >> 3)) & 0xF,
                    r: u8::from(b1 & 0x80 == 0),
                    x: 0,
                    b: 0,
                    map: Map::M0F,
                }
            } else {
                let b1 = c.u8()?;
                let b2 = c.u8()?;
                let map = match b1 & 0x1F {
                    1 => Map::M0F,
                    2 => Map::M38,
                    3 => Map::M3A,
                    _ => {
                        return Err(DecodeError::Invalid {
                            offset,
                            what: "bad VEX map",
                        });
                    }
                };
                VexInfo {
                    pp: b2 & 3,
                    l: (b2 >> 2) & 1,
                    w: (b2 >> 7) & 1,
                    vvvv: (!(b2 >> 3)) & 0xF,
                    r: u8::from(b1 & 0x80 == 0),
                    x: u8::from(b1 & 0x40 == 0),
                    b: u8::from(b1 & 0x20 == 0),
                    map,
                }
            };
            let op = c.u8()?;
            (Some(v), v.map, op)
        }
        0x0F => {
            let b = c.u8()?;
            match b {
                0x38 => (None, Map::M38, c.u8()?),
                0x3A => (None, Map::M3A, c.u8()?),
                _ => (None, Map::M0F, b),
            }
        }
        b => (None, Map::M1, b),
    };

    let t = tables();
    let Some(candidates) = t.by_opcode.get(&(map, opcode)) else {
        return Err(DecodeError::UnknownOpcode {
            offset,
            opcode: vec![opcode],
        });
    };

    // Filter candidates by prefix/VEX/extension-digit constraints.
    let modrm_peek = c.peek();
    let mut matched: Vec<&Entry> = Vec::new();
    for &i in candidates {
        let e = &t.entries[i];
        if e.vex.is_some() != vex.is_some() {
            continue;
        }
        if let (Some(ev), Some(v)) = (e.vex, vex) {
            if ev.pp != v.pp || (ev.l != 2 && ev.l != v.l) || (ev.w != 2 && ev.w != v.w) {
                continue;
            }
        } else {
            let observed = match (pfx.rep, pfx.has66) {
                (Some(0xF3), _) => Pfx::PF3,
                (Some(_), _) => Pfx::PF2,
                (None, true) => Pfx::P66,
                (None, false) => Pfx::N,
            };
            let ok = e.pfx == observed
                || (observed == Pfx::P66
                    && e.pfx == Pfx::N
                    && matches!(e.osz, Osz::B | Osz::V | Osz::Q | Osz::D64));
            if !ok {
                continue;
            }
        }
        if e.ext != NO_EXT {
            let Some(mb) = modrm_peek else { continue };
            if (mb >> 3) & 7 != e.ext {
                continue;
            }
        }
        if !e.is_opreg() && e.op != opcode {
            continue;
        }
        matched.push(e);
    }

    // REX.W disambiguation (cdq/cqo, movd/movq): prefer Q entries iff REX.W.
    let rexw = pfx.rex_w() || vex.is_some_and(|v| v.w == 1);
    if rexw && matched.iter().any(|e| e.osz == Osz::Q) {
        matched.retain(|e| e.osz == Osz::Q);
    } else if !rexw {
        matched.retain(|e| e.osz != Osz::Q);
    }

    let Some(entry) = matched.first().copied() else {
        return Err(DecodeError::UnknownOpcode {
            offset,
            opcode: vec![opcode],
        });
    };

    decode_with_entry(entry, &mut c, pfx, vex, opcode, offset)
}

/// Effective GPR operand size for a matched entry.
fn opsize(entry: &Entry, pfx: Prefixes) -> Width {
    match entry.osz {
        Osz::B => Width::W8,
        Osz::Q | Osz::D64 => Width::W64,
        Osz::X => Width::W32,
        Osz::V => {
            if pfx.rex_w() {
                Width::W64
            } else if pfx.has66 {
                Width::W16
            } else {
                Width::W32
            }
        }
    }
}

fn make_gpr(num: u8, w: Width, rex_present: bool) -> Reg {
    if w == Width::W8 && !rex_present && (4..8).contains(&num) {
        Reg::HighByte(num - 4)
    } else {
        Reg::Gpr { num, width: w }
    }
}

fn make_vec(num: u8, l: u8) -> Reg {
    if l == 1 {
        Reg::Ymm(num)
    } else {
        Reg::Xmm(num)
    }
}

/// Decoded ModRM r/m slot.
enum RmVal {
    RegNum(u8),
    Mem(Mem),
}

/// Parse ModRM + SIB + displacement. `mem_width` is applied to any memory
/// operand produced.
fn parse_modrm(
    c: &mut Cursor<'_>,
    pfx: Prefixes,
    vex: Option<VexInfo>,
    mem_width: Width,
    offset: usize,
) -> Result<(u8, RmVal), DecodeError> {
    let modrm = c.u8()?;
    let md = modrm >> 6;
    let (rx, xx, bx) = match vex {
        Some(v) => (v.r, v.x, v.b),
        None => (pfx.rex_r(), pfx.rex_x(), pfx.rex_b()),
    };
    let reg = ((modrm >> 3) & 7) | (rx << 3);
    let rm_low = modrm & 7;
    if md == 3 {
        return Ok((reg, RmVal::RegNum(rm_low | (bx << 3))));
    }
    let base: Option<Reg>;
    let mut index: Option<Reg> = None;
    let mut scale = 1u8;
    let disp: i32;
    if rm_low == 4 {
        // SIB
        let sib = c.u8()?;
        let sc = sib >> 6;
        scale = 1 << sc;
        let idx = ((sib >> 3) & 7) | (xx << 3);
        let bs = (sib & 7) | (bx << 3);
        if idx != 4 {
            index = Some(Reg::Gpr {
                num: idx,
                width: Width::W64,
            });
        }
        if (sib & 7) == 5 && md == 0 {
            base = None; // disp32, no base
            disp = c.i32()?;
        } else {
            base = Some(Reg::Gpr {
                num: bs,
                width: Width::W64,
            });
            disp = match md {
                0 => 0,
                1 => c.i8()?,
                _ => c.i32()?,
            };
        }
    } else if md == 0 && rm_low == 5 {
        base = Some(Reg::Rip);
        disp = c.i32()?;
    } else {
        base = Some(Reg::Gpr {
            num: rm_low | (bx << 3),
            width: Width::W64,
        });
        disp = match md {
            0 => 0,
            1 => c.i8()?,
            _ => c.i32()?,
        };
    }
    if index.is_some_and(|r| matches!(r, Reg::Gpr { num: 4, .. })) {
        return Err(DecodeError::Invalid {
            offset,
            what: "rsp used as index",
        });
    }
    Ok((
        reg,
        RmVal::Mem(Mem {
            base,
            index,
            scale,
            disp,
            width: mem_width,
        }),
    ))
}

fn read_imm(c: &mut Cursor<'_>, kind: ImmK, w: Width) -> Result<i64, DecodeError> {
    match kind {
        ImmK::NoImm => Ok(0),
        ImmK::Ib => Ok(i64::from(c.u8()?)),
        ImmK::IbS => Ok(i64::from(c.i8()?)),
        ImmK::Iz => match w {
            Width::W16 => c.i16(),
            _ => Ok(i64::from(c.i32()?)),
        },
        ImmK::Iv => match w {
            Width::W16 => c.i16(),
            Width::W64 => c.i64(),
            _ => Ok(i64::from(c.i32()?)),
        },
    }
}

#[allow(clippy::too_many_lines)]
fn decode_with_entry(
    entry: &Entry,
    c: &mut Cursor<'_>,
    pfx: Prefixes,
    vex: Option<VexInfo>,
    opcode: u8,
    offset: usize,
) -> Result<(Inst, usize), DecodeError> {
    let w = opsize(entry, pfx);
    let l = vex.map_or(0, |v| v.l);
    let lig = entry.vex.is_some_and(|v| v.l == 2);
    let eff_l = if lig { 0 } else { l };
    let vecw = if eff_l == 1 { Width::W256 } else { Width::W128 };
    let rex_present = pfx.rex.is_some();

    // Width of a memory r/m operand for this entry.
    let mem_w = entry.rmw.unwrap_or(match entry.osz {
        Osz::X => vecw,
        _ => w,
    });
    // Width of a *register* r/m operand when the entry overrides it
    // (movzx r32, r/m8 and friends).
    let rm_reg_w = entry.rmw.filter(|x| x.is_gpr()).unwrap_or(w);

    let gpr = |num: u8| make_gpr(num, w, rex_present);
    let gpr_rm = |num: u8| make_gpr(num, rm_reg_w, rex_present);
    let vreg = |num: u8| make_vec(num, eff_l);

    let mut ops: Vec<Operand> = Vec::with_capacity(3);

    let needs_modrm = entry.has_modrm();
    let (reg_num, rm) = if needs_modrm {
        let (r, rm) = parse_modrm(c, pfx, vex, mem_w, offset)?;
        (r, Some(rm))
    } else {
        (0, None)
    };

    let rm_gpr_op = |rm: &RmVal| -> Operand {
        match rm {
            RmVal::RegNum(n) => Operand::Reg(gpr_rm(*n)),
            RmVal::Mem(m) => Operand::Mem(*m),
        }
    };
    let rm_vec_op = |rm: &RmVal, vl: u8| -> Operand {
        match rm {
            RmVal::RegNum(n) => Operand::Reg(make_vec(*n, vl)),
            RmVal::Mem(m) => Operand::Mem(*m),
        }
    };

    match entry.pat {
        Pat::NoOps => {}
        Pat::RmR => {
            ops.push(rm_gpr_op(rm.as_ref().unwrap()));
            ops.push(Operand::Reg(gpr(reg_num)));
        }
        Pat::RRm => {
            ops.push(Operand::Reg(gpr(reg_num)));
            ops.push(rm_gpr_op(rm.as_ref().unwrap()));
        }
        Pat::RmRI => {
            ops.push(rm_gpr_op(rm.as_ref().unwrap()));
            ops.push(Operand::Reg(gpr(reg_num)));
            ops.push(Operand::Imm(read_imm(c, entry.imm, w)?));
        }
        Pat::RmI => {
            ops.push(rm_gpr_op(rm.as_ref().unwrap()));
            ops.push(Operand::Imm(read_imm(c, entry.imm, w)?));
        }
        Pat::Rm => {
            ops.push(rm_gpr_op(rm.as_ref().unwrap()));
        }
        Pat::RmCl => {
            ops.push(rm_gpr_op(rm.as_ref().unwrap()));
            ops.push(Operand::Reg(Reg::Gpr {
                num: 1,
                width: Width::W8,
            }));
        }
        Pat::AccI => {
            ops.push(Operand::Reg(gpr(0)));
            ops.push(Operand::Imm(read_imm(c, entry.imm, w)?));
        }
        Pat::OpReg | Pat::OpRegI => {
            let num = (opcode - entry.op) | (pfx.rex_b() << 3);
            ops.push(Operand::Reg(gpr(num)));
            if entry.pat == Pat::OpRegI {
                ops.push(Operand::Imm(read_imm(c, entry.imm, w)?));
            }
        }
        Pat::RRmI => {
            ops.push(Operand::Reg(gpr(reg_num)));
            ops.push(rm_gpr_op(rm.as_ref().unwrap()));
            ops.push(Operand::Imm(read_imm(c, entry.imm, w)?));
        }
        Pat::RM => {
            let RmVal::Mem(m) = rm.as_ref().unwrap() else {
                return Err(DecodeError::Invalid {
                    offset,
                    what: "lea requires memory operand",
                });
            };
            ops.push(Operand::Reg(gpr(reg_num)));
            ops.push(Operand::Mem(*m));
        }
        Pat::Rel => {
            let d = match entry.imm {
                ImmK::Ib => c.i8()?,
                _ => c.i32()?,
            };
            ops.push(Operand::Rel(d));
        }
        Pat::XXm | Pat::XXmI => {
            ops.push(Operand::Reg(Reg::Xmm(reg_num)));
            ops.push(rm_vec_op(rm.as_ref().unwrap(), 0));
            if entry.pat == Pat::XXmI {
                ops.push(Operand::Imm(read_imm(c, entry.imm, w)?));
            }
        }
        Pat::XmX => {
            ops.push(rm_vec_op(rm.as_ref().unwrap(), 0));
            ops.push(Operand::Reg(Reg::Xmm(reg_num)));
        }
        Pat::XRm => {
            ops.push(Operand::Reg(Reg::Xmm(reg_num)));
            ops.push(rm_gpr_op(rm.as_ref().unwrap()));
        }
        Pat::RmX => {
            ops.push(rm_gpr_op(rm.as_ref().unwrap()));
            ops.push(Operand::Reg(Reg::Xmm(reg_num)));
        }
        Pat::RXm => {
            ops.push(Operand::Reg(gpr(reg_num)));
            ops.push(rm_vec_op(rm.as_ref().unwrap(), 0));
        }
        Pat::XI => {
            let RmVal::RegNum(n) = rm.as_ref().unwrap() else {
                return Err(DecodeError::Invalid {
                    offset,
                    what: "vector shift by immediate requires a register",
                });
            };
            ops.push(Operand::Reg(Reg::Xmm(*n)));
            ops.push(Operand::Imm(read_imm(c, entry.imm, w)?));
        }
        Pat::VXXm | Pat::VXXmI => {
            let v = vex.expect("VEX pattern without VEX prefix");
            ops.push(Operand::Reg(vreg(reg_num)));
            ops.push(Operand::Reg(vreg(v.vvvv)));
            ops.push(rm_vec_op(rm.as_ref().unwrap(), eff_l));
            if entry.pat == Pat::VXXmI {
                ops.push(Operand::Imm(read_imm(c, entry.imm, w)?));
            }
        }
        Pat::VXm => {
            ops.push(Operand::Reg(vreg(reg_num)));
            // vbroadcastss reads an xmm or m32 source regardless of L
            let src_l = if entry.map == Map::M38 && entry.op == 0x18 {
                0
            } else {
                eff_l
            };
            ops.push(rm_vec_op(rm.as_ref().unwrap(), src_l));
        }
        Pat::VXmX => {
            ops.push(rm_vec_op(rm.as_ref().unwrap(), eff_l));
            ops.push(Operand::Reg(vreg(reg_num)));
        }
        Pat::VYXmI => {
            let v = vex.expect("VEX pattern without VEX prefix");
            ops.push(Operand::Reg(Reg::Ymm(reg_num)));
            ops.push(Operand::Reg(Reg::Ymm(v.vvvv)));
            ops.push(rm_vec_op(rm.as_ref().unwrap(), 0));
            ops.push(Operand::Imm(read_imm(c, entry.imm, w)?));
        }
        Pat::VXmYI => {
            ops.push(rm_vec_op(rm.as_ref().unwrap(), 0));
            ops.push(Operand::Reg(Reg::Ymm(reg_num)));
            ops.push(Operand::Imm(read_imm(c, entry.imm, w)?));
        }
    }

    let len = c.len_from_start();
    if len > 15 {
        return Err(DecodeError::TooLong { offset });
    }
    let has_lcp = pfx.has66
        && matches!(entry.imm, ImmK::Iz | ImmK::Iv)
        && w == Width::W16
        && !matches!(entry.pat, Pat::Rel);
    let opcode_offset = if vex.is_some() {
        pfx.n_legacy as u8
    } else {
        (pfx.n_legacy + usize::from(pfx.rex.is_some())) as u8
    };
    let inst = Inst {
        mnemonic: entry.mnem,
        operands: ops,
        len: len as u8,
        opcode_offset,
        has_lcp,
    };
    Ok((inst, len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnemonic::{Cond, Mnemonic};
    use crate::reg::names::*;

    fn dec(bytes: &[u8]) -> Inst {
        let (inst, len) = decode_one(bytes, 0).unwrap();
        assert_eq!(len, bytes.len(), "decoded length mismatch");
        inst
    }

    #[test]
    fn basic_alu() {
        let i = dec(&[0x01, 0xC8]);
        assert_eq!(i.mnemonic, Mnemonic::Add);
        assert_eq!(i.operands, vec![EAX.into(), ECX.into()]);
        let i = dec(&[0x48, 0x01, 0xC8]);
        assert_eq!(i.operands, vec![RAX.into(), RCX.into()]);
    }

    #[test]
    fn lcp_flagged() {
        let i = dec(&[0x66, 0x81, 0xC0, 0x34, 0x12]);
        assert_eq!(i.mnemonic, Mnemonic::Add);
        assert!(i.has_lcp);
        assert_eq!(i.opcode_offset, 1);
        assert_eq!(i.operands[1], Operand::Imm(0x1234));
        // 16-bit reg-reg op: 66 prefix but no immediate, no LCP
        let i = dec(&[0x66, 0x01, 0xC8]);
        assert!(!i.has_lcp);
    }

    #[test]
    fn rex_w_disambiguation() {
        assert_eq!(dec(&[0x99]).mnemonic, Mnemonic::Cdq);
        assert_eq!(dec(&[0x48, 0x99]).mnemonic, Mnemonic::Cqo);
    }

    #[test]
    fn sib_and_disp() {
        let i = dec(&[0x8B, 0x54, 0x88, 0x10]);
        assert_eq!(i.mnemonic, Mnemonic::Mov);
        let m = i.operands[1].mem().unwrap();
        assert_eq!(m.base, Some(RAX));
        assert_eq!(m.index, Some(RCX));
        assert_eq!(m.scale, 4);
        assert_eq!(m.disp, 0x10);
    }

    #[test]
    fn rip_relative() {
        let i = dec(&[0x8B, 0x05, 0x00, 0x01, 0x00, 0x00]);
        let m = i.operands[1].mem().unwrap();
        assert!(m.is_rip_relative());
        assert_eq!(m.disp, 0x100);
    }

    #[test]
    fn branches() {
        let i = dec(&[0x75, 0xEC]);
        assert_eq!(i.mnemonic, Mnemonic::Jcc(Cond::Ne));
        assert_eq!(i.operands[0], Operand::Rel(-20));
        let i = dec(&[0x0F, 0x85, 0xD4, 0xFE, 0xFF, 0xFF]);
        assert_eq!(i.operands[0], Operand::Rel(-300));
    }

    #[test]
    fn vex_decoding() {
        let i = dec(&[0xC5, 0xF4, 0x58, 0xC2]);
        assert_eq!(i.mnemonic, Mnemonic::Vaddps);
        assert_eq!(
            i.operands,
            vec![
                Operand::Reg(Reg::Ymm(0)),
                Operand::Reg(Reg::Ymm(1)),
                Operand::Reg(Reg::Ymm(2))
            ]
        );
        let i = dec(&[0xC4, 0xE2, 0x75, 0xB8, 0xC2]);
        assert_eq!(i.mnemonic, Mnemonic::Vfmadd231ps);
    }

    #[test]
    fn truncated_errors() {
        assert!(matches!(
            decode_one(&[0x81, 0xC0, 0x34], 0),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            decode_one(&[0x0F], 0),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            decode_one(&[], 0),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_opcode_errors() {
        // 0xD8 (x87) is not in our subset
        assert!(matches!(
            decode_one(&[0xD8, 0xC0], 0),
            Err(DecodeError::UnknownOpcode { .. })
        ));
    }

    #[test]
    fn high_byte_registers() {
        // mov ah, ch -> 88 EC (no REX)
        let i = dec(&[0x88, 0xEC]);
        assert_eq!(
            i.operands,
            vec![
                Operand::Reg(Reg::HighByte(0)),
                Operand::Reg(Reg::HighByte(1))
            ]
        );
        // with REX: spl etc.
        let i = dec(&[0x40, 0x88, 0xEC]);
        assert_eq!(
            i.operands,
            vec![
                Operand::Reg(Reg::gpr(4, Width::W8)),
                Operand::Reg(Reg::gpr(5, Width::W8))
            ]
        );
    }

    #[test]
    fn setcc_and_cmov() {
        let i = dec(&[0x0F, 0x94, 0xC0]);
        assert_eq!(i.mnemonic, Mnemonic::Setcc(Cond::E));
        assert_eq!(i.operands, vec![AL.into()]);
        let i = dec(&[0x48, 0x0F, 0x44, 0xC1]);
        assert_eq!(i.mnemonic, Mnemonic::Cmovcc(Cond::E));
    }

    #[test]
    fn movzx_widths() {
        let i = dec(&[0x0F, 0xB6, 0xC1]);
        assert_eq!(i.mnemonic, Mnemonic::Movzx);
        assert_eq!(i.operands, vec![EAX.into(), CL.into()]);
    }
}

#[cfg(test)]
mod acc_form_tests {
    use super::*;
    use crate::mnemonic::Mnemonic;
    use crate::reg::names::*;

    #[test]
    fn accumulator_short_forms_decode() {
        // add eax, imm32 (05 id)
        let (i, len) = decode_one(&[0x05, 0x44, 0x33, 0x22, 0x11], 0).unwrap();
        assert_eq!(len, 5);
        assert_eq!(i.mnemonic, Mnemonic::Add);
        assert_eq!(i.operands, vec![EAX.into(), Operand::Imm(0x11223344)]);
        // test al, imm8 (A8 ib)
        let (i, _) = decode_one(&[0xA8, 0x7F], 0).unwrap();
        assert_eq!(i.mnemonic, Mnemonic::Test);
        assert_eq!(i.operands, vec![AL.into(), Operand::Imm(0x7F)]);
        // cmp rax, imm32 (REX.W 3D id)
        let (i, _) = decode_one(&[0x48, 0x3D, 0x01, 0x00, 0x00, 0x00], 0).unwrap();
        assert_eq!(i.mnemonic, Mnemonic::Cmp);
        assert_eq!(i.operands, vec![RAX.into(), Operand::Imm(1)]);
        // 16-bit acc form has an LCP
        let (i, _) = decode_one(&[0x66, 0x05, 0x34, 0x12], 0).unwrap();
        assert!(i.has_lcp);
    }

    #[test]
    fn assembler_never_emits_acc_forms() {
        use crate::encode::assemble_one;
        let (_, bytes) =
            assemble_one(Mnemonic::Add, &[EAX.into(), Operand::Imm(0x11223344)]).unwrap();
        assert_ne!(
            bytes[0], 0x05,
            "assembler should use the canonical 81 /0 form"
        );
    }
}
