//! The assembler: turns `(Mnemonic, operands)` pairs into machine code and
//! fully-annotated [`Inst`] values.
//!
//! The assembler always picks the *shortest* matching encoding (stable
//! tie-break: table order), like a production assembler would.

use crate::error::EncodeError;
use crate::inst::Inst;
use crate::mnemonic::Mnemonic;
use crate::operand::{Mem, Operand};
use crate::reg::{Reg, Width};
use crate::table::{tables, Entry, ImmK, Map, Osz, Pat, Pfx, NO_EXT};

/// Result of encoding one instruction.
#[derive(Debug, Clone)]
pub(crate) struct Encoded {
    pub bytes: Vec<u8>,
    pub opcode_offset: u8,
    pub has_lcp: bool,
}

#[derive(Default)]
struct Rex {
    w: bool,
    r: bool,
    x: bool,
    b: bool,
    /// A register requires REX to be present even with all bits clear
    /// (spl/bpl/sil/dil).
    force: bool,
    /// A register forbids REX (ah/ch/dh/bh).
    forbid: bool,
}

impl Rex {
    fn needed(&self) -> bool {
        self.w || self.r || self.x || self.b || self.force
    }

    fn byte(&self) -> u8 {
        0x40 | (u8::from(self.w) << 3)
            | (u8::from(self.r) << 2)
            | (u8::from(self.x) << 1)
            | u8::from(self.b)
    }

    fn track(&mut self, r: Reg) {
        if r.needs_rex() && r.num() < 8 && r.width() == Width::W8 {
            self.force = true;
        }
        if r.forbids_rex() {
            self.forbid = true;
        }
    }
}

/// Assemble a single instruction, returning the [`Inst`] (with encoding
/// metadata filled in) and its machine code.
///
/// # Errors
/// Returns [`EncodeError::NoSuchForm`] if no encoding exists for the
/// mnemonic/operand combination, and [`EncodeError::BadOperands`] for
/// structurally impossible combinations (e.g. `ah` together with `r8`).
pub fn assemble_one(
    mnemonic: Mnemonic,
    operands: &[Operand],
) -> Result<(Inst, Vec<u8>), EncodeError> {
    let t = tables();
    let Some(candidates) = t.by_mnem.get(&mnemonic) else {
        return Err(EncodeError::NoSuchForm {
            what: format!("{mnemonic}"),
        });
    };
    let mut best: Option<Encoded> = None;
    let mut rex_conflict = false;
    for &i in candidates {
        match try_encode(&t.entries[i], operands) {
            Ok(Some(enc)) => {
                if best
                    .as_ref()
                    .is_none_or(|b| enc.bytes.len() < b.bytes.len())
                {
                    best = Some(enc);
                }
            }
            Ok(None) => {}
            Err(()) => rex_conflict = true,
        }
    }
    match best {
        Some(enc) => {
            let inst = Inst {
                mnemonic,
                operands: operands.to_vec(),
                len: enc.bytes.len() as u8,
                opcode_offset: enc.opcode_offset,
                has_lcp: enc.has_lcp,
            };
            Ok((inst, enc.bytes))
        }
        None if rex_conflict => Err(EncodeError::BadOperands {
            what: format!("high-byte register mixed with REX-requiring operands in {mnemonic}"),
        }),
        None => Err(EncodeError::NoSuchForm {
            what: format!(
                "{mnemonic} {}",
                operands
                    .iter()
                    .map(|o| o.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }),
    }
}

/// Effective GPR operand size for an entry, derived from the operands.
fn effective_opsize(entry: &Entry, ops: &[Operand]) -> Option<Width> {
    match entry.osz {
        Osz::B => Some(Width::W8),
        Osz::Q => Some(Width::W64),
        Osz::D64 => Some(Width::W64),
        Osz::X => None,
        Osz::V => {
            // First GPR operand that is not a fixed-width r/m (rmw) slot
            // determines the size; fall back to the memory width.
            for (idx, op) in ops.iter().enumerate() {
                let fixed_rm = entry.rmw.is_some() && rm_slot_index(entry.pat) == Some(idx);
                if fixed_rm {
                    continue;
                }
                match op {
                    Operand::Reg(r) if r.is_gpr() => {
                        let w = if matches!(r, Reg::HighByte(_)) {
                            Width::W8
                        } else {
                            r.width()
                        };
                        return Some(w);
                    }
                    Operand::Mem(m) if !matches!(entry.pat, Pat::RM) => return Some(m.width),
                    _ => {}
                }
            }
            Some(Width::W32)
        }
    }
}

/// Index of the r/m operand slot within the operand list for a pattern.
fn rm_slot_index(pat: Pat) -> Option<usize> {
    match pat {
        Pat::RmR
        | Pat::RmI
        | Pat::Rm
        | Pat::RmCl
        | Pat::RmX
        | Pat::RmRI
        | Pat::VXmX
        | Pat::VXmYI
        | Pat::XmX => Some(0),
        Pat::RRm | Pat::RRmI | Pat::RM | Pat::XXm | Pat::XXmI | Pat::XRm | Pat::RXm | Pat::VXm => {
            Some(1)
        }
        Pat::VXXm | Pat::VXXmI | Pat::VYXmI => Some(2),
        _ => None,
    }
}

fn gpr_of(op: Operand, w: Width) -> Option<Reg> {
    match op {
        Operand::Reg(r) if r.is_gpr() => {
            let rw = if matches!(r, Reg::HighByte(_)) {
                Width::W8
            } else {
                r.width()
            };
            (rw == w).then_some(r)
        }
        _ => None,
    }
}

fn vec_of(op: Operand, l: u8) -> Option<Reg> {
    match (op, l) {
        (Operand::Reg(r @ Reg::Xmm(_)), 0 | 2) => Some(r),
        (Operand::Reg(r @ Reg::Ymm(_)), 1) => Some(r),
        _ => None,
    }
}

fn mem_of(op: Operand, w: Width) -> Option<Mem> {
    match op {
        Operand::Mem(m) if m.width == w => Some(m),
        _ => None,
    }
}

/// r/m slot: register of the given kind or memory of the given width.
enum RmOp {
    R(Reg),
    M(Mem),
}

fn rm_gpr(op: Operand, w: Width) -> Option<RmOp> {
    if let Some(r) = gpr_of(op, w) {
        return Some(RmOp::R(r));
    }
    mem_of(op, w).map(RmOp::M)
}

fn rm_vec(op: Operand, l: u8, mw: Width) -> Option<RmOp> {
    if let Some(r) = vec_of(op, l) {
        return Some(RmOp::R(r));
    }
    mem_of(op, mw).map(RmOp::M)
}

fn imm_fits(kind: ImmK, opsize: Option<Width>, v: i64) -> bool {
    match kind {
        ImmK::NoImm => false,
        ImmK::Ib => (0..=255).contains(&v),
        ImmK::IbS => i8::try_from(v).is_ok(),
        ImmK::Iz => match opsize {
            Some(Width::W16) => i16::try_from(v).is_ok() || u16::try_from(v).is_ok(),
            _ => i32::try_from(v).is_ok() || u32::try_from(v).is_ok(),
        },
        ImmK::Iv => match opsize {
            Some(Width::W16) => i16::try_from(v).is_ok() || u16::try_from(v).is_ok(),
            Some(Width::W64) => true,
            _ => i32::try_from(v).is_ok() || u32::try_from(v).is_ok(),
        },
    }
}

fn imm_len(kind: ImmK, opsize: Option<Width>) -> usize {
    match kind {
        ImmK::NoImm => 0,
        ImmK::Ib | ImmK::IbS => 1,
        ImmK::Iz => match opsize {
            Some(Width::W16) => 2,
            _ => 4,
        },
        ImmK::Iv => match opsize {
            Some(Width::W16) => 2,
            Some(Width::W64) => 8,
            _ => 4,
        },
    }
}

/// Structural match of the operands against an entry. Returns the matched
/// slots, or `None` if the entry does not apply.
struct Matched {
    /// Value for the ModRM `reg` field (register or extension digit).
    reg_field: Option<Reg>,
    rm: Option<RmOp>,
    /// Register encoded in the opcode byte.
    opreg: Option<Reg>,
    /// VEX `vvvv` register.
    vvvv: Option<Reg>,
    imm: Option<i64>,
    rel: Option<i32>,
}

#[allow(clippy::too_many_lines)]
fn match_operands(entry: &Entry, ops: &[Operand]) -> Option<Matched> {
    let osz = effective_opsize(entry, ops);
    let w = osz.unwrap_or(Width::W32);
    let l = entry.vex.map_or(0, |v| v.l);
    let vecw = if l == 1 { Width::W256 } else { Width::W128 };
    let rm_width = entry.rmw.unwrap_or(w);
    let rm_vwidth = entry.rmw.unwrap_or(vecw);
    let mut m = Matched {
        reg_field: None,
        rm: None,
        opreg: None,
        vvvv: None,
        imm: None,
        rel: None,
    };
    match entry.pat {
        Pat::NoOps => {
            if !ops.is_empty() {
                return None;
            }
        }
        Pat::RmR => {
            let [a, b] = ops else { return None };
            m.rm = Some(rm_gpr(*a, w)?);
            m.reg_field = Some(gpr_of(*b, w)?);
        }
        Pat::RRm => {
            let [a, b] = ops else { return None };
            m.reg_field = Some(gpr_of(*a, w)?);
            m.rm = Some(rm_gpr(*b, rm_width)?);
        }
        Pat::RmRI => {
            let [a, b, c] = ops else { return None };
            m.rm = Some(rm_gpr(*a, w)?);
            m.reg_field = Some(gpr_of(*b, w)?);
            m.imm = Some(c.imm().filter(|&v| imm_fits(entry.imm, osz, v))?);
        }
        Pat::RmI => {
            let [a, b] = ops else { return None };
            m.rm = Some(rm_gpr(*a, w)?);
            m.imm = Some(b.imm().filter(|&v| imm_fits(entry.imm, osz, v))?);
        }
        Pat::Rm => {
            let [a] = ops else { return None };
            m.rm = Some(rm_gpr(*a, w)?);
        }
        Pat::RmCl => {
            let [a, b] = ops else { return None };
            m.rm = Some(rm_gpr(*a, w)?);
            if *b
                != Operand::Reg(Reg::Gpr {
                    num: 1,
                    width: Width::W8,
                })
            {
                return None;
            }
        }
        Pat::OpReg => {
            let [a] = ops else { return None };
            m.opreg = Some(gpr_of(*a, w)?);
        }
        Pat::AccI => return None, // decode-only form
        Pat::OpRegI => {
            let [a, b] = ops else { return None };
            m.opreg = Some(gpr_of(*a, w)?);
            m.imm = Some(b.imm().filter(|&v| imm_fits(entry.imm, osz, v))?);
        }
        Pat::RRmI => {
            let [a, b, c] = ops else { return None };
            m.reg_field = Some(gpr_of(*a, w)?);
            m.rm = Some(rm_gpr(*b, w)?);
            m.imm = Some(c.imm().filter(|&v| imm_fits(entry.imm, osz, v))?);
        }
        Pat::RM => {
            let [a, b] = ops else { return None };
            m.reg_field = Some(gpr_of(*a, w)?);
            m.rm = Some(RmOp::M(b.mem()?)); // any width: lea ignores it
        }
        Pat::Rel => {
            let [a] = ops else { return None };
            let Operand::Rel(d) = *a else { return None };
            if entry.imm == ImmK::Ib && i8::try_from(d).is_err() {
                return None;
            }
            m.rel = Some(d);
        }
        Pat::XXm | Pat::XXmI => {
            let (a, b, c) = match (entry.pat, ops) {
                (Pat::XXm, [a, b]) => (a, b, None),
                (Pat::XXmI, [a, b, c]) => (a, b, Some(c)),
                _ => return None,
            };
            m.reg_field = Some(vec_of(*a, 0)?);
            m.rm = Some(rm_vec(*b, 0, rm_vwidth)?);
            if let Some(c) = c {
                m.imm = Some(c.imm().filter(|&v| imm_fits(entry.imm, osz, v))?);
            }
        }
        Pat::XmX => {
            let [a, b] = ops else { return None };
            m.rm = Some(rm_vec(*a, 0, rm_vwidth)?);
            m.reg_field = Some(vec_of(*b, 0)?);
        }
        Pat::XRm => {
            let [a, b] = ops else { return None };
            m.reg_field = Some(vec_of(*a, 0)?);
            m.rm = Some(rm_gpr(*b, if rm_width.is_gpr() { rm_width } else { w })?);
        }
        Pat::RmX => {
            let [a, b] = ops else { return None };
            m.rm = Some(rm_gpr(*a, if rm_width.is_gpr() { rm_width } else { w })?);
            m.reg_field = Some(vec_of(*b, 0)?);
        }
        Pat::RXm => {
            let [a, b] = ops else { return None };
            m.reg_field = Some(gpr_of(*a, w)?);
            m.rm = Some(rm_vec(*b, 0, rm_vwidth)?);
        }
        Pat::XI => {
            let [a, b] = ops else { return None };
            m.rm = Some(RmOp::R(vec_of(*a, 0)?));
            m.imm = Some(b.imm().filter(|&v| imm_fits(entry.imm, osz, v))?);
        }
        Pat::VXXm | Pat::VXXmI => {
            let (a, b, c, i) = match (entry.pat, ops) {
                (Pat::VXXm, [a, b, c]) => (a, b, c, None),
                (Pat::VXXmI, [a, b, c, i]) => (a, b, c, Some(i)),
                _ => return None,
            };
            m.reg_field = Some(vec_of(*a, l)?);
            m.vvvv = Some(vec_of(*b, l)?);
            m.rm = Some(rm_vec(*c, l, rm_vwidth)?);
            if let Some(i) = i {
                m.imm = Some(i.imm().filter(|&v| imm_fits(entry.imm, osz, v))?);
            }
        }
        Pat::VXm => {
            let [a, b] = ops else { return None };
            m.reg_field = Some(vec_of(*a, l)?);
            // vbroadcastss allows an xmm or memory source even for ymm dest
            let srcl = if entry.map == Map::M38 && entry.op == 0x18 {
                0
            } else {
                l
            };
            m.rm = Some(rm_vec(*b, srcl, rm_vwidth)?);
        }
        Pat::VXmX => {
            let [a, b] = ops else { return None };
            m.rm = Some(rm_vec(*a, l, rm_vwidth)?);
            m.reg_field = Some(vec_of(*b, l)?);
        }
        Pat::VYXmI => {
            let [a, b, c, i] = ops else { return None };
            m.reg_field = Some(vec_of(*a, 1)?);
            m.vvvv = Some(vec_of(*b, 1)?);
            m.rm = Some(rm_vec(*c, 0, Width::W128)?);
            m.imm = Some(i.imm().filter(|&v| imm_fits(entry.imm, osz, v))?);
        }
        Pat::VXmYI => {
            let [a, b, i] = ops else { return None };
            m.rm = Some(rm_vec(*a, 0, Width::W128)?);
            m.reg_field = Some(vec_of(*b, 1)?);
            m.imm = Some(i.imm().filter(|&v| imm_fits(entry.imm, osz, v))?);
        }
    }
    Some(m)
}

/// Try to encode `ops` using `entry`. `Ok(None)` = entry does not apply;
/// `Err(())` = structural REX conflict.
fn try_encode(entry: &Entry, ops: &[Operand]) -> Result<Option<Encoded>, ()> {
    if entry.decode_only {
        return Ok(None);
    }
    let Some(m) = match_operands(entry, ops) else {
        return Ok(None);
    };
    let osz = effective_opsize(entry, ops);

    let mut rex = Rex::default();
    if osz == Some(Width::W64) && matches!(entry.osz, Osz::V | Osz::Q) {
        rex.w = true;
    }
    if let Some(r) = m.reg_field {
        rex.track(r);
        rex.r = r.num() >= 8;
    }
    if let Some(r) = m.vvvv {
        rex.track(r);
    }
    if let Some(r) = m.opreg {
        rex.track(r);
        rex.b = r.num() >= 8;
    }
    let mut mem: Option<Mem> = None;
    match &m.rm {
        Some(RmOp::R(r)) => {
            rex.track(*r);
            rex.b = rex.b || r.num() >= 8;
        }
        Some(RmOp::M(mm)) => {
            for r in mm.addr_regs() {
                if r.width() != Width::W64 {
                    return Ok(None); // only 64-bit addressing supported
                }
            }
            if let Some(b) = mm.base.filter(|r| *r != Reg::Rip) {
                rex.b = rex.b || b.num() >= 8;
            }
            if let Some(i) = mm.index {
                rex.x = i.num() >= 8;
            }
            mem = Some(*mm);
        }
        None => {}
    }
    let _ = mem;

    if rex.forbid && rex.needed() {
        return Err(());
    }

    let mut bytes = Vec::with_capacity(15);
    let has_66_size = osz == Some(Width::W16) && entry.osz == Osz::V;
    let mut has_lcp = false;

    if let Some(vex) = entry.vex {
        // VEX prefix (no legacy prefixes, no REX).
        let map_sel: u8 = match entry.map {
            Map::M0F => 1,
            Map::M38 => 2,
            Map::M3A => 3,
            Map::M1 => return Ok(None),
        };
        let vvvv_val = m.vvvv.map_or(0, Reg::num);
        let l_bit = u8::from(vex.l == 1);
        let w_bit = u8::from(vex.w == 1);
        if map_sel == 1 && w_bit == 0 && !rex.x && !rex.b {
            // 2-byte VEX
            bytes.push(0xC5);
            bytes.push((u8::from(!rex.r) << 7) | ((!vvvv_val & 0xF) << 3) | (l_bit << 2) | vex.pp);
        } else {
            bytes.push(0xC4);
            bytes.push(
                (u8::from(!rex.r) << 7)
                    | (u8::from(!rex.x) << 6)
                    | (u8::from(!rex.b) << 5)
                    | map_sel,
            );
            bytes.push((w_bit << 7) | ((!vvvv_val & 0xF) << 3) | (l_bit << 2) | vex.pp);
        }
        // opcode_offset points at the VEX byte, i.e. offset 0 here.
        bytes.push(entry.op);
    } else {
        if has_66_size {
            bytes.push(0x66);
            has_lcp = matches!(entry.imm, ImmK::Iz | ImmK::Iv) && !matches!(entry.pat, Pat::Rel);
        }
        match entry.pfx {
            Pfx::N => {}
            Pfx::P66 => bytes.push(0x66),
            Pfx::PF2 => bytes.push(0xF2),
            Pfx::PF3 => bytes.push(0xF3),
        }
        if rex.needed() {
            bytes.push(rex.byte());
        }
        match entry.map {
            Map::M1 => {}
            Map::M0F => bytes.push(0x0F),
            Map::M38 => bytes.extend_from_slice(&[0x0F, 0x38]),
            Map::M3A => bytes.extend_from_slice(&[0x0F, 0x3A]),
        }
        bytes.push(entry.op + m.opreg.map_or(0, |r| r.num() & 7));
    }
    // Number of prefix bytes before the nominal opcode (for VEX, the VEX
    // prefix itself is the nominal opcode start).
    let opcode_offset = if entry.vex.is_some() {
        0
    } else {
        let escape_len: u8 = match entry.map {
            Map::M1 => 0,
            Map::M0F => 1,
            Map::M38 | Map::M3A => 2,
        };
        bytes.len() as u8 - 1 - escape_len
    };

    // ModRM / SIB / displacement.
    if entry.has_modrm() {
        let reg_bits = if entry.ext != NO_EXT {
            entry.ext
        } else {
            m.reg_field.map_or(0, |r| r.num() & 7)
        };
        match m.rm.as_ref().expect("modrm pattern without r/m operand") {
            RmOp::R(r) => bytes.push(0xC0 | (reg_bits << 3) | (r.num() & 7)),
            RmOp::M(mm) => encode_mem(&mut bytes, reg_bits, *mm),
        }
    }

    // Immediate / displacement.
    if let Some(v) = m.imm {
        match entry.imm {
            ImmK::Ib | ImmK::IbS => bytes.push(v as u8),
            _ => {
                let n = imm_len(entry.imm, osz);
                bytes.extend_from_slice(&v.to_le_bytes()[..n]);
            }
        }
    }
    if let Some(d) = m.rel {
        match entry.imm {
            ImmK::Ib => bytes.push(d as u8),
            _ => bytes.extend_from_slice(&d.to_le_bytes()),
        }
    }

    if bytes.len() > 15 {
        return Ok(None);
    }
    Ok(Some(Encoded {
        bytes,
        opcode_offset,
        has_lcp,
    }))
}

/// Emit ModRM, optional SIB, and displacement for a memory operand.
fn encode_mem(bytes: &mut Vec<u8>, reg_bits: u8, m: Mem) {
    let reg3 = reg_bits << 3;
    // RIP-relative
    if m.base == Some(Reg::Rip) {
        bytes.push(reg3 | 0x05);
        bytes.extend_from_slice(&m.disp.to_le_bytes());
        return;
    }
    let base_num = m.base.map(|r| r.num() & 7);
    let needs_sib = m.index.is_some() || m.base.is_none() || base_num == Some(4);
    let (modb, disp_len) = match (m.base, m.disp) {
        (None, _) => (0x00, 4),
        (Some(_), 0) if base_num != Some(5) => (0x00, 0),
        (Some(_), d) if i8::try_from(d).is_ok() => (0x40, 1),
        (Some(_), _) => (0x80, 4),
    };
    if needs_sib {
        bytes.push(modb | reg3 | 0x04);
        let scale_bits: u8 = match m.scale {
            1 => 0,
            2 => 1,
            4 => 2,
            _ => 3,
        };
        let index_bits = m.index.map_or(4, |r| r.num() & 7);
        let base_bits = base_num.unwrap_or(5);
        bytes.push((scale_bits << 6) | (index_bits << 3) | base_bits);
    } else {
        bytes.push(modb | reg3 | base_num.expect("non-SIB without base"));
    }
    match disp_len {
        0 => {}
        1 => bytes.push(m.disp as u8),
        _ => bytes.extend_from_slice(&m.disp.to_le_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnemonic::Cond;
    use crate::reg::names::*;

    fn enc(m: Mnemonic, ops: Vec<Operand>) -> Vec<u8> {
        assemble_one(m, &ops).unwrap().1
    }

    #[test]
    fn basic_alu() {
        assert_eq!(
            enc(Mnemonic::Add, vec![EAX.into(), ECX.into()]),
            vec![0x01, 0xC8]
        );
        assert_eq!(
            enc(Mnemonic::Add, vec![RAX.into(), RCX.into()]),
            vec![0x48, 0x01, 0xC8]
        );
        assert_eq!(
            enc(Mnemonic::Xor, vec![R8D.into(), R9D.into()]),
            vec![0x45, 0x31, 0xC8]
        );
    }

    #[test]
    fn short_immediate_form_preferred() {
        // imm fits i8: 83 /0 ib
        assert_eq!(
            enc(Mnemonic::Add, vec![EAX.into(), Operand::Imm(5)]),
            vec![0x83, 0xC0, 0x05]
        );
        // large imm: 81 /0 id
        assert_eq!(
            enc(Mnemonic::Add, vec![EAX.into(), Operand::Imm(0x1234)]),
            vec![0x81, 0xC0, 0x34, 0x12, 0x00, 0x00]
        );
    }

    #[test]
    fn lcp_detection() {
        // add ax, 0x1234 -> 66 81 C0 34 12 (length-changing prefix!)
        let (inst, bytes) =
            assemble_one(Mnemonic::Add, &[AX.into(), Operand::Imm(0x1234)]).unwrap();
        assert_eq!(bytes, vec![0x66, 0x81, 0xC0, 0x34, 0x12]);
        assert!(inst.has_lcp);
        assert_eq!(inst.opcode_offset, 1);
        // 16-bit without an immediate has no LCP
        let (inst, _) = assemble_one(Mnemonic::Add, &[AX.into(), CX.into()]).unwrap();
        assert!(!inst.has_lcp);
        // mov ax, imm16 via B8+r is also LCP
        let (inst, bytes) =
            assemble_one(Mnemonic::Mov, &[AX.into(), Operand::Imm(0x1234)]).unwrap();
        assert_eq!(bytes, vec![0x66, 0xB8, 0x34, 0x12]);
        assert!(inst.has_lcp);
    }

    #[test]
    fn mov_imm64() {
        assert_eq!(
            enc(
                Mnemonic::Mov,
                vec![RAX.into(), Operand::Imm(0x1122334455667788)]
            ),
            vec![0x48, 0xB8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
        );
        // small imm into r64 picks the shorter C7 sign-extended form
        assert_eq!(
            enc(Mnemonic::Mov, vec![RAX.into(), Operand::Imm(1)]),
            vec![0x48, 0xC7, 0xC0, 0x01, 0x00, 0x00, 0x00]
        );
    }

    #[test]
    fn memory_forms() {
        use crate::operand::Mem;
        // mov rax, [rcx] -> 48 8B 01
        let m = Mem::base(RCX, Width::W64);
        assert_eq!(
            enc(Mnemonic::Mov, vec![RAX.into(), m.into()]),
            vec![0x48, 0x8B, 0x01]
        );
        // [rsp] needs SIB
        let m = Mem::base(RSP, Width::W64);
        assert_eq!(
            enc(Mnemonic::Mov, vec![RAX.into(), m.into()]),
            vec![0x48, 0x8B, 0x04, 0x24]
        );
        // [rbp] needs disp8
        let m = Mem::base(RBP, Width::W64);
        assert_eq!(
            enc(Mnemonic::Mov, vec![RAX.into(), m.into()]),
            vec![0x48, 0x8B, 0x45, 0x00]
        );
        // [rax+rcx*4+0x10]
        let m = Mem::base_index(RAX, RCX, 4, 0x10, Width::W32);
        assert_eq!(
            enc(Mnemonic::Mov, vec![EDX.into(), m.into()]),
            vec![0x8B, 0x54, 0x88, 0x10]
        );
        // rip-relative
        let m = Mem::rip_rel(0x100, Width::W32);
        assert_eq!(
            enc(Mnemonic::Mov, vec![EAX.into(), m.into()]),
            vec![0x8B, 0x05, 0x00, 0x01, 0x00, 0x00]
        );
    }

    #[test]
    fn branches() {
        assert_eq!(enc(Mnemonic::Jmp, vec![Operand::Rel(-5)]), vec![0xEB, 0xFB]);
        assert_eq!(
            enc(Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-20)]),
            vec![0x75, 0xEC]
        );
        assert_eq!(
            enc(Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-300)]),
            vec![0x0F, 0x85, 0xD4, 0xFE, 0xFF, 0xFF]
        );
    }

    #[test]
    fn sse_forms() {
        let x = |n| Operand::Reg(Reg::Xmm(n));
        assert_eq!(
            enc(Mnemonic::Addps, vec![x(0), x(1)]),
            vec![0x0F, 0x58, 0xC1]
        );
        assert_eq!(
            enc(Mnemonic::Addpd, vec![x(0), x(1)]),
            vec![0x66, 0x0F, 0x58, 0xC1]
        );
        assert_eq!(
            enc(Mnemonic::Addsd, vec![x(0), x(1)]),
            vec![0xF2, 0x0F, 0x58, 0xC1]
        );
        assert_eq!(
            enc(Mnemonic::Pxor, vec![x(2), x(3)]),
            vec![0x66, 0x0F, 0xEF, 0xD3]
        );
        assert_eq!(
            enc(Mnemonic::Pmulld, vec![x(0), x(1)]),
            vec![0x66, 0x0F, 0x38, 0x40, 0xC1]
        );
    }

    #[test]
    fn avx_forms() {
        let y = |n| Operand::Reg(Reg::Ymm(n));
        let x = |n| Operand::Reg(Reg::Xmm(n));
        // 2-byte VEX: vaddps ymm0, ymm1, ymm2 -> C5 F4 58 C2
        assert_eq!(
            enc(Mnemonic::Vaddps, vec![y(0), y(1), y(2)]),
            vec![0xC5, 0xF4, 0x58, 0xC2]
        );
        // xmm variant -> C5 F0 58 C2
        assert_eq!(
            enc(Mnemonic::Vaddps, vec![x(0), x(1), x(2)]),
            vec![0xC5, 0xF0, 0x58, 0xC2]
        );
        // 3-byte VEX needed for 0F38 map: vfmadd231ps
        assert_eq!(
            enc(Mnemonic::Vfmadd231ps, vec![y(0), y(1), y(2)]),
            vec![0xC4, 0xE2, 0x75, 0xB8, 0xC2]
        );
    }

    #[test]
    fn high_byte_rex_conflict() {
        let r = assemble_one(
            Mnemonic::Mov,
            &[
                Operand::Reg(Reg::HighByte(0)),
                Operand::Reg(Reg::gpr(8, Width::W8)),
            ],
        );
        assert!(matches!(r, Err(EncodeError::BadOperands { .. })));
    }

    #[test]
    fn no_such_form() {
        let r = assemble_one(Mnemonic::Lea, &[Operand::Reg(RAX), Operand::Reg(RCX)]);
        assert!(matches!(r, Err(EncodeError::NoSuchForm { .. })));
    }

    #[test]
    fn shifts() {
        assert_eq!(
            enc(Mnemonic::Shl, vec![EAX.into(), Operand::Imm(3)]),
            vec![0xC1, 0xE0, 0x03]
        );
        assert_eq!(
            enc(Mnemonic::Shr, vec![RAX.into(), CL.into()]),
            vec![0x48, 0xD3, 0xE8]
        );
    }

    #[test]
    fn multibyte_nop() {
        use crate::operand::Mem;
        // nop dword ptr [rax]
        let m = Mem::base(RAX, Width::W32);
        assert_eq!(enc(Mnemonic::Nop, vec![m.into()]), vec![0x0F, 0x1F, 0x00]);
        // plain nop
        assert_eq!(enc(Mnemonic::Nop, vec![]), vec![0x90]);
    }

    #[test]
    fn push_pop() {
        assert_eq!(enc(Mnemonic::Push, vec![RAX.into()]), vec![0x50]);
        assert_eq!(enc(Mnemonic::Push, vec![R9.into()]), vec![0x41, 0x51]);
        assert_eq!(enc(Mnemonic::Pop, vec![RBX.into()]), vec![0x5B]);
    }
}
