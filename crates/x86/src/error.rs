//! Error types for decoding and encoding.

use std::error::Error;
use std::fmt;

/// An error produced while decoding machine code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended in the middle of an instruction.
    Truncated {
        /// Offset of the first byte of the offending instruction.
        offset: usize,
    },
    /// An opcode that this decoder does not support.
    UnknownOpcode {
        /// Offset of the first byte of the offending instruction.
        offset: usize,
        /// The opcode bytes that could not be matched.
        opcode: Vec<u8>,
    },
    /// The instruction would be longer than the architectural limit of 15
    /// bytes.
    TooLong {
        /// Offset of the first byte of the offending instruction.
        offset: usize,
    },
    /// A structurally invalid encoding (e.g. register operand where memory
    /// is required).
    Invalid {
        /// Offset of the first byte of the offending instruction.
        offset: usize,
        /// Explanation of the violation.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { offset } => {
                write!(f, "truncated instruction at offset {offset}")
            }
            DecodeError::UnknownOpcode { offset, opcode } => {
                write!(f, "unknown opcode at offset {offset}:")?;
                for b in opcode {
                    write!(f, " {b:02x}")?;
                }
                Ok(())
            }
            DecodeError::TooLong { offset } => {
                write!(f, "instruction at offset {offset} exceeds 15 bytes")
            }
            DecodeError::Invalid { offset, what } => {
                write!(f, "invalid encoding at offset {offset}: {what}")
            }
        }
    }
}

impl Error for DecodeError {}

/// An error produced while encoding an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// No encoding exists for the mnemonic with the given operand shapes.
    NoSuchForm {
        /// Description of the requested form.
        what: String,
    },
    /// Operands are structurally incompatible (e.g. mixed widths where equal
    /// widths are required, or a high-byte register combined with a
    /// REX-requiring register).
    BadOperands {
        /// Explanation of the incompatibility.
        what: String,
    },
    /// The immediate does not fit the encodable range for this form.
    ImmOutOfRange {
        /// The offending value.
        value: i64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::NoSuchForm { what } => write!(f, "no encoding for {what}"),
            EncodeError::BadOperands { what } => write!(f, "bad operands: {what}"),
            EncodeError::ImmOutOfRange { value } => {
                write!(f, "immediate out of range: {value}")
            }
        }
    }
}

impl Error for EncodeError {}
