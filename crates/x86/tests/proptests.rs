//! Property-based tests for the x86 codec:
//! * `decode(encode(inst)) == inst` for arbitrary well-formed instructions;
//! * the decoder never panics on arbitrary byte streams;
//! * re-encoding a decoded instruction reproduces the same bytes when the
//!   encoding is canonical.

use facile_x86::reg::Width;
use facile_x86::{assemble_one, decode_one, Block, Cond, Mem, Mnemonic, Operand, Reg};
use proptest::prelude::*;

/// GPR excluding rsp/rbp to avoid special ModRM cases in *some* strategies
/// (other strategies include them deliberately).
fn any_gpr(width: Width) -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(move |n| Reg::Gpr { num: n, width })
}

fn any_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W16), Just(Width::W32), Just(Width::W64),]
}

fn any_mem(width: Width) -> impl Strategy<Value = Mem> {
    let base = (0u8..16).prop_map(|n| Reg::Gpr {
        num: n,
        width: Width::W64,
    });
    let index = proptest::option::of(
        (0u8..16)
            .prop_filter("rsp is not a valid index", |n| *n != 4)
            .prop_map(|n| Reg::Gpr {
                num: n,
                width: Width::W64,
            }),
    );
    let scale = prop_oneof![Just(1u8), Just(2), Just(4), Just(8)];
    let disp = prop_oneof![Just(0i32), -128i32..128, any::<i32>()];
    (base, index, scale, disp).prop_map(move |(b, i, s, d)| Mem {
        base: Some(b),
        index: i,
        // scale is only meaningful (and only encodable) with an index
        scale: if i.is_some() { s } else { 1 },
        disp: d,
        width,
    })
}

fn rm_operand(width: Width) -> impl Strategy<Value = Operand> {
    prop_oneof![
        any_gpr(width).prop_map(Operand::Reg),
        any_mem(width).prop_map(Operand::Mem),
    ]
}

/// Strategy producing (mnemonic, operands) for a diverse set of forms.
fn any_form() -> impl Strategy<Value = (Mnemonic, Vec<Operand>)> {
    let alu = prop_oneof![
        Just(Mnemonic::Add),
        Just(Mnemonic::Sub),
        Just(Mnemonic::And),
        Just(Mnemonic::Or),
        Just(Mnemonic::Xor),
        Just(Mnemonic::Cmp),
        Just(Mnemonic::Mov),
    ];
    let alu_rr = (
        alu.clone(),
        any_width(),
        any_gpr(Width::W64),
        any_gpr(Width::W64),
    )
        .prop_map(|(m, w, a, b)| {
            let a = Reg::Gpr {
                num: a.num(),
                width: w,
            };
            let b = Reg::Gpr {
                num: b.num(),
                width: w,
            };
            (m, vec![Operand::Reg(a), Operand::Reg(b)])
        });
    let alu_rm = (alu.clone(), any_width()).prop_flat_map(|(m, w)| {
        (any_gpr(w), any_mem(w))
            .prop_map(move |(r, mem)| (m, vec![Operand::Reg(r), Operand::Mem(mem)]))
    });
    let alu_mr = (alu.clone(), any_width()).prop_flat_map(|(m, w)| {
        (any_mem(w), any_gpr(w))
            .prop_map(move |(mem, r)| (m, vec![Operand::Mem(mem), Operand::Reg(r)]))
    });
    // note: canonical immediates only (values representable by the form)
    let alu_imm = (alu, any_width()).prop_flat_map(|(m, w)| {
        let imm = match w {
            Width::W16 => (-0x8000i64..0x8000).boxed(),
            _ => (i64::from(i32::MIN)..=i64::from(i32::MAX)).boxed(),
        };
        (rm_operand(w), imm).prop_map(move |(rm, v)| (m, vec![rm, Operand::Imm(v)]))
    });
    let unary = (
        prop_oneof![
            Just(Mnemonic::Inc),
            Just(Mnemonic::Dec),
            Just(Mnemonic::Neg),
            Just(Mnemonic::Not),
        ],
        any_width(),
    )
        .prop_flat_map(|(m, w)| rm_operand(w).prop_map(move |rm| (m, vec![rm])));
    let shift = (
        prop_oneof![
            Just(Mnemonic::Shl),
            Just(Mnemonic::Shr),
            Just(Mnemonic::Sar)
        ],
        any_width(),
        0i64..64,
    )
        .prop_flat_map(|(m, w, s)| {
            any_gpr(w).prop_map(move |r| (m, vec![Operand::Reg(r), Operand::Imm(s)]))
        });
    let lea = any_width().prop_flat_map(|w| {
        let w = if w == Width::W16 { Width::W32 } else { w };
        // the decoder reports lea's (semantically irrelevant) memory width
        // as the destination width, so generate it that way
        (any_gpr(w), any_mem(w))
            .prop_map(move |(r, mem)| (Mnemonic::Lea, vec![Operand::Reg(r), Operand::Mem(mem)]))
    });
    let branch = (any::<bool>(), 0u8..16, -120i32..120).prop_map(|(cond, cc, d)| {
        if cond {
            (Mnemonic::Jcc(Cond::from_code(cc)), vec![Operand::Rel(d)])
        } else {
            (Mnemonic::Jmp, vec![Operand::Rel(d)])
        }
    });
    let sse = (
        prop_oneof![
            Just(Mnemonic::Addps),
            Just(Mnemonic::Mulpd),
            Just(Mnemonic::Pxor),
            Just(Mnemonic::Paddd),
            Just(Mnemonic::Pmulld),
            Just(Mnemonic::Xorps),
        ],
        0u8..16,
        0u8..16,
    )
        .prop_map(|(m, a, b)| {
            (
                m,
                vec![Operand::Reg(Reg::Xmm(a)), Operand::Reg(Reg::Xmm(b))],
            )
        });
    let avx = (
        prop_oneof![
            Just(Mnemonic::Vaddps),
            Just(Mnemonic::Vmulpd),
            Just(Mnemonic::Vpxor),
            Just(Mnemonic::Vfmadd231ps),
        ],
        any::<bool>(),
        0u8..16,
        0u8..16,
        0u8..16,
    )
        .prop_map(|(m, ymm, a, b, c)| {
            let r = |n| {
                if ymm {
                    Operand::Reg(Reg::Ymm(n))
                } else {
                    Operand::Reg(Reg::Xmm(n))
                }
            };
            (m, vec![r(a), r(b), r(c)])
        });
    let stack = (any::<bool>(), 0u8..16).prop_map(|(push, n)| {
        let r = Reg::Gpr {
            num: n,
            width: Width::W64,
        };
        if push {
            (Mnemonic::Push, vec![Operand::Reg(r)])
        } else {
            (Mnemonic::Pop, vec![Operand::Reg(r)])
        }
    });
    prop_oneof![alu_rr, alu_rm, alu_mr, alu_imm, unary, shift, lea, branch, sse, avx, stack]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_roundtrip((m, ops) in any_form()) {
        let (inst, bytes) = assemble_one(m, &ops).expect("strategy produces encodable forms");
        let (decoded, len) = decode_one(&bytes, 0).expect("own encodings must decode");
        prop_assert_eq!(len, bytes.len());
        prop_assert_eq!(&decoded, &inst,
            "bytes: {:02x?}", bytes);
    }

    #[test]
    fn reencoding_is_stable((m, ops) in any_form()) {
        let (_, bytes) = assemble_one(m, &ops).unwrap();
        let (decoded, _) = decode_one(&bytes, 0).unwrap();
        let (_, bytes2) = assemble_one(decoded.mnemonic, &decoded.operands).unwrap();
        prop_assert_eq!(bytes, bytes2);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Any result is fine; panicking is not.
        let _ = decode_one(&bytes, 0);
        let _ = Block::decode(&bytes);
    }

    #[test]
    fn decoded_length_is_positive_and_bounded(bytes in proptest::collection::vec(any::<u8>(), 1..32)) {
        if let Ok((_, len)) = decode_one(&bytes, 0) {
            prop_assert!((1..=15).contains(&len) && len <= bytes.len());
        }
    }

    #[test]
    fn block_roundtrip(forms in proptest::collection::vec(any_form(), 1..12)) {
        let b = Block::assemble(&forms).unwrap();
        let b2 = Block::decode(b.bytes()).unwrap();
        prop_assert_eq!(b, b2);
    }

    #[test]
    fn effects_never_panic((m, ops) in any_form()) {
        let (inst, _) = assemble_one(m, &ops).unwrap();
        let e = inst.effects();
        // writes and reads are sorted and deduplicated
        let mut sorted = e.reg_reads.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted, e.reg_reads);
    }
}
