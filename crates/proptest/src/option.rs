//! Option strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<T>` (mostly `Some`).
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_f64() < 0.75 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Some` from the inner strategy about 75% of the time, else `None`.
#[must_use]
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
