//! Test-run configuration.

/// Mirror of `proptest::test_runner::Config` with the one field this
//  workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}
