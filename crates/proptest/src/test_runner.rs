//! The deterministic RNG driving strategy generation.

/// FNV-1a hash of a string, used to derive a per-test seed from the test
/// function name so every test has an independent, stable stream.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A small, fast, deterministic PRNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create an RNG from a seed.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v
    }

    /// Uniform index in `0..n` (n must be nonzero).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() requires a nonempty range");
        #[allow(clippy::cast_possible_truncation)]
        let v = (self.next_u64() % n as u64) as usize;
        v
    }
}
