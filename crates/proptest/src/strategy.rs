//! Strategies: composable value generators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// maps to.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Reject generated values for which `f` returns false (regenerates;
    /// panics after an excessive number of consecutive rejections).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.whence
        );
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> OneOf<T> {
    /// Build from at least one arm.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Values with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generate any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_possible_wrap,
                clippy::cast_sign_loss,
                clippy::cast_lossless
            )]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_possible_wrap,
                clippy::cast_sign_loss,
                clippy::cast_lossless
            )]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo + v as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
