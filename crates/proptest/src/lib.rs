//! A minimal, deterministic, dependency-free stand-in for the `proptest`
//! crate, covering exactly the API surface used by this workspace's
//! property tests: strategies (`Just`, ranges, tuples, `any`,
//! `prop_oneof!`, `prop_map`/`prop_flat_map`/`prop_filter`/`boxed`,
//! `collection::vec`, `option::of`), the `proptest!` test macro with
//! `ProptestConfig::with_cases`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the ordinary assertion message. Generation is fully deterministic — the
//! per-test RNG is seeded from the test function's name, so failures
//! reproduce across runs and machines.

pub mod collection;
pub mod config;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body (panics on failure; no
/// shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs its body for `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = $crate::test_runner::TestRng::new(
                    $crate::test_runner::fnv1a(stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    let ( $($pat,)* ) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )*
                    );
                    $body
                }
            }
        )*
    };
}
