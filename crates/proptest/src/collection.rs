//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for vectors with lengths drawn from a range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A vector of values from `elem`, with length in `len`.
#[must_use]
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}
