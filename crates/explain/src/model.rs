//! The model vocabulary: throughput notions, pipeline components, front-end
//! paths, and explanation detail levels.
//!
//! These types used to live in `facile-core::predict`; they moved here so
//! that the explanation data model can be shared by layers that do not
//! depend on the core model (metrics, renderers). `facile-core` re-exports
//! them, so `facile_core::Mode` etc. keep working.

use std::fmt;

/// The throughput notion to predict (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// TPU: the block is unrolled; the front end fetches and decodes every
    /// instance.
    Unrolled,
    /// TPL: the block ends in a branch and runs as a loop; in steady state
    /// µops are streamed from the LSD or DSB unless the JCC erratum forces
    /// the legacy decode path.
    Loop,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Unrolled => "TPU",
            Mode::Loop => "TPL",
        })
    }
}

/// A pipeline component analyzed by Facile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The predecoder (§4.3).
    Predec,
    /// The decoders (§4.4).
    Dec,
    /// The µop cache (§4.5, loops only).
    Dsb,
    /// The loop stream detector (§4.6, loops only).
    Lsd,
    /// The rename/issue stage (§4.7).
    Issue,
    /// Execution-port contention (§4.8).
    Ports,
    /// Inter-iteration dependence chains (§4.9).
    Precedence,
}

impl Component {
    /// All components in the tie-breaking order used for bottleneck
    /// attribution: front end before back end (as in the paper's Fig. 6).
    pub const ALL: [Component; 7] = [
        Component::Predec,
        Component::Dec,
        Component::Lsd,
        Component::Dsb,
        Component::Issue,
        Component::Ports,
        Component::Precedence,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Component::Predec => "Predec",
            Component::Dec => "Dec",
            Component::Dsb => "DSB",
            Component::Lsd => "LSD",
            Component::Issue => "Issue",
            Component::Ports => "Ports",
            Component::Precedence => "Precedence",
        }
    }

    /// Position in the tie-breaking order ([`Component::ALL`]).
    #[must_use]
    pub fn rank(self) -> usize {
        Component::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every component is in ALL")
    }

    /// Parse a display name back into a component (the inverse of
    /// [`Component::name`]); used by consumers of machine-readable rows.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Component> {
        Component::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which front-end path serves the loop in steady state (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontEndPath {
    /// Legacy decode pipeline (predecoder + decoders); used for unrolled
    /// code and for loops hit by the JCC erratum.
    Mite,
    /// The loop stream detector.
    Lsd,
    /// The decoded stream buffer (µop cache).
    Dsb,
}

impl FrontEndPath {
    /// Display name (`MITE`, `LSD`, `DSB`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FrontEndPath::Mite => "MITE",
            FrontEndPath::Lsd => "LSD",
            FrontEndPath::Dsb => "DSB",
        }
    }
}

impl fmt::Display for FrontEndPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How much explanation a prediction should carry.
///
/// The batch engine's warm path stays allocation-free (and bit-identical
/// to the seed behaviour) at [`Detail::Brief`]; the richer levels trade
/// some per-prediction allocation for machine-consumable evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Detail {
    /// Throughput + bottleneck attribution only (the batch default).
    #[default]
    Brief,
    /// Additionally carry the per-component bounds.
    Bounds,
    /// Everything: bounds, typed evidence (port-load map, critical
    /// dependence chain), and per-instruction attributions.
    Full,
}

impl Detail {
    /// Whether this level collects typed evidence and attributions.
    #[must_use]
    pub fn wants_evidence(self) -> bool {
        matches!(self, Detail::Full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_roundtrip() {
        for c in Component::ALL {
            assert_eq!(Component::from_name(c.name()), Some(c));
            assert_eq!(Component::ALL[c.rank()], c);
        }
        assert_eq!(Component::from_name("nope"), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Mode::Unrolled.to_string(), "TPU");
        assert_eq!(FrontEndPath::Mite.to_string(), "MITE");
        assert_eq!(Component::Dsb.to_string(), "DSB");
    }
}
