//! The typed explanation payload: per-component evidence, typed critical
//! chains, and the composed [`Explanation`].

use crate::model::{Component, FrontEndPath, Mode};
use facile_uarch::PortMask;
use facile_x86::{flags, Reg};
use std::fmt;

/// A renamed value carried along a dependence chain — the typed
/// replacement for the stringly `ChainLink::value` of earlier revisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueRef {
    /// A full architectural register.
    Reg(Reg),
    /// One EFLAGS group (see [`facile_x86::flags`]).
    Flag(u8),
    /// A memory location, identified syntactically by its address
    /// expression (full registers) and access-independent displacement.
    Mem {
        /// Base register of the address expression.
        base: Option<Reg>,
        /// Index register of the address expression.
        index: Option<Reg>,
        /// Index scale factor.
        scale: u8,
        /// Constant displacement.
        disp: i32,
    },
}

impl fmt::Display for ValueRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValueRef::Reg(r) => write!(f, "{r}"),
            ValueRef::Flag(g) => f.write_str(flags::group_name(g)),
            ValueRef::Mem {
                base,
                index,
                scale,
                disp,
            } => {
                f.write_str("[")?;
                if let Some(b) = base {
                    write!(f, "{b}")?;
                }
                if let Some(i) = index {
                    write!(f, "+{i}*{scale}")?;
                }
                if disp != 0 {
                    write!(f, "{disp:+#x}")?;
                }
                f.write_str("]")
            }
        }
    }
}

/// One hop of the critical dependence chain: instruction `inst` produces
/// `value` after `latency` cycles, and the next hop consumes it —
/// in the next iteration when `loop_carried` is set.
///
/// Over a whole chain, `Σ latency / #loop_carried` equals the precedence
/// bound (the maximum cycle ratio of the dependence graph).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainStep {
    /// Index of the producing instruction in the block.
    pub inst: u32,
    /// The value carried to the next hop.
    pub value: ValueRef,
    /// Latency contribution of this hop in cycles (instruction latency
    /// plus load/store-forwarding extras where the value flows through
    /// memory).
    pub latency: f64,
    /// Whether the consumption of `value` happens in the next iteration
    /// (the chain edge wraps around the loop).
    pub loop_carried: bool,
}

/// Occupancy-weighted µop load bound to one port combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortLoad {
    /// The port combination the µops are restricted to.
    pub ports: PortMask,
    /// Occupancy-weighted µop count per iteration.
    pub uops: f64,
}

/// Evidence for the predecoder bound (§4.3): the frontend path breakdown
/// over the repeating 16-byte-chunk window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PredecEvidence {
    /// Unrolled copies of the block until the byte layout repeats (1 for
    /// loops).
    pub unroll_copies: u32,
    /// Aligned 16-byte chunks in the repeating window.
    pub chunks: u32,
    /// Instructions with a length-changing prefix per iteration.
    pub lcp_insts: u32,
    /// Instructions whose opcode starts in an earlier chunk than they end
    /// (boundary crossings), summed over the window.
    pub boundary_crossings: u32,
    /// Baseline predecode cycles per iteration (without LCP penalties).
    pub base_cycles: f64,
    /// Un-hidden LCP penalty cycles per iteration.
    pub lcp_penalty_cycles: f64,
}

/// Evidence for the decoder bound (§4.4, Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecEvidence {
    /// Decoders on this microarchitecture.
    pub decoders: u8,
    /// Decode groups (cycles) in the steady-state window.
    pub steady_cycles: u32,
    /// Iterations the steady-state window spans.
    pub steady_iterations: u32,
    /// Instructions requiring the complex decoder per iteration.
    pub complex_insts: u32,
}

/// Evidence for the DSB (µop cache) bound (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DsbEvidence {
    /// Fused-domain µops delivered per iteration.
    pub fused_uops: u32,
    /// DSB delivery width in µops per cycle.
    pub dsb_width: u8,
    /// Whether the bound was rounded up to whole cycles (blocks shorter
    /// than 32 bytes).
    pub rounded_up: bool,
}

/// Evidence for the LSD bound (§4.6).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LsdEvidence {
    /// Fused-domain µops per iteration.
    pub fused_uops: u32,
    /// The LSD's in-IDQ unroll factor for this loop.
    pub unroll: u32,
    /// Issue width the LSD streams against.
    pub issue_width: u8,
}

/// Evidence for the rename/issue bound (§4.7).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IssueEvidence {
    /// µops issued per iteration after unlamination.
    pub issue_uops: u32,
    /// Rename/issue width.
    pub issue_width: u8,
}

/// Evidence for the port-contention bound (§4.8): the contended-port load
/// map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PortsEvidence {
    /// The port set achieving the bound.
    pub critical_ports: PortMask,
    /// Occupancy-weighted µops bound to the critical port set.
    pub load_on_critical: f64,
    /// Full load map: occupancy-weighted µops per distinct port
    /// combination appearing in the block (empty below [`Detail::Full`]).
    ///
    /// [`Detail::Full`]: crate::Detail::Full
    pub port_loads: Vec<PortLoad>,
}

/// Evidence for the precedence bound (§4.9): the critical dependence
/// chain as typed edges.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PrecedenceEvidence {
    /// One representative critical cycle, as typed hops.
    pub critical_chain: Vec<ChainStep>,
}

/// Typed evidence attached to a component bound.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Evidence {
    /// No evidence collected (brief detail, or a component without any).
    #[default]
    None,
    /// Predecoder breakdown.
    Predec(PredecEvidence),
    /// Decoder steady-state breakdown.
    Dec(DecEvidence),
    /// µop-cache delivery breakdown.
    Dsb(DsbEvidence),
    /// Loop-stream-detector breakdown.
    Lsd(LsdEvidence),
    /// Rename/issue breakdown.
    Issue(IssueEvidence),
    /// Contended-port load map.
    Ports(PortsEvidence),
    /// Critical dependence chain.
    Precedence(PrecedenceEvidence),
}

/// One pipeline component's analysis: its throughput bound plus the typed
/// evidence behind it. This is what each core kernel returns.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentAnalysis {
    /// The analyzed component.
    pub component: Component,
    /// Throughput bound in cycles per iteration.
    pub bound: f64,
    /// Why: the typed evidence for the bound.
    pub evidence: Evidence,
}

impl ComponentAnalysis {
    /// A bound with no evidence (brief detail).
    #[must_use]
    pub fn bare(component: Component, bound: f64) -> ComponentAnalysis {
        ComponentAnalysis {
            component,
            bound,
            evidence: Evidence::None,
        }
    }
}

/// Per-instruction attribution with respect to the explanation's
/// bottleneck evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstAttribution {
    /// Index of the instruction in the block.
    pub inst: u32,
    /// Occupancy-weighted µops this instruction places on the critical
    /// port set.
    pub critical_port_uops: f64,
    /// Latency this instruction contributes along the critical dependence
    /// chain.
    pub chain_latency: f64,
}

impl InstAttribution {
    /// Whether the instruction contributes to any bottleneck evidence.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.critical_port_uops == 0.0 && self.chain_latency == 0.0
    }
}

/// Tolerance under which a component bound counts as equal to the
/// predicted throughput (and therefore as a bottleneck).
pub const BOTTLENECK_EPS: f64 = 1e-9;

/// A complete, typed explanation of one prediction: the composition of
/// the per-component analyses under the paper's `max` rule, with the
/// bottleneck set resolved under the front-end-first tie break.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The throughput notion that was predicted.
    pub mode: Mode,
    /// Predicted throughput in cycles per iteration: the maximum of the
    /// component bounds.
    pub throughput: f64,
    /// Which front-end path the prediction assumed.
    pub front_end: FrontEndPath,
    /// The participating component analyses, in [`Component::ALL`]
    /// (tie-break) order.
    pub components: Vec<ComponentAnalysis>,
    /// Components whose bound equals the throughput, in tie-break order
    /// (the first is the dominant bottleneck).
    pub bottlenecks: Vec<Component>,
    /// Per-instruction attributions (empty below full detail).
    pub attributions: Vec<InstAttribution>,
}

impl Explanation {
    /// Compose component analyses into an explanation: sort into
    /// tie-break order, take the max as the throughput, and resolve the
    /// bottleneck (argmax) set.
    #[must_use]
    pub fn compose(
        mode: Mode,
        front_end: FrontEndPath,
        mut components: Vec<ComponentAnalysis>,
        attributions: Vec<InstAttribution>,
    ) -> Explanation {
        components.sort_by_key(|a| a.component.rank());
        let throughput = components.iter().map(|a| a.bound).fold(0.0, f64::max);
        let bottlenecks = components
            .iter()
            .filter(|a| throughput > 0.0 && (a.bound - throughput).abs() < BOTTLENECK_EPS)
            .map(|a| a.component)
            .collect();
        Explanation {
            mode,
            throughput,
            front_end,
            components,
            bottlenecks,
            attributions,
        }
    }

    /// The bound of a specific component, if it participated.
    #[must_use]
    pub fn bound(&self, c: Component) -> Option<f64> {
        self.components
            .iter()
            .find(|a| a.component == c)
            .map(|a| a.bound)
    }

    /// The evidence of a specific component, if it participated.
    #[must_use]
    pub fn evidence(&self, c: Component) -> Option<&Evidence> {
        self.components
            .iter()
            .find(|a| a.component == c)
            .map(|a| &a.evidence)
    }

    /// The dominant bottleneck under the front-end-first tie break.
    #[must_use]
    pub fn primary_bottleneck(&self) -> Option<Component> {
        self.bottlenecks.first().copied()
    }

    /// The port-contention evidence, if collected.
    #[must_use]
    pub fn ports(&self) -> Option<&PortsEvidence> {
        match self.evidence(Component::Ports) {
            Some(Evidence::Ports(p)) => Some(p),
            _ => None,
        }
    }

    /// The critical dependence chain, if collected (empty slice when the
    /// block has no loop-carried dependence).
    #[must_use]
    pub fn critical_chain(&self) -> &[ChainStep] {
        match self.evidence(Component::Precedence) {
            Some(Evidence::Precedence(p)) => &p.critical_chain,
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_x86::reg::names::*;

    #[test]
    fn compose_orders_and_resolves_bottlenecks() {
        let e = Explanation::compose(
            Mode::Unrolled,
            FrontEndPath::Mite,
            vec![
                ComponentAnalysis::bare(Component::Ports, 2.0),
                ComponentAnalysis::bare(Component::Predec, 2.0),
                ComponentAnalysis::bare(Component::Precedence, 1.0),
            ],
            Vec::new(),
        );
        assert_eq!(e.throughput, 2.0);
        // Sorted into tie-break order; both maxima are bottlenecks with
        // the front end winning the tie.
        assert_eq!(
            e.components.iter().map(|a| a.component).collect::<Vec<_>>(),
            vec![Component::Predec, Component::Ports, Component::Precedence]
        );
        assert_eq!(e.bottlenecks, vec![Component::Predec, Component::Ports]);
        assert_eq!(e.primary_bottleneck(), Some(Component::Predec));
        assert_eq!(e.bound(Component::Precedence), Some(1.0));
        assert_eq!(e.bound(Component::Dsb), None);
    }

    #[test]
    fn zero_bounds_have_no_bottleneck() {
        let e = Explanation::compose(
            Mode::Unrolled,
            FrontEndPath::Mite,
            vec![ComponentAnalysis::bare(Component::Precedence, 0.0)],
            Vec::new(),
        );
        assert_eq!(e.throughput, 0.0);
        assert!(e.bottlenecks.is_empty());
        assert_eq!(e.primary_bottleneck(), None);
    }

    #[test]
    fn value_ref_display() {
        assert_eq!(ValueRef::Reg(RAX).to_string(), "rax");
        assert_eq!(ValueRef::Flag(facile_x86::flags::C).to_string(), "CF");
        let m = ValueRef::Mem {
            base: Some(RSI),
            index: Some(RDI),
            scale: 8,
            disp: -16,
        };
        // `{:+#x}` on i32 renders the two's complement bits — kept for
        // byte-identity with the legacy report renderer.
        assert_eq!(m.to_string(), "[rsi+rdi*8+0xfffffff0]");
    }
}
