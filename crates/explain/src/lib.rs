//! # facile-explain
//!
//! The typed explanation data model that makes Facile's interpretability a
//! first-class data layer instead of formatted strings.
//!
//! Facile predicts throughput as the maximum over independently analyzed
//! pipeline-component bounds, so every prediction is *directly
//! explainable*: which component binds, by how much, and why. This crate
//! defines the machine-consumable form of that explanation, shared by the
//! core model (which produces it), the batch engine (which threads it
//! through [`Detail`] levels), the CLI (which renders it as text or JSON),
//! and the metrics/bench layers (which aggregate bottleneck distributions
//! over corpora):
//!
//! * [`Component`], [`Mode`], [`FrontEndPath`] — the vocabulary of the
//!   model (these are the canonical definitions; `facile-core` re-exports
//!   them).
//! * [`ComponentAnalysis`] — one component's bound plus its typed
//!   [`Evidence`] (frontend path breakdown, contended-port load map,
//!   critical dependence chain as typed [`ChainStep`] edges).
//! * [`Explanation`] — the composed result: dominant bottleneck under the
//!   paper's front-end-first tie break, per-component bounds, and
//!   per-instruction [`InstAttribution`]s.
//! * [`Detail`] — how much of the above a caller wants; the batch engine
//!   keeps its allocation-free brief path by requesting
//!   [`Detail::Brief`].
//!
//! Rendering lives here too: [`Explanation::to_json`] emits a structured
//! JSON object (no external dependencies) and [`Explanation::to_text`] a
//! compact human-readable summary. The legacy full-text report (which
//! needs the disassembled block) remains in `facile-core::report` as a
//! thin renderer over this data model.

#![warn(missing_docs)]

pub mod explanation;
pub mod model;
pub mod render;

pub use explanation::{
    ChainStep, ComponentAnalysis, DecEvidence, DsbEvidence, Evidence, Explanation, InstAttribution,
    IssueEvidence, LsdEvidence, PortLoad, PortsEvidence, PrecedenceEvidence, PredecEvidence,
    ValueRef,
};
pub use model::{Component, Detail, FrontEndPath, Mode};
pub use render::json_escape;
