//! Renderers over the explanation data model: structured JSON (no
//! external dependencies) and a compact human-readable text form.
//!
//! The legacy full report — which disassembles the instructions on the
//! critical chain — lives in `facile-core::report`, since it needs the
//! annotated block; these renderers work from the [`Explanation`] alone
//! and are what the CLI uses for `--explain` in batch mode.

use crate::explanation::{ChainStep, Evidence, Explanation, PortLoad};
use std::fmt::Write;

/// Escape a string for inclusion in a JSON string literal. Exported so
/// every JSON emitter in the workspace (this crate's renderer, the CLI's
/// row writer) shares one escaping implementation.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    json_escape_into(&mut out, s);
    out
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Emit a finite float as a JSON number (`null` for non-finite values,
/// which cannot occur for well-formed explanations but must not produce
/// invalid JSON if they ever do).
fn json_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn json_chain(out: &mut String, chain: &[ChainStep]) {
    out.push('[');
    for (i, s) in chain.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"inst\":{},\"value\":\"", s.inst);
        json_escape_into(out, &s.value.to_string());
        out.push_str("\",\"latency\":");
        json_num(out, s.latency);
        let _ = write!(out, ",\"loop_carried\":{}}}", s.loop_carried);
    }
    out.push(']');
}

fn json_port_loads(out: &mut String, loads: &[PortLoad]) {
    out.push('[');
    for (i, l) in loads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"ports\":\"{}\",\"uops\":", l.ports);
        json_num(out, l.uops);
        out.push('}');
    }
    out.push(']');
}

fn json_evidence(out: &mut String, e: &Evidence) {
    match e {
        Evidence::None => out.push_str("null"),
        Evidence::Predec(p) => {
            let _ = write!(
                out,
                "{{\"kind\":\"predec\",\"unroll_copies\":{},\"chunks\":{},\"lcp_insts\":{},\
                 \"boundary_crossings\":{},\"base_cycles\":",
                p.unroll_copies, p.chunks, p.lcp_insts, p.boundary_crossings
            );
            json_num(out, p.base_cycles);
            out.push_str(",\"lcp_penalty_cycles\":");
            json_num(out, p.lcp_penalty_cycles);
            out.push('}');
        }
        Evidence::Dec(d) => {
            let _ = write!(
                out,
                "{{\"kind\":\"dec\",\"decoders\":{},\"steady_cycles\":{},\
                 \"steady_iterations\":{},\"complex_insts\":{}}}",
                d.decoders, d.steady_cycles, d.steady_iterations, d.complex_insts
            );
        }
        Evidence::Dsb(d) => {
            let _ = write!(
                out,
                "{{\"kind\":\"dsb\",\"fused_uops\":{},\"dsb_width\":{},\"rounded_up\":{}}}",
                d.fused_uops, d.dsb_width, d.rounded_up
            );
        }
        Evidence::Lsd(l) => {
            let _ = write!(
                out,
                "{{\"kind\":\"lsd\",\"fused_uops\":{},\"unroll\":{},\"issue_width\":{}}}",
                l.fused_uops, l.unroll, l.issue_width
            );
        }
        Evidence::Issue(i) => {
            let _ = write!(
                out,
                "{{\"kind\":\"issue\",\"issue_uops\":{},\"issue_width\":{}}}",
                i.issue_uops, i.issue_width
            );
        }
        Evidence::Ports(p) => {
            let _ = write!(
                out,
                "{{\"kind\":\"ports\",\"critical_ports\":\"{}\",\"load_on_critical\":",
                p.critical_ports
            );
            json_num(out, p.load_on_critical);
            out.push_str(",\"port_loads\":");
            json_port_loads(out, &p.port_loads);
            out.push('}');
        }
        Evidence::Precedence(p) => {
            out.push_str("{\"kind\":\"precedence\",\"critical_chain\":");
            json_chain(out, &p.critical_chain);
            out.push('}');
        }
    }
}

impl Explanation {
    /// Render the explanation as one structured JSON object: per-component
    /// bounds (with typed evidence where collected), the bottleneck set in
    /// tie-break order, and — hoisted to the top level for convenience —
    /// the critical-chain edges, the port-load map, and the
    /// per-instruction attributions.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"front_end\":\"");
        out.push_str(self.front_end.name());
        out.push_str("\",\"throughput\":");
        json_num(&mut out, self.throughput);
        out.push_str(",\"bounds\":[");
        for (i, a) in self.components.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"component\":\"{}\",\"bound\":", a.component.name());
            json_num(&mut out, a.bound);
            if !matches!(a.evidence, Evidence::None) {
                out.push_str(",\"evidence\":");
                json_evidence(&mut out, &a.evidence);
            }
            out.push('}');
        }
        out.push_str("],\"bottlenecks\":[");
        for (i, b) in self.bottlenecks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", b.name());
        }
        out.push(']');
        if let Some(p) = self.ports() {
            let _ = write!(out, ",\"critical_ports\":\"{}\"", p.critical_ports);
            out.push_str(",\"load_on_critical\":");
            json_num(&mut out, p.load_on_critical);
            out.push_str(",\"port_loads\":");
            json_port_loads(&mut out, &p.port_loads);
        }
        let chain = self.critical_chain();
        if !chain.is_empty() {
            out.push_str(",\"critical_chain\":");
            json_chain(&mut out, chain);
        }
        if !self.attributions.is_empty() {
            out.push_str(",\"attributions\":[");
            let mut first = true;
            for a in &self.attributions {
                if a.is_zero() {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{{\"inst\":{},\"critical_port_uops\":", a.inst);
                json_num(&mut out, a.critical_port_uops);
                out.push_str(",\"chain_latency\":");
                json_num(&mut out, a.chain_latency);
                out.push('}');
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Render a compact human-readable summary (one fact per line). Used
    /// by the CLI for `--explain` in batch mode, where the annotated block
    /// is not available for disassembly; the bottleneck components are
    /// marked with `<-`.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(out, "front end: {}", self.front_end);
        if let Some(b) = self.primary_bottleneck() {
            let _ = write!(out, "; bottleneck: {b}");
        }
        out.push('\n');
        out.push_str("bounds:");
        for a in &self.components {
            let marker = if self.bottlenecks.contains(&a.component) {
                "<-"
            } else {
                ""
            };
            let _ = write!(out, " {}={:.2}{marker}", a.component.name(), a.bound);
        }
        out.push('\n');
        if let Some(p) = self.ports() {
            if !p.critical_ports.is_empty() {
                let _ = write!(
                    out,
                    "ports: {:.2} uops on {}",
                    p.load_on_critical, p.critical_ports
                );
                if !p.port_loads.is_empty() {
                    out.push_str(" [");
                    for (i, l) in p.port_loads.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        let _ = write!(out, "{}={:.2}", l.ports, l.uops);
                    }
                    out.push(']');
                }
                out.push('\n');
            }
        }
        let chain = self.critical_chain();
        if !chain.is_empty() {
            out.push_str("chain:");
            for s in chain {
                let carry = if s.loop_carried { "/carry" } else { "" };
                let _ = write!(out, " [{}]@{}+{:.2}{carry}", s.value, s.inst, s.latency);
            }
            out.push('\n');
        }
        let contributors: Vec<_> = self.attributions.iter().filter(|a| !a.is_zero()).collect();
        if !contributors.is_empty() {
            out.push_str("attribution:");
            for a in contributors {
                let _ = write!(out, " #{}", a.inst);
                if a.critical_port_uops > 0.0 {
                    let _ = write!(out, " ports={:.2}", a.critical_port_uops);
                }
                if a.chain_latency > 0.0 {
                    let _ = write!(out, " chain={:.2}", a.chain_latency);
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explanation::{ComponentAnalysis, PortsEvidence, PrecedenceEvidence, ValueRef};
    use crate::model::{Component, FrontEndPath, Mode};
    use facile_uarch::PortMask;
    use facile_x86::reg::names::*;

    fn sample() -> Explanation {
        Explanation::compose(
            Mode::Unrolled,
            FrontEndPath::Mite,
            vec![
                ComponentAnalysis {
                    component: Component::Ports,
                    bound: 1.0,
                    evidence: Evidence::Ports(PortsEvidence {
                        critical_ports: PortMask::of(&[1]),
                        load_on_critical: 1.0,
                        port_loads: vec![PortLoad {
                            ports: PortMask::of(&[1]),
                            uops: 1.0,
                        }],
                    }),
                },
                ComponentAnalysis {
                    component: Component::Precedence,
                    bound: 3.0,
                    evidence: Evidence::Precedence(PrecedenceEvidence {
                        critical_chain: vec![ChainStep {
                            inst: 1,
                            value: ValueRef::Reg(RDX),
                            latency: 3.0,
                            loop_carried: true,
                        }],
                    }),
                },
            ],
            vec![crate::InstAttribution {
                inst: 1,
                critical_port_uops: 1.0,
                chain_latency: 3.0,
            }],
        )
    }

    #[test]
    fn json_contains_structured_fields() {
        let j = sample().to_json();
        assert!(j.contains("\"front_end\":\"MITE\""), "{j}");
        assert!(
            j.contains("\"component\":\"Precedence\",\"bound\":3"),
            "{j}"
        );
        assert!(j.contains("\"critical_chain\":[{\"inst\":1"), "{j}");
        assert!(j.contains("\"loop_carried\":true"), "{j}");
        assert!(j.contains("\"port_loads\":[{\"ports\":\"p1\""), "{j}");
        assert!(j.contains("\"bottlenecks\":[\"Precedence\"]"), "{j}");
        assert!(j.contains("\"attributions\":[{\"inst\":1"), "{j}");
    }

    #[test]
    fn text_mentions_bottleneck_and_chain() {
        let t = sample().to_text();
        assert!(t.contains("bottleneck: Precedence"), "{t}");
        assert!(t.contains("Precedence=3.00<-"), "{t}");
        assert!(t.contains("[rdx]@1+3.00/carry"), "{t}");
        assert!(t.contains("ports: 1.00 uops on p1"), "{t}");
    }
}
