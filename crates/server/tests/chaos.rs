//! Chaos suite: deterministic fault injection (`facile-faults`, compiled
//! in via the `fault-injection` dev-dependency feature) driving the
//! server's containment layers. Under injected predictor panics, slow
//! predictions, dropped connections, failing snapshot writes, and a
//! panicking batcher thread, the invariants are:
//!
//! * every request gets **exactly one** reply;
//! * rows for non-faulted items are **byte-identical** to a fault-free
//!   run;
//! * the server process never dies, and a clean shutdown still drains;
//! * post-chaos counters stay consistent.
//!
//! Fault state is process-global, so every test serializes on [`GATE`]
//! and clears the configuration when done.

use facile_server::faults;
use facile_server::{BoundAddr, Endpoint, Server, ServerConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests (fault configuration is process-global) and arms
/// the quiet panic hook so injected panics don't spam test output.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    assert!(faults::compiled(), "chaos tests need the injection feature");
    faults::install_quiet_panic_hook();
    let g = GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    faults::clear();
    g
}

fn start(cfg_tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".to_string()));
    cfg.threads = 2;
    cfg.gather_window = Duration::from_micros(200);
    cfg_tweak(&mut cfg);
    Server::start(cfg).expect("server starts")
}

fn tcp_addr(server: &Server) -> std::net::SocketAddr {
    match server.bound() {
        BoundAddr::Tcp(a) => *a,
        #[cfg(unix)]
        other => panic!("expected TCP, got {other}"),
    }
}

const BLOCKS: [&str; 4] = ["4801c8", "4801c8480fafd0", "90", "49ffcb75fb"];

/// The concurrency workload: 8 pipelined clients × 25 requests over the
/// rotating block set, returning every reply line keyed by request id.
fn run_workload(addr: std::net::SocketAddr) -> BTreeMap<String, String> {
    const CLIENTS: usize = 8;
    const REQUESTS: usize = 25;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut tx = TcpStream::connect(addr).expect("connects");
                let mut rx = BufReader::new(tx.try_clone().expect("clones"));
                barrier.wait();
                for s in 0..REQUESTS {
                    let block = BLOCKS[s % BLOCKS.len()];
                    writeln!(tx, r#"{{"op":"predict","block":"{block}","id":"{t}-{s}"}}"#)
                        .expect("request writes");
                }
                let mut got = Vec::with_capacity(REQUESTS);
                for s in 0..REQUESTS {
                    let mut line = String::new();
                    assert!(
                        rx.read_line(&mut line).expect("reply arrives") > 0,
                        "client {t} hit EOF after {s} replies"
                    );
                    got.push((format!("{t}-{s}"), line.trim_end().to_string()));
                }
                got
            })
        })
        .collect();
    let mut replies = BTreeMap::new();
    for h in handles {
        for (id, line) in h.join().expect("client thread") {
            let v = facile_server::json::parse(&line).expect("reply parses");
            assert_eq!(
                v.get("id").and_then(|i| i.as_str()),
                Some(id.as_str()),
                "reply misrouted: {line}"
            );
            assert!(replies.insert(id, line).is_none(), "a reply was duplicated");
        }
    }
    assert_eq!(replies.len(), CLIENTS * REQUESTS, "a reply was lost");
    replies
}

/// A rejected request's top-level error code (`None` for `ok:true`).
fn reply_err_code(line: &str) -> Option<String> {
    let v = facile_server::json::parse(line).expect("reply parses");
    if v.get("ok").and_then(|o| o.as_bool()) == Some(true) {
        return None;
    }
    Some(
        v.get("code")
            .and_then(|c| c.as_str())
            .unwrap_or_else(|| panic!("error reply without code: {line}"))
            .to_string(),
    )
}

/// A served item's row-level error code: per-item failures (panics
/// included) ride inside an `ok:true` reply as `status:"error"` rows.
fn row_err_code(line: &str) -> Option<String> {
    let v = facile_server::json::parse(line).expect("reply parses");
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true), "{line}");
    let row = match v.get("rows").map(|r| &r.kind) {
        Some(facile_server::json::Kind::Arr(rows)) if !rows.is_empty() => &rows[0],
        _ => panic!("reply without rows: {line}"),
    };
    match row.get("status").and_then(|s| s.as_str()) {
        Some("ok") => None,
        Some("error") => Some(
            row.get("code")
                .and_then(|c| c.as_str())
                .expect("error row has a code")
                .to_string(),
        ),
        other => panic!("unexpected row status {other:?}: {line}"),
    }
}

/// The headline chaos test: under injected predictor panics and slowed
/// predictions, every request is answered exactly once, faulted items
/// fail with `internal-panic` *consistently* (same block → same fate,
/// thanks to content-keyed decisions), and every non-faulted reply is
/// byte-identical to the fault-free run. The server survives to serve a
/// consistent `stats` reply and drains cleanly.
#[test]
fn predictor_panics_are_contained_and_good_rows_are_byte_identical() {
    let _g = gate();
    let clean = {
        let server = start(|_| {});
        let replies = run_workload(tcp_addr(&server));
        server.stop();
        replies
    };
    assert!(clean.values().all(|l| row_err_code(l).is_none()));

    faults::configure("seed=11,predict-panic=0.5,slow-predict=0.25,slow-ms=2")
        .expect("spec parses");
    let server = start(|_| {});
    let addr = tcp_addr(&server);
    let chaotic = run_workload(addr);

    let mut block_fate: BTreeMap<&str, bool> = BTreeMap::new();
    let (mut panicked, mut ok) = (0u32, 0u32);
    for (id, line) in &chaotic {
        let s: usize = id
            .split('-')
            .nth(1)
            .expect("id shape")
            .parse()
            .expect("seq");
        let block = BLOCKS[s % BLOCKS.len()];
        match row_err_code(line) {
            None => {
                ok += 1;
                assert_eq!(line, &clean[id], "good row diverged from fault-free run");
                assert_ne!(block_fate.insert(block, false), Some(true), "{block}");
            }
            Some(code) => {
                panicked += 1;
                assert_eq!(code, "internal-panic", "unexpected error: {line}");
                assert_ne!(block_fate.insert(block, true), Some(false), "{block}");
            }
        }
    }
    assert!(panicked > 0, "the chosen seed never fired");
    assert!(ok > 0, "the chosen seed faulted every block");

    // Post-chaos stats are consistent and the server is still alive.
    let mut tx = TcpStream::connect(addr).expect("server still accepts");
    let mut rx = BufReader::new(tx.try_clone().expect("clones"));
    writeln!(tx, r#"{{"op":"stats"}}"#).expect("writes");
    let mut line = String::new();
    rx.read_line(&mut line).expect("stats reply");
    let v = facile_server::json::parse(line.trim_end()).expect("parses");
    let counter = |k: &str| {
        v.get("stats")
            .and_then(|s| s.get("server"))
            .and_then(|s| s.get(k))
            .and_then(|c| c.as_f64())
            .unwrap_or_else(|| panic!("stats.server.{k} missing")) as u64
    };
    assert_eq!(counter("requests"), 200 + 1);
    assert_eq!(counter("rows"), 200, "every predict produced its row");
    assert_eq!(counter("batcher_restarts"), 0);
    drop((tx, rx));
    server.stop();
    faults::clear();
}

/// A tiny resilient client: one request in flight, reconnect and resend
/// on EOF or a connection error (mirrors `facile client --retries`).
struct Resilient {
    addr: std::net::SocketAddr,
    conn: Option<(TcpStream, BufReader<TcpStream>)>,
    reconnects: u32,
}

impl Resilient {
    fn call(&mut self, request: &str) -> String {
        for _ in 0..50 {
            let (tx, rx) = match &mut self.conn {
                Some(c) => c,
                None => {
                    let tx = TcpStream::connect(self.addr).expect("connects");
                    let rx = BufReader::new(tx.try_clone().expect("clones"));
                    self.conn.insert((tx, rx))
                }
            };
            let attempt = writeln!(tx, "{request}").and_then(|()| {
                let mut line = String::new();
                match rx.read_line(&mut line)? {
                    0 => Err(std::io::Error::new(ErrorKind::UnexpectedEof, "dropped")),
                    _ => Ok(line.trim_end().to_string()),
                }
            });
            match attempt {
                Ok(line) => return line,
                Err(_) => {
                    self.conn = None;
                    self.reconnects += 1;
                }
            }
        }
        panic!("no reply after 50 attempts");
    }
}

/// Injected connection drops: a client that reconnects and resends its
/// unanswered request gets a full, correct reply stream — identical to
/// what a drop-free server returns.
#[test]
fn dropped_connections_are_survivable_with_resend() {
    let _g = gate();
    faults::configure("seed=7,conn-drop=0.15").expect("spec parses");
    let server = start(|_| {});
    let mut client = Resilient {
        addr: tcp_addr(&server),
        conn: None,
        reconnects: 0,
    };
    let mut chaotic = Vec::new();
    for s in 0..40 {
        let block = BLOCKS[s % BLOCKS.len()];
        chaotic.push(client.call(&format!(
            r#"{{"op":"predict","block":"{block}","id":"{s}"}}"#
        )));
    }
    assert!(
        client.reconnects > 0,
        "the chosen seed never dropped a line"
    );
    server.stop();

    faults::clear();
    let server = start(|_| {});
    let mut client = Resilient {
        addr: tcp_addr(&server),
        conn: None,
        reconnects: 0,
    };
    for (s, chaotic_line) in chaotic.iter().enumerate() {
        let block = BLOCKS[s % BLOCKS.len()];
        let clean_line = client.call(&format!(
            r#"{{"op":"predict","block":"{block}","id":"{s}"}}"#
        ));
        assert_eq!(chaotic_line, &clean_line, "request {s} diverged");
    }
    assert_eq!(client.reconnects, 0);
    server.stop();
}

/// Injected snapshot-write failures are logged and counted — they never
/// take the server down — and once the fault clears, the same path
/// snapshots successfully.
#[test]
fn snapshot_write_failures_are_counted_not_fatal() {
    let _g = gate();
    let path = std::env::temp_dir().join(format!("facile-chaos-snap-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);

    faults::configure("seed=1,snapshot-fail=1").expect("spec parses");
    let server = start(|cfg| {
        cfg.snapshot = Some(path.clone());
        cfg.snapshot_interval = Some(Duration::from_millis(20));
    });
    let mut client = Resilient {
        addr: tcp_addr(&server),
        conn: None,
        reconnects: 0,
    };
    // Keep the batcher busy so periodic saves fire (and fail).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut periodic_failures = 0;
    while periodic_failures == 0 && std::time::Instant::now() < deadline {
        let line = client.call(r#"{"op":"predict","block":"4801c8","id":"p"}"#);
        assert!(line.contains(r#""ok":true"#), "{line}");
        periodic_failures = server
            .counters()
            .snapshot_save_errors
            .load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(periodic_failures > 0, "no periodic save failed in 5s");
    // The final shutdown save fails too — reported, not panicked.
    let final_save = server.stop().expect("snapshot configured");
    assert!(
        final_save.is_err(),
        "injected failure reached shutdown save"
    );
    assert!(!path.exists(), "failed save must not leave a file behind");

    faults::clear();
    let server = start(|cfg| cfg.snapshot = Some(path.clone()));
    let mut client = Resilient {
        addr: tcp_addr(&server),
        conn: None,
        reconnects: 0,
    };
    let line = client.call(r#"{"op":"predict","block":"4801c8","id":"q"}"#);
    assert!(line.contains(r#""ok":true"#), "{line}");
    let final_save = server.stop().expect("snapshot configured");
    assert!(final_save.is_ok(), "{final_save:?}");
    assert!(path.exists(), "fault cleared: the save lands on disk");
    let _ = std::fs::remove_file(&path);
}

/// A panicking batcher thread is restarted by the supervisor: every
/// in-flight request still gets exactly one reply (`internal` for the
/// ones the dead batcher stranded), `batcher_restarts` counts the
/// incidents, and the restarted batcher serves cleanly.
#[test]
fn batcher_panics_are_supervised_and_restarted() {
    let _g = gate();
    faults::configure("seed=5,batcher-panic=0.3").expect("spec parses");
    let server = start(|_| {});
    let mut client = Resilient {
        addr: tcp_addr(&server),
        conn: None,
        reconnects: 0,
    };
    let (mut ok, mut internal) = (0u32, 0u32);
    for s in 0..30 {
        let line = client.call(&format!(r#"{{"op":"predict","block":"90","id":"{s}"}}"#));
        match reply_err_code(&line) {
            None => ok += 1,
            Some(code) => {
                assert_eq!(code, "internal", "unexpected error: {line}");
                assert!(line.contains("batcher restarted"), "{line}");
                internal += 1;
            }
        }
    }
    assert_eq!(ok + internal, 30, "every request answered exactly once");
    let restarts = server.counters().batcher_restarts.load(Ordering::Relaxed);
    assert!(restarts > 0, "the chosen seed never killed the batcher");
    assert!(internal > 0, "a batcher death should strand some request");

    // With the fault cleared, the *restarted* batcher serves normally on
    // the same server instance.
    faults::clear();
    for s in 0..5 {
        let line = client.call(&format!(
            r#"{{"op":"predict","block":"4801c8","id":"r{s}"}}"#
        ));
        assert!(line.contains(r#""ok":true"#), "{line}");
    }
    server.stop();
}
