//! Concurrency tests: many clients hammering one server must lose
//! nothing, duplicate nothing, and keep per-connection reply order —
//! and concurrent connections must actually share engine batches (the
//! whole point of cross-connection micro-batching).

use facile_server::{BoundAddr, Endpoint, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn start(gather: Duration) -> Server {
    let mut cfg = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".to_string()));
    cfg.threads = 2;
    cfg.gather_window = gather;
    Server::start(cfg).expect("server starts")
}

fn tcp_addr(server: &Server) -> std::net::SocketAddr {
    match server.bound() {
        BoundAddr::Tcp(a) => *a,
        #[cfg(unix)]
        other => panic!("expected TCP, got {other}"),
    }
}

/// Pull the planner's `deduped` counter out of a `stats` reply.
fn planner_deduped(addr: std::net::SocketAddr) -> u64 {
    let mut tx = TcpStream::connect(addr).expect("connects");
    let mut rx = BufReader::new(tx.try_clone().expect("clones"));
    writeln!(tx, r#"{{"op":"stats"}}"#).expect("writes");
    let mut line = String::new();
    rx.read_line(&mut line).expect("reply");
    let v = facile_server::json::parse(line.trim_end()).expect("parses");
    v.get("stats")
        .and_then(|s| s.get("engine"))
        .and_then(|e| e.get("planner"))
        .and_then(|p| p.get("deduped"))
        .and_then(|d| d.as_f64())
        .expect("stats.engine.planner.deduped") as u64
}

#[test]
fn no_lost_or_duplicated_replies_and_order_is_preserved() {
    const CLIENTS: usize = 8;
    const REQUESTS: usize = 25;
    // A short gather window keeps this test fast; correctness must not
    // depend on how requests happen to be batched.
    let server = start(Duration::from_micros(200));
    let addr = tcp_addr(&server);

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut tx = TcpStream::connect(addr).expect("connects");
                let mut rx = BufReader::new(tx.try_clone().expect("clones"));
                barrier.wait();
                // Pipeline: write everything, then read everything. The
                // ids encode (thread, seq) so misrouted or reordered
                // replies are unmistakable.
                for s in 0..REQUESTS {
                    // Rotate blocks so connections overlap on bytes.
                    let block = ["4801c8", "4801c8480fafd0", "90", "49ffcb75fb"][s % 4];
                    writeln!(tx, r#"{{"op":"predict","block":"{block}","id":"{t}-{s}"}}"#)
                        .expect("request writes");
                }
                let mut got = Vec::with_capacity(REQUESTS);
                for s in 0..REQUESTS {
                    let mut line = String::new();
                    assert!(
                        rx.read_line(&mut line).expect("reply arrives") > 0,
                        "client {t} hit EOF after {s} replies"
                    );
                    let v = facile_server::json::parse(line.trim_end()).expect("reply parses");
                    assert_eq!(
                        v.get("ok").and_then(|o| o.as_bool()),
                        Some(true),
                        "client {t} reply {s}: {line}"
                    );
                    let id = v
                        .get("id")
                        .and_then(|i| i.as_str())
                        .expect("id echoed")
                        .to_string();
                    assert_eq!(id, format!("{t}-{s}"), "client {t}: reply out of order");
                    got.push(id);
                }
                got
            })
        })
        .collect();

    let mut all: Vec<String> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    assert_eq!(all.len(), CLIENTS * REQUESTS, "a reply was lost");
    all.sort();
    all.dedup();
    assert_eq!(all.len(), CLIENTS * REQUESTS, "a reply was duplicated");

    let c = server.counters();
    assert_eq!(
        c.rows.load(Ordering::Relaxed),
        (CLIENTS * REQUESTS) as u64,
        "every request yields exactly one row"
    );
    server.stop();
}

#[test]
fn concurrent_connections_share_batches_and_dedup() {
    const CLIENTS: usize = 6;
    // A wide gather window so simultaneous single-item requests from
    // different connections land in one engine batch.
    let server = start(Duration::from_millis(250));
    let addr = tcp_addr(&server);
    let before = planner_deduped(addr);

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut tx = TcpStream::connect(addr).expect("connects");
                let mut rx = BufReader::new(tx.try_clone().expect("clones"));
                barrier.wait();
                // Every connection asks for the *same* block: any two
                // jobs gathered into one batch collapse in the planner.
                writeln!(
                    tx,
                    r#"{{"op":"predict","block":"4801c8480fafd0","id":{t}}}"#
                )
                .expect("writes");
                let mut line = String::new();
                rx.read_line(&mut line).expect("reply");
                assert!(line.contains(r#""throughput":3.0000"#), "{line}");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let deduped = planner_deduped(addr) - before;
    assert!(
        deduped > 0,
        "identical blocks from concurrent connections never shared a batch"
    );
    let c = server.counters();
    let batches = c.batches.load(Ordering::Relaxed);
    let items = c.batched_items.load(Ordering::Relaxed);
    assert!(
        batches < items,
        "cross-connection gathering never happened: {batches} batches for {items} items"
    );
    server.stop();
}
