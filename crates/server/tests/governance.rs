//! Resource-governance integration tests: the `health` op, degradation
//! tiers shedding batch-then-predict under queue pressure, per-connection
//! limits, and the cache budget's stats/snapshot behavior — all against
//! a live in-process server.

use facile_server::{Endpoint, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start(mut cfg_edit: impl FnMut(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".to_string()));
    cfg.threads = 2;
    cfg.gather_window = Duration::from_micros(100);
    cfg_edit(&mut cfg);
    Server::start(cfg).expect("server binds an ephemeral port")
}

fn connect(server: &Server) -> (TcpStream, BufReader<TcpStream>) {
    let addr = match server.bound() {
        facile_server::BoundAddr::Tcp(a) => *a,
        #[cfg(unix)]
        other => panic!("expected TCP, got {other}"),
    };
    let tx = TcpStream::connect(addr).expect("connects");
    let rx = BufReader::new(tx.try_clone().expect("clones"));
    (tx, rx)
}

fn round_trip(tx: &mut TcpStream, rx: &mut BufReader<TcpStream>, req: &str) -> String {
    writeln!(tx, "{req}").expect("request writes");
    let mut line = String::new();
    rx.read_line(&mut line).expect("reply arrives");
    line.trim_end().to_string()
}

#[test]
fn health_reply_is_pinned_when_idle() {
    let server = start(|_| {});
    let (mut tx, mut rx) = connect(&server);
    assert_eq!(
        round_trip(&mut tx, &mut rx, r#"{"op":"health","id":1}"#),
        r#"{"id":1,"ok":true,"health":"ok","pressure":0.00}"#
    );
    assert_eq!(
        round_trip(&mut tx, &mut rx, r#"{"op":"health"}"#),
        r#"{"ok":true,"health":"ok","pressure":0.00}"#
    );
    server.stop();
}

#[test]
fn tiers_shed_batch_then_predict_under_queue_pressure() {
    // queue_cap 7 + a long gather window: one admitted 7-item batch
    // holds pending_items at the cap (pressure 1.0 = shedding) until the
    // batcher's window closes, long enough to probe the tiers.
    let server = start(|cfg| {
        cfg.queue_cap = 7;
        cfg.gather_window = Duration::from_millis(1500);
        cfg.threads = 1;
    });
    let (mut atx, mut arx) = connect(&server);
    let slow = std::thread::spawn(move || {
        round_trip(
            &mut atx,
            &mut arx,
            r#"{"op":"batch","blocks":["90","90","90","90","90","90","90"],"id":"slow"}"#,
        )
    });

    let (mut tx, mut rx) = connect(&server);
    // Wait until the slow batch is admitted and pressure shows shedding.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let h = round_trip(&mut tx, &mut rx, r#"{"op":"health"}"#);
        if h.contains(r#""health":"shedding""#) {
            break;
        }
        assert!(Instant::now() < deadline, "never reached shedding: {h}");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shedding: both ops are rejected with the retryable code, ping and
    // stats still answer.
    let shed_batch = round_trip(&mut tx, &mut rx, r#"{"op":"batch","blocks":["90"],"id":2}"#);
    assert!(
        shed_batch.starts_with(r#"{"id":2,"ok":false,"code":"overloaded","error":"shedding load"#),
        "{shed_batch}"
    );
    let shed_predict = round_trip(&mut tx, &mut rx, r#"{"op":"predict","block":"90","id":3}"#);
    assert!(
        shed_predict
            .starts_with(r#"{"id":3,"ok":false,"code":"overloaded","error":"shedding load"#),
        "{shed_predict}"
    );
    assert_eq!(
        round_trip(&mut tx, &mut rx, r#"{"op":"ping","id":4}"#),
        r#"{"id":4,"ok":true,"pong":true}"#
    );
    let stats = round_trip(&mut tx, &mut rx, r#"{"op":"stats"}"#);
    assert!(stats.contains(r#""ok":true"#), "{stats}");

    // The slow batch itself was never shed: it completes with its rows.
    let slow_reply = slow.join().expect("slow batch thread");
    assert!(
        slow_reply.starts_with(r#"{"id":"slow","ok":true,"rows":["#),
        "{slow_reply}"
    );
    // Pressure collapses back to ok once the queue drains.
    let h = round_trip(&mut tx, &mut rx, r#"{"op":"health"}"#);
    assert!(h.contains(r#""health":"ok""#), "{h}");

    let c = server.counters();
    let g = |a: &std::sync::atomic::AtomicU64| a.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(g(&c.shed_batch), 1);
    assert_eq!(g(&c.shed_predict), 1);
    server.stop();
}

#[test]
fn per_connection_limits_reject_before_admission() {
    let server = start(|cfg| {
        cfg.conn_max_items = 4;
        cfg.conn_rps = 2;
    });
    let (mut tx, mut rx) = connect(&server);
    // Item cap: checked before the rate bucket and the global queue.
    let big = round_trip(
        &mut tx,
        &mut rx,
        r#"{"op":"batch","blocks":["90","90","90","90","90"],"id":1}"#,
    );
    assert_eq!(
        big,
        r#"{"id":1,"ok":false,"code":"overloaded","error":"request carries 5 items, above this connection's 4-item limit"}"#
    );
    // Within the cap: serves normally, consuming one token.
    let ok = round_trip(
        &mut tx,
        &mut rx,
        r#"{"op":"batch","blocks":["90","90","90","90"]}"#,
    );
    assert!(ok.starts_with(r#"{"ok":true,"rows":["#), "{ok}");
    // Second token, then the bucket is dry.
    let ok = round_trip(&mut tx, &mut rx, r#"{"op":"predict","block":"90"}"#);
    assert!(ok.starts_with(r#"{"ok":true,"rows":["#), "{ok}");
    let limited = round_trip(&mut tx, &mut rx, r#"{"op":"predict","block":"90","id":9}"#);
    assert_eq!(
        limited,
        r#"{"id":9,"ok":false,"code":"overloaded","error":"connection rate limit: above 2 request(s)/s"}"#
    );
    // Ping and health are never rate-limited.
    assert_eq!(
        round_trip(&mut tx, &mut rx, r#"{"op":"ping"}"#),
        r#"{"ok":true,"pong":true}"#
    );
    // A fresh connection gets a fresh bucket.
    let (mut tx2, mut rx2) = connect(&server);
    let ok = round_trip(&mut tx2, &mut rx2, r#"{"op":"predict","block":"90"}"#);
    assert!(ok.starts_with(r#"{"ok":true,"rows":["#), "{ok}");

    let c = server.counters();
    assert_eq!(
        c.rejected_conn_limit
            .load(std::sync::atomic::Ordering::Relaxed),
        2
    );
    server.stop();
}

#[test]
fn cache_budget_bounds_memory_and_snapshots_survivors() {
    let dir = std::env::temp_dir().join(format!("facile-governance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("budget.snap");
    let budget_mb = 8usize;
    let server = start(|cfg| {
        cfg.cache_budget = Some(facile_engine::CacheBudget::from_total_mb(budget_mb));
        cfg.snapshot = Some(snap.clone());
    });
    let (mut tx, mut rx) = connect(&server);
    // Distinct blocks (mov eax, imm32) defeat dedup and fill the cache.
    let blocks: Vec<String> = (0..512u32).map(|i| format!("\"b8{i:08x}\"")).collect();
    let req = format!(r#"{{"op":"batch","blocks":[{}]}}"#, blocks.join(","));
    let reply = round_trip(&mut tx, &mut rx, &req);
    assert!(reply.starts_with(r#"{"ok":true,"rows":["#), "{reply}");

    // Stats expose the governance state alongside the counters.
    let stats = round_trip(&mut tx, &mut rx, r#"{"op":"stats"}"#);
    let v = facile_server::json::parse(&stats).expect("stats reply parses");
    let srv = v
        .get("stats")
        .and_then(|s| s.get("server"))
        .expect("server stats");
    assert!(srv.get("tier").is_some(), "stats missing tier: {stats}");
    assert!(
        srv.get("pressure").is_some(),
        "stats missing pressure: {stats}"
    );
    assert!(
        srv.get("external").is_some(),
        "stats missing external: {stats}"
    );
    let budget = srv.get("budget").expect("budget object");
    let high = budget
        .get("high_watermark")
        .and_then(|t| t.as_f64())
        .expect("budget high watermark");
    assert_eq!(high as usize, (budget_mb << 20) / 100 * 90);
    let accounted = budget
        .get("bytes")
        .and_then(|t| t.as_f64())
        .expect("budget bytes");
    assert!(
        accounted > 0.0 && accounted <= (budget_mb << 20) as f64,
        "accounted {accounted} bytes vs the {budget_mb} MiB budget"
    );
    let cache_bytes = v
        .get("stats")
        .and_then(|s| s.get("engine"))
        .and_then(|e| e.get("block_cache"))
        .and_then(|c| c.get("bytes"))
        .and_then(|b| b.as_f64())
        .expect("block_cache bytes");
    assert!(cache_bytes > 0.0, "cache accounted no bytes");
    assert!(
        (cache_bytes as usize) <= budget_mb << 20,
        "cache bytes {cache_bytes} above the {budget_mb} MiB budget"
    );

    // Stopping snapshots whatever survived eviction; a fresh server
    // under the same budget loads it cleanly.
    let saved = server.stop().expect("snapshot configured");
    saved.expect("snapshot of the bounded cache saves");
    let server2 = start(|cfg| {
        cfg.cache_budget = Some(facile_engine::CacheBudget::from_total_mb(budget_mb));
        cfg.snapshot = Some(snap.clone());
    });
    let loaded = server2
        .snapshot_loaded
        .as_ref()
        .expect("snapshot configured")
        .as_ref();
    assert!(loaded.is_ok(), "snapshot reload failed: {loaded:?}");
    let (mut tx, mut rx) = connect(&server2);
    assert_eq!(
        round_trip(&mut tx, &mut rx, r#"{"op":"ping"}"#),
        r#"{"ok":true,"pong":true}"#
    );
    server2.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
