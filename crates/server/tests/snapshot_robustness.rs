//! Persistent-snapshot robustness: a snapshot round-trip must produce
//! bit-identical rows without re-annotating, and every way a snapshot
//! file can be wrong — truncated, bit-flipped, version-bumped, foreign
//! magic, foreign uarch tables — must degrade to a *cold start*, never
//! to an error and never to wrong rows.

use facile_bhive::generate_suite;
use facile_engine::{render, AnnotationCache, BatchItem, Engine};
use facile_server::snapshot::{self, SnapshotError, MAGIC, VERSION};
use facile_uarch::Uarch;
use std::path::{Path, PathBuf};

/// A unique temp path per test (tests run in parallel in one process).
fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("facile-snap-{}-{tag}.bin", std::process::id()))
}

/// A small deterministic workload: generated blocks on two uarchs.
fn workload() -> Vec<BatchItem> {
    generate_suite(40, 0xfacade)
        .into_iter()
        .flat_map(|b| {
            let hex = b.unrolled.to_hex();
            [
                BatchItem::hex(hex.clone(), Uarch::Skl),
                BatchItem::hex(hex, Uarch::Rkl),
            ]
        })
        .collect()
}

fn rows_of(engine: &Engine, items: &[BatchItem]) -> Vec<String> {
    engine
        .predict_batch(items, "facile")
        .expect("facile predictor exists")
        .iter()
        .map(render::row_json)
        .collect()
}

/// Save a populated snapshot to `path` and return the cold rows it was
/// derived from.
fn seed_snapshot(path: &Path) -> Vec<String> {
    let engine = Engine::with_builtins().with_threads(2);
    let items = workload();
    let rows = rows_of(&engine, &items);
    let info = snapshot::save(path, engine.cache()).expect("save succeeds");
    assert!(info.blocks > 0 && info.annotations >= info.blocks);
    rows
}

#[test]
fn round_trip_is_bit_identical_and_warm() {
    let path = temp_path("roundtrip");
    let cold_rows = seed_snapshot(&path);

    let engine = Engine::with_builtins().with_threads(2);
    let info = snapshot::load(&path, engine.cache()).expect("load succeeds");
    assert!(info.blocks > 0, "snapshot restored nothing");
    let stats = engine.cache().stats();
    assert_eq!(stats.blocks, info.blocks, "restored blocks are resident");
    assert_eq!(stats.entries, info.annotations);

    let warm_rows = rows_of(&engine, &workload());
    assert_eq!(cold_rows, warm_rows, "warm rows differ from cold rows");

    // The warm run never annotated: every lookup was a level-2 hit.
    let stats = engine.cache().stats();
    assert!(stats.hits > 0, "warm run should hit the restored cache");
    assert_eq!(
        stats.misses, 0,
        "warm run re-annotated {} blocks the snapshot should have covered",
        stats.misses
    );
    std::fs::remove_file(&path).ok();
}

/// Corrupt `path` with `mangle`, then assert the loader reports
/// `expected` and imports nothing.
fn assert_cold_start(
    path: &Path,
    tag: &str,
    mangle: impl FnOnce(&mut Vec<u8>),
    expected: &SnapshotError,
) {
    let bad = temp_path(tag);
    let mut data = std::fs::read(path).expect("snapshot exists");
    mangle(&mut data);
    std::fs::write(&bad, &data).expect("writes corrupted copy");
    let cache = AnnotationCache::new();
    let err = snapshot::load(&bad, &cache).expect_err("corrupt snapshot must not load");
    assert_eq!(&err, expected, "{tag}");
    let stats = cache.stats();
    assert_eq!(
        (stats.blocks, stats.entries),
        (0, 0),
        "{tag}: a rejected snapshot must import nothing"
    );
    std::fs::remove_file(&bad).ok();
}

#[test]
fn every_damage_mode_falls_back_to_cold() {
    let path = temp_path("damage");
    seed_snapshot(&path);
    let len = std::fs::read(&path).expect("snapshot exists").len();

    assert_cold_start(
        &path,
        "truncated",
        |d| d.truncate(len - 11),
        &SnapshotError::Truncated,
    );
    assert_cold_start(
        &path,
        "payload-flip",
        |d| d[40] ^= 0x01,
        &SnapshotError::ChecksumMismatch,
    );
    assert_cold_start(
        &path,
        "version-bump",
        |d| d[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes()),
        &SnapshotError::BadVersion(VERSION + 1),
    );
    assert_cold_start(
        &path,
        "bad-magic",
        |d| d[0..8].copy_from_slice(b"NOTFACIL"),
        &SnapshotError::BadMagic,
    );
    assert_cold_start(
        &path,
        "uhash-flip",
        |d| d[12] ^= 0xff,
        &SnapshotError::TableHashMismatch,
    );
    // A snapshot written by a binary with different generated
    // descriptor tables: typed rejection, cold start.
    assert_cold_start(
        &path,
        "thash-flip",
        |d| d[20] ^= 0xff,
        &SnapshotError::StaticTableMismatch,
    );
    // Declared payload length beyond the file: truncation, not a panic.
    assert_cold_start(
        &path,
        "length-lie",
        |d| d[28..36].copy_from_slice(&(u64::MAX / 2).to_le_bytes()),
        &SnapshotError::Truncated,
    );
    // Sanity: the undamaged original still loads.
    let cache = AnnotationCache::new();
    assert!(snapshot::load(&path, &cache).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_io_not_panic() {
    let cache = AnnotationCache::new();
    let err = snapshot::load(&temp_path("nonexistent"), &cache).expect_err("no file");
    assert!(matches!(err, SnapshotError::Io(_)), "{err:?}");
}

#[test]
fn magic_and_version_are_pinned() {
    // The on-disk format is a compatibility surface: changing either of
    // these without a deliberate migration breaks every deployed
    // snapshot, so the constants themselves are pinned.
    assert_eq!(MAGIC, *b"FACSNAP1");
    assert_eq!(VERSION, 2);
    // The table hashes are stable within a build.
    assert_eq!(snapshot::uarch_table_hash(), snapshot::uarch_table_hash());
    assert_ne!(facile_isa::TABLE_HASH, 0);
}
