//! Protocol golden tests: every request/response shape is pinned to
//! exact reply bytes against a live in-process server, so any protocol
//! change is a deliberate golden update, never an accident.
//!
//! The `stats` reply is the one exception: the intern table is
//! process-wide and the engine counters move with parallel test
//! execution, so its reply is shape-checked rather than byte-pinned.

use facile_server::{Endpoint, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start(mut cfg_edit: impl FnMut(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig::new(Endpoint::Tcp("127.0.0.1:0".to_string()));
    cfg.threads = 2;
    cfg.gather_window = Duration::from_micros(100);
    cfg_edit(&mut cfg);
    Server::start(cfg).expect("server binds an ephemeral port")
}

fn connect(server: &Server) -> (TcpStream, BufReader<TcpStream>) {
    let addr = match server.bound() {
        facile_server::BoundAddr::Tcp(a) => *a,
        #[cfg(unix)]
        other => panic!("expected TCP, got {other}"),
    };
    let tx = TcpStream::connect(addr).expect("connects");
    let rx = BufReader::new(tx.try_clone().expect("clones"));
    (tx, rx)
}

fn round_trip(tx: &mut TcpStream, rx: &mut BufReader<TcpStream>, req: &str) -> String {
    writeln!(tx, "{req}").expect("request writes");
    let mut line = String::new();
    rx.read_line(&mut line).expect("reply arrives");
    assert!(line.ends_with('\n'), "replies are newline-terminated");
    line.trim_end().to_string()
}

#[test]
fn golden_replies() {
    let server = start(|_| {});
    let (mut tx, mut rx) = connect(&server);
    let mut rt = |req: &str| round_trip(&mut tx, &mut rx, req);

    // Liveness, with and without an echoed id (ids echo verbatim —
    // numbers, strings, and structured values alike).
    assert_eq!(rt(r#"{"op":"ping"}"#), r#"{"ok":true,"pong":true}"#);
    assert_eq!(
        rt(r#"{"op":"ping","id":17}"#),
        r#"{"id":17,"ok":true,"pong":true}"#
    );
    assert_eq!(
        rt(r#"{"op":"ping","id":{"seq":[1,2]}}"#),
        r#"{"id":{"seq":[1,2]},"ok":true,"pong":true}"#
    );

    // Single-block predict: the row is the CLI's own JSON rendering.
    assert_eq!(
        rt(r#"{"op":"predict","block":"4801c8","uarch":"SKL","id":1}"#),
        "{\"id\":1,\"ok\":true,\"rows\":[{\"block\":\"4801c8\",\"uarch\":\"SKL\",\"mode\":\"tpu\",\
         \"predictor\":\"facile\",\"status\":\"ok\",\"throughput\":1.0000,\
         \"bottleneck\":\"Precedence\"}]}"
    );

    // Batch: rows in item order; undecodable blocks become error rows.
    assert_eq!(
        rt(r#"{"op":"batch","blocks":["4801c8480fafd0","zz"],"uarch":"SKL"}"#),
        "{\"ok\":true,\"rows\":[{\"block\":\"4801c8480fafd0\",\"uarch\":\"SKL\",\"mode\":\"tpu\",\
         \"predictor\":\"facile\",\"status\":\"ok\",\"throughput\":3.0000,\
         \"bottleneck\":\"Precedence\"},{\"block\":\"zz\",\"uarch\":\"SKL\",\"mode\":\"\",\
         \"predictor\":\"facile\",\"status\":\"error\",\"code\":\"bad-hex\",\
         \"error\":\"not a hex-encoded block: \\\"zz\\\"\"}]}"
    );

    // Fixed notion + CSV rendering: rows are carried as JSON strings.
    assert_eq!(
        rt(r#"{"op":"predict","block":"49ffcb75fb","uarch":"SKL","mode":"tpl","format":"csv"}"#),
        r#"{"ok":true,"rows":["49ffcb75fb,SKL,tpl,facile,ok,1.0000,DSB,"]}"#
    );

    // Protocol errors: stable codes, ids still echoed.
    assert_eq!(
        rt("not json"),
        r#"{"ok":false,"code":"bad-json","error":"malformed JSON: invalid literal at byte 0"}"#
    );
    assert_eq!(
        rt(r#"{"op":"warp","id":"a"}"#),
        r#"{"id":"a","ok":false,"code":"bad-request","error":"unknown op: \"warp\""}"#
    );
    assert_eq!(
        rt(r#"{"op":"predict","block":"90","uarhc":"SKL"}"#),
        r#"{"ok":false,"code":"bad-request","error":"unknown field: \"uarhc\""}"#
    );
    let unknown = rt(r#"{"op":"predict","block":"90","predictors":"no-such","id":9}"#);
    assert!(
        unknown.starts_with(r#"{"id":9,"ok":false,"code":"unknown-predictor""#),
        "{unknown}"
    );

    // Empty batch: a well-formed empty reply, not an error.
    assert_eq!(
        rt(r#"{"op":"batch","blocks":[],"id":0}"#),
        r#"{"id":0,"ok":true,"rows":[]}"#
    );
    server.stop();
}

#[test]
fn stats_reply_shape() {
    let server = start(|_| {});
    let (mut tx, mut rx) = connect(&server);
    let _ = round_trip(&mut tx, &mut rx, r#"{"op":"predict","block":"4801c8"}"#);
    let reply = round_trip(&mut tx, &mut rx, r#"{"op":"stats","id":5}"#);
    let v = facile_server::json::parse(&reply).expect("stats reply parses");
    assert_eq!(v.get("id").and_then(|x| x.as_f64()), Some(5.0));
    let stats = v.get("stats").expect("stats member");
    let srv = stats.get("server").expect("server counters");
    for key in [
        "connections",
        "requests",
        "rows",
        "batches",
        "batched_items",
        "rejected_overload",
        "rejected_deadline",
        "protocol_errors",
        "snapshot_saves",
        "snapshot_save_errors",
        "batcher_restarts",
    ] {
        assert!(srv.get(key).is_some(), "server stats missing {key}");
    }
    assert!(srv.get("rows").and_then(|x| x.as_f64()).expect("rows") >= 1.0);
    let engine = stats.get("engine").expect("engine counters");
    for key in [
        "planner",
        "block_cache",
        "intern_table",
        "static_tables",
        "kernels",
    ] {
        assert!(engine.get(key).is_some(), "engine stats missing {key}");
    }
    server.stop();
}

#[test]
fn overload_and_deadline_rejections() {
    // queue_cap 2: a 3-item request cannot be admitted.
    let server = start(|cfg| cfg.queue_cap = 2);
    let (mut tx, mut rx) = connect(&server);
    assert_eq!(
        round_trip(
            &mut tx,
            &mut rx,
            r#"{"op":"batch","blocks":["90","90","90"],"id":1}"#
        ),
        r#"{"id":1,"ok":false,"code":"overloaded","error":"queue full: 3 items would exceed the 2-item cap"}"#
    );
    // Within the cap, requests still serve.
    let ok = round_trip(&mut tx, &mut rx, r#"{"op":"batch","blocks":["90","90"]}"#);
    assert!(ok.starts_with(r#"{"ok":true,"rows":["#), "{ok}");

    // deadline_ms 0: expired by the time the batcher dequeues it.
    assert_eq!(
        round_trip(
            &mut tx,
            &mut rx,
            r#"{"op":"predict","block":"4801c8","deadline_ms":0,"id":2}"#
        ),
        r#"{"id":2,"ok":false,"code":"deadline-exceeded","error":"request exceeded its deadline while queued"}"#
    );
    // A generous deadline passes untouched.
    let ok = round_trip(
        &mut tx,
        &mut rx,
        r#"{"op":"predict","block":"4801c8","deadline_ms":60000}"#,
    );
    assert!(ok.contains(r#""status":"ok""#), "{ok}");

    let counters = server.counters();
    assert_eq!(
        counters
            .rejected_overload
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(
        counters
            .rejected_deadline
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    server.stop();
}

#[test]
fn oversized_line_is_rejected() {
    let server = start(|cfg| cfg.max_line_bytes = 256);
    let (mut tx, mut rx) = connect(&server);
    let huge = format!(r#"{{"op":"batch","blocks":["{}"]}}"#, "90".repeat(4096));
    writeln!(tx, "{huge}").expect("writes");
    let mut line = String::new();
    rx.read_line(&mut line).expect("reply arrives");
    assert_eq!(
        line.trim_end(),
        r#"{"ok":false,"code":"line-too-long","error":"request line exceeds 256 bytes"}"#
    );
    // The line was newline-terminated, so the boundary is known and the
    // connection survives the rejection.
    assert_eq!(
        round_trip(&mut tx, &mut rx, r#"{"op":"ping","id":1}"#),
        r#"{"id":1,"ok":true,"pong":true}"#
    );
    // An *unterminated* over-long line loses the boundary: the server
    // rejects it and hangs up.
    let (mut tx2, mut rx2) = connect(&server);
    write!(tx2, "{}", "x".repeat(512)).expect("writes");
    tx2.flush().expect("flushes");
    line.clear();
    rx2.read_line(&mut line).expect("reply arrives");
    assert_eq!(
        line.trim_end(),
        r#"{"ok":false,"code":"line-too-long","error":"request line exceeds 256 bytes"}"#
    );
    line.clear();
    assert_eq!(rx2.read_line(&mut line).expect("EOF"), 0);
    server.stop();
}

#[test]
fn drain_answers_inflight_then_closes() {
    let server = start(|_| {});
    let (mut tx, mut rx) = connect(&server);
    assert_eq!(
        round_trip(&mut tx, &mut rx, r#"{"op":"ping","id":1}"#),
        r#"{"id":1,"ok":true,"pong":true}"#
    );
    server.stop();
    // The server is gone: either the write fails or the read sees EOF.
    let dead = writeln!(tx, r#"{{"op":"ping"}}"#).is_err() || {
        let mut line = String::new();
        rx.read_line(&mut line).map_or(true, |n| n == 0)
    };
    assert!(dead, "connection should be closed after stop()");
}
