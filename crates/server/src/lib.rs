//! # facile-server
//!
//! Prediction-as-a-service: a long-lived daemon over the batched
//! prediction engine (`facile-engine`), speaking newline-delimited JSON
//! over a Unix-domain socket or TCP.
//!
//! Three properties define the design:
//!
//! * **Cross-connection batching.** Requests from concurrent
//!   connections gather into shared engine batches (a thread per
//!   connection feeds a micro-batching queue), so the batch planner's
//!   dedup stage and the two-level annotation cache work *across*
//!   clients exactly as they work across lines of a CLI batch. See
//!   [`server`].
//! * **Byte-identical rows.** Protocol replies render rows with the
//!   same `facile_engine::render` functions the CLI uses, so a row
//!   served over a socket is byte-for-byte the row `facile --batch`
//!   prints for the same input. See [`protocol`].
//! * **Persistent warmth.** The annotation cache can be written to a
//!   versioned, checksummed on-disk snapshot at shutdown and reloaded
//!   at startup, so a restarted daemon serves its first batch at
//!   warm-cache speed. Stale or damaged snapshots are detected and
//!   ignored — the server falls back to a cold start, never to wrong
//!   rows. See [`snapshot`].
//!
//! The `facile serve` and `facile client` CLI subcommands are thin
//! wrappers over this crate.
//!
//! A fourth property — **fault containment** — is layered across all of
//! the above: per-item panics become `internal-panic` error rows (the
//! engine's `catch_unwind` isolation), every shared lock recovers from
//! poisoning, a supervisor restarts a dead batcher thread, and the
//! whole path can be exercised deterministically via the re-exported
//! [`faults`] crate (compiled in only with the `fault-injection`
//! feature).

#![warn(missing_docs)]

pub use facile_faults as faults;

pub mod json;
pub mod protocol;
pub mod server;
pub mod snapshot;

pub use protocol::{error_reply, parse_request, Parsed, ProtoError, Render, Request, Work};
pub use server::{sig, BoundAddr, Endpoint, Server, ServerConfig, ServerCounters};
pub use snapshot::{uarch_table_hash, SnapshotError, SnapshotInfo};
