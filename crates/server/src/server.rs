//! The daemon: listeners, connection threads, and the micro-batcher.
//!
//! ```text
//!  conn thread ──┐  enqueue(Job)                 ┌── reply channel ──┐
//!  conn thread ──┼──► bounded queue ──► batcher ─┤                   ├─► reply line
//!  conn thread ──┘   (admission)       thread    └── rows slice  ────┘
//! ```
//!
//! Each connection is served by one thread that reads a request line,
//! enqueues the work, blocks on its private reply channel, and writes
//! the reply — so per-connection reply order is trivially request
//! order. Parallelism comes from the *batcher*: it dequeues the first
//! waiting job, then gathers everything else that arrives within a
//! short window into one engine batch. Concurrent requests from
//! different connections therefore reach `Engine::run_batch` as one
//! plan, where the planner's dedup stage collapses identical
//! `(block, uarch, mode, detail)` items *across connections* and the
//! two-level annotation cache serves repeats — the same machinery, and
//! the same rows, as the CLI's batch mode.
//!
//! Admission control is a bounded count of queued-plus-in-flight items:
//! a request that would exceed it is rejected immediately with an
//! `overloaded` error rather than queued behind an unbounded backlog.
//! A request may carry a deadline; if it is still queued when its
//! deadline passes, the batcher drops it with `deadline-exceeded`
//! instead of spending engine time on an answer nobody is waiting for.
//!
//! Shutdown ([`Server::stop`], or a signal via [`sig`]) is a drain, not
//! an abort: listeners stop accepting, idle connections close, admitted
//! requests run to completion and their replies are written, the queue
//! empties, and — when configured — the annotation cache is written to
//! its snapshot file.

use crate::protocol::{self, Parsed, ProtoError, Request};
use crate::snapshot::{self, SnapshotError, SnapshotInfo};
use facile_engine::{
    panic_payload, BatchItem, BreakerSpec, CacheBudget, Engine, ExternalPredictor, ExternalSpec,
    ItemResult, Predictor,
};
use facile_util::{recover, GlobalBudget, PoisonlessMutex};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// Where the server listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A Unix-domain socket at the given path.
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP address in `host:port` form (port `0` = ephemeral).
    Tcp(String),
}

/// Server tuning knobs. `ServerConfig::new(endpoint)` gives defaults
/// sized for an interactive daemon; every field is public.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen endpoint.
    pub endpoint: Endpoint,
    /// Engine worker threads (`0` = one per host CPU).
    pub threads: usize,
    /// Default predictor selector for requests that omit `predictors`.
    pub predictors: String,
    /// Admission bound: queued + in-flight batch items.
    pub queue_cap: usize,
    /// How long the batcher waits for more work after the first job.
    pub gather_window: Duration,
    /// Largest number of items gathered into one engine batch.
    pub max_batch_items: usize,
    /// Longest accepted request line, in bytes.
    pub max_line_bytes: usize,
    /// Annotation snapshot file: loaded at startup, written on shutdown
    /// (and periodically, if `snapshot_interval` is set).
    pub snapshot: Option<PathBuf>,
    /// Write the snapshot every so often while serving.
    pub snapshot_interval: Option<Duration>,
    /// Deterministic fault-injection spec (see the `facile-faults`
    /// crate), armed at startup. Ignored — with a warning left to the
    /// caller — in builds without the `fault-injection` feature.
    pub faults: Option<String>,
    /// External predictor tools to register alongside the builtins
    /// (each reachable under its `ext:<name>` key in request selectors).
    pub external: Vec<ExternalSpec>,
    /// Total memory budget shared by the annotation, intern-table, and
    /// external-result caches. `None` = unbounded (the legacy behavior).
    pub cache_budget: Option<CacheBudget>,
    /// Largest number of batch items one request may carry
    /// (`0` = unlimited): a per-connection fairness cap, checked before
    /// the global admission bound.
    pub conn_max_items: usize,
    /// Per-connection prediction requests per second (`0` = unlimited),
    /// enforced by a token bucket whose burst equals the rate.
    pub conn_rps: u64,
    /// Default circuit breaker applied to every external spec that does
    /// not carry its own (`None` = the legacy give-up-forever behavior).
    pub breaker: Option<BreakerSpec>,
}

impl ServerConfig {
    /// Defaults for the given endpoint.
    #[must_use]
    pub fn new(endpoint: Endpoint) -> ServerConfig {
        ServerConfig {
            endpoint,
            threads: 0,
            predictors: "facile".to_string(),
            queue_cap: 65_536,
            gather_window: Duration::from_micros(500),
            max_batch_items: 8_192,
            max_line_bytes: 1 << 20,
            snapshot: None,
            snapshot_interval: None,
            faults: None,
            external: Vec::new(),
            cache_budget: None,
            conn_max_items: 0,
            conn_rps: 0,
            breaker: Some(BreakerSpec::default()),
        }
    }
}

/// Monotonic serving counters, exposed by the `stats` op.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Request lines handled (including rejected ones).
    pub requests: AtomicU64,
    /// Prediction rows served.
    pub rows: AtomicU64,
    /// Engine batches dispatched by the batcher.
    pub batches: AtomicU64,
    /// Items across those batches (≥ jobs; cross-connection gathering
    /// makes this exceed per-request item counts).
    pub batched_items: AtomicU64,
    /// Requests rejected at admission (`overloaded`).
    pub rejected_overload: AtomicU64,
    /// Requests dropped in the queue (`deadline-exceeded`).
    pub rejected_deadline: AtomicU64,
    /// Lines rejected before reaching the engine (`bad-json`,
    /// `bad-request`, `line-too-long`).
    pub protocol_errors: AtomicU64,
    /// Snapshot writes that succeeded.
    pub snapshot_saves: AtomicU64,
    /// Snapshot writes that failed (disk full, permissions, injected).
    pub snapshot_save_errors: AtomicU64,
    /// Times the supervisor restarted a dead batcher thread.
    pub batcher_restarts: AtomicU64,
    /// Requests rejected by per-connection limits (item cap or rate).
    pub rejected_conn_limit: AtomicU64,
    /// `batch` requests shed while the server was degraded or shedding.
    pub shed_batch: AtomicU64,
    /// `predict` requests shed while the server was shedding.
    pub shed_predict: AtomicU64,
}

impl ServerCounters {
    /// The counters as a JSON object (the `stats` reply's
    /// `"server"` member).
    #[must_use]
    pub fn to_json(&self) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            "{{\"connections\":{},\"requests\":{},\"rows\":{},\"batches\":{},\
             \"batched_items\":{},\"rejected_overload\":{},\"rejected_deadline\":{},\
             \"protocol_errors\":{},\"snapshot_saves\":{},\"snapshot_save_errors\":{},\
             \"batcher_restarts\":{},\"rejected_conn_limit\":{},\"shed_batch\":{},\
             \"shed_predict\":{}}}",
            g(&self.connections),
            g(&self.requests),
            g(&self.rows),
            g(&self.batches),
            g(&self.batched_items),
            g(&self.rejected_overload),
            g(&self.rejected_deadline),
            g(&self.protocol_errors),
            g(&self.snapshot_saves),
            g(&self.snapshot_save_errors),
            g(&self.batcher_restarts),
            g(&self.rejected_conn_limit),
            g(&self.shed_batch),
            g(&self.shed_predict),
        )
    }
}

/// One queued request: the engine work plus the channel its connection
/// thread is blocked on.
struct Job {
    items: Vec<BatchItem>,
    selector: Arc<str>,
    deadline: Option<Instant>,
    reply: mpsc::Sender<JobReply>,
}

/// What the batcher sends back to a connection thread.
enum JobReply {
    /// This job's slice of the batch rows, in item order.
    Rows(Vec<ItemResult>),
    /// The job was dropped before (or instead of) running.
    Err {
        /// Protocol error code.
        code: &'static str,
        /// Human-readable detail.
        message: String,
    },
}

struct Shared {
    engine: Engine,
    cfg: ServerConfig,
    queue: PoisonlessMutex<Vec<Job>>,
    queue_cv: Condvar,
    /// Queued + in-flight items (admission control). Incremented at
    /// admission, decremented when the job's reply is sent.
    pending_items: AtomicUsize,
    /// Set once: stop accepting, drain, exit.
    draining: AtomicBool,
    /// Set only after every connection thread has joined, so the
    /// batcher cannot exit between a connection's admission check and
    /// its enqueue (which would strand the job and deadlock the drain).
    batcher_stop: AtomicBool,
    counters: ServerCounters,
    /// The global cache budget (when `cfg.cache_budget` is set).
    budget: Option<Arc<GlobalBudget>>,
    /// The registered external predictors, kept for stats and breaker
    /// introspection.
    externals: Vec<Arc<ExternalPredictor>>,
    /// Current degradation tier: 0 = ok, 1 = degraded, 2 = shedding.
    tier: AtomicU8,
}

/// Degradation-tier names, indexed by the `Shared::tier` value.
const TIER_NAMES: [&str; 3] = ["ok", "degraded", "shedding"];

/// Pressure above which `batch` requests are shed.
const DEGRADED_PRESSURE: f64 = 0.80;
/// Pressure above which `predict` requests are shed too.
const SHEDDING_PRESSURE: f64 = 0.95;

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || sig::requested()
    }

    /// Load pressure in `[0, ∞)`: the max of queue occupancy (pending
    /// items over the admission cap) and memory occupancy (accounted
    /// cache bytes over the budget's high watermark).
    fn pressure(&self) -> f64 {
        let queue = if self.cfg.queue_cap == 0 {
            0.0
        } else {
            self.pending_items.load(Ordering::Relaxed) as f64 / self.cfg.queue_cap as f64
        };
        let memory = self.budget.as_ref().map_or(0.0, |b| {
            if b.high() == 0 {
                0.0
            } else {
                b.total() as f64 / b.high() as f64
            }
        });
        queue.max(memory)
    }

    /// Fold the current pressure into the degradation tier, logging each
    /// transition once per edge.
    fn observe_tier(&self, pressure: f64) -> u8 {
        let tier = if pressure >= SHEDDING_PRESSURE {
            2
        } else if pressure >= DEGRADED_PRESSURE {
            1
        } else {
            0
        };
        let prev = self.tier.swap(tier, Ordering::Relaxed);
        if prev != tier {
            eprintln!(
                "facile-serve: degradation tier {} -> {} (pressure {pressure:.2})",
                TIER_NAMES[prev as usize], TIER_NAMES[tier as usize]
            );
        }
        tier
    }

    /// The `stats` reply's `"server"` object: the monotonic counters
    /// plus governance state (tier, pressure, budget occupancy, and
    /// per-external breaker/cache figures).
    fn server_stats_json(&self) -> String {
        let mut s = self.counters.to_json();
        s.pop(); // reopen the counters object to append members
        let tier = self.tier.load(Ordering::Relaxed);
        s.push_str(&format!(
            ",\"tier\":\"{}\",\"pressure\":{:.2}",
            TIER_NAMES[tier as usize],
            self.pressure()
        ));
        if let Some(b) = &self.budget {
            s.push_str(&format!(
                ",\"budget\":{{\"bytes\":{},\"high_watermark\":{},\"low_watermark\":{},\
                 \"shrinks\":{},\"high_crossings\":{}}}",
                b.total(),
                b.high(),
                b.low(),
                b.shrinks(),
                b.high_crossings()
            ));
        }
        s.push_str(",\"external\":[");
        for (i, ext) in self.externals.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"breaker_open\":{},\"breaker_trips\":{},\
                 \"cache_bytes\":{},\"cache_evictions\":{}}}",
                ext.name(),
                ext.breaker_open(),
                ext.breaker_trips(),
                ext.cache_bytes(),
                ext.cache_evictions()
            ));
        }
        s.push_str("]}");
        s
    }
}

/// The address a started server actually listens on (the TCP variant
/// carries the resolved ephemeral port).
#[derive(Debug, Clone)]
pub enum BoundAddr {
    /// Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
    /// Resolved TCP address.
    Tcp(SocketAddr),
}

impl std::fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            BoundAddr::Unix(p) => write!(f, "{}", p.display()),
            BoundAddr::Tcp(a) => write!(f, "{a}"),
        }
    }
}

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum Stream {
    #[cfg(unix)]
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // Replies are small; Nagle + delayed ACK would add tens
                // of milliseconds to every round trip.
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

impl Stream {
    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    fn set_blocking(&self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(false),
            Stream::Tcp(s) => s.set_nonblocking(false),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`Server::stop`] for a clean drain (tests) or park the process on
/// [`Server::run_until_signal`] (the CLI).
pub struct Server {
    shared: Arc<Shared>,
    bound: BoundAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    batcher: Option<std::thread::JoinHandle<()>>,
    conns: Arc<PoisonlessMutex<Vec<std::thread::JoinHandle<()>>>>,
    /// What loading the configured snapshot found at startup.
    pub snapshot_loaded: Option<Result<SnapshotInfo, SnapshotError>>,
}

impl Server {
    /// Bind the endpoint, load the snapshot (if configured), and start
    /// the acceptor and batcher threads.
    ///
    /// # Errors
    /// Binding the endpoint can fail; snapshot problems never do (they
    /// are reported in [`Server::snapshot_loaded`]).
    pub fn start(mut cfg: ServerConfig) -> std::io::Result<Server> {
        if let Some(spec) = cfg.faults.as_deref() {
            // A malformed spec is a configuration error; arming in a
            // build without injection compiled in is a silent no-op
            // (configure returns Ok(false)) that the CLI warns about.
            facile_faults::configure(spec)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?;
        }
        let threads = if cfg.threads == 0 {
            facile_engine::host_threads()
        } else {
            cfg.threads
        };
        // External specs without their own breaker inherit the server
        // default, so a sick tool trips open instead of giving up forever.
        if let Some(b) = cfg.breaker {
            for spec in &mut cfg.external {
                spec.breaker.get_or_insert(b);
            }
        }
        let mut engine = Engine::with_builtins().with_threads(threads);
        let mut externals: Vec<Arc<ExternalPredictor>> = Vec::with_capacity(cfg.external.len());
        for spec in &cfg.external {
            let pred = Arc::new(ExternalPredictor::new(spec.clone()));
            externals.push(Arc::clone(&pred));
            engine.registry_mut().register(pred);
        }
        // Cap the caches before the snapshot loads, so a snapshot larger
        // than the budget is trimmed on the way in rather than admitted
        // whole.
        let budget = cfg.cache_budget.as_ref().map(|b| {
            let global = engine.apply_cache_budget(b, true);
            if !externals.is_empty() {
                let per = b.external_capacity() / externals.len();
                for ext in &externals {
                    ext.set_cache_capacity(per);
                    ext.attach_cache_budget(&global);
                }
            }
            global
        });
        let snapshot_loaded = cfg
            .snapshot
            .as_deref()
            .map(|p| snapshot::load(p, engine.cache()));

        let (listener, bound) = match &cfg.endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                if path.exists() {
                    // A connectable socket means another daemon is live;
                    // a dangling one is a stale leftover to replace.
                    if UnixStream::connect(path).is_ok() {
                        return Err(std::io::Error::new(
                            ErrorKind::AddrInUse,
                            format!("{} is already being served", path.display()),
                        ));
                    }
                    let _ = std::fs::remove_file(path);
                }
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    BoundAddr::Unix(path.clone()),
                )
            }
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let local = l.local_addr()?;
                (Listener::Tcp(l), BoundAddr::Tcp(local))
            }
        };
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            engine,
            cfg,
            queue: PoisonlessMutex::new(Vec::new()),
            queue_cv: Condvar::new(),
            pending_items: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            batcher_stop: AtomicBool::new(false),
            counters: ServerCounters::default(),
            budget,
            externals,
            tier: AtomicU8::new(0),
        });
        let conns: Arc<PoisonlessMutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();

        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("facile-batcher".into())
                .spawn(move || batcher_supervisor(&shared))?
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("facile-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared, &conns))?
        };
        Ok(Server {
            shared,
            bound,
            acceptor: Some(acceptor),
            batcher: Some(batcher),
            conns,
            snapshot_loaded,
        })
    }

    /// The address the server actually listens on.
    #[must_use]
    pub fn bound(&self) -> &BoundAddr {
        &self.bound
    }

    /// The serving counters.
    #[must_use]
    pub fn counters(&self) -> &ServerCounters {
        &self.shared.counters
    }

    /// Block until a termination signal is delivered (see [`sig`]),
    /// then drain and stop.
    pub fn run_until_signal(self) -> Option<Result<SnapshotInfo, SnapshotError>> {
        while !sig::requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.stop()
    }

    /// Drain and stop: reject new connections, let in-flight requests
    /// finish, join every thread, write the snapshot (when configured),
    /// and remove a Unix socket file. Returns the snapshot save result.
    pub fn stop(mut self) -> Option<Result<SnapshotInfo, SnapshotError>> {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Acceptor is down: the connection list is final. Connection
        // threads see `draining` via their read timeouts and exit after
        // finishing the request they are on.
        let handles = std::mem::take(&mut *self.conns.lock());
        for h in handles {
            let _ = h.join();
        }
        // No producer is left; the batcher may now finish the queue and
        // exit.
        self.shared.batcher_stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let BoundAddr::Unix(path) = &self.bound {
            let _ = std::fs::remove_file(path);
        }
        let saved = self
            .shared
            .cfg
            .snapshot
            .as_deref()
            .map(|p| snapshot::save(p, self.shared.engine.cache()));
        match &saved {
            Some(Ok(_)) => {
                self.shared
                    .counters
                    .snapshot_saves
                    .fetch_add(1, Ordering::Relaxed);
            }
            Some(Err(_)) => {
                self.shared
                    .counters
                    .snapshot_save_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
            None => {}
        }
        saved
    }
}

fn acceptor_loop(
    listener: &Listener,
    shared: &Arc<Shared>,
    conns: &Arc<PoisonlessMutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.draining() {
        match listener.accept() {
            Ok(stream) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("facile-conn".into())
                    .spawn(move || connection_loop(stream, &shared));
                if let Ok(h) = handle {
                    conns.lock().push(h);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Per-connection governance state: the request-rate token bucket
/// (burst = the configured rate, refilled continuously by wall clock).
struct ConnState {
    tokens: f64,
    last_refill: Instant,
}

impl ConnState {
    fn new(rps: u64) -> ConnState {
        ConnState {
            tokens: rps as f64,
            last_refill: Instant::now(),
        }
    }

    /// Take one token if available (always true when unlimited).
    fn admit(&mut self, rps: u64) -> bool {
        if rps == 0 {
            return true;
        }
        let now = Instant::now();
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * rps as f64).min(rps as f64);
        if self.tokens < 1.0 {
            return false;
        }
        self.tokens -= 1.0;
        true
    }
}

/// Read NDJSON lines off one connection and serve them in order.
fn connection_loop(stream: Stream, shared: &Arc<Shared>) {
    let mut conn = ConnState::new(shared.cfg.conn_rps);
    // The accepted stream inherits the listener's non-blocking flag;
    // switch to blocking reads with a timeout so the thread can notice
    // a drain without a wake-up channel.
    let _ = stream.set_blocking();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    'conn: loop {
        // Serve every complete line currently buffered.
        while let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]);
            let line = line.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            // Fault injection: hang up before processing this line, as a
            // crashing peer / dying network would. The request is never
            // handled, so it is not counted as one.
            if facile_faults::decide_seq(facile_faults::Point::ConnDrop) {
                break 'conn;
            }
            shared.counters.requests.fetch_add(1, Ordering::Relaxed);
            if line.len() > shared.cfg.max_line_bytes {
                // A complete over-long line: the boundary is known, so
                // reject just this request and keep the connection.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let reply = protocol::error_reply(
                    None,
                    "line-too-long",
                    &format!("request line exceeds {} bytes", shared.cfg.max_line_bytes),
                );
                if write_line(&mut stream, &reply).is_err() {
                    break 'conn;
                }
                continue;
            }
            let reply = handle_line(line, shared, &mut conn);
            if write_line(&mut stream, &reply).is_err() {
                break 'conn;
            }
        }
        if shared.draining() {
            // Drain: every complete line received so far has been
            // answered; close instead of reading further requests.
            break;
        }
        if buf.len() > shared.cfg.max_line_bytes {
            // An unterminated over-long line: reject and hang up (the
            // line boundary is lost, so resynchronizing is guesswork).
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            let reply = protocol::error_reply(
                None,
                "line-too-long",
                &format!("request line exceeds {} bytes", shared.cfg.max_line_bytes),
            );
            let _ = write_line(&mut stream, &reply);
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Idle poll tick: close idle connections on drain.
                if shared.draining() && buf.is_empty() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn write_line(stream: &mut Stream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// One request line in, one reply line out.
fn handle_line(line: &str, shared: &Arc<Shared>, conn: &mut ConnState) -> String {
    let parsed = match protocol::parse_request(line) {
        Ok(p) => p,
        Err(ProtoError { id, code, message }) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return protocol::error_reply(id.as_deref(), code, &message);
        }
    };
    let Parsed { id, request } = parsed;
    let id = id.as_deref();
    match request {
        Request::Ping => protocol::pong_reply(id),
        Request::Stats => protocol::stats_reply(
            id,
            &shared.server_stats_json(),
            &shared.engine.snapshot().to_json(),
        ),
        Request::Health => {
            let pressure = shared.pressure();
            let tier = shared.observe_tier(pressure);
            protocol::health_reply(id, TIER_NAMES[tier as usize], pressure)
        }
        Request::Predict(work) => {
            if work.items.is_empty() {
                return protocol::rows_reply(id, &[], work.render, work.explain);
            }
            let n = work.items.len();
            // Per-connection fairness: an oversized request is rejected
            // before it can monopolize the shared admission quota.
            if shared.cfg.conn_max_items > 0 && n > shared.cfg.conn_max_items {
                shared
                    .counters
                    .rejected_conn_limit
                    .fetch_add(1, Ordering::Relaxed);
                return protocol::error_reply(
                    id,
                    "overloaded",
                    &format!(
                        "request carries {n} items, above this connection's {}-item limit",
                        shared.cfg.conn_max_items
                    ),
                );
            }
            if !conn.admit(shared.cfg.conn_rps) {
                shared
                    .counters
                    .rejected_conn_limit
                    .fetch_add(1, Ordering::Relaxed);
                return protocol::error_reply(
                    id,
                    "overloaded",
                    &format!(
                        "connection rate limit: above {} request(s)/s",
                        shared.cfg.conn_rps
                    ),
                );
            }
            // Degradation tiers: shed the bulk path first, then
            // everything but ping/stats/health.
            let pressure = shared.pressure();
            let tier = shared.observe_tier(pressure);
            if tier == 2 {
                let counter = if work.batch {
                    &shared.counters.shed_batch
                } else {
                    &shared.counters.shed_predict
                };
                counter.fetch_add(1, Ordering::Relaxed);
                return protocol::error_reply(
                    id,
                    "overloaded",
                    &format!(
                        "shedding load: pressure {pressure:.2} is above the shedding watermark"
                    ),
                );
            }
            if tier == 1 && work.batch {
                shared.counters.shed_batch.fetch_add(1, Ordering::Relaxed);
                return protocol::error_reply(
                    id,
                    "overloaded",
                    &format!(
                        "shedding batch requests: pressure {pressure:.2} is above the degraded watermark"
                    ),
                );
            }
            // Admission: reserve quota or reject; never queue unbounded.
            let mut reserved = shared.pending_items.load(Ordering::Relaxed);
            loop {
                if reserved + n > shared.cfg.queue_cap {
                    shared
                        .counters
                        .rejected_overload
                        .fetch_add(1, Ordering::Relaxed);
                    return protocol::error_reply(
                        id,
                        "overloaded",
                        &format!(
                            "queue full: {n} items would exceed the {}-item cap",
                            shared.cfg.queue_cap
                        ),
                    );
                }
                match shared.pending_items.compare_exchange_weak(
                    reserved,
                    reserved + n,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(cur) => reserved = cur,
                }
            }
            let selector: Arc<str> =
                Arc::from(work.predictors.as_deref().unwrap_or(&shared.cfg.predictors));
            let deadline = work
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            let (tx, rx) = mpsc::channel();
            {
                let mut q = shared.queue.lock();
                q.push(Job {
                    items: work.items,
                    selector,
                    deadline,
                    reply: tx,
                });
            }
            shared.queue_cv.notify_one();
            let reply = match rx.recv() {
                Ok(JobReply::Rows(rows)) => {
                    shared
                        .counters
                        .rows
                        .fetch_add(rows.len() as u64, Ordering::Relaxed);
                    protocol::rows_reply(id, &rows, work.render, work.explain)
                }
                Ok(JobReply::Err { code, message }) => protocol::error_reply(id, code, &message),
                // The batcher died holding this job (its reply sender
                // was dropped by the unwind); the supervisor restarts
                // the batcher, but this request is lost.
                Err(_) => protocol::error_reply(
                    id,
                    "internal",
                    "batcher restarted while the request was in flight",
                ),
            };
            shared.pending_items.fetch_sub(n, Ordering::SeqCst);
            reply
        }
    }
}

/// The batcher's supervisor: runs [`batcher_loop`] and, if it panics
/// (it should not — the engine contains per-item panics — but a bug in
/// the gather/dispatch plumbing itself could), fails the requests the
/// dead incarnation left behind and starts a fresh one. The thread named
/// `facile-batcher` therefore only ever exits on a clean drain.
fn batcher_supervisor(shared: &Arc<Shared>) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| batcher_loop(shared))) {
            Ok(()) => return, // clean drain
            Err(_) => {
                shared
                    .counters
                    .batcher_restarts
                    .fetch_add(1, Ordering::Relaxed);
                // Jobs the dead batcher had already dequeued lost their
                // reply senders in the unwind; their connection threads
                // observe the closed channel and answer `internal`. Jobs
                // still queued are failed explicitly here rather than
                // silently carried over, so a request never outlives the
                // batcher incarnation that admitted it.
                let stranded = std::mem::take(&mut *shared.queue.lock());
                for job in stranded {
                    let _ = job.reply.send(JobReply::Err {
                        code: "internal",
                        message: "batcher restarted while the request was queued".to_string(),
                    });
                }
                eprintln!("facile-serve: batcher thread panicked; restarting it");
            }
        }
    }
}

/// The micro-batching loop: gather concurrently queued jobs into one
/// engine batch per predictor selector.
fn batcher_loop(shared: &Arc<Shared>) {
    let mut last_snapshot = Instant::now();
    loop {
        // Wait for work (or a drain, or a snapshot-interval tick).
        let mut jobs: Vec<Job> = {
            let mut q = shared.queue.lock();
            loop {
                if !q.is_empty() {
                    break std::mem::take(&mut *q);
                }
                if shared.batcher_stop.load(Ordering::SeqCst) {
                    return; // queue empty + producers joined = done
                }
                let (guard, _) =
                    recover(shared.queue_cv.wait_timeout(q, Duration::from_millis(50)));
                q = guard;
                if let (Some(path), Some(every)) =
                    (shared.cfg.snapshot.as_deref(), shared.cfg.snapshot_interval)
                {
                    if last_snapshot.elapsed() >= every {
                        last_snapshot = Instant::now();
                        drop(q);
                        match snapshot::save(path, shared.engine.cache()) {
                            Ok(_) => {
                                shared
                                    .counters
                                    .snapshot_saves
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                // A failed periodic save must be neither
                                // fatal (the cache is intact; serving
                                // continues) nor silent (the operator is
                                // losing warm-restart coverage).
                                shared
                                    .counters
                                    .snapshot_save_errors
                                    .fetch_add(1, Ordering::Relaxed);
                                eprintln!(
                                    "facile-serve: periodic snapshot save to {} failed: {e}",
                                    path.display()
                                );
                            }
                        }
                        q = shared.queue.lock();
                    }
                }
            }
        };
        // Fault injection: the batcher dies between dequeue and dispatch
        // (the worst moment — it holds jobs), exercising the supervisor.
        facile_faults::maybe_panic_seq(facile_faults::Point::BatcherPanic);
        // Gather: let closely-following jobs join this batch, up to the
        // window or the size cap.
        let window_ends = Instant::now() + shared.cfg.gather_window;
        loop {
            let gathered: usize = jobs.iter().map(|j| j.items.len()).sum();
            if gathered >= shared.cfg.max_batch_items {
                break;
            }
            let now = Instant::now();
            if now >= window_ends {
                break;
            }
            let mut q = shared.queue.lock();
            if q.is_empty() {
                let (guard, _) = recover(shared.queue_cv.wait_timeout(q, window_ends - now));
                q = guard;
            }
            jobs.append(&mut q);
        }
        run_gathered(shared, jobs);
    }
}

/// Dispatch one gathered set of jobs: drop the expired, then one engine
/// batch per distinct selector, slicing the row fan-out back per job.
fn run_gathered(shared: &Arc<Shared>, jobs: Vec<Job>) {
    // Deadlines are judged here, at dequeue: a request whose budget was
    // spent waiting in the queue is answered with an error instead of
    // occupying the engine.
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if job.deadline.is_some_and(|d| now >= d) {
            shared
                .counters
                .rejected_deadline
                .fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(JobReply::Err {
                code: "deadline-exceeded",
                message: "request exceeded its deadline while queued".to_string(),
            });
        } else {
            live.push(job);
        }
    }
    // Group by selector, preserving arrival order within each group.
    let mut groups: Vec<(Arc<str>, Vec<Job>)> = Vec::new();
    for job in live {
        match groups.iter_mut().find(|(s, _)| *s == job.selector) {
            Some((_, g)) => g.push(job),
            None => groups.push((Arc::clone(&job.selector), vec![job])),
        }
    }
    for (selector, group) in groups {
        let items: Vec<BatchItem> = group.iter().flat_map(|j| j.items.iter().cloned()).collect();
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .batched_items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        // The engine already contains per-item panics; this guard covers
        // the planner/fan-out plumbing around them, converting a batch-
        // level panic into `internal-panic` replies instead of a dead
        // batcher (the supervisor would catch that too, but the jobs in
        // *other* selector groups of this gather deserve their answers).
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shared.engine.predict_batch(&items, &selector)
        }));
        match outcome {
            Err(payload) => {
                let message = format!("prediction panicked: {}", panic_payload(&*payload));
                for job in group {
                    let _ = job.reply.send(JobReply::Err {
                        code: "internal-panic",
                        message: message.clone(),
                    });
                }
            }
            Ok(Ok(rows)) => {
                // Rows are item-major: item k's rows are the np
                // consecutive rows starting at k*np.
                let np = rows.len() / items.len();
                let mut offset = 0;
                for job in group {
                    let take = job.items.len() * np;
                    let slice = rows[offset..offset + take].to_vec();
                    offset += take;
                    let _ = job.reply.send(JobReply::Rows(slice));
                }
            }
            Ok(Err(e)) => {
                // Selector resolution failed (the only whole-batch
                // error): every job in the group asked for it.
                let message = e.to_string();
                for job in group {
                    let _ = job.reply.send(JobReply::Err {
                        code: "unknown-predictor",
                        message: message.clone(),
                    });
                }
            }
        }
    }
}

/// Process-wide termination-signal latch (std-only: libc is already
/// linked, so `signal(2)` is declared directly).
pub mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: the one operation that is both
        // async-signal-safe and enough to request a drain.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    /// Latch SIGINT and SIGTERM into [`requested`]. Idempotent; a no-op
    /// off Unix.
    pub fn install() {
        #[cfg(unix)]
        {
            extern "C" {
                fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
            }
            unsafe {
                signal(2, on_signal); // SIGINT
                signal(15, on_signal); // SIGTERM
            }
        }
    }

    /// Whether a termination signal has been delivered (or
    /// [`request`] called).
    #[must_use]
    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }

    /// Request a drain programmatically (tests; equivalent to a
    /// signal).
    pub fn request() {
        REQUESTED.store(true, Ordering::SeqCst);
    }
}
