//! The NDJSON request/reply protocol.
//!
//! One request per line, one reply line per request, always in request
//! order. Requests are JSON objects with an `"op"` discriminator:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"health"}
//! {"op":"predict","block":"4801c8","uarch":"SKL"}
//! {"op":"batch","blocks":["4801c8","90"],"uarch":"all","predictors":"facile,sim"}
//! ```
//!
//! Optional fields on `predict`/`batch` mirror the CLI's batch flags:
//! `"uarch"` (an abbreviation or `"all"`, default `"SKL"`), `"mode"`
//! (`"auto"`/`"tpu"`/`"tpl"`, default auto), `"detail"` (`"brief"`/
//! `"bounds"`/`"full"`), `"predictors"` (a selector string; the server's
//! default when absent), `"format"` (`"json"`/`"csv"` row rendering),
//! and `"deadline_ms"` (drop the request, with a `deadline-exceeded`
//! error, if it still sits in the queue this many milliseconds after
//! admission). Any request may carry an `"id"`, which is echoed
//! *verbatim* (raw bytes, any JSON value) in the reply.
//!
//! Replies are `{"ok":true,...}` or
//! `{"ok":false,"code":"...","error":"..."}` (with the echoed `"id"`
//! first when present). Prediction replies carry `"rows"`: each row is
//! rendered by `facile_engine::render` — the same functions the CLI's
//! `--format json`/`csv` output goes through — so a served row is
//! byte-identical to the CLI row for the same input, by construction.
//!
//! Unknown top-level request fields are rejected (`bad-request`) rather
//! than ignored: a typoed `"modes"` silently falling back to defaults
//! would be a debugging trap.

use crate::json::{self, Kind, Value};
use facile_engine::render;
use facile_engine::{BatchItem, BlockInput, Detail, ItemResult};
use facile_explain::json_escape;
use facile_explain::Mode;
use facile_uarch::Uarch;

/// How prediction rows are rendered in the reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Render {
    /// Rows are embedded as raw JSON objects ([`render::row_json`]).
    Json,
    /// Rows are CSV lines carried as JSON strings ([`render::row_csv`]).
    Csv,
}

/// A parsed `predict`/`batch` request: the engine items plus everything
/// the reply needs.
#[derive(Debug, Clone)]
pub struct Work {
    /// Batch items, expanded `blocks × uarchs` in CLI order.
    pub items: Vec<BatchItem>,
    /// Predictor selector (`None` = the server's default).
    pub predictors: Option<String>,
    /// Row rendering for the reply.
    pub render: Render,
    /// Whether CSV rows carry the `explanation` column (requests with
    /// `detail` above `brief`, mirroring the CLI's `--explain`).
    pub explain: bool,
    /// Queue-residency budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Whether the request used the `batch` op (shed before `predict`
    /// under load; `predict` is the lower-volume interactive path).
    pub batch: bool,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Server + engine counters.
    Stats,
    /// Degradation-tier probe (`ok`/`degraded`/`shedding`). Like `ping`
    /// and `stats`, always answered — never shed or rate-limited.
    Health,
    /// A prediction batch.
    Predict(Work),
}

/// A request line with its echoed `id` (raw JSON bytes, if present).
#[derive(Debug, Clone)]
pub struct Parsed {
    /// The `"id"` field, verbatim.
    pub id: Option<String>,
    /// The request.
    pub request: Request,
}

/// A request-level rejection, rendered by [`error_reply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// The echoed `id`, when the line parsed far enough to have one.
    pub id: Option<String>,
    /// Stable machine-readable code (`bad-json`, `bad-request`, ...).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    fn new(id: Option<String>, code: &'static str, message: impl Into<String>) -> ProtoError {
        ProtoError {
            id,
            code,
            message: message.into(),
        }
    }
}

const KNOWN_KEYS: [&str; 10] = [
    "op",
    "id",
    "block",
    "blocks",
    "uarch",
    "mode",
    "detail",
    "predictors",
    "format",
    "deadline_ms",
];

/// Parse one request line.
///
/// # Errors
/// A [`ProtoError`] with code `bad-json` (malformed JSON) or
/// `bad-request` (well-formed JSON that is not a valid request).
pub fn parse_request(line: &str) -> Result<Parsed, ProtoError> {
    let v = json::parse(line)
        .map_err(|e| ProtoError::new(None, "bad-json", format!("malformed JSON: {e}")))?;
    let members = match &v.kind {
        Kind::Obj(members) => members,
        _ => {
            return Err(ProtoError::new(
                None,
                "bad-request",
                "request must be a JSON object",
            ))
        }
    };
    let id = v.get("id").map(|x| x.raw(line).to_string());
    let bad = |msg: String| ProtoError::new(id.clone(), "bad-request", msg);
    if let Some((k, _)) = members
        .iter()
        .find(|(k, _)| !KNOWN_KEYS.contains(&k.as_str()))
    {
        return Err(bad(format!("unknown field: {k:?}")));
    }
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("missing or non-string \"op\"".to_string()))?;
    let request = match op {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "health" => Request::Health,
        "predict" | "batch" => Request::Predict(parse_work(line, &v, op, &bad)?),
        other => return Err(bad(format!("unknown op: {other:?}"))),
    };
    Ok(Parsed { id, request })
}

fn parse_work(
    line: &str,
    v: &Value,
    op: &str,
    bad: &dyn Fn(String) -> ProtoError,
) -> Result<Work, ProtoError> {
    let blocks: Vec<String> = match op {
        "predict" => {
            let b = v
                .get("block")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("\"predict\" requires a string \"block\"".to_string()))?;
            vec![b.to_string()]
        }
        _ => {
            let arr = v
                .get("blocks")
                .and_then(Value::as_arr)
                .ok_or_else(|| bad("\"batch\" requires an array \"blocks\"".to_string()))?;
            arr.iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad("\"blocks\" entries must be strings".to_string()))
                })
                .collect::<Result<_, _>>()?
        }
    };
    let uarchs: Vec<Uarch> = match v.get("uarch") {
        None => vec![Uarch::Skl],
        Some(u) => {
            let s = u
                .as_str()
                .ok_or_else(|| bad("\"uarch\" must be a string".to_string()))?;
            if s == "all" {
                Uarch::ALL.to_vec()
            } else {
                vec![s.parse().map_err(|e| bad(format!("{e}")))?]
            }
        }
    };
    let mode = match v.get("mode").map(|m| m.as_str()) {
        None => None,
        Some(Some("auto")) => None,
        Some(Some("loop" | "tpl")) => Some(Mode::Loop),
        Some(Some("unroll" | "tpu")) => Some(Mode::Unrolled),
        Some(other) => {
            return Err(bad(format!(
                "unknown mode: {} (auto|tpu|tpl)",
                other.map_or_else(|| "non-string".to_string(), |s| format!("{s:?}"))
            )))
        }
    };
    let detail = match v.get("detail").map(|d| d.as_str()) {
        None | Some(Some("brief")) => Detail::Brief,
        Some(Some("bounds")) => Detail::Bounds,
        Some(Some("full")) => Detail::Full,
        Some(other) => {
            return Err(bad(format!(
                "unknown detail: {} (brief|bounds|full)",
                other.map_or_else(|| "non-string".to_string(), |s| format!("{s:?}"))
            )))
        }
    };
    let predictors = match v.get("predictors") {
        None => None,
        Some(p) => Some(
            p.as_str()
                .ok_or_else(|| bad("\"predictors\" must be a string".to_string()))?
                .to_string(),
        ),
    };
    let render = match v.get("format").map(|f| f.as_str()) {
        None | Some(Some("json")) => Render::Json,
        Some(Some("csv")) => Render::Csv,
        Some(other) => {
            return Err(bad(format!(
                "unknown format: {} (json|csv)",
                other.map_or_else(|| "non-string".to_string(), |s| format!("{s:?}"))
            )))
        }
    };
    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(d) => {
            let n = d
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64)
                .ok_or_else(|| bad("\"deadline_ms\" must be a non-negative integer".to_string()))?;
            Some(n as u64)
        }
    };
    // Expansion mirrors the CLI's batch loop: per block, per uarch.
    let mut items = Vec::with_capacity(blocks.len() * uarchs.len());
    for hex in &blocks {
        for &u in &uarchs {
            items.push(BatchItem {
                input: BlockInput::Hex(hex.clone()),
                uarch: u,
                mode,
                detail,
            });
        }
    }
    let _ = line;
    Ok(Work {
        items,
        predictors,
        render,
        explain: detail != Detail::Brief,
        deadline_ms,
        batch: op == "batch",
    })
}

fn id_field(id: Option<&str>) -> String {
    id.map_or_else(String::new, |raw| format!("\"id\":{raw},"))
}

/// Render an error reply line (no trailing newline).
#[must_use]
pub fn error_reply(id: Option<&str>, code: &str, message: &str) -> String {
    format!(
        "{{{}\"ok\":false,\"code\":\"{code}\",\"error\":\"{}\"}}",
        id_field(id),
        json_escape(message)
    )
}

/// Render a `ping` reply line.
#[must_use]
pub fn pong_reply(id: Option<&str>) -> String {
    format!("{{{}\"ok\":true,\"pong\":true}}", id_field(id))
}

/// Render a `health` reply line: the degradation tier
/// (`ok`/`degraded`/`shedding`) and the load pressure that produced it
/// (the max of queue occupancy and budget occupancy, as a fraction of
/// the respective shedding thresholds).
#[must_use]
pub fn health_reply(id: Option<&str>, tier: &str, pressure: f64) -> String {
    format!(
        "{{{}\"ok\":true,\"health\":\"{tier}\",\"pressure\":{pressure:.2}}}",
        id_field(id)
    )
}

/// Render a `stats` reply line from pre-rendered JSON objects.
#[must_use]
pub fn stats_reply(id: Option<&str>, server_json: &str, engine_json: &str) -> String {
    format!(
        "{{{}\"ok\":true,\"stats\":{{\"server\":{server_json},\"engine\":{engine_json}}}}}",
        id_field(id)
    )
}

/// Render a prediction reply line: the engine rows in request order,
/// each spelled exactly as the CLI would spell it.
#[must_use]
pub fn rows_reply(
    id: Option<&str>,
    rows: &[ItemResult],
    render_as: Render,
    explain: bool,
) -> String {
    let mut s = String::with_capacity(64 + rows.len() * 96);
    s.push('{');
    s.push_str(&id_field(id));
    s.push_str("\"ok\":true,\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        match render_as {
            Render::Json => s.push_str(&render::row_json(r)),
            Render::Csv => {
                s.push('"');
                s.push_str(&json_escape(&render::row_csv(r, explain)));
                s.push('"');
            }
        }
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_request_parses() {
        let p = parse_request(r#"{"op":"predict","block":"4801c8","uarch":"HSW","id":7}"#).unwrap();
        assert_eq!(p.id.as_deref(), Some("7"));
        let Request::Predict(w) = p.request else {
            panic!("not predict")
        };
        assert_eq!(w.items.len(), 1);
        assert_eq!(w.items[0].uarch, Uarch::Hsw);
        assert!(w.items[0].mode.is_none());
        assert_eq!(w.render, Render::Json);
        assert!(!w.explain);
        assert!(!w.batch, "predict is not the batch op");
        let p = parse_request(r#"{"op":"health","id":3}"#).unwrap();
        assert!(matches!(p.request, Request::Health));
        assert_eq!(p.id.as_deref(), Some("3"));
    }

    #[test]
    fn batch_expands_blocks_times_uarchs_in_cli_order() {
        let p = parse_request(r#"{"op":"batch","blocks":["90","4801c8"],"uarch":"all"}"#).unwrap();
        let Request::Predict(w) = p.request else {
            panic!("not predict")
        };
        assert_eq!(w.items.len(), 2 * Uarch::ALL.len());
        assert!(w.batch, "batch op is flagged for shed ordering");
        // Per block, per uarch — exactly how the CLI's batch loop expands.
        assert_eq!(w.items[0].uarch, Uarch::Snb);
        assert_eq!(w.items[8].uarch, Uarch::Rkl);
        assert!(matches!(&w.items[9].input, BlockInput::Hex(h) if h == "4801c8"));
    }

    #[test]
    fn optional_fields_parse() {
        let p = parse_request(
            r#"{"op":"batch","blocks":["90"],"mode":"tpl","detail":"full","predictors":"facile,sim","format":"csv","deadline_ms":250}"#,
        )
        .unwrap();
        let Request::Predict(w) = p.request else {
            panic!("not predict")
        };
        assert_eq!(w.items[0].mode, Some(Mode::Loop));
        assert_eq!(w.items[0].detail, Detail::Full);
        assert_eq!(w.predictors.as_deref(), Some("facile,sim"));
        assert_eq!(w.render, Render::Csv);
        assert!(w.explain);
        assert_eq!(w.deadline_ms, Some(250));
    }

    #[test]
    fn rejections_carry_codes_and_echo_ids() {
        let e = parse_request("{not json").unwrap_err();
        assert_eq!(e.code, "bad-json");
        let e = parse_request(r#"{"op":"fly","id":"x"}"#).unwrap_err();
        assert_eq!(e.code, "bad-request");
        assert_eq!(e.id.as_deref(), Some("\"x\""));
        let e = parse_request(r#"{"op":"predict","block":"90","modes":"tpl"}"#).unwrap_err();
        assert!(e.message.contains("unknown field"), "{}", e.message);
        let e = parse_request(r#"{"op":"predict","block":"90","uarch":"XXX"}"#).unwrap_err();
        assert_eq!(e.code, "bad-request");
        let e = parse_request(r#"{"op":"predict","block":"90","deadline_ms":-1}"#).unwrap_err();
        assert_eq!(e.code, "bad-request");
        assert_eq!(parse_request(r#"[1,2]"#).unwrap_err().code, "bad-request");
    }

    #[test]
    fn reply_shapes() {
        assert_eq!(pong_reply(None), r#"{"ok":true,"pong":true}"#);
        assert_eq!(pong_reply(Some("42")), r#"{"id":42,"ok":true,"pong":true}"#);
        assert_eq!(
            error_reply(Some(r#""a""#), "overloaded", "queue full"),
            r#"{"id":"a","ok":false,"code":"overloaded","error":"queue full"}"#
        );
        assert_eq!(
            stats_reply(None, r#"{"connections":1}"#, r#"{"planner":{}}"#),
            r#"{"ok":true,"stats":{"server":{"connections":1},"engine":{"planner":{}}}}"#
        );
        assert_eq!(
            rows_reply(None, &[], Render::Json, false),
            r#"{"ok":true,"rows":[]}"#
        );
        assert_eq!(
            health_reply(None, "ok", 0.0),
            r#"{"ok":true,"health":"ok","pressure":0.00}"#
        );
        assert_eq!(
            health_reply(Some("9"), "shedding", 0.987),
            r#"{"id":9,"ok":true,"health":"shedding","pressure":0.99}"#
        );
    }
}
