//! Persistent on-disk annotation snapshots.
//!
//! The server's warm state — the engine's two-level annotation cache —
//! is worth keeping across restarts: annotation (decode + effect
//! extraction + per-uarch classification) dominates the cold path, so a
//! daemon that reloads yesterday's annotations serves its first batch
//! at warm-cache speed. This module defines a versioned, checksummed
//! binary snapshot of `block bytes → per-uarch annotation` and the
//! load/save paths around it.
//!
//! ## Format
//!
//! ```text
//! magic    [u8; 8]   b"FACSNAP1"
//! version  u32 LE    bumped on any payload layout change
//! uhash    u64 LE    hash of the Debug form of every UarchConfig
//! thash    u64 LE    facile_isa::TABLE_HASH of the generated tables
//! plen     u64 LE    payload length in bytes
//! payload  [u8]      blocks (see below)
//! checksum u64 LE    FxHash of the payload
//! ```
//!
//! The `uhash` field ties a snapshot to the exact microarchitecture
//! tables it was produced with: descriptors are *derived* from those
//! tables, so restoring them under changed tables would silently serve
//! stale rows. The `thash` field does the same for the build-time
//! generated descriptor tables ([`facile_isa::TABLE_HASH`] covers the
//! classifier, the form enumeration, and the key packing): a snapshot
//! written by a binary with different generated tables may embed
//! descriptors that binary would no longer produce. Either hash
//! mismatching — like a bad magic, a version bump, a truncation, or a
//! checksum failure — is a **soft** failure: the loader reports why and
//! the server starts cold. No snapshot condition panics or produces
//! wrong rows.
//!
//! The payload stores, per block, the raw instruction bytes and, per
//! annotated microarchitecture, each instruction's macro-fusion flag,
//! architectural [`Effects`], and performance descriptor
//! ([`InstrDesc`]). Loading re-decodes the block from its bytes (cheap)
//! but skips effect extraction and classification (the two dominant
//! cold-path costs) via the `from_parts` constructors, so a restored
//! annotation is bit-identical to a live one by construction — totals
//! are recomputed from the restored descriptors exactly as live
//! annotation computes them.

use facile_engine::AnnotationCache;
use facile_isa::{AnnotatedBlock, AnnotatedInst, InstrDesc, InternedInst, Uop, UopKind};
use facile_uarch::{PortMask, Uarch};
use facile_util::hash_bytes;
use facile_x86::{Block, Effects, Mem, Reg, Width};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Snapshot file magic.
pub const MAGIC: [u8; 8] = *b"FACSNAP1";
/// Payload layout version; bump on any codec change.
/// Version 2 added the generated-table hash (`thash`) to the header.
pub const VERSION: u32 = 2;

/// Fingerprint of the microarchitecture tables descriptors are derived
/// from: the FxHash of the `Debug` rendering of every [`Uarch`] config,
/// in [`Uarch::ALL`] order. Any table edit changes this hash, which
/// invalidates existing snapshots (they would carry stale descriptors).
#[must_use]
pub fn uarch_table_hash() -> u64 {
    let mut s = String::new();
    for u in Uarch::ALL {
        s.push_str(&format!("{:?}\n", u.config()));
    }
    hash_bytes(s.as_bytes())
}

/// Why a snapshot could not be used. Every variant is a *recoverable*
/// condition: the caller logs it and starts with a cold cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's layout version is not [`VERSION`].
    BadVersion(u32),
    /// The snapshot was produced under different microarchitecture
    /// tables (see [`uarch_table_hash`]).
    TableHashMismatch,
    /// The snapshot was produced by a binary with different build-time
    /// generated descriptor tables (see [`facile_isa::TABLE_HASH`]).
    StaticTableMismatch,
    /// The file ends before the declared payload and checksum.
    Truncated,
    /// The payload does not hash to the recorded checksum.
    ChecksumMismatch,
    /// The payload failed structural validation.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a facile snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "snapshot version {v} (this build reads {VERSION})")
            }
            SnapshotError::TableHashMismatch => {
                write!(f, "snapshot was produced under different uarch tables")
            }
            SnapshotError::StaticTableMismatch => {
                write!(
                    f,
                    "snapshot was produced under different generated descriptor tables"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot payload corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What a successful save or load covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotInfo {
    /// Distinct blocks in the snapshot.
    pub blocks: usize,
    /// `(block, uarch)` annotations in the snapshot.
    pub annotations: usize,
    /// Snapshot file size in bytes.
    pub file_bytes: usize,
}

/// Serialize the cache's resident annotations to `path`, atomically
/// (write to a sibling temp file, then rename). The export is sorted by
/// block bytes, so the same cache contents always produce the same
/// file.
///
/// # Errors
/// [`SnapshotError::Io`] if the file cannot be written.
pub fn save(path: &Path, cache: &AnnotationCache) -> Result<SnapshotInfo, SnapshotError> {
    // Fault injection: a full disk / yanked volume at save time.
    if facile_faults::decide_seq(facile_faults::Point::SnapshotFail) {
        return Err(SnapshotError::Io(
            "injected snapshot write failure".to_string(),
        ));
    }
    let entries = cache.export();
    let mut payload = Vec::with_capacity(entries.len() * 256);
    let mut annotations = 0usize;
    put_u32(&mut payload, entries.len() as u32);
    for (block, annos) in &entries {
        put_u16(&mut payload, block.bytes().len() as u16);
        payload.extend_from_slice(block.bytes());
        payload.push(annos.len() as u8);
        for (uarch, ab) in annos {
            annotations += 1;
            payload.push(*uarch as u8);
            put_u16(&mut payload, ab.insts().len() as u16);
            for a in ab.insts() {
                payload.push(u8::from(a.fused_with_prev));
                put_effects(&mut payload, &a.effects());
                put_desc(&mut payload, a.desc());
            }
        }
    }
    let mut file = Vec::with_capacity(payload.len() + 44);
    file.extend_from_slice(&MAGIC);
    file.extend_from_slice(&VERSION.to_le_bytes());
    file.extend_from_slice(&uarch_table_hash().to_le_bytes());
    file.extend_from_slice(&facile_isa::TABLE_HASH.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let checksum = hash_bytes(&payload);
    file.extend_from_slice(&payload);
    file.extend_from_slice(&checksum.to_le_bytes());

    let tmp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name().map_or_else(
            || "snapshot".to_string(),
            |n| n.to_string_lossy().into_owned()
        )
    ));
    std::fs::write(&tmp, &file).map_err(|e| SnapshotError::Io(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.to_string()))?;
    Ok(SnapshotInfo {
        blocks: entries.len(),
        annotations,
        file_bytes: file.len(),
    })
}

/// Validate the snapshot at `path` and import its annotations into
/// `cache`. On any error the cache is left as it was (entries imported
/// before a late corruption are harmless — they are verified-checksum
/// data — but the loader validates the checksum *before* importing, so
/// in practice a bad file imports nothing).
///
/// # Errors
/// Every [`SnapshotError`] variant; all are recoverable (start cold).
pub fn load(path: &Path, cache: &AnnotationCache) -> Result<SnapshotInfo, SnapshotError> {
    let data = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
    let file_bytes = data.len();
    if data.len() < MAGIC.len() + 4 + 8 + 8 + 8 + 8 {
        return Err(SnapshotError::Truncated);
    }
    if data[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let uhash = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes"));
    if uhash != uarch_table_hash() {
        return Err(SnapshotError::TableHashMismatch);
    }
    let thash = u64::from_le_bytes(data[20..28].try_into().expect("8 bytes"));
    if thash != facile_isa::TABLE_HASH {
        return Err(SnapshotError::StaticTableMismatch);
    }
    let plen = u64::from_le_bytes(data[28..36].try_into().expect("8 bytes")) as usize;
    let expected_len = 36usize.checked_add(plen).and_then(|n| n.checked_add(8));
    match expected_len {
        Some(n) if n == data.len() => {}
        Some(n) if n > data.len() => return Err(SnapshotError::Truncated),
        _ => return Err(SnapshotError::Corrupt("length mismatch")),
    }
    let payload = &data[36..36 + plen];
    let checksum = u64::from_le_bytes(data[36 + plen..].try_into().expect("8 bytes"));
    if hash_bytes(payload) != checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let nblocks = r.u32()? as usize;
    let mut annotations = 0usize;
    let mut staged: Vec<facile_engine::ExportedBlock> = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let nbytes = r.u16()? as usize;
        let bytes = r.bytes(nbytes)?;
        let block = Arc::new(
            Block::decode(bytes).map_err(|_| SnapshotError::Corrupt("block does not decode"))?,
        );
        let nannos = r.u8()? as usize;
        let mut annos = Vec::with_capacity(nannos);
        for _ in 0..nannos {
            let ui = r.u8()? as usize;
            let uarch = *Uarch::ALL
                .get(ui)
                .ok_or(SnapshotError::Corrupt("uarch index out of range"))?;
            let ninsts = r.u16()? as usize;
            if ninsts != block.insts().len() {
                return Err(SnapshotError::Corrupt("instruction count mismatch"));
            }
            let mut insts = Vec::with_capacity(ninsts);
            for k in 0..ninsts {
                let fused = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(SnapshotError::Corrupt("bad fusion flag")),
                };
                let effects = get_effects(&mut r)?;
                let desc = get_desc(&mut r)?;
                let entry = Arc::new(InternedInst::from_parts(
                    block.insts()[k].clone(),
                    effects,
                    desc,
                ));
                insts.push(AnnotatedInst::from_parts(entry, block.offset(k), fused));
            }
            annos.push((
                uarch,
                Arc::new(AnnotatedBlock::from_parts(Arc::clone(&block), uarch, insts)),
            ));
            annotations += 1;
        }
        staged.push((block, annos));
    }
    if r.pos != payload.len() {
        return Err(SnapshotError::Corrupt("trailing payload bytes"));
    }
    // The whole payload decoded cleanly; only now touch the cache.
    let blocks = staged.len();
    for (block, annos) in staged {
        cache.import(block, annos);
    }
    Ok(SnapshotInfo {
        blocks,
        annotations,
        file_bytes,
    })
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_reg(out: &mut Vec<u8>, r: Reg) {
    let (tag, a, b) = match r {
        Reg::Gpr { num, width } => (0, num, width_code(width)),
        Reg::HighByte(n) => (1, n, 0),
        Reg::Xmm(n) => (2, n, 0),
        Reg::Ymm(n) => (3, n, 0),
        Reg::Rip => (4, 0, 0),
    };
    out.extend_from_slice(&[tag, a, b]);
}

fn width_code(w: Width) -> u8 {
    match w {
        Width::W8 => 0,
        Width::W16 => 1,
        Width::W32 => 2,
        Width::W64 => 3,
        Width::W128 => 4,
        Width::W256 => 5,
    }
}

fn put_effects(out: &mut Vec<u8>, e: &Effects) {
    put_u16(out, e.reg_reads.len() as u16);
    for &r in &e.reg_reads {
        put_reg(out, r);
    }
    put_u16(out, e.reg_writes.len() as u16);
    for &r in &e.reg_writes {
        put_reg(out, r);
    }
    out.push(e.flags_read);
    out.push(e.flags_written);
    out.push(u8::from(e.loads) | (u8::from(e.stores) << 1));
    match &e.mem {
        None => out.push(0),
        Some(m) => {
            out.push(1);
            match m.base {
                None => out.push(0),
                Some(r) => {
                    out.push(1);
                    put_reg(out, r);
                }
            }
            match m.index {
                None => out.push(0),
                Some(r) => {
                    out.push(1);
                    put_reg(out, r);
                }
            }
            out.push(m.scale);
            out.extend_from_slice(&m.disp.to_le_bytes());
            out.push(width_code(m.width));
        }
    }
}

fn put_desc(out: &mut Vec<u8>, d: &InstrDesc) {
    out.push(d.fused_uops);
    out.push(d.issue_uops);
    put_u16(out, d.uops.len() as u16);
    for u in &d.uops {
        put_u16(out, u.ports.0);
        out.push(match u.kind {
            UopKind::Compute => 0,
            UopKind::Load => 1,
            UopKind::StoreAddr => 2,
            UopKind::StoreData => 3,
        });
        out.push(u.occupancy);
    }
    out.push(u8::from(d.complex_decoder));
    out.push(d.simple_decoders_after);
    out.push(u8::from(d.eliminated));
    out.push(d.latency);
    out.push(d.load_latency_extra);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Corrupt("unexpected end of payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(i32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn flag(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bad boolean")),
        }
    }
}

fn get_width(r: &mut Reader) -> Result<Width, SnapshotError> {
    Ok(match r.u8()? {
        0 => Width::W8,
        1 => Width::W16,
        2 => Width::W32,
        3 => Width::W64,
        4 => Width::W128,
        5 => Width::W256,
        _ => return Err(SnapshotError::Corrupt("bad width code")),
    })
}

fn get_reg(r: &mut Reader) -> Result<Reg, SnapshotError> {
    let tag = r.u8()?;
    let a = r.u8()?;
    let b = r.u8()?;
    Ok(match tag {
        0 => Reg::Gpr {
            num: a,
            width: match b {
                0 => Width::W8,
                1 => Width::W16,
                2 => Width::W32,
                3 => Width::W64,
                _ => return Err(SnapshotError::Corrupt("bad GPR width")),
            },
        },
        1 => Reg::HighByte(a),
        2 => Reg::Xmm(a),
        3 => Reg::Ymm(a),
        4 => Reg::Rip,
        _ => return Err(SnapshotError::Corrupt("bad register tag")),
    })
}

fn get_effects(r: &mut Reader) -> Result<Effects, SnapshotError> {
    let nreads = r.u16()? as usize;
    let mut reg_reads = facile_util::SmallVec::new();
    for _ in 0..nreads {
        reg_reads.push(get_reg(r)?);
    }
    let nwrites = r.u16()? as usize;
    let mut reg_writes = facile_util::SmallVec::new();
    for _ in 0..nwrites {
        reg_writes.push(get_reg(r)?);
    }
    let flags_read = r.u8()?;
    let flags_written = r.u8()?;
    let ls = r.u8()?;
    if ls > 3 {
        return Err(SnapshotError::Corrupt("bad load/store bits"));
    }
    let mem = if r.flag()? {
        let base = if r.flag()? { Some(get_reg(r)?) } else { None };
        let index = if r.flag()? { Some(get_reg(r)?) } else { None };
        let scale = r.u8()?;
        let disp = r.i32()?;
        let width = get_width(r)?;
        Some(Mem {
            base,
            index,
            scale,
            disp,
            width,
        })
    } else {
        None
    };
    Ok(Effects {
        reg_reads,
        reg_writes,
        flags_read,
        flags_written,
        loads: ls & 1 != 0,
        stores: ls & 2 != 0,
        mem,
    })
}

fn get_desc(r: &mut Reader) -> Result<InstrDesc, SnapshotError> {
    let fused_uops = r.u8()?;
    let issue_uops = r.u8()?;
    let nuops = r.u16()? as usize;
    let mut uops = facile_util::SmallVec::new();
    for _ in 0..nuops {
        let ports = PortMask(r.u16()?);
        let kind = match r.u8()? {
            0 => UopKind::Compute,
            1 => UopKind::Load,
            2 => UopKind::StoreAddr,
            3 => UopKind::StoreData,
            _ => return Err(SnapshotError::Corrupt("bad uop kind")),
        };
        let occupancy = r.u8()?;
        uops.push(Uop {
            ports,
            kind,
            occupancy,
        });
    }
    Ok(InstrDesc {
        fused_uops,
        issue_uops,
        uops,
        complex_decoder: r.flag()?,
        simple_decoders_after: r.u8()?,
        eliminated: r.flag()?,
        latency: r.u8()?,
        load_latency_extra: r.u8()?,
    })
}
