//! A minimal, dependency-free JSON parser for the server protocol.
//!
//! The workspace renders JSON in several places but the server is the
//! first component that must *read* untrusted JSON (client request
//! lines), so this module implements the subset of a JSON parser the
//! protocol needs: full value parsing with source spans, a recursion
//! depth cap, and typed errors instead of panics on any input.
//!
//! Every parsed [`Value`] remembers its byte span in the input line, so
//! protocol code can echo a request `id` or forward a nested object
//! (e.g. a prediction row) *verbatim* — byte-identical to how it
//! appeared on the wire — without re-serializing it.

use std::fmt;

/// Maximum nesting depth accepted (arrays/objects). Protocol messages
/// are nearly flat; the cap exists so a hostile `[[[[…` line errors out
/// instead of exhausting the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value with its byte span in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    /// The parsed content.
    pub kind: Kind,
    /// Byte range of this value in the source line (for verbatim echo).
    pub span: (usize, usize),
}

/// The content of a [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Kind {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (JSON numbers are parsed as `f64`).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs (duplicate keys are kept;
    /// lookup returns the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` on other kinds or a missing key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match &self.kind {
            Kind::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match &self.kind {
            Kind::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match &self.kind {
            Kind::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match &self.kind {
            Kind::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match &self.kind {
            Kind::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The verbatim source text of this value.
    #[must_use]
    pub fn raw<'a>(&self, src: &'a str) -> &'a str {
        &src[self.span.0..self.span.1]
    }
}

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
/// A [`ParseError`] locating the first malformed byte.
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn lit(&mut self, word: &str, kind: Kind) -> Result<Kind, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(kind)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let start = self.pos;
        let kind = match self.peek() {
            Some(b'n') => self.lit("null", Kind::Null)?,
            Some(b't') => self.lit("true", Kind::Bool(true))?,
            Some(b'f') => self.lit("false", Kind::Bool(false))?,
            Some(b'"') => Kind::Str(self.string()?),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                } else {
                    loop {
                        self.skip_ws();
                        items.push(self.value(depth + 1)?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(self.err("expected ',' or ']'")),
                        }
                    }
                }
                Kind::Arr(items)
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                } else {
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.skip_ws();
                        self.expect(b':', "expected ':'")?;
                        self.skip_ws();
                        members.push((key, self.value(depth + 1)?));
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b'}') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(self.err("expected ',' or '}'")),
                        }
                    }
                }
                Kind::Obj(members)
            }
            Some(b'-' | b'0'..=b'9') => self.number()?,
            _ => return Err(self.err("expected a JSON value")),
        };
        Ok(Value {
            kind,
            span: (start, self.pos),
        })
    }

    fn number(&mut self) -> Result<Kind, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits, sign, dot, and exponent are ASCII");
        let n: f64 = text.parse().map_err(|_| ParseError {
            at: start,
            reason: "number out of range",
        })?;
        if !n.is_finite() {
            return Err(ParseError {
                at: start,
                reason: "number out of range",
            });
        }
        Ok(Kind::Num(n))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid codepoint"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            // hex4 leaves pos after the last digit; the
                            // shared increment below is skipped.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input came from a &str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"op":"predict","n":1.5,"ok":true,"x":null,"a":[1,2]}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("predict"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("x").unwrap().kind, Kind::Null);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn spans_echo_verbatim() {
        let src = r#"{"id": {"k": [1, "two"]}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("id").unwrap().raw(src), r#"{"k": [1, "two"]}"#);
        assert_eq!(v.raw(src), src);
    }

    #[test]
    fn escapes_resolve() {
        let v = parse(r#""a\n\t\"\\\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A😀"));
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "01x",
            "\"\\q\"",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "\"\\ud800\"",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
