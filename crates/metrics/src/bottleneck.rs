//! Corpus-level bottleneck statistics.
//!
//! Facile's typed explanations make per-block bottleneck attribution a
//! machine-consumable field, so a corpus of predictions can be reduced to
//! a *bottleneck distribution*: which pipeline component binds how often
//! on a given microarchitecture. This is the aggregation the paper's
//! Fig. 6 (bottleneck evolution) is built from, and the `bench`
//! `bottlenecks` binary reports it per µarch over the BHive-style corpus.

use facile_explain::Component;

/// Counts of primary bottlenecks over a corpus of predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BottleneckDistribution {
    counts: [u64; Component::ALL.len()],
    /// Successful predictions with no bottleneck (all bounds zero).
    unbounded: u64,
    /// Failed predictions (decode errors, untrained models, ...).
    errors: u64,
}

impl BottleneckDistribution {
    /// An empty distribution.
    #[must_use]
    pub fn new() -> BottleneckDistribution {
        BottleneckDistribution::default()
    }

    /// Record one successful prediction's primary bottleneck (`None` when
    /// the prediction had no non-zero bound).
    pub fn record(&mut self, bottleneck: Option<Component>) {
        match bottleneck {
            Some(c) => self.counts[c.rank()] += 1,
            None => self.unbounded += 1,
        }
    }

    /// Record one failed prediction.
    pub fn record_error(&mut self) {
        self.errors += 1;
    }

    /// Predictions recorded with `component` as the primary bottleneck.
    #[must_use]
    pub fn count(&self, component: Component) -> u64 {
        self.counts[component.rank()]
    }

    /// Successful predictions with no bottleneck.
    #[must_use]
    pub fn unbounded(&self) -> u64 {
        self.unbounded
    }

    /// Failed predictions.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Total successful predictions recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.unbounded
    }

    /// Share of successful predictions bottlenecked on `component`, in
    /// `[0, 1]` (0 when nothing was recorded).
    #[must_use]
    pub fn share(&self, component: Component) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(component) as f64 / total as f64
        }
    }

    /// The most frequent bottleneck, ties broken by the paper's
    /// front-end-first component order.
    #[must_use]
    pub fn dominant(&self) -> Option<Component> {
        Component::ALL
            .into_iter()
            .filter(|c| self.count(*c) > 0)
            .max_by_key(|c| (self.count(*c), std::cmp::Reverse(c.rank())))
    }

    /// Merge another distribution into this one (e.g. per-shard tallies).
    pub fn merge(&mut self, other: &BottleneckDistribution) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
        self.unbounded += other.unbounded;
        self.errors += other.errors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_count_share() {
        let mut d = BottleneckDistribution::new();
        d.record(Some(Component::Ports));
        d.record(Some(Component::Ports));
        d.record(Some(Component::Precedence));
        d.record(None);
        d.record_error();
        assert_eq!(d.count(Component::Ports), 2);
        assert_eq!(d.count(Component::Predec), 0);
        assert_eq!(d.unbounded(), 1);
        assert_eq!(d.errors(), 1);
        assert_eq!(d.total(), 4);
        assert!((d.share(Component::Ports) - 0.5).abs() < 1e-12);
        assert_eq!(d.dominant(), Some(Component::Ports));
    }

    #[test]
    fn dominant_tie_breaks_toward_front_end() {
        let mut d = BottleneckDistribution::new();
        d.record(Some(Component::Precedence));
        d.record(Some(Component::Predec));
        assert_eq!(d.dominant(), Some(Component::Predec));
        assert_eq!(BottleneckDistribution::new().dominant(), None);
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = BottleneckDistribution::new();
        a.record(Some(Component::Dec));
        let mut b = BottleneckDistribution::new();
        b.record(Some(Component::Dec));
        b.record(None);
        b.record_error();
        a.merge(&b);
        assert_eq!(a.count(Component::Dec), 2);
        assert_eq!(a.unbounded(), 1);
        assert_eq!(a.errors(), 1);
    }
}
