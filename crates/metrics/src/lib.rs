//! # facile-metrics
//!
//! Evaluation metrics and reporting utilities for the experiment harness:
//! MAPE and tie-aware Kendall tau-b (the two accuracy metrics of the
//! paper's §6.2), wall-clock timing statistics for the efficiency studies,
//! corpus-level [`BottleneckDistribution`]s over Facile's typed bottleneck
//! attributions, and plain-text table/heatmap writers for regenerating
//! the paper's tables and figures.
//!
//! ```
//! use facile_metrics::{mape, kendall_tau_b};
//!
//! let pairs = [(2.0, 1.9), (4.0, 4.2)];
//! assert!(mape(&pairs) < 0.06);
//! let tau = kendall_tau_b(&[1.0, 2.0, 3.0], &[2.0, 4.0, 9.0]);
//! assert!((tau - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod accuracy;
pub mod bottleneck;
pub mod table;
pub mod timing;

pub use accuracy::{geomean, kendall_tau_b, kendall_tau_b_naive, mape, mean};
pub use bottleneck::BottleneckDistribution;
pub use table::{Heatmap, Table};
pub use timing::{time_each, TimingStats};
