//! Accuracy metrics: MAPE and Kendall's tau-b.

/// Mean absolute percentage error of predictions against measurements:
/// `mean(|m - p| / m)` over pairs with `m > 0` (§6.2).
///
/// Returns 0 for an empty input.
#[must_use]
pub fn mape(pairs: &[(f64, f64)]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &(measured, predicted) in pairs {
        if measured > 0.0 {
            sum += ((measured - predicted) / measured).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Kendall's tau-b rank correlation with tie correction, computed in
/// O(n log n) with Knight's algorithm.
///
/// Returns 0 when either ranking is constant (no information).
#[must_use]
pub fn kendall_tau_b(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "rankings must have equal length");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .expect("no NaNs")
            .then(ys[a].partial_cmp(&ys[b]).expect("no NaNs"))
    });

    let n0 = n as f64 * (n as f64 - 1.0) / 2.0;

    // Tie counts in x and joint ties.
    let mut n1 = 0.0; // pairs tied in x
    let mut n3 = 0.0; // pairs tied in both
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j < n && xs[idx[j]] == xs[idx[i]] {
                j += 1;
            }
            let t = (j - i) as f64;
            n1 += t * (t - 1.0) / 2.0;
            // joint ties inside the x-tie block
            let mut k = i;
            while k < j {
                let mut l = k;
                while l < j && ys[idx[l]] == ys[idx[k]] {
                    l += 1;
                }
                let u = (l - k) as f64;
                n3 += u * (u - 1.0) / 2.0;
                k = l;
            }
            i = j;
        }
    }

    // Tie counts in y.
    let mut sorted_y: Vec<f64> = ys.to_vec();
    sorted_y.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mut n2 = 0.0;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j < n && sorted_y[j] == sorted_y[i] {
                j += 1;
            }
            let t = (j - i) as f64;
            n2 += t * (t - 1.0) / 2.0;
            i = j;
        }
    }

    // Discordant pairs: exchanges needed to sort the y sequence (in x
    // order) — counted by merge sort.
    let mut seq: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
    let mut buf = vec![0.0f64; n];
    let swaps = merge_count(&mut seq, &mut buf);

    let denom = ((n0 - n1) * (n0 - n2)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (n0 - n1 - n2 + n3 - 2.0 * swaps) / denom
}

/// Merge sort counting the number of (strictly) inverted pairs.
fn merge_count(a: &mut [f64], buf: &mut [f64]) -> f64 {
    let n = a.len();
    if n <= 1 {
        return 0.0;
    }
    let mid = n / 2;
    let (left, right) = a.split_at_mut(mid);
    let mut swaps = merge_count(left, buf) + merge_count(right, buf);
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < left.len() && j < right.len() {
        if right[j] < left[i] {
            swaps += (left.len() - i) as f64;
            buf[k] = right[j];
            j += 1;
        } else {
            buf[k] = left[i];
            i += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    a.copy_from_slice(&buf[..n]);
    swaps
}

/// Naive O(n²) Kendall tau-b, used as a test oracle.
#[must_use]
pub fn kendall_tau_b_naive(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len();
    let (mut conc, mut disc) = (0f64, 0f64);
    let (mut tx, mut ty) = (0f64, 0f64);
    for i in 0..n {
        for j in i + 1..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            if dx == 0.0 && dy == 0.0 {
                // joint tie: counts in neither
            } else if dx == 0.0 {
                tx += 1.0;
            } else if dy == 0.0 {
                ty += 1.0;
            } else if dx * dy > 0.0 {
                conc += 1.0;
            } else {
                disc += 1.0;
            }
        }
    }
    let denom = ((conc + disc + tx) * (conc + disc + ty)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (conc - disc) / denom
    }
}

/// Arithmetic mean; 0 for empty input.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of positive values; 1 for empty input.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().filter(|x| **x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        1.0
    } else {
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_basic() {
        let pairs = [(2.0, 1.0), (4.0, 4.0)];
        assert!((mape(&pairs) - 0.25).abs() < 1e-12);
        assert_eq!(mape(&[]), 0.0);
        // zero measurements are skipped
        assert_eq!(mape(&[(0.0, 5.0)]), 0.0);
    }

    #[test]
    fn tau_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau_b(&xs, &ys) - 1.0).abs() < 1e-12);
        let rev: Vec<f64> = ys.iter().rev().copied().collect();
        assert!((kendall_tau_b(&xs, &rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tau_with_ties_matches_naive() {
        let xs = [1.0, 1.0, 2.0, 3.0, 3.0, 4.0];
        let ys = [2.0, 1.0, 1.0, 5.0, 5.0, 3.0];
        let fast = kendall_tau_b(&xs, &ys);
        let slow = kendall_tau_b_naive(&xs, &ys);
        assert!((fast - slow).abs() < 1e-12, "{fast} vs {slow}");
    }

    #[test]
    fn tau_constant_ranking_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(kendall_tau_b(&xs, &ys), 0.0);
    }

    #[test]
    fn aggregates() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }
}
