//! Wall-clock timing helpers for the efficiency experiments (Fig. 4/5).

use std::time::Instant;

/// Summary statistics of a sample of durations (in microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingStats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Minimum.
    pub min_us: f64,
    /// 25th percentile.
    pub p25_us: f64,
    /// Median.
    pub median_us: f64,
    /// 75th percentile.
    pub p75_us: f64,
    /// Maximum.
    pub max_us: f64,
}

impl TimingStats {
    /// Compute statistics from raw samples (microseconds). Returns zeroed
    /// stats for an empty sample.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> TimingStats {
        if samples.is_empty() {
            return TimingStats {
                n: 0,
                mean_us: 0.0,
                min_us: 0.0,
                p25_us: 0.0,
                median_us: 0.0,
                p75_us: 0.0,
                max_us: 0.0,
            };
        }
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let q = |p: f64| -> f64 {
            let idx = (p * (s.len() - 1) as f64).round() as usize;
            s[idx]
        };
        TimingStats {
            n: s.len(),
            mean_us: s.iter().sum::<f64>() / s.len() as f64,
            min_us: s[0],
            p25_us: q(0.25),
            median_us: q(0.5),
            p75_us: q(0.75),
            max_us: s[s.len() - 1],
        }
    }
}

/// Time a closure per item, returning (per-item results, per-item times in
/// microseconds).
pub fn time_each<T, U>(items: &[T], mut f: impl FnMut(&T) -> U) -> (Vec<U>, Vec<f64>) {
    let mut results = Vec::with_capacity(items.len());
    let mut times = Vec::with_capacity(items.len());
    for item in items {
        let t0 = Instant::now();
        results.push(f(item));
        times.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    (results, times)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_from_known_samples() {
        let s = TimingStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean_us - 3.0).abs() < 1e-12);
        assert_eq!(s.min_us, 1.0);
        assert_eq!(s.median_us, 3.0);
        assert_eq!(s.max_us, 5.0);
    }

    #[test]
    fn empty_samples() {
        let s = TimingStats::from_samples(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean_us, 0.0);
    }

    #[test]
    fn time_each_returns_results() {
        let items = vec![1u32, 2, 3];
        let (r, t) = time_each(&items, |x| x * 2);
        assert_eq!(r, vec![2, 4, 6]);
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|x| *x >= 0.0));
    }
}
