//! Plain-text table and heatmap writers for the experiment binaries
//! (no serialization dependency needed).

use std::fmt;

/// A simple left-aligned text table rendered as GitHub-flavored Markdown.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as tab-separated values.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut s = self.headers.join("\t");
        s.push('\n');
        for r in &self.rows {
            s.push_str(&r.join("\t"));
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// A 2-D histogram of (measured, predicted) pairs, for the Fig. 3 heatmaps.
#[derive(Debug, Clone)]
pub struct Heatmap {
    bins: usize,
    max: f64,
    counts: Vec<u64>,
    /// Pairs outside the plotted range.
    pub clipped: u64,
}

impl Heatmap {
    /// A `bins` × `bins` heatmap covering `[0, max)` on both axes.
    #[must_use]
    pub fn new(bins: usize, max: f64) -> Heatmap {
        Heatmap {
            bins,
            max,
            counts: vec![0; bins * bins],
            clipped: 0,
        }
    }

    /// Add a (measured, predicted) sample.
    pub fn add(&mut self, measured: f64, predicted: f64) {
        let bx = (measured / self.max * self.bins as f64) as usize;
        let by = (predicted / self.max * self.bins as f64) as usize;
        if measured < 0.0 || predicted < 0.0 || bx >= self.bins || by >= self.bins {
            self.clipped += 1;
            return;
        }
        self.counts[by * self.bins + bx] += 1;
    }

    /// Count in a cell (x = measured bin, y = predicted bin).
    #[must_use]
    pub fn count(&self, x: usize, y: usize) -> u64 {
        self.counts[y * self.bins + x]
    }

    /// Fraction of samples on the diagonal (predicted bin == measured bin).
    #[must_use]
    pub fn diagonal_fraction(&self) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.bins).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Render as CSV (`measured_bin,predicted_bin,count`), skipping zeros.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut s = String::from("measured_bin,predicted_bin,count\n");
        for y in 0..self.bins {
            for x in 0..self.bins {
                let c = self.count(x, y);
                if c > 0 {
                    s.push_str(&format!("{x},{y},{c}\n"));
                }
            }
        }
        s
    }
}

impl fmt::Display for Heatmap {
    /// ASCII rendering with log-scaled glyphs, predicted on the y axis
    /// (top = high), measured on the x axis.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const GLYPHS: [char; 6] = [' ', '.', ':', 'o', 'O', '@'];
        for y in (0..self.bins).rev() {
            write!(f, "{:>5.1} |", y as f64 * self.max / self.bins as f64)?;
            for x in 0..self.bins {
                let c = self.count(x, y);
                let g = if c == 0 {
                    GLYPHS[0]
                } else {
                    let level = (c as f64).log10().floor() as usize + 1;
                    GLYPHS[level.min(GLYPHS.len() - 1)]
                };
                write!(f, "{g}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "      +{}", "-".repeat(self.bins))?;
        writeln!(f, "       0 .. {:.0} (measured, cycles/iter)", self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "22"]);
        t.row(vec!["333", "4"]);
        let s = t.to_string();
        assert!(s.contains("| a   | b  |"));
        assert!(s.contains("| 333 | 4  |"));
        assert_eq!(t.to_tsv(), "a\tb\n1\t22\n333\t4\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_validates_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn heatmap_bins() {
        let mut h = Heatmap::new(10, 10.0);
        h.add(0.5, 0.5); // bin (0,0)
        h.add(9.5, 2.5); // bin (9,2)
        h.add(11.0, 1.0); // clipped
        assert_eq!(h.count(0, 0), 1);
        assert_eq!(h.count(9, 2), 1);
        assert_eq!(h.clipped, 1);
        assert!((h.diagonal_fraction() - 0.5).abs() < 1e-12);
        assert!(h.to_csv().contains("9,2,1"));
    }
}
