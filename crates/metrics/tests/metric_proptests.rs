//! Property tests for the accuracy metrics.

use facile_metrics::{kendall_tau_b, kendall_tau_b_naive, mape};
use proptest::prelude::*;

fn ranking() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u32..50, 2..60).prop_map(|v| v.into_iter().map(f64::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fast_tau_matches_naive(xs in ranking(), ys in ranking()) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let fast = kendall_tau_b(xs, ys);
        let slow = kendall_tau_b_naive(xs, ys);
        prop_assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    #[test]
    fn tau_is_symmetric_and_bounded(xs in ranking(), ys in ranking()) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let a = kendall_tau_b(xs, ys);
        let b = kendall_tau_b(ys, xs);
        prop_assert!((a - b).abs() < 1e-9);
        prop_assert!((-1.0..=1.0).contains(&a));
    }

    #[test]
    fn tau_of_identical_rankings_is_one(xs in ranking()) {
        // Unless the ranking is constant, tau(x, x) == 1.
        let distinct = xs.iter().any(|v| *v != xs[0]);
        let t = kendall_tau_b(&xs, &xs);
        if distinct {
            prop_assert!((t - 1.0).abs() < 1e-9, "{t}");
        } else {
            prop_assert_eq!(t, 0.0);
        }
    }

    #[test]
    fn mape_is_nonnegative_and_zero_iff_exact(
        pairs in proptest::collection::vec((1u32..100, 1u32..100), 1..40)
    ) {
        let pairs: Vec<(f64, f64)> =
            pairs.into_iter().map(|(a, b)| (f64::from(a), f64::from(b))).collect();
        let e = mape(&pairs);
        prop_assert!(e >= 0.0);
        let exact: Vec<(f64, f64)> = pairs.iter().map(|(m, _)| (*m, *m)).collect();
        prop_assert!(mape(&exact) < 1e-12);
    }

    #[test]
    fn mape_scale_invariant(
        pairs in proptest::collection::vec((1u32..100, 1u32..100), 1..40),
        k in 1u32..20
    ) {
        let pairs: Vec<(f64, f64)> =
            pairs.into_iter().map(|(a, b)| (f64::from(a), f64::from(b))).collect();
        let scaled: Vec<(f64, f64)> = pairs
            .iter()
            .map(|(m, p)| (m * f64::from(k), p * f64::from(k)))
            .collect();
        prop_assert!((mape(&pairs) - mape(&scaled)).abs() < 1e-9);
    }
}
