//! Learning-based baselines: an Ithemal-like regression model, a
//! DiffTune-like model (trained on the unrolled notion only, with coarse
//! features), and the simple per-opcode baseline of "DiffTune revisited".
//!
//! All of them are trained against simulator measurements of a separate
//! seeded training suite, mirroring how the original tools are trained on
//! BHive measurements.

use crate::predictor::Predictor;
use facile_core::Mode;
use facile_isa::AnnotatedBlock;
use facile_uarch::Uarch;
use facile_x86::Mnemonic;
use std::collections::HashMap;

/// Solve the ridge-regularized normal equations `(XᵀX + λI) w = Xᵀy`.
///
/// # Panics
/// Panics if the system is singular even after regularization (cannot
/// happen for λ > 0).
fn ridge_fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Vec<f64> {
    let k = xs.first().map_or(0, Vec::len);
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for (x, &y) in xs.iter().zip(ys) {
        for i in 0..k {
            b[i] += x[i] * y;
            for j in 0..k {
                a[i][j] += x[i] * x[j];
            }
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += lambda;
    }
    // Gaussian elimination with partial pivoting.
    let mut m = a;
    let mut v = b;
    for col in 0..k {
        let pivot = (col..k)
            .max_by(|&p, &q| {
                m[p][col]
                    .abs()
                    .partial_cmp(&m[q][col].abs())
                    .expect("no NaN")
            })
            .expect("non-empty");
        m.swap(col, pivot);
        v.swap(col, pivot);
        let d = m[col][col];
        assert!(d.abs() > 1e-12, "singular system despite ridge term");
        for r in col + 1..k {
            let f = m[r][col] / d;
            // Rows r and col of the same matrix: indexing keeps the
            // elimination readable without split_at_mut gymnastics.
            #[allow(clippy::needless_range_loop)]
            for c in col..k {
                m[r][c] -= f * m[col][c];
            }
            v[r] -= f * v[col];
        }
    }
    let mut w = vec![0.0f64; k];
    for col in (0..k).rev() {
        let mut s = v[col];
        for c in col + 1..k {
            s -= m[col][c] * w[c];
        }
        w[col] = s / m[col][col];
    }
    w
}

/// Coarse mnemonic class for tabular features.
fn mnemonic_class(m: Mnemonic) -> usize {
    use Mnemonic::*;
    match m {
        Mov | Movzx | Movsx | Movsxd => 0,
        Add | Sub | And | Or | Xor | Cmp | Test | Inc | Dec | Neg | Not | Lea | Setcc(_) | Cdq
        | Cqo | Bt | Bswap => 1,
        Shl | Shr | Sar | Rol | Ror | Shld | Shrd => 2,
        Imul | Mul => 3,
        Div | Idiv => 4,
        Cmovcc(_) | Popcnt | Lzcnt | Tzcnt | Bsf | Bsr => 5,
        Jmp | Jcc(_) => 6,
        Push | Pop | Xchg | Nop => 7,
        Addps | Addpd | Addss | Addsd | Subps | Subpd | Subss | Subsd | Minps | Maxps | Minss
        | Maxss | Minsd | Maxsd | Vaddps | Vaddpd | Vsubps | Vsubpd | Vaddss | Vaddsd | Vminps
        | Vmaxps => 8,
        Mulps | Mulpd | Mulss | Mulsd | Vmulps | Vmulpd | Vmulss | Vmulsd | Vfmadd231ps
        | Vfmadd231pd | Vfmadd231ss | Vfmadd231sd => 9,
        Divps | Divpd | Divss | Divsd | Sqrtps | Sqrtpd | Sqrtss | Sqrtsd | Vdivps | Vdivpd
        | Vsqrtps => 10,
        Ucomiss | Ucomisd | Cvtsi2ss | Cvtsi2sd | Cvttss2si | Cvttsd2si | Cvtps2pd | Cvtpd2ps => 11,
        _ => 12, // vector integer / logic / shuffle / moves
    }
}

const N_CLASSES: usize = 13;

/// Feature sets for the learned models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeatureSet {
    /// Mnemonic-class counts only (DiffTune-like).
    Poor,
    /// Class counts plus structural summaries (Ithemal-like).
    Rich,
    /// Class counts plus the llvm-mca-like model prediction: the
    /// "learned llvm-mca parameters" shape of the learning-bl baseline.
    PoorPlusMca,
}

fn features(ab: &AnnotatedBlock, set: FeatureSet) -> Vec<f64> {
    let rich = set == FeatureSet::Rich;
    let extra = match set {
        FeatureSet::Poor => 0,
        FeatureSet::Rich => 10,
        FeatureSet::PoorPlusMca => 1,
    };
    let mut f = vec![0.0; 1 + N_CLASSES + extra];
    f[0] = 1.0;
    for a in ab.block().insts() {
        f[1 + mnemonic_class(a.mnemonic)] += 1.0;
    }
    if rich {
        let cfg = ab.uarch().config();
        let base = 1 + N_CLASSES;
        f[base] = f64::from(ab.total_unfused_uops());
        f[base + 1] = f64::from(ab.total_issue_uops()) / f64::from(cfg.issue_width);
        f[base + 2] = ab.byte_len() as f64 / 16.0;
        let mut loads = 0.0;
        let mut stores = 0.0;
        let mut occ = 0.0;
        let mut max_lat = 0.0f64;
        let mut pressure = vec![0.0f64; 16];
        for a in ab.insts() {
            if a.desc().has_load() {
                loads += 1.0;
            }
            if a.desc().has_store() {
                stores += 1.0;
            }
            max_lat = max_lat.max(f64::from(a.desc().latency));
            for u in &a.desc().uops {
                occ += f64::from(u.occupancy - 1);
                for p in u.ports.iter() {
                    pressure[usize::from(p)] += f64::from(u.occupancy) / f64::from(u.ports.count());
                }
            }
        }
        f[base + 3] = loads;
        f[base + 4] = stores;
        f[base + 5] = occ;
        let pmax = pressure.into_iter().fold(0.0, f64::max);
        f[base + 6] = pmax.max(max_lat);
        // Structural summary features a sequence model would learn to
        // approximate: the coarse per-component bounds and their maximum.
        let chain = crate::analytic::naive_dependence_bound(ab);
        f[base + 7] = chain;
        f[base + 8] = pmax.max(f[base + 1]).max(f[base + 2]);
        f[base + 9] = f[base + 8].max(chain);
    }
    if set == FeatureSet::PoorPlusMca {
        use crate::predictor::Predictor;
        f[1 + N_CLASSES] = crate::analytic::LlvmMcaLike.predict(ab, Mode::Loop);
    }
    f
}

/// A trained linear throughput model.
#[derive(Debug, Clone)]
struct LinearModel {
    weights: Vec<f64>,
    set: FeatureSet,
}

impl LinearModel {
    fn train(
        uarch: Uarch,
        set: FeatureSet,
        notion: Mode,
        n_train: usize,
        seed: u64,
    ) -> LinearModel {
        let suite = facile_bhive::generate_suite(n_train, seed);
        let mut xs = Vec::with_capacity(n_train);
        let mut ys = Vec::with_capacity(n_train);
        for b in &suite {
            let block = match notion {
                Mode::Unrolled => &b.unrolled,
                Mode::Loop => &b.looped,
            };
            let ab = AnnotatedBlock::new(block.clone(), uarch);
            xs.push(features(&ab, set));
            ys.push(facile_bhive::measure_block(
                block,
                uarch,
                notion == Mode::Loop,
            ));
        }
        LinearModel {
            weights: ridge_fit(&xs, &ys, 1e-3),
            set,
        }
    }

    fn predict(&self, ab: &AnnotatedBlock) -> f64 {
        let f = features(ab, self.set);
        let raw: f64 = f.iter().zip(&self.weights).map(|(a, b)| a * b).sum();
        raw.max(0.05)
    }
}

/// Ithemal-like: a learned model with rich features, trained per
/// microarchitecture on the *unrolled* (TPU) notion, as Ithemal is trained
/// on BHive. Being a black box, it provides no interpretability.
#[derive(Debug, Clone)]
pub struct IthemalLike {
    models: HashMap<Uarch, LinearModel>,
}

impl IthemalLike {
    /// Train on `n_train` blocks per microarchitecture.
    #[must_use]
    pub fn train(uarchs: &[Uarch], n_train: usize, seed: u64) -> IthemalLike {
        let models = uarchs
            .iter()
            .map(|&u| {
                (
                    u,
                    LinearModel::train(u, FeatureSet::Rich, Mode::Unrolled, n_train, seed),
                )
            })
            .collect();
        IthemalLike { models }
    }
}

impl Predictor for IthemalLike {
    fn name(&self) -> &'static str {
        "Ithemal-like"
    }

    fn predict(&self, ab: &AnnotatedBlock, _mode: Mode) -> f64 {
        self.models
            .get(&ab.uarch())
            .map_or(f64::NAN, |m| m.predict(ab))
    }

    fn native_notion(&self) -> Option<Mode> {
        Some(Mode::Unrolled)
    }
}

/// DiffTune-like: learned parameters for an llvm-mca-style model, trained
/// on the unrolled notion with coarse features only. Matches DiffTune's
/// published failure mode: usable on TPU, dramatically wrong on loop
/// benchmarks.
#[derive(Debug, Clone)]
pub struct DiffTuneLike {
    models: HashMap<Uarch, LinearModel>,
}

impl DiffTuneLike {
    /// Train on `n_train` blocks per microarchitecture.
    #[must_use]
    pub fn train(uarchs: &[Uarch], n_train: usize, seed: u64) -> DiffTuneLike {
        let models = uarchs
            .iter()
            .map(|&u| {
                (
                    u,
                    LinearModel::train(u, FeatureSet::Poor, Mode::Unrolled, n_train, seed),
                )
            })
            .collect();
        DiffTuneLike { models }
    }
}

impl Predictor for DiffTuneLike {
    fn name(&self) -> &'static str {
        "DiffTune-like"
    }

    fn predict(&self, ab: &AnnotatedBlock, _mode: Mode) -> f64 {
        self.models
            .get(&ab.uarch())
            .map_or(f64::NAN, |m| m.predict(ab))
    }

    fn native_notion(&self) -> Option<Mode> {
        Some(Mode::Unrolled)
    }
}

/// The "learning-bl" baseline of \[7\] (DiffTune revisited): a per-opcode
/// cost table fit by least squares — each instruction class contributes a
/// learned constant number of cycles.
#[derive(Debug, Clone)]
pub struct LearningBl {
    models: HashMap<Uarch, LinearModel>,
}

impl LearningBl {
    /// Train on `n_train` blocks per microarchitecture (on TPU, as in \[7\]).
    #[must_use]
    pub fn train(uarchs: &[Uarch], n_train: usize, seed: u64) -> LearningBl {
        let models = uarchs
            .iter()
            .map(|&u| {
                (
                    u,
                    LinearModel::train(
                        u,
                        FeatureSet::PoorPlusMca,
                        Mode::Unrolled,
                        n_train,
                        seed ^ 0x5bd1,
                    ),
                )
            })
            .collect();
        LearningBl { models }
    }
}

impl Predictor for LearningBl {
    fn name(&self) -> &'static str {
        "learning-bl"
    }

    fn predict(&self, ab: &AnnotatedBlock, _mode: Mode) -> f64 {
        self.models
            .get(&ab.uarch())
            .map_or(f64::NAN, |m| m.predict(ab))
    }

    fn native_notion(&self) -> Option<Mode> {
        Some(Mode::Unrolled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_metrics::mape;

    #[test]
    fn ridge_fit_recovers_exact_linear_relation() {
        // y = 2 + 3*x
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![1.0, f64::from(i)]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 2.0 + 3.0 * f64::from(i)).collect();
        let w = ridge_fit(&xs, &ys, 1e-9);
        assert!((w[0] - 2.0).abs() < 1e-3, "{w:?}");
        assert!((w[1] - 3.0).abs() < 1e-4, "{w:?}");
    }

    #[test]
    fn ithemal_like_learns_something() {
        let model = IthemalLike::train(&[Uarch::Skl], 150, 99);
        let test = facile_bhive::generate_suite(60, 1717);
        let mut pairs = Vec::new();
        for b in &test {
            let m = facile_bhive::measure_block(&b.unrolled, Uarch::Skl, false);
            let ab = AnnotatedBlock::new(b.unrolled.clone(), Uarch::Skl);
            let p = model.predict(&ab, Mode::Unrolled);
            if m > 0.0 {
                pairs.push((m, p));
            }
        }
        let e = mape(&pairs);
        // Learned but clearly worse than Facile's ~1-2%.
        assert!(e < 0.6, "Ithemal-like should learn the rough scale: {e}");
        assert!(e > 0.02, "a linear model cannot be near-perfect: {e}");
    }

    #[test]
    fn difftune_worse_on_loops() {
        let model = DiffTuneLike::train(&[Uarch::Skl], 150, 99);
        let test = facile_bhive::generate_suite(60, 2222);
        let (mut up, mut lp) = (Vec::new(), Vec::new());
        for b in &test {
            let mu = facile_bhive::measure_block(&b.unrolled, Uarch::Skl, false);
            let ml = facile_bhive::measure_block(&b.looped, Uarch::Skl, true);
            if mu > 0.0 {
                let ab = AnnotatedBlock::new(b.unrolled.clone(), Uarch::Skl);
                up.push((mu, model.predict(&ab, Mode::Unrolled)));
            }
            if ml > 0.0 {
                let ab = AnnotatedBlock::new(b.looped.clone(), Uarch::Skl);
                lp.push((ml, model.predict(&ab, Mode::Loop)));
            }
        }
        assert!(
            mape(&lp) >= mape(&up) * 0.8,
            "DiffTune-like should not be better on its non-native notion: {} vs {}",
            mape(&lp),
            mape(&up)
        );
    }
}
