//! Re-implementations *in spirit* of the analytical/simulation competitors
//! from Table 2. Each baseline reproduces the documented modeling gap of
//! the original tool (see DESIGN.md §2).

use crate::predictor::Predictor;
use facile_core::mcr::{solve_value, RatioGraph};
use facile_core::{dec, dsb, issue, lsd, ports, predec, Mode};
use facile_isa::AnnotatedBlock;
use facile_x86::{flags, Reg};
use std::collections::HashMap;

/// A dependence bound that ignores rename-stage tricks: no move
/// elimination, no zero idioms, no memory forwarding — the level of detail
/// typical for scheduler-model-driven tools.
pub(crate) fn naive_dependence_bound(ab: &AnnotatedBlock) -> f64 {
    #[derive(PartialEq, Eq, Hash, Clone, Copy)]
    enum V {
        R(Reg),
        F(u8),
    }
    let insts: Vec<_> = ab.insts().iter().filter(|a| !a.fused_with_prev).collect();
    if insts.is_empty() {
        return 0.0;
    }
    let load_lat = f64::from(ab.uarch().config().load_latency);
    let mut ids: HashMap<(usize, V, bool), usize> = HashMap::new();
    let mut next = 0usize;
    let mut edges: Vec<(usize, usize, f64, u32)> = Vec::new();
    let mut node = |ids: &mut HashMap<(usize, V, bool), usize>, k: (usize, V, bool)| {
        *ids.entry(k).or_insert_with(|| {
            next += 1;
            next - 1
        })
    };
    struct Fl {
        consumed: Vec<V>,
        produced: Vec<V>,
        /// Inputs that feed address generation of a load (extra latency).
        via_load: Vec<V>,
        lat: f64,
    }
    let fl: Vec<Fl> = insts
        .iter()
        .map(|a| {
            let e = a.effects();
            let mut consumed: Vec<V> = e.reg_reads.iter().map(|r| V::R(r.full())).collect();
            // No dependency-breaking idioms: `xor r, r` still reads `r`.
            if a.inst().is_zero_idiom() || a.inst().is_ones_idiom() {
                consumed.extend(
                    a.inst()
                        .operands
                        .iter()
                        .filter_map(|o| o.reg())
                        .map(|r| V::R(r.full())),
                );
            }
            consumed.extend(flags::groups(e.flags_read).map(V::F));
            let mut via_load = Vec::new();
            if let Some(m) = e.mem {
                for r in m.addr_regs() {
                    consumed.push(V::R(r.full()));
                    if e.loads {
                        via_load.push(V::R(r.full()));
                    }
                }
            }
            let mut produced: Vec<V> = e.reg_writes.iter().map(|r| V::R(r.full())).collect();
            produced.extend(flags::groups(e.flags_written).map(V::F));
            let lat = f64::from(a.desc().latency.max(1));
            Fl {
                consumed,
                produced,
                via_load,
                lat,
            }
        })
        .collect();
    for (i, f) in fl.iter().enumerate() {
        for &c in &f.consumed {
            let from = node(&mut ids, (i, c, false));
            let w = if f.via_load.contains(&c) {
                f.lat + load_lat
            } else {
                f.lat
            };
            for &p in &f.produced {
                let to = node(&mut ids, (i, p, true));
                edges.push((from, to, w, 0));
            }
        }
    }
    let n = fl.len();
    for (j, f) in fl.iter().enumerate() {
        for &c in &f.consumed {
            let mut producer = None;
            for i in (0..j).rev() {
                if fl[i].produced.contains(&c) {
                    producer = Some((i, 0));
                    break;
                }
            }
            if producer.is_none() {
                for i in (j..n).rev() {
                    if fl[i].produced.contains(&c) {
                        producer = Some((i, 1));
                        break;
                    }
                }
            }
            if let Some((i, cnt)) = producer {
                let from = node(&mut ids, (i, c, true));
                let to = node(&mut ids, (j, c, false));
                edges.push((from, to, 0.0, cnt));
            }
        }
    }
    let mut g = RatioGraph::new(next);
    for (a, b, w, c) in edges {
        g.add_edge(a, b, w, c);
    }
    solve_value(&g).value()
}

/// llvm-mca-like: models the back end from the scheduling database but
/// "does not model the front end of a processor pipeline or techniques
/// like macro or micro fusion" (§2). Port pressure uses naive uniform
/// distribution, dependencies ignore rename tricks, and every instruction
/// costs at least one issue slot per µop (no fusion, no elimination). The
/// *absence* of fusion modeling is represented by the µop count
/// correction below (fused branches and eliminated moves are charged as
/// separate µops).
#[derive(Debug, Clone, Copy, Default)]
pub struct LlvmMcaLike;

impl Predictor for LlvmMcaLike {
    fn name(&self) -> &'static str {
        "llvm-mca-like"
    }

    fn predict(&self, ab: &AnnotatedBlock, mode: Mode) -> f64 {
        let _ = mode; // one notion: no front end, so TPU == TPL
        let cfg = ab.uarch().config();
        // Uniform fractional port pressure (no optimal balancing, no
        // elimination: every µop executes; eliminated moves get an ALU µop).
        let mut pressure = [0.0f64; 16];
        let mut total_uops = 0.0;
        for a in ab.insts() {
            if a.fused_with_prev {
                // unfused tools see the branch separately
                let ports = cfg.ports.branch;
                for p in ports.iter() {
                    pressure[usize::from(p)] += 1.0 / f64::from(ports.count());
                }
                total_uops += 1.0;
                continue;
            }
            if a.desc().eliminated {
                let ports = cfg.ports.alu;
                for p in ports.iter() {
                    pressure[usize::from(p)] += 1.0 / f64::from(ports.count());
                }
                total_uops += 1.0;
                continue;
            }
            for u in &a.desc().uops {
                for p in u.ports.iter() {
                    pressure[usize::from(p)] += f64::from(u.occupancy) / f64::from(u.ports.count());
                }
                total_uops += 1.0;
            }
        }
        let port_bound = pressure.iter().copied().fold(0.0, f64::max);
        let issue_bound = total_uops / f64::from(cfg.issue_width);
        let dep_bound = naive_dependence_bound(ab);
        port_bound.max(issue_bound).max(dep_bound)
    }

    fn native_notion(&self) -> Option<Mode> {
        Some(Mode::Loop)
    }
}

/// CQA-like: a detailed front-end model but no back-end model "because of
/// its complexity and lack of documentation" (§2): no port contention, no
/// dependence chains.
#[derive(Debug, Clone, Copy, Default)]
pub struct CqaLike;

impl Predictor for CqaLike {
    fn name(&self) -> &'static str {
        "CQA-like"
    }

    fn predict(&self, ab: &AnnotatedBlock, mode: Mode) -> f64 {
        let fe = match mode {
            Mode::Unrolled => predec::predec(ab, mode).max(dec::dec(ab)),
            Mode::Loop => {
                if lsd::lsd_applicable(ab) {
                    lsd::lsd(ab)
                } else {
                    dsb::dsb(ab)
                }
            }
        };
        fe.max(issue::issue(ab))
    }

    fn native_notion(&self) -> Option<Mode> {
        Some(Mode::Loop)
    }
}

/// OSACA-like: coarse analytical model — uniform port pressure plus a
/// critical-path estimate, no front end, no fusion/elimination detail.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsacaLike;

impl Predictor for OsacaLike {
    fn name(&self) -> &'static str {
        "OSACA-like"
    }

    fn predict(&self, ab: &AnnotatedBlock, mode: Mode) -> f64 {
        let _ = mode;
        let cfg = ab.uarch().config();
        let mut pressure = [0.0f64; 16];
        for a in ab.insts() {
            if a.desc().eliminated && !a.fused_with_prev {
                // OSACA does not model move elimination: charge an ALU µop.
                for p in cfg.ports.alu.iter() {
                    pressure[usize::from(p)] += 1.0 / f64::from(cfg.ports.alu.count());
                }
                continue;
            }
            for u in &a.desc().uops {
                for p in u.ports.iter() {
                    pressure[usize::from(p)] += f64::from(u.occupancy) / f64::from(u.ports.count());
                }
            }
        }
        let port_bound = pressure.iter().copied().fold(0.0, f64::max);
        // OSACA's "critical path": the sum of latencies of the longest
        // intra-iteration chain, divided by an assumed overlap factor —
        // modeled here as the naive loop-carried bound without memory.
        let dep = naive_dependence_bound(ab);
        let throughput_bound = f64::from(ab.total_unfused_uops()) / f64::from(cfg.issue_width);
        port_bound.max(dep).max(throughput_bound)
    }

    fn native_notion(&self) -> Option<Mode> {
        Some(Mode::Loop)
    }
}

/// IACA-like: models issue width, macro fusion, optimal port binding, and
/// a register-level dependence analysis, but no predecode/LCP effects, no
/// rename-stage elimination, and no memory forwarding.
#[derive(Debug, Clone, Copy, Default)]
pub struct IacaLike;

impl Predictor for IacaLike {
    fn name(&self) -> &'static str {
        "IACA-like"
    }

    fn predict(&self, ab: &AnnotatedBlock, mode: Mode) -> f64 {
        let _ = mode;
        ports::ports(ab)
            .bound
            .max(issue::issue(ab))
            .max(naive_dependence_bound(ab))
    }

    fn native_notion(&self) -> Option<Mode> {
        Some(Mode::Loop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_uarch::Uarch;
    use facile_x86::reg::names::*;
    use facile_x86::{Block, Mnemonic, Operand};

    fn annotated(prog: &[(Mnemonic, Vec<Operand>)], uarch: Uarch) -> AnnotatedBlock {
        AnnotatedBlock::new(Block::assemble(prog).unwrap(), uarch)
    }

    #[test]
    fn cqa_ignores_dependencies() {
        // A mulsd latency chain: CQA-like misses it entirely.
        let ab = annotated(
            &[(
                Mnemonic::Mulsd,
                vec![
                    Operand::Reg(facile_x86::Reg::Xmm(0)),
                    Operand::Reg(facile_x86::Reg::Xmm(1)),
                ],
            )],
            Uarch::Skl,
        );
        let cqa = CqaLike.predict(&ab, Mode::Loop);
        let fac = crate::predictor::FacilePredictor.predict(&ab, Mode::Loop);
        assert!(cqa < fac, "CQA-like should underpredict latency chains");
    }

    #[test]
    fn llvm_mca_misses_move_elimination() {
        // A block of eliminable moves: llvm-mca-like charges ALU ports.
        let prog: Vec<_> = (0..4)
            .map(|_| (Mnemonic::Mov, vec![Operand::Reg(RAX), Operand::Reg(RCX)]))
            .collect();
        let ab = annotated(&prog, Uarch::Skl);
        let mca = LlvmMcaLike.predict(&ab, Mode::Loop);
        assert!(mca >= 1.0, "no move elimination modeled: {mca}");
    }

    #[test]
    fn llvm_mca_catches_simple_dependence() {
        let ab = annotated(
            &[(Mnemonic::Imul, vec![Operand::Reg(RAX), Operand::Reg(RCX)])],
            Uarch::Skl,
        );
        let mca = LlvmMcaLike.predict(&ab, Mode::Loop);
        assert!((mca - 3.0).abs() < 1e-6, "imul chain: {mca}");
    }

    #[test]
    fn iaca_models_ports() {
        let ab = annotated(
            &[
                (
                    Mnemonic::Imul,
                    vec![Operand::Reg(RAX), Operand::Reg(RSI), Operand::Imm(3)],
                ),
                (
                    Mnemonic::Imul,
                    vec![Operand::Reg(RCX), Operand::Reg(RSI), Operand::Imm(5)],
                ),
            ],
            Uarch::Skl,
        );
        let iaca = IacaLike.predict(&ab, Mode::Loop);
        assert!((iaca - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_baselines_return_positive_for_nonempty() {
        let ab = annotated(
            &[(Mnemonic::Add, vec![Operand::Reg(RAX), Operand::Reg(RCX)])],
            Uarch::Hsw,
        );
        for p in [
            &LlvmMcaLike as &dyn Predictor,
            &CqaLike,
            &OsacaLike,
            &IacaLike,
        ] {
            for mode in [Mode::Unrolled, Mode::Loop] {
                let v = p.predict(&ab, mode);
                assert!(v > 0.0, "{} returned {v}", p.name());
            }
        }
    }
}
