//! The common predictor interface used by the evaluation harness.
//!
//! Predictors consume a pre-built [`AnnotatedBlock`] rather than a raw
//! `Block`: annotation (decoding the descriptor table, resolving macro
//! fusion) is the same for every predictor, so callers build it once —
//! typically through `facile-engine`'s annotation cache — and all
//! predictors share it. This removes the per-prediction `Block` clone the
//! old interface forced on every call.

use facile_core::Mode;
use facile_isa::AnnotatedBlock;

/// A basic-block throughput predictor, as compared in Table 2.
pub trait Predictor {
    /// Tool name as it appears in the tables.
    fn name(&self) -> &'static str;

    /// Predict the throughput (cycles per iteration) of the annotated
    /// block under the given throughput notion. The microarchitecture is
    /// the one the block was annotated for (`ab.uarch()`).
    fn predict(&self, ab: &AnnotatedBlock, mode: Mode) -> f64;

    /// The notion the tool was designed for (`None` = handles both). The
    /// paper grays out the other column; the harness annotates it.
    fn native_notion(&self) -> Option<Mode> {
        None
    }
}

/// The reference Facile predictor.
#[derive(Debug, Clone, Copy, Default)]
pub struct FacilePredictor;

impl Predictor for FacilePredictor {
    fn name(&self) -> &'static str {
        "Facile"
    }

    fn predict(&self, ab: &AnnotatedBlock, mode: Mode) -> f64 {
        facile_core::Facile::new().predict(ab, mode).throughput
    }
}

/// The simulation-based predictor (the uiCA-like row): it runs the same
/// cycle-accurate simulator that produces the reference measurements, so
/// its error in our tables is zero by construction (documented in
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, Default)]
pub struct UicaLike;

impl Predictor for UicaLike {
    fn name(&self) -> &'static str {
        "uiCA-like (sim)"
    }

    fn predict(&self, ab: &AnnotatedBlock, mode: Mode) -> f64 {
        facile_sim::simulate(ab, mode == Mode::Loop).cycles_per_iter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_uarch::Uarch;
    use facile_x86::reg::names::*;
    use facile_x86::{Block, Mnemonic};

    #[test]
    fn facile_and_sim_agree_on_trivial_block() {
        let b = Block::assemble(&[(Mnemonic::Add, vec![RAX.into(), RCX.into()])]).unwrap();
        let ab = AnnotatedBlock::new(b, Uarch::Skl);
        let f = FacilePredictor.predict(&ab, Mode::Unrolled);
        let s = UicaLike.predict(&ab, Mode::Unrolled);
        assert!((f - 1.0).abs() < 1e-9);
        assert!((s - 1.0).abs() < 0.05);
    }
}
