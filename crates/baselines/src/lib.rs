//! # facile-baselines
//!
//! Re-implementations *in spirit* of the throughput predictors Facile is
//! compared against in the paper's Table 2. Each baseline reproduces the
//! documented modeling characteristics (and gaps) of the original tool:
//!
//! | Baseline | Models | Misses |
//! |----------|--------|--------|
//! | `UicaLike` | the full pipeline (it *is* the measurement simulator) | — |
//! | `LlvmMcaLike` | back end, scheduling database | front end, macro/micro fusion, move elimination |
//! | `CqaLike` | detailed front end | the entire back end (ports, dependencies) |
//! | `OsacaLike` | uniform port pressure + critical path | front end, fusion, optimal balancing |
//! | `IacaLike` | issue width, fusion, optimal ports | predecode/LCP, dependence chains |
//! | `IthemalLike` | learned (rich features, trained on TPU) | interpretability, TPL notion |
//! | `DiffTuneLike` | learned (coarse features, trained on TPU) | almost everything on loops |
//! | `LearningBl` | learned per-opcode cost table | microarchitectural interactions |
//!
//! All predictors implement the [`Predictor`] trait consumed by the
//! experiment harness.

#![warn(missing_docs)]

pub mod analytic;
pub mod learned;
pub mod predictor;

pub use analytic::{CqaLike, IacaLike, LlvmMcaLike, OsacaLike};
pub use learned::{DiffTuneLike, IthemalLike, LearningBl};
pub use predictor::{FacilePredictor, Predictor, UicaLike};
