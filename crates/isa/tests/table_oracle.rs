//! The generated-table oracle: every row of the compile-time descriptor
//! tables must be bit-identical to what the runtime classifier produces
//! for the same instruction, on every microarchitecture.
//!
//! The probe corpus is [`facile_isa::probes::enumerate_probes`] — the
//! *same* function the build script classifies to emit the tables — so
//! this test exhaustively replays every `(mnemonic, shape key)` entry
//! the tables contain. A table that drifts from the classifier (stale
//! generation, a build-script bug, an edited generated file) fails here
//! before it can corrupt a single annotation.

use facile_isa::form::{shape_key, MAX_KEY_OPERANDS, UNKEYED};
use facile_isa::probes::enumerate_probes;
use facile_isa::tables::lookup_uncounted;
use facile_isa::{describe, TABLE_HASH};
use facile_uarch::Uarch;
use facile_x86::{Inst, Mem, Mnemonic, Operand, Reg, Width};

#[test]
fn every_table_entry_is_bit_identical_to_runtime_classification() {
    let probes = enumerate_probes();
    assert!(
        probes.len() > 500,
        "probe corpus suspiciously small: {} instructions",
        probes.len()
    );
    for inst in &probes {
        let effects = inst.effects();
        let key = shape_key(inst, &effects);
        assert_ne!(key, UNKEYED, "generator probe must be keyable: {inst:?}");
        for u in Uarch::ALL {
            let hit = lookup_uncounted(inst.mnemonic, key, u)
                .unwrap_or_else(|| panic!("table misses its own probe {inst:?} on {u}"));
            let runtime = describe(inst, u.config());
            assert_eq!(
                *hit, runtime,
                "generated table row diverges from runtime classification \
                 for {inst:?} (key {key:#x}) on {u}"
            );
        }
    }
}

/// An addressing shape the generator never probes (absolute
/// displacement: no base, no index, not RIP-relative): the tables miss
/// it, and annotation must take the runtime-classifier fallback.
fn absolute_mem_inst() -> Inst {
    Inst {
        mnemonic: Mnemonic::Mov,
        operands: vec![
            Operand::Reg(Reg::Gpr {
                num: 0,
                width: Width::W64,
            }),
            Operand::Mem(Mem {
                base: None,
                index: None,
                scale: 1,
                disp: 64,
                width: Width::W64,
            }),
        ],
        len: 8,
        opcode_offset: 0,
        has_lcp: false,
    }
}

#[test]
fn unprobed_shapes_miss_the_table_and_classify_at_runtime() {
    let inst = absolute_mem_inst();
    let effects = inst.effects();
    let key = shape_key(&inst, &effects);
    assert_ne!(key, UNKEYED, "the shape is keyable, just not probed");
    for u in Uarch::ALL {
        assert!(
            lookup_uncounted(inst.mnemonic, key, u).is_none(),
            "absolute-displacement forms are not in the generated tables"
        );
        // The fallback classifier still produces a usable descriptor.
        let d = describe(&inst, u.config());
        assert!(!d.uops.is_empty(), "fallback descriptor has µops on {u}");
    }
}

#[test]
fn oversized_forms_are_unkeyed() {
    // More operands than the key packs: permanently on the fallback path.
    let mut inst = absolute_mem_inst();
    inst.operands = vec![Operand::Imm(1); MAX_KEY_OPERANDS + 1];
    assert_eq!(shape_key(&inst, &inst.effects()), UNKEYED);
}

#[test]
fn table_hash_is_pinned_in_the_lock_file() {
    // `tables.lock` records the hash of the generated tables; CI's
    // generated-tables job runs this test to catch silent drift between
    // the probe corpus / classifier and the committed lock file. To
    // accept an intentional change, update the file to the new value
    // printed below.
    let locked = include_str!("../tables.lock").trim().to_string();
    let current = format!("{TABLE_HASH:#018x}");
    assert_eq!(
        locked, current,
        "generated descriptor tables drifted: tables.lock pins {locked}, \
         the build produced {current}; update crates/isa/tables.lock if \
         the change is intentional"
    );
}
