//! Concrete probe instructions covering every generated-table entry.
//!
//! The build script classifies these probes to *emit* the static
//! descriptor tables; the oracle tests replay the very same probes
//! against the runtime classifier and assert that every `(mnemonic,
//! shape key)` row is bit-identical on all nine microarchitectures.
//! Both sides call [`enumerate_probes`] — the module is `include!`d
//! into `build.rs` — so the verified corpus can never drift from the
//! generator's.

use facile_x86::forms::{form_templates, FormTemplate, RegClass, SlotKind};
use facile_x86::{Inst, Mem, Operand, Reg, Width};

fn gpr(num: u8, w: Width) -> Reg {
    Reg::Gpr { num, width: w }
}

/// A distinct register for slot position `i` of the given class.
fn reg_for(class: RegClass, i: usize) -> Reg {
    // rax, rcx, rdx, rbx — none of them collide with the address
    // registers below unless a coincidence variant asks for it.
    const NUMS: [u8; 4] = [0, 1, 2, 3];
    match class {
        RegClass::Gpr(w) => gpr(NUMS[i], w),
        RegClass::Xmm => Reg::Xmm(NUMS[i]),
        RegClass::Ymm => Reg::Ymm(NUMS[i]),
    }
}

/// Address registers used by memory instantiations.
fn base_reg() -> Reg {
    gpr(6, Width::W64) // rsi
}
fn index_reg() -> Reg {
    gpr(7, Width::W64) // rdi
}

/// The five addressing shapes the shape key distinguishes (modulo the
/// RIP bit): base, base+disp, base+index, base+index+disp, rip+disp.
fn mem_shapes(w: Width) -> [Mem; 5] {
    [
        Mem::base(base_reg(), w),
        Mem::base_disp(base_reg(), 64, w),
        Mem::base_index(base_reg(), index_reg(), 4, 0, w),
        Mem::base_index(base_reg(), index_reg(), 4, 64, w),
        Mem::rip_rel(64, w),
    ]
}

/// All concrete operand instantiations of one structural template.
fn instantiate(t: &FormTemplate) -> Vec<Inst> {
    let make = |ops: Vec<Operand>| Inst {
        mnemonic: t.mnemonic,
        operands: ops,
        len: 4,
        opcode_offset: 0,
        has_lcp: false,
    };

    // Register form of every slot (r/m slots as registers).
    let reg_ops: Vec<Option<Operand>> = t
        .slots
        .iter()
        .enumerate()
        .map(|(i, s)| match *s {
            SlotKind::Reg(c) | SlotKind::RegOrMem(c, _) => Some(Operand::Reg(reg_for(c, i))),
            SlotKind::Mem(_) => None,
            SlotKind::Imm => Some(Operand::Imm(16)),
            SlotKind::Rel => Some(Operand::Rel(8)),
        })
        .collect();

    let mem_slot = t
        .slots
        .iter()
        .position(|s| matches!(s, SlotKind::RegOrMem(..) | SlotKind::Mem(_)));

    let mut out = Vec::new();

    // 1. All-register variant (not for mandatory-memory forms).
    if reg_ops.iter().all(Option::is_some) {
        let ops: Vec<Operand> = reg_ops.iter().map(|o| o.unwrap()).collect();
        // 2. Equal-register variant: drives the zero/ones-idiom and
        //    eliminated-move paths of the classifier.
        if let [Operand::Reg(a), Operand::Reg(b)] = ops.as_slice() {
            if std::mem::discriminant(a) == std::mem::discriminant(b) && a.width() == b.width() {
                out.push(make(vec![ops[0], ops[0]]));
            }
        }
        out.push(make(ops));
    }

    // 3. Memory variants: every addressing shape, plus coincidence
    //    variants where a 64-bit register operand aliases the base or
    //    index register (this flips the unlamination input count).
    if let Some(j) = mem_slot {
        let w = match t.slots[j] {
            SlotKind::RegOrMem(_, w) | SlotKind::Mem(w) => w,
            _ => unreachable!(),
        };
        for shape in mem_shapes(w) {
            let mut ops: Vec<Operand> = Vec::with_capacity(t.slots.len());
            for (i, o) in reg_ops.iter().enumerate() {
                if i == j {
                    ops.push(Operand::Mem(shape));
                } else {
                    ops.push(o.expect("non-mem slot has an operand"));
                }
            }
            out.push(make(ops.clone()));
            for (i, slot) in t.slots.iter().enumerate() {
                if i == j {
                    continue;
                }
                let aliases: &[Reg] = if shape.index.is_some() {
                    &[base_reg(), index_reg()]
                } else if shape.base.is_some() && !shape.is_rip_relative() {
                    &[base_reg()]
                } else {
                    &[]
                };
                if matches!(
                    slot,
                    SlotKind::Reg(RegClass::Gpr(Width::W64))
                        | SlotKind::RegOrMem(RegClass::Gpr(Width::W64), _)
                ) {
                    for &alias in aliases {
                        let mut aliased = ops.clone();
                        aliased[i] = Operand::Reg(alias);
                        out.push(make(aliased));
                    }
                }
            }
        }
    }

    out
}

/// Every concrete instantiation of every structural form template —
/// the exact instruction set the table generator classified.
#[must_use]
pub fn enumerate_probes() -> Vec<Inst> {
    let mut out = Vec::new();
    for t in form_templates() {
        out.extend(instantiate(&t));
    }
    out
}
