//! Classification of instructions into performance descriptors.
//!
//! This module is the synthesized stand-in for the uops.info measurement
//! database: a structural model that assigns every supported instruction its
//! µop breakdown, port bindings, latencies, and decode/rename properties on
//! each microarchitecture.

use crate::desc::{InstrDesc, Uop, UopKind, MAX_UOPS};
use facile_uarch::{PortMask, Uarch, UarchConfig, UnlaminationPolicy};
use facile_util::SmallVec;
use facile_x86::{Effects, Inst, Mem, Mnemonic, Operand};

/// Per-era latency parameters (cycles).
struct Lat {
    fp_add: u8,
    fp_mul: u8,
    fp_fma: u8,
    fp_div: u8,
    fp_div_occ: u8,
    fp_sqrt: u8,
    fp_sqrt_occ: u8,
    imul: u8,
    idiv: u8,
    idiv_occ: u8,
    cvt: u8,
    pmulld: u8,
    cmov_uops: u8,
}

fn latencies(arch: Uarch) -> Lat {
    use Uarch::*;
    let modern = matches!(arch, Skl | Clx | Icl | Tgl | Rkl);
    Lat {
        fp_add: if modern { 4 } else { 3 },
        fp_mul: if matches!(arch, Snb | Ivb | Hsw) {
            5
        } else {
            4
        },
        fp_fma: if matches!(arch, Hsw | Bdw) { 5 } else { 4 },
        fp_div: if modern { 11 } else { 14 },
        fp_div_occ: if modern { 3 } else { 7 },
        fp_sqrt: if modern { 12 } else { 16 },
        fp_sqrt_occ: if modern { 4 } else { 8 },
        imul: 3,
        idiv: if matches!(arch, Icl | Tgl | Rkl) {
            15
        } else {
            21
        },
        idiv_occ: if matches!(arch, Icl | Tgl | Rkl) {
            4
        } else {
            6
        },
        cvt: 6,
        pmulld: if modern { 10 } else { 5 },
        cmov_uops: if modern { 1 } else { 2 },
    }
}

/// The compute portion of an instruction: port-bound µops plus latency.
/// The widest compute part (memory-free `xchg`) has three µops, so the
/// buffer never spills.
struct Compute {
    uops: SmallVec<Uop, 3>,
    latency: u8,
}

impl Compute {
    fn none() -> Compute {
        Compute {
            uops: SmallVec::new(),
            latency: 0,
        }
    }

    fn one(ports: PortMask, latency: u8) -> Compute {
        Compute {
            uops: SmallVec::from_slice(&[Uop::compute(ports)]),
            latency,
        }
    }
}

/// Whether a `lea` is "complex" (slow): three components (base + index +
/// displacement) or RIP-relative addressing.
fn lea_is_complex(m: Mem) -> bool {
    let parts =
        usize::from(m.base.is_some()) + usize::from(m.index.is_some()) + usize::from(m.disp != 0);
    parts >= 3 || m.is_rip_relative()
}

#[allow(clippy::too_many_lines)]
fn compute_part(inst: &Inst, cfg: &UarchConfig) -> Compute {
    use Mnemonic::*;
    let p = &cfg.ports;
    let lat = latencies(cfg.arch);
    match inst.mnemonic {
        // Pure data movement / integer ALU, latency 1.
        Mov | Movzx | Movsx | Movsxd | Add | Adc | Sub | Sbb | And | Or | Xor | Cmp | Test
        | Inc | Dec | Neg | Not | Setcc(_) | Cdq | Cqo | Bt => {
            // mov/movzx/movsx from memory are pure loads: no compute µop.
            if matches!(inst.mnemonic, Mov | Movzx | Movsx | Movsxd)
                && inst.operands.get(1).is_some_and(|o| o.is_mem())
            {
                Compute::none()
            } else if matches!(inst.mnemonic, Mov)
                && inst.operands.first().is_some_and(|o| o.is_mem())
            {
                // mov store: no compute µop either
                Compute::none()
            } else {
                Compute::one(p.alu, 1)
            }
        }
        Xchg => Compute {
            uops: SmallVec::from_slice(&[Uop::compute(p.alu); 3]),
            latency: 1,
        },
        Lea => {
            let m = inst.mem_operand().expect("lea has a memory operand");
            if lea_is_complex(m) {
                Compute::one(p.lea_complex, 3)
            } else {
                Compute::one(p.lea_simple, 1)
            }
        }
        Shl | Shr | Sar | Rol | Ror => Compute::one(p.shift, 1),
        Shld | Shrd => Compute::one(p.slow_int, 3),
        Bsf | Bsr | Popcnt | Lzcnt | Tzcnt => Compute::one(p.slow_int, 3),
        Bswap => Compute::one(p.alu, 1),
        Imul => Compute::one(p.mul, lat.imul),
        Mul => Compute {
            uops: SmallVec::from_slice(&[Uop::compute(p.mul), Uop::compute(p.alu)]),
            latency: 4,
        },
        Div | Idiv => Compute {
            uops: SmallVec::from_slice(&[Uop::blocking(p.div, lat.idiv_occ), Uop::compute(p.alu)]),
            latency: lat.idiv,
        },
        Cmovcc(_) => Compute {
            uops: SmallVec::from_slice(&[Uop::compute(p.alu); 2][..usize::from(lat.cmov_uops)]),
            latency: lat.cmov_uops,
        },
        Push | Pop => Compute::none(), // pure store / load; RSP via stack engine
        Nop => Compute::none(),
        Jmp | Jcc(_) => Compute::one(p.branch, 1),

        // --- SSE/AVX moves ---
        Movaps | Movups | Movdqa | Movdqu | Vmovaps | Vmovups | Vmovdqa | Vmovdqu => {
            if inst.operands.iter().any(|o| o.is_mem()) {
                Compute::none() // pure vector load/store
            } else {
                Compute::one(p.vec_logic, 1) // reg-reg move µop (if not eliminated)
            }
        }
        Movss | Movsd => {
            if inst.operands.iter().any(|o| o.is_mem()) {
                Compute::none()
            } else {
                Compute::one(p.vec_shuffle, 1) // merging move
            }
        }
        Movd | Movq => Compute::one(PortMask::of(&[0]), 2), // GPR<->XMM crossing
        Movmskps | Pmovmskb => Compute::one(PortMask::of(&[0]), 2),

        // --- FP arithmetic ---
        Addps | Addpd | Addss | Addsd | Subps | Subpd | Subss | Subsd | Vaddps | Vaddpd
        | Vsubps | Vsubpd | Vaddss | Vaddsd | Minps | Maxps | Minss | Maxss | Minsd | Maxsd
        | Vminps | Vmaxps => Compute::one(p.fp_add, lat.fp_add),
        Mulps | Mulpd | Mulss | Mulsd | Vmulps | Vmulpd | Vmulss | Vmulsd => {
            Compute::one(p.fp_mul, lat.fp_mul)
        }
        Vfmadd231ps | Vfmadd231pd | Vfmadd231ss | Vfmadd231sd => Compute::one(p.fp_fma, lat.fp_fma),
        Divps | Divpd | Divss | Divsd | Vdivps | Vdivpd => Compute {
            uops: SmallVec::from_slice(&[Uop::blocking(p.fp_div, lat.fp_div_occ)]),
            latency: lat.fp_div,
        },
        Sqrtps | Sqrtpd | Sqrtss | Sqrtsd | Vsqrtps => Compute {
            uops: SmallVec::from_slice(&[Uop::blocking(p.fp_div, lat.fp_sqrt_occ)]),
            latency: lat.fp_sqrt,
        },
        Andps | Andpd | Orps | Orpd | Xorps | Xorpd | Vxorps | Vandps | Vorps => {
            Compute::one(p.vec_logic, 1)
        }
        Ucomiss | Ucomisd => Compute::one(PortMask::of(&[0]), 2),
        Cvtsi2ss | Cvtsi2sd | Cvttss2si | Cvttsd2si | Cvtps2pd | Cvtpd2ps => Compute {
            uops: SmallVec::from_slice(&[Uop::compute(p.fp_add), Uop::compute(p.vec_shuffle)]),
            latency: lat.cvt,
        },
        Shufps | Unpcklps | Unpckhps | Pshufd | Pshufb | Punpcklbw | Punpckldq | Vshufps
        | Vbroadcastss | Vinsertf128 | Vextractf128 => Compute::one(p.vec_shuffle, 1),

        // --- vector integer ---
        Paddb | Paddw | Paddd | Paddq | Psubb | Psubw | Psubd | Psubq | Pcmpeqb | Pcmpeqw
        | Pcmpeqd | Pcmpgtb | Pcmpgtw | Pcmpgtd | Vpaddd | Vpaddq | Vpsubd => {
            Compute::one(p.vec_ialu, 1)
        }
        Pand | Pandn | Por | Pxor | Vpand | Vpor | Vpxor => Compute::one(p.vec_logic, 1),
        Pmullw | Pmuludq => Compute::one(p.vec_imul, 5),
        Pmulld | Vpmulld => {
            if lat.pmulld > 5 {
                // two passes through the multiplier on SKL and later
                Compute {
                    uops: SmallVec::from_slice(&[Uop::compute(p.vec_imul); 2]),
                    latency: lat.pmulld,
                }
            } else {
                Compute::one(p.vec_imul, lat.pmulld)
            }
        }
        Psllw | Pslld | Psllq | Psrlw | Psrld | Psrlq | Psraw | Psrad => {
            Compute::one(PortMask::of(&[0]), 1)
        }
    }
}

/// How many register/flag inputs feed the compute µop (used by the
/// Haswell+ unlamination heuristic).
pub(crate) fn compute_inputs(e: &Effects) -> usize {
    let mem_regs: usize = e.mem.map_or(0, |m| m.addr_regs().count());
    let reg_inputs = e.reg_reads.len() - mem_regs.min(e.reg_reads.len());
    reg_inputs + usize::from(e.flags_read != 0)
}

/// Whether a micro-fused memory µop unlaminates at rename.
fn unlaminates(e: &Effects, mem: Mem, cfg: &UarchConfig) -> bool {
    if !mem.is_indexed() {
        return false;
    }
    match cfg.unlamination {
        UnlaminationPolicy::AllIndexed => true,
        // Haswell and later keep simple indexed loads fused; indexed
        // operations with two or more other inputs (RMW, cmp reg, …)
        // unlaminate.
        UnlaminationPolicy::IndexedRmw => e.stores || compute_inputs(e) >= 2,
    }
}

/// Compute the [`InstrDesc`] of `inst` on microarchitecture `cfg`.
///
/// This is the central entry point of the crate — the analogue of looking
/// up an instruction variant in the uops.info database.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn describe(inst: &Inst, cfg: &UarchConfig) -> InstrDesc {
    describe_with_effects(inst, &inst.effects(), cfg)
}

/// [`describe`] with the architectural effects already computed, so
/// callers that interned the effects (the two-level descriptor table
/// classifies one instruction on up to nine microarchitectures) don't
/// recompute them per microarchitecture.
#[must_use]
pub fn describe_with_effects(inst: &Inst, effects: &Effects, cfg: &UarchConfig) -> InstrDesc {
    let lat = latencies(cfg.arch);

    // NOP: decodes to one µop that is never executed.
    if inst.mnemonic == Mnemonic::Nop {
        return InstrDesc {
            fused_uops: 1,
            issue_uops: 1,
            uops: SmallVec::new(),
            complex_decoder: false,
            simple_decoders_after: 0,
            eliminated: true,
            latency: 0,
            load_latency_extra: 0,
        };
    }

    // Eliminated register-register moves.
    let gpr_move =
        inst.is_reg_reg_move() && inst.operands[0].reg().is_some_and(facile_x86::Reg::is_gpr);
    let vec_move = inst.is_reg_reg_move() && !gpr_move;
    let move_eliminated = (gpr_move && cfg.move_elim_gpr) || (vec_move && cfg.move_elim_vec);

    // Zero idioms are handled at rename: no ports, no latency.
    let zero_idiom = inst.is_zero_idiom();

    if move_eliminated || zero_idiom {
        return InstrDesc {
            fused_uops: 1,
            issue_uops: 1,
            uops: SmallVec::new(),
            complex_decoder: false,
            simple_decoders_after: 0,
            eliminated: true,
            latency: 0,
            load_latency_extra: 0,
        };
    }

    let mut compute = compute_part(inst, cfg);
    // Ones idioms break dependencies but still execute.
    if inst.is_ones_idiom() {
        compute.latency = 0;
    }

    let mut uops: SmallVec<Uop, MAX_UOPS> = SmallVec::new();
    let mut fused: u8;
    let mut issue: u8;
    let n_compute = compute.uops.len() as u8;

    if let Some(mem) = effects.mem {
        let loads = effects.loads;
        let stores = effects.stores;
        let unlam = unlaminates(effects, mem, cfg);
        if loads {
            uops.push(Uop {
                ports: cfg.ports.load,
                kind: UopKind::Load,
                occupancy: 1,
            });
        }
        uops.extend(compute.uops.iter().copied());
        if stores {
            uops.push(Uop {
                ports: cfg.ports.store_addr,
                kind: UopKind::StoreAddr,
                occupancy: 1,
            });
            uops.push(Uop {
                ports: cfg.ports.store_data,
                kind: UopKind::StoreData,
                occupancy: 1,
            });
        }
        // Fused-domain counts: a load micro-fuses with the first compute
        // µop; store-address and store-data micro-fuse with each other.
        fused = n_compute.max(u8::from(loads && n_compute == 0));
        if stores {
            fused += 1;
            if n_compute == 0 && !loads {
                // pure store: the STA+STD pair *is* the single fused µop
            }
        }
        if loads && n_compute == 0 && !stores {
            // pure load (mov/movzx reg, mem): one fused µop
            fused = 1;
        }
        issue = fused;
        if unlam {
            // each micro-fused memory pair issues as two µops
            if loads && n_compute > 0 {
                issue += 1;
            }
            if stores {
                issue += 1;
            }
        }
        // pure load+store RMW without compute cannot happen in our subset
    } else {
        uops.extend(compute.uops.iter().copied());
        fused = n_compute.max(1);
        issue = fused;
    }
    fused = fused.max(1);
    issue = issue.max(1);

    // Decode properties: more than one fused-domain µop requires the
    // complex decoder; the µops it emits consume decode-group bandwidth.
    let complex = fused > 1;
    let simple_after = if complex {
        cfg.decode_uop_width
            .saturating_sub(fused)
            .min(cfg.n_decoders - 1)
    } else {
        0
    };

    InstrDesc {
        fused_uops: fused,
        issue_uops: issue,
        uops,
        complex_decoder: complex,
        simple_decoders_after: simple_after,
        eliminated: false,
        latency: compute.latency,
        load_latency_extra: if inst.mnemonic == Mnemonic::Div || inst.mnemonic == Mnemonic::Idiv {
            lat.idiv_occ
        } else {
            0
        },
    }
}

/// Whether instruction `a` macro-fuses with a directly following
/// conditional branch `b` on the given microarchitecture.
///
/// The fusible producer set and the condition-code restrictions follow the
/// published fusion rules: `test`/`and` fuse with every condition;
/// `cmp`/`add`/`sub` with conditions that do not read only sign/parity;
/// `inc`/`dec` only with conditions that ignore the carry flag. Producers
/// with both a memory operand and an immediate, or with RIP-relative
/// addressing, never fuse.
#[must_use]
pub fn macro_fuses(a: &Inst, b: &Inst, cfg: &UarchConfig) -> bool {
    use facile_x86::Cond;
    let Mnemonic::Jcc(cond) = b.mnemonic else {
        return false;
    };
    let has_mem = a.mem_operand().is_some();
    let has_imm = a.operands.iter().any(|o| matches!(o, Operand::Imm(_)));
    if has_mem && has_imm {
        return false;
    }
    if a.mem_operand().is_some_and(Mem::is_rip_relative) {
        return false;
    }
    let test_and = matches!(a.mnemonic, Mnemonic::Test | Mnemonic::And);
    let cmp_like = matches!(a.mnemonic, Mnemonic::Cmp | Mnemonic::Add | Mnemonic::Sub);
    let inc_dec = matches!(a.mnemonic, Mnemonic::Inc | Mnemonic::Dec);
    let base_ok = match a.mnemonic {
        Mnemonic::Cmp | Mnemonic::Test => true,
        Mnemonic::And | Mnemonic::Add | Mnemonic::Sub | Mnemonic::Inc | Mnemonic::Dec => {
            cfg.extended_macro_fusion
        }
        _ => false,
    };
    if !base_ok {
        return false;
    }
    if test_and {
        return true;
    }
    if cmp_like {
        return !matches!(
            cond,
            Cond::S | Cond::Ns | Cond::P | Cond::Np | Cond::O | Cond::No
        );
    }
    if inc_dec {
        return matches!(
            cond,
            Cond::E | Cond::Ne | Cond::L | Cond::Ge | Cond::Le | Cond::G
        );
    }
    false
}

/// The descriptor of a macro-fused `cmp+jcc`-style pair: the pair executes
/// as a single branch µop (plus a load µop if the producer reads memory).
#[must_use]
pub fn describe_fused_pair(a: &Inst, _b: &Inst, cfg: &UarchConfig) -> InstrDesc {
    describe_fused_pair_with_effects(a, &a.effects(), cfg)
}

/// [`describe_fused_pair`] with the producer's effects precomputed (see
/// [`describe_with_effects`]).
#[must_use]
pub fn describe_fused_pair_with_effects(
    _a: &Inst,
    effects: &Effects,
    cfg: &UarchConfig,
) -> InstrDesc {
    let mut uops: SmallVec<Uop, MAX_UOPS> = SmallVec::new();
    if effects.loads {
        uops.push(Uop {
            ports: cfg.ports.load,
            kind: UopKind::Load,
            occupancy: 1,
        });
    }
    uops.push(Uop::compute(cfg.ports.branch));
    InstrDesc {
        fused_uops: 1,
        issue_uops: 1,
        uops,
        complex_decoder: false,
        simple_decoders_after: 0,
        eliminated: false,
        latency: 1,
        load_latency_extra: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_x86::reg::names::*;
    use facile_x86::reg::Width;
    use facile_x86::{Cond, Reg};

    fn skl() -> &'static UarchConfig {
        Uarch::Skl.config()
    }

    fn inst(m: Mnemonic, ops: Vec<Operand>) -> Inst {
        Inst::synthetic(m, ops)
    }

    #[test]
    fn simple_alu_is_one_uop() {
        let d = describe(&inst(Mnemonic::Add, vec![RAX.into(), RCX.into()]), skl());
        assert_eq!(d.fused_uops, 1);
        assert_eq!(d.issue_uops, 1);
        assert_eq!(d.uops.len(), 1);
        assert!(!d.complex_decoder);
        assert_eq!(d.latency, 1);
        assert_eq!(d.uops[0].ports, PortMask::of(&[0, 1, 5, 6]));
    }

    #[test]
    fn load_op_micro_fuses() {
        let m = Mem::base(RSI, Width::W64);
        let d = describe(&inst(Mnemonic::Add, vec![RAX.into(), m.into()]), skl());
        assert_eq!(d.fused_uops, 1); // micro-fused
        assert_eq!(d.uops.len(), 2); // load + alu
        assert!(d.has_load());
        assert!(!d.complex_decoder);
    }

    #[test]
    fn rmw_memory_destination() {
        let m = Mem::base(RDI, Width::W64);
        let d = describe(&inst(Mnemonic::Add, vec![m.into(), RAX.into()]), skl());
        assert_eq!(d.fused_uops, 2); // load+op, sta+std
        assert_eq!(d.uops.len(), 4);
        assert!(d.complex_decoder);
    }

    #[test]
    fn pure_store() {
        let m = Mem::base(RDI, Width::W64);
        let d = describe(&inst(Mnemonic::Mov, vec![m.into(), RAX.into()]), skl());
        assert_eq!(d.fused_uops, 1);
        assert_eq!(d.uops.len(), 2); // sta + std
        assert!(d.has_store());
        assert!(!d.has_load());
    }

    #[test]
    fn unlamination_indexed_snb_vs_skl() {
        let m = Mem::base_index(RSI, RDI, 4, 0, Width::W64);
        let i = inst(Mnemonic::Add, vec![RAX.into(), m.into()]);
        // SNB unlaminates all indexed micro-fused µops.
        let d = describe(&i, Uarch::Snb.config());
        assert_eq!(d.fused_uops, 1);
        assert_eq!(d.issue_uops, 2);
        // SKL keeps it fused? add rax, [rsi+rdi*4] has 2 inputs (rax + flags
        // write only) -> reads rax only besides addressing: 1 input, stays fused
        let d = describe(&i, skl());
        assert_eq!(d.fused_uops, 1);
        assert_eq!(d.issue_uops, 1);
        // A pure indexed load never unlaminates on SKL.
        let ld = inst(Mnemonic::Mov, vec![RAX.into(), m.into()]);
        let d = describe(&ld, skl());
        assert_eq!(d.issue_uops, 1);
    }

    #[test]
    fn eliminated_moves() {
        let i = inst(Mnemonic::Mov, vec![RAX.into(), RCX.into()]);
        let d = describe(&i, skl());
        assert!(d.eliminated);
        assert!(d.uops.is_empty());
        // Sandy Bridge has no move elimination.
        let d = describe(&i, Uarch::Snb.config());
        assert!(!d.eliminated);
        assert_eq!(d.uops.len(), 1);
        // Ice Lake: GPR move elimination disabled, vector enabled.
        let d = describe(&i, Uarch::Icl.config());
        assert!(!d.eliminated);
        let v = inst(
            Mnemonic::Movaps,
            vec![Reg::Xmm(0).into(), Reg::Xmm(1).into()],
        );
        assert!(describe(&v, Uarch::Icl.config()).eliminated);
    }

    #[test]
    fn zero_idiom_eliminated() {
        let i = inst(Mnemonic::Xor, vec![EAX.into(), EAX.into()]);
        let d = describe(&i, skl());
        assert!(d.eliminated);
        assert_eq!(d.latency, 0);
    }

    #[test]
    fn division_blocks_the_divider() {
        let d = describe(&inst(Mnemonic::Div, vec![RCX.into()]), skl());
        assert!(d.uops.iter().any(|u| u.occupancy > 1));
        assert!(d.latency > 10);
        // Ice Lake has the faster divider.
        let d2 = describe(&inst(Mnemonic::Div, vec![RCX.into()]), Uarch::Icl.config());
        assert!(d2.latency < d.latency);
    }

    #[test]
    fn fp_latencies_by_era() {
        let addsd = inst(
            Mnemonic::Addsd,
            vec![Reg::Xmm(0).into(), Reg::Xmm(1).into()],
        );
        assert_eq!(describe(&addsd, Uarch::Hsw.config()).latency, 3);
        assert_eq!(describe(&addsd, skl()).latency, 4);
        // SKL runs FP adds on two ports, HSW on one.
        assert_eq!(
            describe(&addsd, Uarch::Hsw.config()).uops[0].ports.count(),
            1
        );
        assert_eq!(describe(&addsd, skl()).uops[0].ports.count(), 2);
    }

    #[test]
    fn macro_fusion_rules() {
        let cmp = inst(Mnemonic::Cmp, vec![RAX.into(), RCX.into()]);
        let test = inst(Mnemonic::Test, vec![RAX.into(), RAX.into()]);
        let dec = inst(Mnemonic::Dec, vec![RCX.into()]);
        let jne = inst(Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-10)]);
        let js = inst(Mnemonic::Jcc(Cond::S), vec![Operand::Rel(-10)]);
        let skl = skl();
        assert!(macro_fuses(&cmp, &jne, skl));
        assert!(!macro_fuses(&cmp, &js, skl)); // sign-only conditions don't fuse with cmp
        assert!(macro_fuses(&test, &js, skl)); // ...but do with test
        assert!(macro_fuses(&dec, &jne, skl));
        // SNB: only cmp/test fuse
        assert!(!macro_fuses(&dec, &jne, Uarch::Snb.config()));
        assert!(macro_fuses(&cmp, &jne, Uarch::Snb.config()));
        // cmp mem, imm never fuses
        let cmp_mi = inst(
            Mnemonic::Cmp,
            vec![Mem::base(RSI, Width::W64).into(), Operand::Imm(0)],
        );
        assert!(!macro_fuses(&cmp_mi, &jne, skl));
    }

    #[test]
    fn fused_pair_descriptor() {
        let cmp = inst(Mnemonic::Cmp, vec![RAX.into(), RCX.into()]);
        let jne = inst(Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-10)]);
        let d = describe_fused_pair(&cmp, &jne, skl());
        assert_eq!(d.fused_uops, 1);
        assert_eq!(d.uops.len(), 1);
        assert_eq!(d.uops[0].ports, skl().ports.branch);
    }

    #[test]
    fn nop_is_eliminated() {
        let d = describe(&inst(Mnemonic::Nop, vec![]), skl());
        assert!(d.eliminated);
        assert_eq!(d.fused_uops, 1);
    }

    #[test]
    fn complex_lea() {
        let simple = Mem::base_disp(RAX, 8, Width::W64);
        let complex = Mem::base_index(RAX, RCX, 4, 8, Width::W64);
        let d = describe(&inst(Mnemonic::Lea, vec![RDX.into(), simple.into()]), skl());
        assert_eq!(d.latency, 1);
        let d = describe(
            &inst(Mnemonic::Lea, vec![RDX.into(), complex.into()]),
            skl(),
        );
        assert_eq!(d.latency, 3);
        assert_eq!(d.uops[0].ports.count(), 1);
    }

    #[test]
    fn push_pop_uops() {
        let d = describe(&inst(Mnemonic::Push, vec![RAX.into()]), skl());
        assert_eq!(d.fused_uops, 1);
        assert_eq!(d.uops.len(), 2); // sta + std
        let d = describe(&inst(Mnemonic::Pop, vec![RAX.into()]), skl());
        assert_eq!(d.fused_uops, 1);
        assert_eq!(d.uops.len(), 1); // load
    }
}
