//! # facile-isa
//!
//! The instruction performance database: a synthesized, structural stand-in
//! for the uops.info measurements that the original Facile tool consumes.
//!
//! For every supported instruction and each of the nine modeled Intel Core
//! microarchitectures, [`describe`] yields an [`InstrDesc`]: fused- and
//! unfused-domain µop counts, execution-port bindings, latencies, decoder
//! requirements, and rename-stage behaviour (move elimination, zero idioms,
//! unlamination). [`AnnotatedBlock`] applies this to a whole basic block and
//! resolves macro fusion, producing the shared input representation for all
//! throughput predictors in this workspace.
//!
//! ```
//! use facile_isa::AnnotatedBlock;
//! use facile_uarch::Uarch;
//! use facile_x86::{Block, Mnemonic, reg::names::*};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let block = Block::assemble(&[(Mnemonic::Add, vec![RAX.into(), RCX.into()])])?;
//! let ab = AnnotatedBlock::new(block, Uarch::Skl);
//! assert_eq!(ab.total_fused_uops(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod annotate;
pub mod classify;
pub mod cols;
pub mod desc;
pub mod form;
pub mod intern;
pub mod probes;
pub mod tables;
pub mod vocab;

pub use annotate::{AnnotatedBlock, AnnotatedInst};
pub use classify::{describe, describe_fused_pair, macro_fuses};
pub use cols::{BlockColumns, FlowCol, PassTiming};
pub use desc::{InstrDesc, Uop, UopKind};
pub use intern::{
    attach_intern_budget, intern_stats, set_intern_capacity, DescInterner, InternStats,
    InternedInst,
};
pub use tables::{reset_static_table_stats, static_table_stats, StaticTableStats, TABLE_HASH};
