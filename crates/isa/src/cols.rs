//! Struct-of-arrays kernel columns, built once per annotated block.
//!
//! The batch kernels used to re-derive their per-instruction facts from
//! the annotation's pointer-shaped representation on *every* prediction:
//! the predecoder re-read instruction placements, the port kernel
//! re-walked descriptor µop lists, and the precedence kernel rebuilt its
//! value-identity lists (`reg_reads`, flag groups, memory values) from
//! the architectural effects. [`BlockColumns`] hoists all of that into
//! flat per-block column arrays at annotation time, so the kernels
//! become linear passes over dense data:
//!
//! - [`BlockColumns::predec`] — instruction placement facts for the
//!   predecoder's per-16-byte-chunk counting;
//! - [`BlockColumns::port_uops`] — the dispatched `(port mask,
//!   occupancy)` stream for the port-contention kernel;
//! - [`BlockColumns::ids`]/[`BlockColumns::flows`] — the precedence
//!   dataflow with every value interned to a dense per-block id, so the
//!   dependence-graph kernel resolves last writers by direct indexing
//!   instead of comparing typed values.
//!
//! The value interning is bijective with the typed value identity the
//! chain-extraction path uses, which is what keeps the id-built graph
//! bit-identical to the reference graph (property-tested in
//! `facile-core`).
//!
//! The module also owns the annotation-pass timing cells ([`set_pass_timing`],
//! [`annotate_timing`], [`columns_timing`]): annotation runs below the
//! engine's kernel-timing layer, so the cells live here and the engine
//! toggles them together with its own.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crate::annotate::AnnotatedInst;
use facile_uarch::PortMask;
use facile_x86::{flags, Effects, Mem, Reg};

/// Sentinel value id: "this flow stores nothing".
pub const NO_VALUE: u32 = u32::MAX;

/// One renamed value of the block's dataflow, interned per block. The
/// variants mirror the typed `ValueRef` identity of the explanation
/// layer exactly (registers widened to their full architectural
/// register, memory addressed by base/index/scale/disp), so id equality
/// coincides with typed-value equality.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ColValue {
    Reg(Reg),
    Flag(u8),
    Mem {
        base: Option<Reg>,
        index: Option<Reg>,
        scale: u8,
        disp: i32,
    },
}

fn mem_value(m: Mem) -> ColValue {
    ColValue::Mem {
        base: m.base.map(Reg::full),
        index: m.index.map(Reg::full),
        scale: m.scale,
        disp: m.disp,
    }
}

/// Per-instruction dataflow summary in column form: half-open ranges
/// into [`BlockColumns::ids`] plus the scalar facts the precedence
/// kernel needs. One entry per non-fused instruction, in block order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowCol {
    /// Index of the instruction in the annotated block.
    pub index: u32,
    /// Consumed value ids (consecutive duplicates removed).
    pub consumed: (u32, u32),
    /// Values consumed through the load path (the loaded memory value
    /// plus the address registers of a loading instruction).
    pub via_load: (u32, u32),
    /// Produced value ids (consecutive duplicates removed).
    pub produced: (u32, u32),
    /// Instruction latency in cycles (the descriptor's).
    pub latency: u8,
    /// Id of the stored memory value, or [`NO_VALUE`] if none.
    pub stores_id: u32,
}

/// Flat per-block column arrays consumed by the batch kernels. Built
/// once when the block is annotated; see the module docs for layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockColumns {
    /// `(last byte, opcode byte, has LCP)` per instruction, including
    /// macro-fused tails — exactly what the predecoder counts.
    pub predec: Vec<(u32, u32, bool)>,
    /// Number of instructions with a length-changing prefix.
    pub lcp_insts: u32,
    /// `(port mask, occupancy)` per µop that reaches the execution
    /// ports: µops of eliminated instructions and port-less µops are
    /// already filtered out, in dispatch order.
    pub port_uops: Vec<(PortMask, u8)>,
    /// Dense value-id pool of the dataflow columns: ids are
    /// `0..n_values`, ranges in [`FlowCol`] index into this.
    pub ids: Vec<u32>,
    /// Per-(non-fused)-instruction dataflow summaries.
    pub flows: Vec<FlowCol>,
    /// Number of distinct values interned in this block.
    pub n_values: u32,
}

/// Accounting: the four flat column vectors (their elements are `Copy`
/// leaves).
impl facile_util::HeapSize for BlockColumns {
    fn heap_bytes(&self) -> usize {
        self.predec.capacity() * std::mem::size_of::<(u32, u32, bool)>()
            + self.port_uops.capacity() * std::mem::size_of::<(PortMask, u8)>()
            + self.ids.capacity() * std::mem::size_of::<u32>()
            + self.flows.capacity() * std::mem::size_of::<FlowCol>()
    }
}

/// Remove *consecutive* duplicate ids from `ids[start..]`: the same
/// dedup the typed dataflow builder applies to its value lists, carried
/// over verbatim (id equality coincides with value equality).
fn dedup_tail(ids: &mut Vec<u32>, start: usize) {
    let mut w = start;
    for r in start..ids.len() {
        if w == start || ids[w - 1] != ids[r] {
            ids[w] = ids[r];
            w += 1;
        }
    }
    ids.truncate(w);
}

fn intern(vals: &mut Vec<ColValue>, v: ColValue) -> u32 {
    match vals.iter().position(|&x| x == v) {
        Some(i) => i as u32,
        None => {
            vals.push(v);
            (vals.len() - 1) as u32
        }
    }
}

impl BlockColumns {
    /// Build the columns of an annotated instruction sequence. `effs`
    /// holds each instruction's architectural effects, parallel to
    /// `insts` (the annotator has them at hand; recomputing here would
    /// put the classifier's per-operand walk back on the cold path).
    pub(crate) fn build(insts: &[AnnotatedInst], effs: &[Effects]) -> BlockColumns {
        let mut c = BlockColumns {
            predec: Vec::with_capacity(insts.len()),
            ..BlockColumns::default()
        };
        let mut vals: Vec<ColValue> = Vec::new();
        for (index, (a, e)) in insts.iter().zip(effs).enumerate() {
            let inst = a.inst();
            c.predec.push((
                (a.start + inst.len as usize - 1) as u32,
                (a.start + inst.opcode_offset as usize) as u32,
                inst.has_lcp,
            ));
            c.lcp_insts += u32::from(inst.has_lcp);

            let d = a.desc();
            if !d.eliminated {
                for u in &d.uops {
                    if !u.ports.is_empty() {
                        c.port_uops.push((u.ports, u.occupancy));
                    }
                }
            }

            if a.fused_with_prev {
                continue; // the pair's dataflow is carried by its head
            }

            // The value sequences below replicate the typed dataflow
            // builder of the precedence kernel hop for hop: reads, read
            // flag groups, the loaded value; the load path; writes,
            // written flag groups, the stored value.
            let c_start = c.ids.len();
            for r in &e.reg_reads {
                let id = intern(&mut vals, ColValue::Reg(r.full()));
                c.ids.push(id);
            }
            for g in flags::groups(e.flags_read) {
                let id = intern(&mut vals, ColValue::Flag(g));
                c.ids.push(id);
            }
            let mv = e.mem.map(mem_value);
            if let (Some(mv), true) = (mv, e.loads) {
                let id = intern(&mut vals, mv);
                c.ids.push(id);
            }
            dedup_tail(&mut c.ids, c_start);
            let consumed = (c_start as u32, c.ids.len() as u32);

            let v_start = c.ids.len();
            if let (Some(m), Some(mv)) = (e.mem, mv) {
                if e.loads {
                    let id = intern(&mut vals, mv);
                    c.ids.push(id);
                    for r in m.addr_regs() {
                        let id = intern(&mut vals, ColValue::Reg(r.full()));
                        c.ids.push(id);
                    }
                }
            }
            let via_load = (v_start as u32, c.ids.len() as u32);

            let p_start = c.ids.len();
            for r in &e.reg_writes {
                let id = intern(&mut vals, ColValue::Reg(r.full()));
                c.ids.push(id);
            }
            for g in flags::groups(e.flags_written) {
                let id = intern(&mut vals, ColValue::Flag(g));
                c.ids.push(id);
            }
            let mut stores_id = NO_VALUE;
            if let (Some(mv), true) = (mv, e.stores) {
                let id = intern(&mut vals, mv);
                c.ids.push(id);
                stores_id = id;
            }
            dedup_tail(&mut c.ids, p_start);
            let produced = (p_start as u32, c.ids.len() as u32);

            c.flows.push(FlowCol {
                index: index as u32,
                consumed,
                via_load,
                produced,
                latency: d.latency,
                stores_id,
            });
        }
        c.n_values = vals.len() as u32;
        c
    }
}

// ---------------------------------------------------------------------
// Annotation-pass timing. Annotation runs below the engine's kernel
// instrumentation, so the cells live here; the engine toggles them
// together with the per-prediction kernel cells.

static TIMING: AtomicBool = AtomicBool::new(false);

struct Cell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Cell {
    const fn new() -> Cell {
        Cell {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PassTiming {
        let count = self.count.load(Ordering::Relaxed);
        let total_ns = self.total_ns.load(Ordering::Relaxed);
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        #[allow(clippy::cast_precision_loss)]
        PassTiming {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                total_ns as f64 / count as f64 / 1000.0
            },
            max_us: max_ns as f64 / 1000.0,
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Whole-annotation pass (decode facts → descriptors → columns).
static ANNOTATE: Cell = Cell::new();
/// Column construction alone (a sub-span of the annotation pass).
static COLUMNS: Cell = Cell::new();

/// Aggregated timing of one annotation-side pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassTiming {
    /// Number of recorded pass executions (one per annotated block).
    pub count: u64,
    /// Mean duration in microseconds.
    pub mean_us: f64,
    /// Maximum duration in microseconds.
    pub max_us: f64,
}

/// Enable or disable annotation-pass timing (disabled by default; the
/// instrumentation costs two monotonic-clock reads per annotation).
pub fn set_pass_timing(enabled: bool) {
    TIMING.store(enabled, Ordering::Relaxed);
}

pub(crate) fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

pub(crate) fn record_annotate(d: Duration) {
    ANNOTATE.record(d);
}

pub(crate) fn record_columns(d: Duration) {
    COLUMNS.record(d);
}

/// Aggregated whole-annotation timing (includes column construction).
#[must_use]
pub fn annotate_timing() -> PassTiming {
    ANNOTATE.snapshot()
}

/// Aggregated column-construction timing.
#[must_use]
pub fn columns_timing() -> PassTiming {
    COLUMNS.snapshot()
}

/// Reset the annotation-pass timing cells.
pub fn reset_pass_timing() {
    ANNOTATE.reset();
    COLUMNS.reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::AnnotatedBlock;
    use facile_uarch::Uarch;
    use facile_x86::reg::names::*;
    use facile_x86::{Block, Cond, Mnemonic, Operand, Width};

    fn columns(prog: &[(Mnemonic, Vec<Operand>)], u: Uarch) -> AnnotatedBlock {
        AnnotatedBlock::new(Block::assemble(prog).unwrap(), u)
    }

    #[test]
    fn predec_column_matches_instruction_layout() {
        let ab = columns(
            &[
                (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
                (Mnemonic::Nop, vec![]),
            ],
            Uarch::Skl,
        );
        let c = ab.columns();
        assert_eq!(c.predec.len(), ab.insts().len());
        for (a, &(last, opcode, lcp)) in ab.insts().iter().zip(&c.predec) {
            assert_eq!(last as usize, a.start + a.inst().len as usize - 1);
            assert_eq!(opcode as usize, a.start + a.inst().opcode_offset as usize);
            assert_eq!(lcp, a.inst().has_lcp);
        }
        assert_eq!(c.lcp_insts, 0);
    }

    #[test]
    fn port_uops_skip_eliminated_and_portless() {
        // mov r,r is eliminated on SKL; the fused jcc tail dispatches
        // nothing — neither may appear in the port column.
        let ab = columns(
            &[
                (Mnemonic::Mov, vec![RAX.into(), RCX.into()]),
                (Mnemonic::Dec, vec![RDX.into()]),
                (Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-5)]),
            ],
            Uarch::Skl,
        );
        let c = ab.columns();
        let by_walk: usize = ab
            .insts()
            .iter()
            .filter(|a| !a.desc().eliminated)
            .flat_map(|a| a.desc().uops.iter())
            .filter(|u| !u.ports.is_empty())
            .count();
        assert_eq!(c.port_uops.len(), by_walk);
        assert!(!c.port_uops.is_empty());
    }

    #[test]
    fn flows_cover_non_fused_insts_with_dense_ids() {
        let m = facile_x86::Mem::base(RSI, Width::W64);
        let ab = columns(
            &[
                (Mnemonic::Add, vec![Operand::Mem(m), RAX.into()]),
                (Mnemonic::Dec, vec![RDX.into()]),
                (Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-6)]),
            ],
            Uarch::Skl,
        );
        let c = ab.columns();
        // dec+jne fuse on SKL: flows for add and the pair head only.
        assert_eq!(c.flows.len(), 2);
        assert!(c.n_values > 0);
        assert!(c.ids.iter().all(|&id| id < c.n_values));
        // add [rsi], rax loads and stores the same memory value.
        let f = &c.flows[0];
        assert_ne!(f.stores_id, NO_VALUE);
        assert_ne!(f.via_load.0, f.via_load.1);
        // The stored value is among the produced ids.
        let produced = &c.ids[f.produced.0 as usize..f.produced.1 as usize];
        assert!(produced.contains(&f.stores_id));
    }

    #[test]
    fn pass_timing_records_when_enabled() {
        reset_pass_timing();
        set_pass_timing(true);
        let _ = columns(&[(Mnemonic::Add, vec![RAX.into(), RCX.into()])], Uarch::Skl);
        set_pass_timing(false);
        let a = annotate_timing();
        let c = columns_timing();
        assert!(a.count >= 1);
        assert!(c.count >= 1);
        assert!(a.mean_us >= 0.0 && c.max_us >= 0.0);
        reset_pass_timing();
        assert_eq!(annotate_timing().count, 0);
    }
}
