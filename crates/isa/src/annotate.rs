//! Annotated basic blocks: instructions paired with their performance
//! descriptors and macro-fusion structure for one microarchitecture.

use crate::classify::{
    describe, describe_fused_pair, describe_fused_pair_with_effects, macro_fuses,
};
use crate::cols::{self, BlockColumns};
use crate::desc::InstrDesc;
use crate::form::shape_key;
use crate::intern::InternedInst as Interned;
use crate::intern::{interner, DescInterner, InternedInst};
use crate::tables;
use facile_uarch::Uarch;
use facile_x86::{Block, Effects, Inst};
use std::sync::Arc;
use std::time::Instant;

/// The descriptor of a macro-fused branch: invisible to the decoders and
/// the back end (the pair's µops are attributed to the head instruction).
static FUSED_TAIL_DESC: InstrDesc = InstrDesc {
    fused_uops: 0,
    issue_uops: 0,
    uops: facile_util::SmallVec::empty_with(crate::desc::Uop {
        ports: facile_uarch::PortMask(0),
        kind: crate::desc::UopKind::Compute,
        occupancy: 0,
    }),
    complex_decoder: false,
    simple_decoders_after: 0,
    eliminated: true,
    latency: 0,
    load_latency_extra: 0,
};

/// Where an annotated instruction's descriptor comes from.
///
/// The three variants are observationally identical (same `inst`,
/// `effects`, and `desc` through the accessors); they differ only in
/// how the data was obtained and therefore what annotation paid for it.
#[derive(Debug, Clone)]
enum DescEntry {
    /// A shared entry in the process-wide descriptor intern table: the
    /// runtime-classified fallback for forms outside the static tables,
    /// the uninterned reference path, and snapshot restore.
    Interned(Arc<InternedInst>),
    /// Served from the build-time static tables: the descriptor is a
    /// `&'static` borrow — no classifier run, no interner hashing or
    /// locking, no shared allocation. Effects are *not* stored: the hot
    /// kernels read the block's precomputed columns, and the few
    /// remaining consumers recompute them on demand, keeping the
    /// retained annotation (and the cache's page-fault footprint)
    /// small.
    Static {
        inst: Inst,
        desc: &'static InstrDesc,
    },
    /// A macro-fused pair head. Pair descriptors are trivial (a branch
    /// µop plus an optional load), so they are built inline instead of
    /// being interned by pair bytes. Boxed so this variant doesn't set
    /// the size of every annotated instruction.
    Pair { inst: Inst, desc: Box<InstrDesc> },
}

/// One instruction of an annotated block.
///
/// Common forms carry a `&'static` descriptor from the build-time
/// tables; everything else holds an `Arc` reference into the
/// process-wide descriptor intern table, so annotating a corpus does
/// the heavy classification at most once per *distinct* instruction
/// encoding.
#[derive(Debug, Clone)]
pub struct AnnotatedInst {
    /// Decoded instruction + effects + descriptor.
    entry: DescEntry,
    /// Byte offset of the instruction within the block.
    pub start: usize,
    /// Whether this instruction is macro-fused with the *preceding*
    /// instruction (and therefore invisible to the decoders and back end).
    pub fused_with_prev: bool,
}

/// Equality is semantic — the observable instruction, effects, and
/// descriptor — so a table-served annotation compares equal to an
/// interned or reference-path annotation of the same instruction.
impl PartialEq for AnnotatedInst {
    fn eq(&self, other: &Self) -> bool {
        self.start == other.start
            && self.fused_with_prev == other.fused_with_prev
            && self.inst() == other.inst()
            && self.effects() == other.effects()
            && self.desc() == other.desc()
    }
}

impl AnnotatedInst {
    /// The decoded instruction. For a macro-fused producer this is the
    /// producer itself (e.g. the `cmp` of a `cmp+jcc` pair).
    #[must_use]
    pub fn inst(&self) -> &Inst {
        match &self.entry {
            DescEntry::Interned(e) => e.inst(),
            DescEntry::Static { inst, .. } | DescEntry::Pair { inst, .. } => inst,
        }
    }

    /// The performance descriptor on the block's microarchitecture. For a
    /// macro-fused producer this is the descriptor of the *pair*; for the
    /// fused branch itself it is an empty descriptor.
    #[must_use]
    pub fn desc(&self) -> &InstrDesc {
        if self.fused_with_prev {
            return &FUSED_TAIL_DESC;
        }
        match &self.entry {
            DescEntry::Interned(e) => &e.desc,
            DescEntry::Static { desc, .. } => desc,
            DescEntry::Pair { desc, .. } => desc.as_ref(),
        }
    }

    /// Architectural reads and writes of [`Self::inst`].
    ///
    /// Returned by value: interned entries clone their stored effects
    /// (a couple of inline small-vectors), table-served entries derive
    /// them from the instruction on demand. The per-prediction hot
    /// paths never call this — they consume the precomputed
    /// [`AnnotatedBlock::columns`] instead — so the annotation doesn't
    /// retain a per-instruction `Effects` just to answer occasional
    /// queries (detail rendering, simulation, snapshots).
    #[must_use]
    pub fn effects(&self) -> Effects {
        match &self.entry {
            DescEntry::Interned(e) => e.effects().clone(),
            DescEntry::Static { inst, .. } | DescEntry::Pair { inst, .. } => inst.effects(),
        }
    }

    /// End offset (exclusive) of this instruction.
    #[must_use]
    pub fn end(&self) -> usize {
        self.start + self.inst().len as usize
    }

    /// Build an annotated instruction from an externally constructed
    /// interned entry (the snapshot-restore path; live annotation goes
    /// through [`AnnotatedBlock::new`]).
    #[must_use]
    pub fn from_parts(
        entry: Arc<InternedInst>,
        start: usize,
        fused_with_prev: bool,
    ) -> AnnotatedInst {
        AnnotatedInst {
            entry: DescEntry::Interned(entry),
            start,
            fused_with_prev,
        }
    }

    /// Heap bytes owned by this instruction's descriptor entry.
    /// Interned entries count as a pointer (the intern table accounts
    /// for their storage); static entries borrow their descriptor.
    fn entry_heap_bytes(&self) -> usize {
        use facile_util::HeapSize;
        match &self.entry {
            DescEntry::Interned(_) => 0,
            DescEntry::Static { inst, .. } => inst.heap_bytes(),
            DescEntry::Pair { inst, desc } => {
                inst.heap_bytes() + std::mem::size_of::<InstrDesc>() + desc.heap_bytes()
            }
        }
    }
}

/// Accounting: the instruction list and kernel columns. The backing
/// `Arc<Block>` and interned descriptors count as pointers — the
/// annotation cache's level-1 entry owns the block, and the intern
/// table owns the interned descriptors, so a process-global budget
/// never double counts them.
impl facile_util::HeapSize for AnnotatedBlock {
    fn heap_bytes(&self) -> usize {
        self.insts.capacity() * std::mem::size_of::<AnnotatedInst>()
            + self
                .insts
                .iter()
                .map(AnnotatedInst::entry_heap_bytes)
                .sum::<usize>()
            + self.cols.heap_bytes()
    }
}

/// A basic block annotated for one microarchitecture.
///
/// This is the input representation shared by every throughput predictor in
/// the workspace (the analytical model, the simulator, and the baselines).
#[derive(Debug, Clone)]
pub struct AnnotatedBlock {
    uarch: Uarch,
    block: Arc<Block>,
    insts: Vec<AnnotatedInst>,
    /// Struct-of-arrays kernel inputs, built once at annotation time;
    /// the predecoder, port, and precedence kernels run over these flat
    /// columns instead of re-walking the instruction list.
    cols: BlockColumns,
    // µop totals are consumed by several per-prediction bounds; cache them
    // at annotation time so predictions don't re-walk the block.
    total_fused: u32,
    total_issue: u32,
    total_unfused: u32,
}

impl AnnotatedBlock {
    /// Annotate `block` for `uarch`: look up descriptors (through the
    /// process-wide intern table) and apply macro fusion.
    #[must_use]
    pub fn new(block: Block, uarch: Uarch) -> AnnotatedBlock {
        AnnotatedBlock::build(Arc::new(block), uarch, Some(interner()))
    }

    /// Annotate an already-shared block: a nine-uarch sweep reuses one
    /// `Arc<Block>` instead of cloning the decoded block per
    /// microarchitecture (the engine's two-level cache uses this).
    #[must_use]
    pub fn new_shared(block: Arc<Block>, uarch: Uarch) -> AnnotatedBlock {
        AnnotatedBlock::build(block, uarch, Some(interner()))
    }

    /// Annotate without the intern table: every descriptor is classified
    /// from scratch. This is the naive reference path; it produces results
    /// identical to [`AnnotatedBlock::new`] and exists so tests can assert
    /// exactly that.
    #[must_use]
    pub fn new_uninterned(block: Block, uarch: Uarch) -> AnnotatedBlock {
        AnnotatedBlock::build(Arc::new(block), uarch, None)
    }

    fn build(block: Arc<Block>, uarch: Uarch, table: Option<&DescInterner>) -> AnnotatedBlock {
        let t_annotate = cols::timing_enabled().then(Instant::now);
        let cfg = uarch.config();
        let raw = block.insts();
        let bytes = block.bytes();
        // Each entry comes paired with the instruction's effects: the
        // column builder consumes them transiently, so table-served
        // entries never pay for the effects walk twice and never retain
        // the result.
        let single = |i: usize| -> (DescEntry, Effects) {
            let Some(t) = table else {
                // The uninterned reference path stays entirely on the
                // runtime classifier — it is the oracle the static
                // tables are tested against.
                let entry = Arc::new(Interned::uninterned(raw[i].clone(), describe(&raw[i], cfg)));
                let effects = entry.effects().clone();
                return (DescEntry::Interned(entry), effects);
            };
            // Fast path: serve the descriptor from the build-time static
            // tables, skipping the classifier and the interner.
            let effects = raw[i].effects();
            if let Some(desc) = tables::lookup(raw[i].mnemonic, shape_key(&raw[i], &effects), uarch)
            {
                return (
                    DescEntry::Static {
                        inst: raw[i].clone(),
                        desc,
                    },
                    effects,
                );
            }
            let start = block.offset(i);
            let end = start + raw[i].len as usize;
            (
                DescEntry::Interned(t.single(&bytes[start..end], &raw[i], cfg)),
                effects,
            )
        };
        let mut insts: Vec<AnnotatedInst> = Vec::with_capacity(raw.len());
        let mut effs: Vec<Effects> = Vec::with_capacity(raw.len());
        let mut i = 0;
        while i < raw.len() {
            let start = block.offset(i);
            if i + 1 < raw.len() && macro_fuses(&raw[i], &raw[i + 1], cfg) {
                let (pair, effects) = if table.is_some() {
                    // Pair descriptors are a branch µop plus an optional
                    // load: cheaper to rebuild than to intern.
                    let effects = raw[i].effects();
                    let desc = describe_fused_pair_with_effects(&raw[i], &effects, cfg);
                    (
                        DescEntry::Pair {
                            inst: raw[i].clone(),
                            desc: Box::new(desc),
                        },
                        effects,
                    )
                } else {
                    let entry = Arc::new(Interned::uninterned(
                        raw[i].clone(),
                        describe_fused_pair(&raw[i], &raw[i + 1], cfg),
                    ));
                    let effects = entry.effects().clone();
                    (DescEntry::Interned(entry), effects)
                };
                insts.push(AnnotatedInst {
                    entry: pair,
                    start,
                    fused_with_prev: false,
                });
                effs.push(effects);
                let (entry, effects) = single(i + 1);
                insts.push(AnnotatedInst {
                    entry,
                    start: block.offset(i + 1),
                    fused_with_prev: true,
                });
                effs.push(effects);
                i += 2;
            } else {
                let (entry, effects) = single(i);
                insts.push(AnnotatedInst {
                    entry,
                    start,
                    fused_with_prev: false,
                });
                effs.push(effects);
                i += 1;
            }
        }
        let t_cols = cols::timing_enabled().then(Instant::now);
        let cols = BlockColumns::build(&insts, &effs);
        if let Some(t) = t_cols {
            cols::record_columns(t.elapsed());
        }
        let total_fused = insts.iter().map(|a| u32::from(a.desc().fused_uops)).sum();
        let total_issue = insts.iter().map(|a| u32::from(a.desc().issue_uops)).sum();
        let total_unfused = insts.iter().map(|a| a.desc().unfused_uops() as u32).sum();
        if let Some(t) = t_annotate {
            cols::record_annotate(t.elapsed());
        }
        AnnotatedBlock {
            uarch,
            block,
            insts,
            cols,
            total_fused,
            total_issue,
            total_unfused,
        }
    }

    /// Assemble an annotated block from externally reconstructed
    /// instructions (the snapshot-restore path). µop totals are
    /// recomputed from the supplied descriptors exactly as
    /// [`AnnotatedBlock::new`] computes them, so a faithfully
    /// round-tripped block predicts bit-identically to a live-annotated
    /// one.
    #[must_use]
    pub fn from_parts(
        block: Arc<Block>,
        uarch: Uarch,
        insts: Vec<AnnotatedInst>,
    ) -> AnnotatedBlock {
        let effs: Vec<Effects> = insts.iter().map(AnnotatedInst::effects).collect();
        let cols = BlockColumns::build(&insts, &effs);
        let total_fused = insts.iter().map(|a| u32::from(a.desc().fused_uops)).sum();
        let total_issue = insts.iter().map(|a| u32::from(a.desc().issue_uops)).sum();
        let total_unfused = insts.iter().map(|a| a.desc().unfused_uops() as u32).sum();
        AnnotatedBlock {
            uarch,
            block,
            insts,
            cols,
            total_fused,
            total_issue,
            total_unfused,
        }
    }

    /// The microarchitecture this block was annotated for.
    #[must_use]
    pub fn uarch(&self) -> Uarch {
        self.uarch
    }

    /// The underlying basic block.
    #[must_use]
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// All instructions, including macro-fused branches.
    #[must_use]
    pub fn insts(&self) -> &[AnnotatedInst] {
        &self.insts
    }

    /// The block's struct-of-arrays kernel columns (placement facts,
    /// dispatched µops, interned dataflow), built at annotation time.
    #[must_use]
    pub fn columns(&self) -> &BlockColumns {
        &self.cols
    }

    /// Instructions as seen *after* macro fusion (fused branches skipped).
    /// This is the instruction stream the decoders and the back end see.
    pub fn fused_insts(&self) -> impl Iterator<Item = &AnnotatedInst> {
        self.insts.iter().filter(|a| !a.fused_with_prev)
    }

    /// Total fused-domain µops delivered per iteration (DSB/LSD view).
    #[must_use]
    pub fn total_fused_uops(&self) -> u32 {
        self.total_fused
    }

    /// Total µops issued by the renamer per iteration (after unlamination).
    #[must_use]
    pub fn total_issue_uops(&self) -> u32 {
        self.total_issue
    }

    /// Total unfused-domain µops dispatched to ports per iteration.
    #[must_use]
    pub fn total_unfused_uops(&self) -> u32 {
        self.total_unfused
    }

    /// Length of the block in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.block.byte_len()
    }

    /// Whether the block ends in a branch (a TPL-style loop benchmark).
    #[must_use]
    pub fn ends_in_branch(&self) -> bool {
        self.block.ends_in_branch()
    }

    /// Whether the JCC-erratum mitigation affects this block on its
    /// microarchitecture: a jump (including the producer of a macro-fused
    /// pair) crosses or ends on a 32-byte boundary.
    #[must_use]
    pub fn jcc_erratum_applies(&self) -> bool {
        if !self.uarch.config().jcc_erratum {
            return false;
        }
        let mut i = 0;
        while i < self.insts.len() {
            let a = &self.insts[i];
            if i + 1 < self.insts.len() && self.insts[i + 1].fused_with_prev {
                let b = &self.insts[i + 1];
                if Block::crosses_or_ends_on_32(a.start, b.end() - a.start) {
                    return true;
                }
                i += 2;
                continue;
            }
            if a.inst().is_branch() && Block::crosses_or_ends_on_32(a.start, a.inst().len as usize)
            {
                return true;
            }
            i += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_x86::reg::names::*;
    use facile_x86::{Cond, Mnemonic, Operand};

    fn loop_block() -> Block {
        Block::assemble(&[
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Dec, vec![RDX.into()]),
            (Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-7)]),
        ])
        .unwrap()
    }

    #[test]
    fn macro_fusion_applied() {
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Skl);
        assert_eq!(ab.insts().len(), 3);
        assert!(ab.insts()[2].fused_with_prev); // jne fused with dec
        assert_eq!(ab.fused_insts().count(), 2);
        // dec+jne pair: 1 fused µop; add: 1 -> total 2
        assert_eq!(ab.total_fused_uops(), 2);
    }

    #[test]
    fn no_fusion_on_snb_for_dec() {
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Snb);
        assert!(!ab.insts()[2].fused_with_prev); // SNB: dec does not fuse
        assert_eq!(ab.total_fused_uops(), 3);
    }

    #[test]
    fn uop_totals() {
        let b = Block::assemble(&[
            (Mnemonic::Mov, vec![RAX.into(), RCX.into()]), // eliminated on SKL
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
        ])
        .unwrap();
        let ab = AnnotatedBlock::new(b, Uarch::Skl);
        assert_eq!(ab.total_fused_uops(), 2);
        assert_eq!(ab.total_issue_uops(), 2);
        assert_eq!(ab.total_unfused_uops(), 1); // only the add reaches ports
    }

    #[test]
    fn interned_equals_uninterned() {
        for u in [Uarch::Skl, Uarch::Snb, Uarch::Icl] {
            let a = AnnotatedBlock::new(loop_block(), u);
            let b = AnnotatedBlock::new_uninterned(loop_block(), u);
            assert_eq!(a.insts(), b.insts(), "{u}");
            assert_eq!(a.total_fused_uops(), b.total_fused_uops());
            assert_eq!(a.total_issue_uops(), b.total_issue_uops());
            assert_eq!(a.total_unfused_uops(), b.total_unfused_uops());
        }
    }

    #[test]
    fn fused_tail_exposes_branch_but_empty_desc() {
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Skl);
        let tail = &ab.insts()[2];
        assert!(tail.fused_with_prev);
        assert!(tail.inst().is_branch());
        assert!(tail.desc().eliminated);
        assert_eq!(tail.desc().fused_uops, 0);
        assert!(tail.desc().uops.is_empty());
        // The pair head carries the pair's descriptor and its own inst.
        let head = &ab.insts()[1];
        assert_eq!(head.inst().mnemonic, Mnemonic::Dec);
        assert!(head.desc().fused_uops > 0);
    }

    #[test]
    fn jcc_erratum_detection() {
        // Pad so that the jump ends exactly on the 32-byte boundary.
        let mut prog: Vec<(Mnemonic, Vec<Operand>)> = Vec::new();
        for _ in 0..30 {
            prog.push((Mnemonic::Nop, vec![]));
        }
        prog.push((Mnemonic::Jmp, vec![Operand::Rel(-32)])); // bytes 30..32
        let b = Block::assemble(&prog).unwrap();
        let ab_skl = AnnotatedBlock::new(b.clone(), Uarch::Skl);
        assert!(ab_skl.jcc_erratum_applies());
        // Same block on Haswell: no erratum.
        let ab_hsw = AnnotatedBlock::new(b, Uarch::Hsw);
        assert!(!ab_hsw.jcc_erratum_applies());
        // A short loop with the jump inside a 32-byte window: unaffected.
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Skl);
        assert!(!ab.jcc_erratum_applies());
    }
}
