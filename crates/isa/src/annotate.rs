//! Annotated basic blocks: instructions paired with their performance
//! descriptors and macro-fusion structure for one microarchitecture.

use crate::classify::{describe, describe_fused_pair, macro_fuses};
use crate::desc::InstrDesc;
use facile_uarch::Uarch;
use facile_x86::{Block, Inst};

/// One instruction of an annotated block.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedInst {
    /// The decoded instruction.
    pub inst: Inst,
    /// Its performance descriptor on the block's microarchitecture. For a
    /// macro-fused producer (e.g. the `cmp` of a `cmp+jcc` pair) this is
    /// the descriptor of the *pair*; for the fused branch itself it is an
    /// empty descriptor.
    pub desc: InstrDesc,
    /// Byte offset of the instruction within the block.
    pub start: usize,
    /// Whether this instruction is macro-fused with the *preceding*
    /// instruction (and therefore invisible to the decoders and back end).
    pub fused_with_prev: bool,
}

impl AnnotatedInst {
    /// End offset (exclusive) of this instruction.
    #[must_use]
    pub fn end(&self) -> usize {
        self.start + self.inst.len as usize
    }
}

/// A basic block annotated for one microarchitecture.
///
/// This is the input representation shared by every throughput predictor in
/// the workspace (the analytical model, the simulator, and the baselines).
#[derive(Debug, Clone)]
pub struct AnnotatedBlock {
    uarch: Uarch,
    block: Block,
    insts: Vec<AnnotatedInst>,
}

impl AnnotatedBlock {
    /// Annotate `block` for `uarch`: look up descriptors and apply
    /// macro fusion.
    #[must_use]
    pub fn new(block: Block, uarch: Uarch) -> AnnotatedBlock {
        let cfg = uarch.config();
        let raw = block.insts();
        let mut insts: Vec<AnnotatedInst> = Vec::with_capacity(raw.len());
        let mut i = 0;
        while i < raw.len() {
            let start = block.offset(i);
            if i + 1 < raw.len() && macro_fuses(&raw[i], &raw[i + 1], cfg) {
                let pair = describe_fused_pair(&raw[i], &raw[i + 1], cfg);
                insts.push(AnnotatedInst {
                    inst: raw[i].clone(),
                    desc: pair,
                    start,
                    fused_with_prev: false,
                });
                insts.push(AnnotatedInst {
                    inst: raw[i + 1].clone(),
                    desc: InstrDesc {
                        fused_uops: 0,
                        issue_uops: 0,
                        uops: Vec::new(),
                        complex_decoder: false,
                        simple_decoders_after: 0,
                        eliminated: true,
                        latency: 0,
                        load_latency_extra: 0,
                    },
                    start: block.offset(i + 1),
                    fused_with_prev: true,
                });
                i += 2;
            } else {
                insts.push(AnnotatedInst {
                    inst: raw[i].clone(),
                    desc: describe(&raw[i], cfg),
                    start,
                    fused_with_prev: false,
                });
                i += 1;
            }
        }
        AnnotatedBlock {
            uarch,
            block,
            insts,
        }
    }

    /// The microarchitecture this block was annotated for.
    #[must_use]
    pub fn uarch(&self) -> Uarch {
        self.uarch
    }

    /// The underlying basic block.
    #[must_use]
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// All instructions, including macro-fused branches.
    #[must_use]
    pub fn insts(&self) -> &[AnnotatedInst] {
        &self.insts
    }

    /// Instructions as seen *after* macro fusion (fused branches skipped).
    /// This is the instruction stream the decoders and the back end see.
    pub fn fused_insts(&self) -> impl Iterator<Item = &AnnotatedInst> {
        self.insts.iter().filter(|a| !a.fused_with_prev)
    }

    /// Total fused-domain µops delivered per iteration (DSB/LSD view).
    #[must_use]
    pub fn total_fused_uops(&self) -> u32 {
        self.insts
            .iter()
            .map(|a| u32::from(a.desc.fused_uops))
            .sum()
    }

    /// Total µops issued by the renamer per iteration (after unlamination).
    #[must_use]
    pub fn total_issue_uops(&self) -> u32 {
        self.insts
            .iter()
            .map(|a| u32::from(a.desc.issue_uops))
            .sum()
    }

    /// Total unfused-domain µops dispatched to ports per iteration.
    #[must_use]
    pub fn total_unfused_uops(&self) -> u32 {
        self.insts
            .iter()
            .map(|a| a.desc.unfused_uops() as u32)
            .sum()
    }

    /// Length of the block in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.block.byte_len()
    }

    /// Whether the block ends in a branch (a TPL-style loop benchmark).
    #[must_use]
    pub fn ends_in_branch(&self) -> bool {
        self.block.ends_in_branch()
    }

    /// Whether the JCC-erratum mitigation affects this block on its
    /// microarchitecture: a jump (including the producer of a macro-fused
    /// pair) crosses or ends on a 32-byte boundary.
    #[must_use]
    pub fn jcc_erratum_applies(&self) -> bool {
        if !self.uarch.config().jcc_erratum {
            return false;
        }
        let mut i = 0;
        while i < self.insts.len() {
            let a = &self.insts[i];
            if i + 1 < self.insts.len() && self.insts[i + 1].fused_with_prev {
                let b = &self.insts[i + 1];
                if Block::crosses_or_ends_on_32(a.start, b.end() - a.start) {
                    return true;
                }
                i += 2;
                continue;
            }
            if a.inst.is_branch() && Block::crosses_or_ends_on_32(a.start, a.inst.len as usize) {
                return true;
            }
            i += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_x86::reg::names::*;
    use facile_x86::{Cond, Mnemonic, Operand};

    fn loop_block() -> Block {
        Block::assemble(&[
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Dec, vec![RDX.into()]),
            (Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-7)]),
        ])
        .unwrap()
    }

    #[test]
    fn macro_fusion_applied() {
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Skl);
        assert_eq!(ab.insts().len(), 3);
        assert!(ab.insts()[2].fused_with_prev); // jne fused with dec
        assert_eq!(ab.fused_insts().count(), 2);
        // dec+jne pair: 1 fused µop; add: 1 -> total 2
        assert_eq!(ab.total_fused_uops(), 2);
    }

    #[test]
    fn no_fusion_on_snb_for_dec() {
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Snb);
        assert!(!ab.insts()[2].fused_with_prev); // SNB: dec does not fuse
        assert_eq!(ab.total_fused_uops(), 3);
    }

    #[test]
    fn uop_totals() {
        let b = Block::assemble(&[
            (Mnemonic::Mov, vec![RAX.into(), RCX.into()]), // eliminated on SKL
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
        ])
        .unwrap();
        let ab = AnnotatedBlock::new(b, Uarch::Skl);
        assert_eq!(ab.total_fused_uops(), 2);
        assert_eq!(ab.total_issue_uops(), 2);
        assert_eq!(ab.total_unfused_uops(), 1); // only the add reaches ports
    }

    #[test]
    fn jcc_erratum_detection() {
        // Pad so that the jump ends exactly on the 32-byte boundary.
        let mut prog: Vec<(Mnemonic, Vec<Operand>)> = Vec::new();
        for _ in 0..30 {
            prog.push((Mnemonic::Nop, vec![]));
        }
        prog.push((Mnemonic::Jmp, vec![Operand::Rel(-32)])); // bytes 30..32
        let b = Block::assemble(&prog).unwrap();
        let ab_skl = AnnotatedBlock::new(b.clone(), Uarch::Skl);
        assert!(ab_skl.jcc_erratum_applies());
        // Same block on Haswell: no erratum.
        let ab_hsw = AnnotatedBlock::new(b, Uarch::Hsw);
        assert!(!ab_hsw.jcc_erratum_applies());
        // A short loop with the jump inside a 32-byte window: unaffected.
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Skl);
        assert!(!ab.jcc_erratum_applies());
    }
}
