//! Annotated basic blocks: instructions paired with their performance
//! descriptors and macro-fusion structure for one microarchitecture.

use crate::classify::{describe, describe_fused_pair, macro_fuses};
use crate::desc::InstrDesc;
use crate::intern::InternedInst as Interned;
use crate::intern::{interner, DescInterner, InternedInst};
use facile_uarch::Uarch;
use facile_x86::{Block, Effects, Inst};
use std::sync::Arc;

/// The descriptor of a macro-fused branch: invisible to the decoders and
/// the back end (the pair's µops are attributed to the head instruction).
static FUSED_TAIL_DESC: InstrDesc = InstrDesc {
    fused_uops: 0,
    issue_uops: 0,
    uops: Vec::new(),
    complex_decoder: false,
    simple_decoders_after: 0,
    eliminated: true,
    latency: 0,
    load_latency_extra: 0,
};

/// One instruction of an annotated block.
///
/// Holds an `Arc` reference into the process-wide descriptor intern table
/// instead of per-occurrence clones of the instruction and its
/// descriptor, so annotating a corpus does the heavy classification once
/// per *distinct* instruction encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedInst {
    /// Shared interned entry: decoded instruction + effects + descriptor.
    entry: Arc<InternedInst>,
    /// Byte offset of the instruction within the block.
    pub start: usize,
    /// Whether this instruction is macro-fused with the *preceding*
    /// instruction (and therefore invisible to the decoders and back end).
    pub fused_with_prev: bool,
}

impl AnnotatedInst {
    /// The decoded instruction. For a macro-fused producer this is the
    /// producer itself (e.g. the `cmp` of a `cmp+jcc` pair).
    #[must_use]
    pub fn inst(&self) -> &Inst {
        self.entry.inst()
    }

    /// The performance descriptor on the block's microarchitecture. For a
    /// macro-fused producer this is the descriptor of the *pair*; for the
    /// fused branch itself it is an empty descriptor.
    #[must_use]
    pub fn desc(&self) -> &InstrDesc {
        if self.fused_with_prev {
            &FUSED_TAIL_DESC
        } else {
            &self.entry.desc
        }
    }

    /// Architectural reads and writes of [`Self::inst`], computed once per
    /// distinct encoding (predictors used to re-derive these on every
    /// prediction, which dominated their allocation profile).
    #[must_use]
    pub fn effects(&self) -> &Effects {
        self.entry.effects()
    }

    /// End offset (exclusive) of this instruction.
    #[must_use]
    pub fn end(&self) -> usize {
        self.start + self.inst().len as usize
    }

    /// Build an annotated instruction from an externally constructed
    /// interned entry (the snapshot-restore path; live annotation goes
    /// through [`AnnotatedBlock::new`]).
    #[must_use]
    pub fn from_parts(
        entry: Arc<InternedInst>,
        start: usize,
        fused_with_prev: bool,
    ) -> AnnotatedInst {
        AnnotatedInst {
            entry,
            start,
            fused_with_prev,
        }
    }
}

/// A basic block annotated for one microarchitecture.
///
/// This is the input representation shared by every throughput predictor in
/// the workspace (the analytical model, the simulator, and the baselines).
#[derive(Debug, Clone)]
pub struct AnnotatedBlock {
    uarch: Uarch,
    block: Arc<Block>,
    insts: Vec<AnnotatedInst>,
    // µop totals are consumed by several per-prediction bounds; cache them
    // at annotation time so predictions don't re-walk the block.
    total_fused: u32,
    total_issue: u32,
    total_unfused: u32,
}

impl AnnotatedBlock {
    /// Annotate `block` for `uarch`: look up descriptors (through the
    /// process-wide intern table) and apply macro fusion.
    #[must_use]
    pub fn new(block: Block, uarch: Uarch) -> AnnotatedBlock {
        AnnotatedBlock::build(Arc::new(block), uarch, Some(interner()))
    }

    /// Annotate an already-shared block: a nine-uarch sweep reuses one
    /// `Arc<Block>` instead of cloning the decoded block per
    /// microarchitecture (the engine's two-level cache uses this).
    #[must_use]
    pub fn new_shared(block: Arc<Block>, uarch: Uarch) -> AnnotatedBlock {
        AnnotatedBlock::build(block, uarch, Some(interner()))
    }

    /// Annotate without the intern table: every descriptor is classified
    /// from scratch. This is the naive reference path; it produces results
    /// identical to [`AnnotatedBlock::new`] and exists so tests can assert
    /// exactly that.
    #[must_use]
    pub fn new_uninterned(block: Block, uarch: Uarch) -> AnnotatedBlock {
        AnnotatedBlock::build(Arc::new(block), uarch, None)
    }

    fn build(block: Arc<Block>, uarch: Uarch, table: Option<&DescInterner>) -> AnnotatedBlock {
        let cfg = uarch.config();
        let raw = block.insts();
        let bytes = block.bytes();
        let single = |i: usize| -> Arc<InternedInst> {
            let start = block.offset(i);
            let end = start + raw[i].len as usize;
            match table {
                Some(t) => t.single(&bytes[start..end], &raw[i], cfg),
                None => Arc::new(Interned::uninterned(raw[i].clone(), describe(&raw[i], cfg))),
            }
        };
        let mut insts: Vec<AnnotatedInst> = Vec::with_capacity(raw.len());
        let mut i = 0;
        while i < raw.len() {
            let start = block.offset(i);
            if i + 1 < raw.len() && macro_fuses(&raw[i], &raw[i + 1], cfg) {
                let pair_end = block.offset(i + 1) + raw[i + 1].len as usize;
                let pair = match table {
                    Some(t) => t.pair(&bytes[start..pair_end], &raw[i], &raw[i + 1], cfg),
                    None => Arc::new(Interned::uninterned(
                        raw[i].clone(),
                        describe_fused_pair(&raw[i], &raw[i + 1], cfg),
                    )),
                };
                insts.push(AnnotatedInst {
                    entry: pair,
                    start,
                    fused_with_prev: false,
                });
                insts.push(AnnotatedInst {
                    entry: single(i + 1),
                    start: block.offset(i + 1),
                    fused_with_prev: true,
                });
                i += 2;
            } else {
                insts.push(AnnotatedInst {
                    entry: single(i),
                    start,
                    fused_with_prev: false,
                });
                i += 1;
            }
        }
        let total_fused = insts.iter().map(|a| u32::from(a.desc().fused_uops)).sum();
        let total_issue = insts.iter().map(|a| u32::from(a.desc().issue_uops)).sum();
        let total_unfused = insts.iter().map(|a| a.desc().unfused_uops() as u32).sum();
        AnnotatedBlock {
            uarch,
            block,
            insts,
            total_fused,
            total_issue,
            total_unfused,
        }
    }

    /// Assemble an annotated block from externally reconstructed
    /// instructions (the snapshot-restore path). µop totals are
    /// recomputed from the supplied descriptors exactly as
    /// [`AnnotatedBlock::new`] computes them, so a faithfully
    /// round-tripped block predicts bit-identically to a live-annotated
    /// one.
    #[must_use]
    pub fn from_parts(
        block: Arc<Block>,
        uarch: Uarch,
        insts: Vec<AnnotatedInst>,
    ) -> AnnotatedBlock {
        let total_fused = insts.iter().map(|a| u32::from(a.desc().fused_uops)).sum();
        let total_issue = insts.iter().map(|a| u32::from(a.desc().issue_uops)).sum();
        let total_unfused = insts.iter().map(|a| a.desc().unfused_uops() as u32).sum();
        AnnotatedBlock {
            uarch,
            block,
            insts,
            total_fused,
            total_issue,
            total_unfused,
        }
    }

    /// The microarchitecture this block was annotated for.
    #[must_use]
    pub fn uarch(&self) -> Uarch {
        self.uarch
    }

    /// The underlying basic block.
    #[must_use]
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// All instructions, including macro-fused branches.
    #[must_use]
    pub fn insts(&self) -> &[AnnotatedInst] {
        &self.insts
    }

    /// Instructions as seen *after* macro fusion (fused branches skipped).
    /// This is the instruction stream the decoders and the back end see.
    pub fn fused_insts(&self) -> impl Iterator<Item = &AnnotatedInst> {
        self.insts.iter().filter(|a| !a.fused_with_prev)
    }

    /// Total fused-domain µops delivered per iteration (DSB/LSD view).
    #[must_use]
    pub fn total_fused_uops(&self) -> u32 {
        self.total_fused
    }

    /// Total µops issued by the renamer per iteration (after unlamination).
    #[must_use]
    pub fn total_issue_uops(&self) -> u32 {
        self.total_issue
    }

    /// Total unfused-domain µops dispatched to ports per iteration.
    #[must_use]
    pub fn total_unfused_uops(&self) -> u32 {
        self.total_unfused
    }

    /// Length of the block in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.block.byte_len()
    }

    /// Whether the block ends in a branch (a TPL-style loop benchmark).
    #[must_use]
    pub fn ends_in_branch(&self) -> bool {
        self.block.ends_in_branch()
    }

    /// Whether the JCC-erratum mitigation affects this block on its
    /// microarchitecture: a jump (including the producer of a macro-fused
    /// pair) crosses or ends on a 32-byte boundary.
    #[must_use]
    pub fn jcc_erratum_applies(&self) -> bool {
        if !self.uarch.config().jcc_erratum {
            return false;
        }
        let mut i = 0;
        while i < self.insts.len() {
            let a = &self.insts[i];
            if i + 1 < self.insts.len() && self.insts[i + 1].fused_with_prev {
                let b = &self.insts[i + 1];
                if Block::crosses_or_ends_on_32(a.start, b.end() - a.start) {
                    return true;
                }
                i += 2;
                continue;
            }
            if a.inst().is_branch() && Block::crosses_or_ends_on_32(a.start, a.inst().len as usize)
            {
                return true;
            }
            i += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_x86::reg::names::*;
    use facile_x86::{Cond, Mnemonic, Operand};

    fn loop_block() -> Block {
        Block::assemble(&[
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Dec, vec![RDX.into()]),
            (Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-7)]),
        ])
        .unwrap()
    }

    #[test]
    fn macro_fusion_applied() {
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Skl);
        assert_eq!(ab.insts().len(), 3);
        assert!(ab.insts()[2].fused_with_prev); // jne fused with dec
        assert_eq!(ab.fused_insts().count(), 2);
        // dec+jne pair: 1 fused µop; add: 1 -> total 2
        assert_eq!(ab.total_fused_uops(), 2);
    }

    #[test]
    fn no_fusion_on_snb_for_dec() {
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Snb);
        assert!(!ab.insts()[2].fused_with_prev); // SNB: dec does not fuse
        assert_eq!(ab.total_fused_uops(), 3);
    }

    #[test]
    fn uop_totals() {
        let b = Block::assemble(&[
            (Mnemonic::Mov, vec![RAX.into(), RCX.into()]), // eliminated on SKL
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
        ])
        .unwrap();
        let ab = AnnotatedBlock::new(b, Uarch::Skl);
        assert_eq!(ab.total_fused_uops(), 2);
        assert_eq!(ab.total_issue_uops(), 2);
        assert_eq!(ab.total_unfused_uops(), 1); // only the add reaches ports
    }

    #[test]
    fn interned_equals_uninterned() {
        for u in [Uarch::Skl, Uarch::Snb, Uarch::Icl] {
            let a = AnnotatedBlock::new(loop_block(), u);
            let b = AnnotatedBlock::new_uninterned(loop_block(), u);
            assert_eq!(a.insts(), b.insts(), "{u}");
            assert_eq!(a.total_fused_uops(), b.total_fused_uops());
            assert_eq!(a.total_issue_uops(), b.total_issue_uops());
            assert_eq!(a.total_unfused_uops(), b.total_unfused_uops());
        }
    }

    #[test]
    fn fused_tail_exposes_branch_but_empty_desc() {
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Skl);
        let tail = &ab.insts()[2];
        assert!(tail.fused_with_prev);
        assert!(tail.inst().is_branch());
        assert!(tail.desc().eliminated);
        assert_eq!(tail.desc().fused_uops, 0);
        assert!(tail.desc().uops.is_empty());
        // The pair head carries the pair's descriptor and its own inst.
        let head = &ab.insts()[1];
        assert_eq!(head.inst().mnemonic, Mnemonic::Dec);
        assert!(head.desc().fused_uops > 0);
    }

    #[test]
    fn jcc_erratum_detection() {
        // Pad so that the jump ends exactly on the 32-byte boundary.
        let mut prog: Vec<(Mnemonic, Vec<Operand>)> = Vec::new();
        for _ in 0..30 {
            prog.push((Mnemonic::Nop, vec![]));
        }
        prog.push((Mnemonic::Jmp, vec![Operand::Rel(-32)])); // bytes 30..32
        let b = Block::assemble(&prog).unwrap();
        let ab_skl = AnnotatedBlock::new(b.clone(), Uarch::Skl);
        assert!(ab_skl.jcc_erratum_applies());
        // Same block on Haswell: no erratum.
        let ab_hsw = AnnotatedBlock::new(b, Uarch::Hsw);
        assert!(!ab_hsw.jcc_erratum_applies());
        // A short loop with the jump inside a 32-byte window: unaffected.
        let ab = AnnotatedBlock::new(loop_block(), Uarch::Skl);
        assert!(!ab.jcc_erratum_applies());
    }
}
