//! Abstraction vocabulary for block patterns.
//!
//! The shape-key machinery in [`crate::form`] collapses an instruction's
//! operands into a structural tag (register class × width, imm, mem,
//! ...) for descriptor-table lookup. Pattern generalization in
//! `facile-diff` abstracts counterexamples along the same axes — "any
//! r64 here", "any condition code", "any immediate" — and then needs to
//! walk *back* from the abstract slot to concrete instantiations it can
//! sample through the engine. This module is that shared vocabulary:
//! mnemonic families, condition-code surgery, and the register pools
//! instantiation draws from.

use facile_x86::{Cond, Mnemonic, Reg, Width};

/// GPR numbers instantiation may draw from. Excludes 4 (`rsp`): blocks
/// that address or clobber the stack pointer trip the decoder's SIB
/// special cases and are over-represented as assembly failures, and
/// `rsp` arithmetic is not something the corpus generators emit either.
pub const GPR_POOL: [u8; 15] = [0, 1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];

/// Vector register numbers instantiation may draw from.
pub const VEC_POOL: [u8; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];

/// Memory-index scale factors.
pub const SCALE_POOL: [u8; 4] = [1, 2, 4, 8];

/// The mnemonic family a pattern slot names when its condition code is
/// abstracted: every `Jcc` is `"jcc"`, every `Setcc` is `"setcc"`,
/// every `Cmovcc` is `"cmovcc"`, and anything else is its own family of
/// one (its plain assembly name).
#[must_use]
pub fn mnemonic_group(m: Mnemonic) -> String {
    match m {
        Mnemonic::Jcc(_) => "jcc".to_string(),
        Mnemonic::Setcc(_) => "setcc".to_string(),
        Mnemonic::Cmovcc(_) => "cmovcc".to_string(),
        other => other.name(),
    }
}

/// The condition code of a conditional mnemonic, `None` otherwise.
#[must_use]
pub fn cond_of(m: Mnemonic) -> Option<Cond> {
    match m {
        Mnemonic::Jcc(c) | Mnemonic::Setcc(c) | Mnemonic::Cmovcc(c) => Some(c),
        _ => None,
    }
}

/// The same conditional mnemonic with its condition code replaced;
/// non-conditional mnemonics pass through unchanged.
#[must_use]
pub fn with_cond(m: Mnemonic, cond: Cond) -> Mnemonic {
    match m {
        Mnemonic::Jcc(_) => Mnemonic::Jcc(cond),
        Mnemonic::Setcc(_) => Mnemonic::Setcc(cond),
        Mnemonic::Cmovcc(_) => Mnemonic::Cmovcc(cond),
        other => other,
    }
}

/// The `i`-th register (modulo pool size) of `template`'s class: the
/// same hardware-register view as `template`, renumbered. High-byte and
/// `rip` views have no samplable pool and return `None`.
#[must_use]
pub fn nth_of_class(template: Reg, i: usize) -> Option<Reg> {
    match template {
        Reg::Gpr { width, .. } => Some(Reg::Gpr {
            num: GPR_POOL[i % GPR_POOL.len()],
            width,
        }),
        Reg::Xmm(_) => Some(Reg::Xmm(VEC_POOL[i % VEC_POOL.len()])),
        Reg::Ymm(_) => Some(Reg::Ymm(VEC_POOL[i % VEC_POOL.len()])),
        Reg::HighByte(_) | Reg::Rip => None,
    }
}

/// The class name a widened register slot renders as: `r8`/`r16`/`r32`/
/// `r64` for GPR views, `xmm`/`ymm` for vector views. High-byte and
/// `rip` views are never widened and keep their concrete names.
#[must_use]
pub fn class_name(r: Reg) -> String {
    match r {
        Reg::Gpr { width, .. } => match width {
            Width::W8 => "r8".to_string(),
            Width::W16 => "r16".to_string(),
            Width::W32 => "r32".to_string(),
            Width::W64 => "r64".to_string(),
            // GPR views never carry vector widths.
            Width::W128 | Width::W256 => "r?".to_string(),
        },
        Reg::Xmm(_) => "xmm".to_string(),
        Reg::Ymm(_) => "ymm".to_string(),
        Reg::HighByte(_) | Reg::Rip => r.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_collapse_condition_codes() {
        assert_eq!(mnemonic_group(Mnemonic::Jcc(Cond::E)), "jcc");
        assert_eq!(mnemonic_group(Mnemonic::Jcc(Cond::No)), "jcc");
        assert_eq!(mnemonic_group(Mnemonic::Setcc(Cond::B)), "setcc");
        assert_eq!(mnemonic_group(Mnemonic::Cmovcc(Cond::Le)), "cmovcc");
        assert_eq!(mnemonic_group(Mnemonic::Add), "add");
    }

    #[test]
    fn cond_surgery_roundtrips() {
        for &c in &Cond::ALL {
            let m = with_cond(Mnemonic::Jcc(Cond::E), c);
            assert_eq!(cond_of(m), Some(c));
            assert_eq!(mnemonic_group(m), "jcc");
        }
        assert_eq!(cond_of(Mnemonic::Add), None);
        assert_eq!(with_cond(Mnemonic::Add, Cond::E), Mnemonic::Add);
    }

    #[test]
    fn pools_avoid_rsp() {
        assert!(!GPR_POOL.contains(&4));
        for i in 0..40 {
            let r = nth_of_class(
                Reg::Gpr {
                    num: 0,
                    width: Width::W64,
                },
                i,
            )
            .unwrap();
            assert_ne!(r.num(), 4);
            assert_eq!(r.width(), Width::W64);
        }
        assert_eq!(
            nth_of_class(Reg::Xmm(3), 17),
            Some(Reg::Xmm(VEC_POOL[17 % 16]))
        );
        assert_eq!(nth_of_class(Reg::HighByte(0), 0), None);
    }

    #[test]
    fn class_names() {
        assert_eq!(
            class_name(Reg::Gpr {
                num: 3,
                width: Width::W64
            }),
            "r64"
        );
        assert_eq!(class_name(Reg::Xmm(9)), "xmm");
        assert_eq!(class_name(Reg::Ymm(1)), "ymm");
    }
}
