//! Structural form keys: the shape of an instruction, packed into a
//! `u32`, such that the [`crate::desc::InstrDesc`] produced by the
//! classifier is a pure function of `(mnemonic, shape key)`.
//!
//! This is the contract behind the build-time descriptor tables: the
//! build script enumerates decoder-reachable forms, computes their keys
//! with this exact code (it is `include!`d into `build.rs`), classifies
//! a representative of each key on every microarchitecture, and emits
//! static tables. At runtime the annotator recomputes the key from the
//! decoded instruction and its effects and indexes the table directly,
//! skipping the classifier *and* the descriptor interner.
//!
//! Everything the classifier inspects is folded into the key:
//!
//! - bits 0..16 — four 4-bit operand tags (register class+width,
//!   immediate, branch target, memory), in operand order;
//! - bits 16..20 — the memory shape ([`Effects::mem`], which includes
//!   the synthetic `rsp` operand of push/pop and the address of `lea`):
//!   non-RIP base, index, non-zero displacement, RIP-relative;
//! - bit 20 — the instruction is exactly two *equal* register operands
//!   (zero/ones idioms);
//! - bit 21 — the compute µop has two or more register/flag inputs
//!   (the Haswell+ unlamination heuristic).
//!
//! Register *identity* beyond those two predicates, immediate values,
//! displacement values, scale factors, and memory widths provably do
//! not affect the descriptor, so they stay out of the key. A key the
//! tables don't cover falls back to the runtime classifier — missing
//! coverage costs speed, never correctness.

use facile_x86::{Effects, Inst, Operand, Reg, Width};

/// Maximum number of operands a keyed form may have.
pub const MAX_KEY_OPERANDS: usize = 4;

/// A shape key that no generated table contains (forces fallback).
pub const UNKEYED: u32 = u32::MAX;

/// 4-bit tag of one operand. High-byte registers fold into the 8-bit
/// GPR tag: the classifier never distinguishes them.
fn operand_tag(op: &Operand) -> u32 {
    match op {
        Operand::Reg(r) => match r {
            Reg::Gpr {
                width: Width::W8, ..
            }
            | Reg::HighByte(_) => 1,
            Reg::Gpr {
                width: Width::W16, ..
            } => 2,
            Reg::Gpr {
                width: Width::W32, ..
            } => 3,
            Reg::Gpr {
                width: Width::W64, ..
            } => 4,
            Reg::Xmm(_) => 5,
            Reg::Ymm(_) => 6,
            // Not decoder-reachable as an operand register; keep such
            // forms on the fallback path.
            _ => 0xF,
        },
        Operand::Imm(_) => 7,
        Operand::Rel(_) => 8,
        Operand::Mem(_) => 9,
    }
}

/// The packed shape key of `inst`, given its precomputed `effects`.
///
/// Returns [`UNKEYED`] for forms outside the keyable space (more than
/// [`MAX_KEY_OPERANDS`] operands), which no table contains.
#[must_use]
pub fn shape_key(inst: &Inst, effects: &Effects) -> u32 {
    let ops = inst.operands.as_slice();
    if ops.len() > MAX_KEY_OPERANDS {
        return UNKEYED;
    }
    let mut key = 0u32;
    for (i, op) in ops.iter().enumerate() {
        key |= operand_tag(op) << (4 * i);
    }
    if let Some(m) = effects.mem {
        let rip = m.is_rip_relative();
        key |= u32::from(m.base.is_some() && !rip) << 16;
        key |= u32::from(m.index.is_some()) << 17;
        key |= u32::from(m.disp != 0) << 18;
        key |= u32::from(rip) << 19;
    }
    let same_regs = matches!(ops, [Operand::Reg(a), Operand::Reg(b)] if a == b);
    key |= u32::from(same_regs) << 20;
    key |= u32::from(crate::classify::compute_inputs(effects) >= 2) << 21;
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_x86::reg::names::*;
    use facile_x86::{Mem, Mnemonic};

    fn key(mnem: Mnemonic, ops: Vec<Operand>) -> u32 {
        let inst = Inst {
            mnemonic: mnem,
            operands: ops,
            len: 3,
            opcode_offset: 0,
            has_lcp: false,
        };
        shape_key(&inst, &inst.effects())
    }

    #[test]
    fn operand_tags_pack_in_order() {
        let k = key(Mnemonic::Add, vec![RAX.into(), RCX.into()]);
        assert_eq!(k & 0xFFFF, 0x0044, "two 64-bit GPR tags");
        let k = key(Mnemonic::Add, vec![EAX.into(), Operand::Imm(7)]);
        assert_eq!(k & 0xFFFF, 0x0073, "gpr32 then imm");
    }

    #[test]
    fn mem_shape_bits_from_effects() {
        let m = Mem::base_index(RSI, RDI, 4, 0, Width::W64);
        let k = key(Mnemonic::Add, vec![RAX.into(), m.into()]);
        assert_eq!((k >> 16) & 0xF, 0b0011, "base+index, no disp");
        let m = Mem::rip_rel(64, Width::W64);
        let k = key(Mnemonic::Add, vec![RAX.into(), m.into()]);
        assert_eq!((k >> 16) & 0xF, 0b1100, "rip bit plus disp, no base bit");
    }

    #[test]
    fn push_sees_synthetic_stack_mem() {
        // push r64 has no explicit memory operand, but its effects carry
        // the synthetic [rsp] store that drives the classifier.
        let k = key(Mnemonic::Push, vec![RAX.into()]);
        assert_eq!((k >> 16) & 0xF, 0b0001, "base-only stack access");
    }

    #[test]
    fn same_regs_and_identity() {
        let a = key(Mnemonic::Xor, vec![RAX.into(), RAX.into()]);
        let b = key(Mnemonic::Xor, vec![RAX.into(), RCX.into()]);
        assert_eq!(a & (1 << 20), 1 << 20);
        assert_eq!(b & (1 << 20), 0);
        assert_ne!(a, b);
        // Different register numbers, same shape → same key.
        let c = key(Mnemonic::Xor, vec![RDX.into(), RCX.into()]);
        assert_eq!(b, c);
    }

    #[test]
    fn too_many_operands_unkeyed() {
        let ops = vec![
            Operand::Imm(1),
            Operand::Imm(2),
            Operand::Imm(3),
            Operand::Imm(4),
            Operand::Imm(5),
        ];
        let inst = Inst {
            mnemonic: Mnemonic::Nop,
            operands: ops,
            len: 5,
            opcode_offset: 0,
            has_lcp: false,
        };
        assert_eq!(shape_key(&inst, &inst.effects()), UNKEYED);
    }
}
