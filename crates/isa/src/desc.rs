//! Instruction performance descriptors: the per-instruction,
//! per-microarchitecture data that uops.info provides for the original
//! Facile tool.

use facile_uarch::PortMask;
use facile_util::SmallVec;

/// Inline µop capacity of [`InstrDesc::uops`]: the widest classifiable
/// form (a memory-destination `xchg`: load + three ALU µops +
/// store-address + store-data) has 6.
pub const MAX_UOPS: usize = 6;

/// The functional kind of an unfused-domain µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UopKind {
    /// A computation µop (ALU, FP, vector, branch, …).
    #[default]
    Compute,
    /// A load µop (address generation + data return).
    Load,
    /// A store-address µop.
    StoreAddr,
    /// A store-data µop.
    StoreData,
}

/// One unfused-domain µop of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Uop {
    /// Ports this µop may be dispatched to.
    pub ports: PortMask,
    /// Functional kind.
    pub kind: UopKind,
    /// Cycles the chosen port is occupied (1 for pipelined µops; >1 for
    /// the non-pipelined divider and square-root units).
    pub occupancy: u8,
}

impl Uop {
    /// A pipelined compute µop on the given ports.
    #[must_use]
    pub fn compute(ports: PortMask) -> Uop {
        Uop {
            ports,
            kind: UopKind::Compute,
            occupancy: 1,
        }
    }

    /// A compute µop occupying its port for `occ` cycles.
    #[must_use]
    pub fn blocking(ports: PortMask, occ: u8) -> Uop {
        Uop {
            ports,
            kind: UopKind::Compute,
            occupancy: occ,
        }
    }
}

/// Complete performance description of one instruction on one
/// microarchitecture.
///
/// Produced by [`crate::classify::describe`]; consumed by every predictor
/// (the analytical model, the simulator, and the baselines), exactly as all
/// tools in the paper consume the same uops.info database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrDesc {
    /// µops in the fused domain as delivered by the decoders / DSB / LSD
    /// (micro-fused load+op or store pairs count as one).
    pub fused_uops: u8,
    /// Fused-domain µops after unlamination, i.e. what the renamer issues.
    pub issue_uops: u8,
    /// Unfused-domain µops dispatched to the scheduler. Empty for
    /// eliminated moves, zero idioms, and NOPs. Inline up to
    /// [`MAX_UOPS`] entries, which covers every classifiable form, so a
    /// descriptor never owns a heap allocation.
    pub uops: SmallVec<Uop, MAX_UOPS>,
    /// Whether decoding requires the complex decoder.
    pub complex_decoder: bool,
    /// After this instruction is decoded on the complex decoder, how many
    /// simple decoders can still be used in the same cycle (uops.info's
    /// `nAvailableSimpleDecoders`). Only meaningful if `complex_decoder`.
    pub simple_decoders_after: u8,
    /// Whether the renamer eliminates this instruction entirely (eliminated
    /// move, zero idiom, or NOP): it consumes issue bandwidth but no
    /// execution ports.
    pub eliminated: bool,
    /// Core latency in cycles from a register/flag input to the produced
    /// register/flag outputs.
    pub latency: u8,
    /// Extra latency added on paths that go through this instruction's
    /// *load* (address-register inputs and memory-carried values); the
    /// microarchitecture's base load latency is added by the dependence
    /// analysis.
    pub load_latency_extra: u8,
}

/// Accounting: a descriptor owns heap storage only if its µop list
/// spilled past [`MAX_UOPS`] inline entries (no classifiable form
/// does; the impl exists so cache accounting stays honest if one ever
/// appears).
impl facile_util::HeapSize for InstrDesc {
    fn heap_bytes(&self) -> usize {
        self.uops.spill_bytes()
    }
}

impl InstrDesc {
    /// Number of unfused-domain µops that compete for execution ports.
    #[must_use]
    pub fn unfused_uops(&self) -> usize {
        self.uops.len()
    }

    /// Whether any µop of this instruction loads from memory.
    #[must_use]
    pub fn has_load(&self) -> bool {
        self.uops.iter().any(|u| u.kind == UopKind::Load)
    }

    /// Whether any µop of this instruction stores to memory.
    #[must_use]
    pub fn has_store(&self) -> bool {
        self.uops.iter().any(|u| u.kind == UopKind::StoreData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uop_constructors() {
        let p = PortMask::of(&[0, 1, 5]);
        let u = Uop::compute(p);
        assert_eq!(u.occupancy, 1);
        assert_eq!(u.kind, UopKind::Compute);
        let b = Uop::blocking(p, 4);
        assert_eq!(b.occupancy, 4);
    }
}
