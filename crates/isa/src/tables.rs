//! Static descriptor tables generated at build time.
//!
//! `build.rs` enumerates every decoder-reachable instruction form,
//! classifies a representative of each `(mnemonic, shape key)` on all
//! nine microarchitectures with the runtime classifier, and emits the
//! result as `static` data. [`lookup`] turns annotation's cold path
//! from "run the classifier, build a descriptor, intern it" into "index
//! a table": a binary search over a handful of shape keys, returning a
//! `&'static InstrDesc` that needs no interning and no allocation.
//!
//! Forms outside the tables (or outside the keyable space entirely) use
//! the runtime classifier exactly as before; [`static_table_stats`]
//! counts both outcomes so benchmarks can report table coverage.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::desc::InstrDesc;
use facile_uarch::Uarch;
use facile_x86::Mnemonic;

#[allow(clippy::all)]
mod generated {
    use crate::desc::{InstrDesc, Uop, UopKind, MAX_UOPS};
    use facile_uarch::PortMask;
    use facile_util::SmallVec;
    use facile_x86::Mnemonic;
    use UopKind as K;

    /// A µop literal (generated-code shorthand).
    const fn u(ports: u16, kind: UopKind, occupancy: u8) -> Uop {
        Uop {
            ports: PortMask(ports),
            kind,
            occupancy,
        }
    }

    /// Padding for the unused tail of inline µop buffers.
    const Z: Uop = u(0, K::Compute, 0);

    /// A descriptor literal: `n` live µops out of the padded array.
    const fn d(
        fused_uops: u8,
        issue_uops: u8,
        uops: [Uop; MAX_UOPS],
        n: usize,
        complex_decoder: bool,
        simple_decoders_after: u8,
        eliminated: bool,
        latency: u8,
        load_latency_extra: u8,
    ) -> InstrDesc {
        InstrDesc {
            fused_uops,
            issue_uops,
            uops: SmallVec::Inline(uops, n),
            complex_decoder,
            simple_decoders_after,
            eliminated,
            latency,
            load_latency_extra,
        }
    }

    include!(concat!(env!("OUT_DIR"), "/facile_tables.rs"));
}

/// Content hash of the generated tables (FNV-1a over the generated
/// source). Changes whenever the classifier, the form enumeration, or
/// the key packing changes — snapshot files embed it so a stale
/// annotation cache is detected instead of silently reused.
pub const TABLE_HASH: u64 = generated::TABLE_HASH;

/// Total number of `(mnemonic group, shape key)` rows in the tables.
pub const N_FORM_KEYS: usize = generated::N_FORM_KEYS;

static HITS: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Descriptor of `(mnemonic, shape key)` on `uarch`, if the generated
/// tables cover it. Updates the hit/fallback counters.
#[must_use]
pub fn lookup(mnemonic: Mnemonic, shape: u32, uarch: Uarch) -> Option<&'static InstrDesc> {
    let found = lookup_uncounted(mnemonic, shape, uarch);
    if found.is_some() {
        HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        FALLBACKS.fetch_add(1, Ordering::Relaxed);
    }
    found
}

/// [`lookup`] without touching the coverage counters (tests, oracles).
#[must_use]
pub fn lookup_uncounted(
    mnemonic: Mnemonic,
    shape: u32,
    uarch: Uarch,
) -> Option<&'static InstrDesc> {
    let forms = generated::forms_of(mnemonic)?;
    let i = forms.binary_search_by_key(&shape, |e| e.0).ok()?;
    Some(&generated::DESCS[usize::from(forms[i].1[uarch.index()])])
}

/// Fast-path coverage counters of the static descriptor tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaticTableStats {
    /// Annotations served directly from the static tables.
    pub hits: u64,
    /// Annotations that fell back to the runtime classifier.
    pub fallbacks: u64,
}

impl StaticTableStats {
    /// Fraction of annotations served from the tables (0 when idle).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.hits + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }
}

/// Current process-wide table coverage counters.
#[must_use]
pub fn static_table_stats() -> StaticTableStats {
    StaticTableStats {
        hits: HITS.load(Ordering::Relaxed),
        fallbacks: FALLBACKS.load(Ordering::Relaxed),
    }
}

/// Reset the coverage counters (benchmark harnesses).
pub fn reset_static_table_stats() {
    HITS.store(0, Ordering::Relaxed);
    FALLBACKS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::describe;
    use crate::form::shape_key;
    use facile_x86::reg::names::*;
    use facile_x86::Inst;

    fn inst(mnemonic: Mnemonic, operands: Vec<facile_x86::Operand>) -> Inst {
        Inst {
            mnemonic,
            operands,
            len: 3,
            opcode_offset: 0,
            has_lcp: false,
        }
    }

    #[test]
    fn tables_nonempty_and_hash_stable() {
        let n = N_FORM_KEYS;
        assert!(n > 500, "suspiciously small table: {n}");
        assert_ne!(TABLE_HASH, 0);
    }

    #[test]
    fn common_form_hits_and_matches_classifier() {
        let i = inst(Mnemonic::Add, vec![RAX.into(), RCX.into()]);
        let e = i.effects();
        for u in Uarch::ALL {
            let hit = lookup_uncounted(i.mnemonic, shape_key(&i, &e), u)
                .expect("add r64, r64 must be covered");
            assert_eq!(*hit, describe(&i, u.config()));
        }
    }

    #[test]
    fn counters_track_hits_and_fallbacks() {
        reset_static_table_stats();
        let i = inst(Mnemonic::Add, vec![RAX.into(), RCX.into()]);
        let e = i.effects();
        assert!(lookup(i.mnemonic, shape_key(&i, &e), Uarch::Skl).is_some());
        assert!(lookup(i.mnemonic, crate::form::UNKEYED, Uarch::Skl).is_none());
        let s = static_table_stats();
        assert!(s.hits >= 1);
        assert!(s.fallbacks >= 1);
        assert!(s.coverage() > 0.0 && s.coverage() < 1.0);
    }
}
