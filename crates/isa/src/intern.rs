//! The instruction-descriptor intern table.
//!
//! A corpus like BHive is massively redundant at the instruction level:
//! a few hundred distinct instruction encodings cover millions of block
//! occurrences. Classification ([`describe`](crate::classify::describe))
//! and architectural-effect extraction ([`Inst::effects`]) are by far
//! the heaviest per-instruction steps of annotation, so this module memoizes them process-wide in a
//! **two-level** table keyed by instruction bytes:
//!
//! * **Level 1 — per bytes** ([`InternedCore`]): the decoded instruction
//!   and its architectural effects. These are microarchitecture-
//!   *independent*, so a nine-uarch sweep computes them once, not nine
//!   times.
//! * **Level 2 — per `(bytes, uarch)`** ([`InternedInst`]): the
//!   performance descriptor, stored in a fixed array indexed by the
//!   microarchitecture — probing a second uarch costs an array index,
//!   not another hash lookup.
//!
//! The table is sharded by a deterministic hash of the key bytes so that
//! concurrent annotation threads do not serialize on a single lock.
//!
//! Keying by raw bytes is sound because x86 decoding is prefix-
//! deterministic: a byte string either decodes to exactly one instruction
//! of exactly its own length or it does not appear as a single-entry key
//! at all. Macro-fused pairs are keyed by the concatenated bytes of both
//! instructions, which can never collide with a single-instruction key of
//! the same bytes (the pair's first instruction boundary falls strictly
//! inside the byte string).

use crate::classify::{describe_fused_pair_with_effects, describe_with_effects};
use crate::desc::InstrDesc;
use facile_uarch::{Uarch, UarchConfig};
use facile_util::{GlobalBudget, HeapSize, Shrinkable, SlruCache};
use facile_x86::{Effects, Inst};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// Default byte capacity of the intern table. Keys include immediates
/// and displacements, so a streaming corpus with varied constants can
/// mint unbounded distinct encodings; the segmented-LRU bound keeps
/// the hot working set resident while a cold scan streams through
/// probation. 64 MiB comfortably covers any realistic working set of
/// distinct instructions (an entry is a few hundred accounted bytes).
const DEFAULT_CAPACITY: usize = 64 << 20;

/// The microarchitecture-independent half of an interned instruction:
/// computed once per distinct byte encoding, shared across every
/// microarchitecture's [`InternedInst`].
#[derive(Debug, Clone, PartialEq)]
pub struct InternedCore {
    /// The decoded instruction (pair head for fused pairs).
    pub inst: Inst,
    /// Architectural reads/writes of `inst` (computed once; reading them
    /// per prediction used to be a dominant allocation source).
    pub effects: Effects,
}

/// Everything the annotation of one instruction occurrence needs, shared
/// via `Arc`: the per-bytes [`InternedCore`] and the per-uarch
/// performance descriptor. For a macro-fused pair the core describes the
/// *first* (producing) instruction and `desc` describes the whole pair,
/// mirroring how [`crate::AnnotatedBlock`] attributes fused pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct InternedInst {
    core: Arc<InternedCore>,
    /// The performance descriptor on the keyed microarchitecture.
    pub desc: InstrDesc,
}

impl InternedInst {
    /// The decoded instruction (pair head for fused pairs).
    #[must_use]
    pub fn inst(&self) -> &Inst {
        &self.core.inst
    }

    /// Architectural reads/writes of [`InternedInst::inst`].
    #[must_use]
    pub fn effects(&self) -> &Effects {
        &self.core.effects
    }

    /// Build an entry without a table (the uninterned reference path).
    #[must_use]
    pub fn uninterned(inst: Inst, desc: InstrDesc) -> InternedInst {
        let effects = inst.effects();
        InternedInst {
            core: Arc::new(InternedCore { inst, effects }),
            desc,
        }
    }

    /// Build an entry from fully materialized parts, bypassing both the
    /// table and effect extraction. This is the snapshot-restore path:
    /// a deserialized `(effects, desc)` pair is paired with the
    /// re-decoded instruction, so reconstruction pays neither
    /// [`Inst::effects`] nor classification.
    #[must_use]
    pub fn from_parts(inst: Inst, effects: Effects, desc: InstrDesc) -> InternedInst {
        InternedInst {
            core: Arc::new(InternedCore { inst, effects }),
            desc,
        }
    }
}

/// Hit/miss/entry counters of the two-level intern table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InternStats {
    /// Descriptor lookups served fully from the table (core + desc).
    pub hits: u64,
    /// Lookups that had to classify a descriptor.
    pub misses: u64,
    /// Level-1 hits: the bytes were known (decode + effects reused),
    /// even when the requested uarch's descriptor still had to be
    /// classified. Always ≥ `hits`.
    pub core_hits: u64,
    /// Level-1 misses: bytes never seen, decode + effects computed.
    pub core_misses: u64,
    /// Distinct byte encodings resident (level-1 entries).
    pub byte_entries: usize,
    /// Distinct `(bytes, uarch)` descriptors resident (level-2 entries).
    pub entries: usize,
    /// Accounted bytes currently resident.
    pub bytes: usize,
    /// Entries evicted by the byte bound since the last clear.
    pub evictions: u64,
}

/// One level-1 entry: the shared core plus the per-uarch descriptor
/// slots (an array index per [`Uarch`], not a second map).
#[derive(Debug)]
struct ByteEntry {
    core: Arc<InternedCore>,
    per_uarch: [Option<Arc<InternedInst>>; Uarch::ALL.len()],
}

/// Accounting: the entry owns its core (decoded instruction + effects,
/// deep — level-2 entries share it by pointer) and one `InternedInst`
/// per resident uarch slot (whose `core` field is a pointer back).
impl HeapSize for ByteEntry {
    fn heap_bytes(&self) -> usize {
        let core = std::mem::size_of::<InternedCore>()
            + self.core.inst.heap_bytes()
            + self.core.effects.heap_bytes();
        let descs = self
            .per_uarch
            .iter()
            .flatten()
            .map(|e| std::mem::size_of::<InternedInst>() + e.desc.heap_bytes())
            .sum::<usize>();
        core + descs
    }
}

/// The process-wide two-level descriptor intern table, byte-bounded by
/// a segmented LRU (see [`facile_util::SlruCache`]): interning is a
/// pure memoization, so an evicted encoding simply re-interns on its
/// next occurrence with an identical result.
#[derive(Debug)]
pub struct DescInterner {
    table: SlruCache<Box<[u8]>, ByteEntry>,
    hits: AtomicU64,
    misses: AtomicU64,
    core_hits: AtomicU64,
    core_misses: AtomicU64,
}

impl Default for DescInterner {
    fn default() -> Self {
        DescInterner::new()
    }
}

impl DescInterner {
    /// An empty interner (the global one is reached via [`interner`])
    /// with the default byte capacity.
    #[must_use]
    pub fn new() -> DescInterner {
        DescInterner {
            table: SlruCache::new("intern", DEFAULT_CAPACITY),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            core_hits: AtomicU64::new(0),
            core_misses: AtomicU64::new(0),
        }
    }

    /// Change the table's byte capacity, evicting down if needed.
    pub fn set_capacity(&self, bytes: usize) {
        self.table.set_capacity(bytes);
    }

    /// The configured byte capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Report byte deltas to (and accept shrinks from) `budget`.
    pub fn attach_budget(&self, budget: &Arc<GlobalBudget>) {
        self.table.set_budget(budget);
    }

    fn lookup(
        &self,
        bytes: &[u8],
        cfg: &UarchConfig,
        build_core: impl FnOnce() -> InternedCore,
        classify: impl FnOnce(&InternedCore) -> InstrDesc,
    ) -> Arc<InternedInst> {
        let uarch = cfg.arch as usize;
        // Fast path: both levels hit under one lock, one hash probe.
        let probe = self.table.read(bytes, |e| match &e.per_uarch[uarch] {
            Some(hit) => Ok(Arc::clone(hit)),
            None => Err(Arc::clone(&e.core)),
        });
        let core = match probe {
            Some(Ok(hit)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.core_hits.fetch_add(1, Ordering::Relaxed);
                return hit;
            }
            Some(Err(core)) => Some(core),
            None => None,
        };
        // Classify outside the lock so concurrent misses on the same shard
        // don't serialize on the heavy work; a racing duplicate is
        // deterministic (same inputs, same descriptor) and harmless.
        let (core, core_hit) = match core {
            Some(core) => (core, true),
            None => (Arc::new(build_core()), false),
        };
        self.core_hits
            .fetch_add(u64::from(core_hit), Ordering::Relaxed);
        self.core_misses
            .fetch_add(u64::from(!core_hit), Ordering::Relaxed);
        let entry = Arc::new(InternedInst {
            desc: classify(&core),
            core: Arc::clone(&core),
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Publish under the shard lock: the entry may have been evicted
        // (re-insert it) or raced (first writer wins on the uarch slot).
        self.table.get_or_insert_with(
            bytes,
            || bytes.into(),
            move || ByteEntry {
                core,
                per_uarch: Default::default(),
            },
            move |e| Arc::clone(e.per_uarch[uarch].get_or_insert(entry)),
        )
    }

    /// The interned entry for a single (unfused) instruction whose
    /// encoding is `bytes`.
    pub fn single(&self, bytes: &[u8], inst: &Inst, cfg: &UarchConfig) -> Arc<InternedInst> {
        self.lookup(
            bytes,
            cfg,
            || InternedCore {
                inst: inst.clone(),
                effects: inst.effects(),
            },
            |core| describe_with_effects(&core.inst, &core.effects, cfg),
        )
    }

    /// The interned entry for a macro-fused pair, keyed by the
    /// concatenated bytes of both instructions.
    pub fn pair(
        &self,
        bytes: &[u8],
        first: &Inst,
        second: &Inst,
        cfg: &UarchConfig,
    ) -> Arc<InternedInst> {
        let _ = second; // the pair descriptor only depends on the producer
        self.lookup(
            bytes,
            cfg,
            || InternedCore {
                inst: first.clone(),
                effects: first.effects(),
            },
            |core| describe_fused_pair_with_effects(&core.inst, &core.effects, cfg),
        )
    }

    /// Current counters.
    pub fn stats(&self) -> InternStats {
        let (mut byte_entries, mut entries) = (0, 0);
        self.table.for_each(|_, e| {
            byte_entries += 1;
            entries += e.per_uarch.iter().flatten().count();
        });
        InternStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            core_hits: self.core_hits.load(Ordering::Relaxed),
            core_misses: self.core_misses.load(Ordering::Relaxed),
            byte_entries,
            entries,
            bytes: self.table.bytes(),
            evictions: self.table.evictions(),
        }
    }

    /// Drop all entries and reset the counters. Outstanding `Arc`s keep
    /// their entries alive; only the table's references are released.
    pub fn clear(&self) {
        self.table.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.core_hits.store(0, Ordering::Relaxed);
        self.core_misses.store(0, Ordering::Relaxed);
    }
}

/// A [`GlobalBudget`] member view of the interner.
impl Shrinkable for DescInterner {
    fn label(&self) -> &'static str {
        "intern"
    }

    fn accounted_bytes(&self) -> usize {
        self.table.bytes()
    }

    fn shrink_toward(&self, target: usize) {
        self.table.shrink_to(target);
    }
}

fn interner_arc() -> &'static Arc<DescInterner> {
    static GLOBAL: OnceLock<Arc<DescInterner>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(DescInterner::new()))
}

/// The process-wide interner used by [`crate::AnnotatedBlock::new`].
pub fn interner() -> &'static DescInterner {
    interner_arc()
}

/// Bound the process-wide interner at `bytes` accounted bytes.
pub fn set_intern_capacity(bytes: usize) {
    interner().set_capacity(bytes);
}

/// Register the process-wide interner as a member of `budget`: its
/// byte deltas are reported there and it participates in proportional
/// shrinking when the budget's high watermark is crossed.
pub fn attach_intern_budget(budget: &Arc<GlobalBudget>) {
    budget.register(Arc::downgrade(interner_arc()) as Weak<dyn Shrinkable>);
    interner().attach_budget(budget);
}

/// Counters of the process-wide interner (plumbed into
/// `facile_engine::Engine::snapshot` and the CLI's `--stats` output).
#[must_use]
pub fn intern_stats() -> InternStats {
    interner().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{describe, describe_fused_pair};
    use facile_x86::reg::names::*;
    use facile_x86::{Block, Mnemonic};

    #[test]
    fn single_entries_are_shared_per_bytes_and_uarch() {
        let t = DescInterner::new();
        let b = Block::assemble(&[(Mnemonic::Add, vec![RAX.into(), RCX.into()])]).unwrap();
        let cfg_skl = Uarch::Skl.config();
        let cfg_hsw = Uarch::Hsw.config();
        let a1 = t.single(b.bytes(), &b.insts()[0], cfg_skl);
        let a2 = t.single(b.bytes(), &b.insts()[0], cfg_skl);
        assert!(Arc::ptr_eq(&a1, &a2));
        let a3 = t.single(b.bytes(), &b.insts()[0], cfg_hsw);
        assert!(!Arc::ptr_eq(&a1, &a3));
        // The uarch-independent core is shared across uarch entries.
        assert!(Arc::ptr_eq(&a1.core, &a3.core));
        let s = t.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 2));
        assert_eq!((s.core_hits, s.core_misses, s.byte_entries), (2, 1, 1));
        t.clear();
        assert_eq!(t.stats(), InternStats::default());
        // The cleared table re-interns; the old Arc is still valid.
        let a4 = t.single(b.bytes(), &b.insts()[0], cfg_skl);
        assert!(!Arc::ptr_eq(&a1, &a4));
        assert_eq!(a1.desc, a4.desc);
    }

    #[test]
    fn interned_matches_direct_classification() {
        let t = DescInterner::new();
        let b = Block::assemble(&[
            (Mnemonic::Imul, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Add, vec![RDX.into(), RBX.into()]),
        ])
        .unwrap();
        for u in Uarch::ALL {
            let cfg = u.config();
            for (i, inst) in b.insts().iter().enumerate() {
                let start = b.offset(i);
                let end = start + inst.len as usize;
                let e = t.single(&b.bytes()[start..end], inst, cfg);
                assert_eq!(e.desc, describe(inst, cfg), "{u}");
                assert_eq!(e.effects(), &inst.effects());
                assert_eq!(e.inst(), inst);
            }
        }
        // One core per distinct encoding, one descriptor per (bytes, uarch).
        let s = t.stats();
        assert_eq!(s.byte_entries, 2);
        assert_eq!(s.entries, 2 * Uarch::ALL.len());
        assert_eq!(s.core_misses, 2);
    }

    #[test]
    fn pair_entries_do_not_collide_with_singles() {
        // dec rdx; jne -7 macro-fuses on SKL: the pair key spans both
        // instructions and must be distinct from dec's own entry.
        let b = Block::assemble(&[
            (Mnemonic::Dec, vec![RDX.into()]),
            (
                Mnemonic::Jcc(facile_x86::Cond::Ne),
                vec![facile_x86::Operand::Rel(-7)],
            ),
        ])
        .unwrap();
        let t = DescInterner::new();
        let cfg = Uarch::Skl.config();
        let insts = b.insts();
        let single = t.single(&b.bytes()[..insts[0].len as usize], &insts[0], cfg);
        let pair = t.pair(b.bytes(), &insts[0], &insts[1], cfg);
        assert!(!Arc::ptr_eq(&single, &pair));
        assert_eq!(pair.desc, describe_fused_pair(&insts[0], &insts[1], cfg));
        assert_eq!(t.stats().entries, 2);
        assert_eq!(t.stats().byte_entries, 2);
    }
}
