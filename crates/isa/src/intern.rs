//! The instruction-descriptor intern table.
//!
//! A corpus like BHive is massively redundant at the instruction level:
//! a few hundred distinct instruction encodings cover millions of block
//! occurrences. Classification ([`describe`]) and architectural-effect
//! extraction ([`Inst::effects`]) are by far the heaviest per-instruction
//! steps of annotation, so this module memoizes them process-wide, keyed
//! by `(instruction bytes, uarch)`: the first time an encoding is seen on
//! a microarchitecture it is described once, and every later occurrence —
//! in any block, on any thread — shares the same [`InternedInst`] through
//! an `Arc`.
//!
//! The table is sharded by a deterministic hash of the key bytes so that
//! concurrent annotation threads do not serialize on a single lock.
//!
//! Keying by raw bytes is sound because x86 decoding is prefix-
//! deterministic: a byte string either decodes to exactly one instruction
//! of exactly its own length or it does not appear as a single-entry key
//! at all. Macro-fused pairs are keyed by the concatenated bytes of both
//! instructions, which can never collide with a single-instruction key of
//! the same bytes (the pair's first instruction boundary falls strictly
//! inside the byte string).

use crate::classify::{describe, describe_fused_pair};
use crate::desc::InstrDesc;
use facile_uarch::{Uarch, UarchConfig};
use facile_util::{hash_bytes, FxHashMap};
use facile_x86::{Effects, Inst};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of independent lock shards. A power of two so shard selection
/// is a mask; 16 is comfortably above any realistic worker count for the
/// offline workloads this crate serves.
const SHARDS: usize = 16;

/// Per-shard entry cap. Keys include immediates and displacements, so a
/// streaming corpus with varied constants can mint unbounded distinct
/// encodings; when a shard reaches this many entries it is flushed
/// (outstanding `Arc`s stay valid, later occurrences simply re-intern),
/// bounding the table at `SHARDS × SHARD_CAP` entries (~128k) while
/// still covering any realistic working set of distinct instructions.
const SHARD_CAP: usize = 8192;

/// Everything the annotation of one instruction occurrence needs, computed
/// once per distinct `(bytes, uarch)` pair and shared via `Arc`:
/// the decoded instruction, its architectural effects, and its performance
/// descriptor. For a macro-fused pair the `inst`/`effects` are those of the
/// *first* (producing) instruction and `desc` describes the whole pair,
/// mirroring how [`crate::AnnotatedBlock`] attributes fused pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct InternedInst {
    /// The decoded instruction (pair head for fused pairs).
    pub inst: Inst,
    /// Architectural reads/writes of `inst` (computed once; reading them
    /// per prediction used to be a dominant allocation source).
    pub effects: Effects,
    /// The performance descriptor on the keyed microarchitecture.
    pub desc: InstrDesc,
}

/// Hit/miss/entry counters of the intern table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InternStats {
    /// Lookups served from the table.
    pub hits: u64,
    /// Lookups that had to classify.
    pub misses: u64,
    /// Distinct `(bytes, uarch)` entries resident.
    pub entries: usize,
}

// Per-shard table: uarch -> instruction bytes -> interned entry. Two
// levels so the hit path probes with the borrowed `&[u8]` — key bytes are
// copied only on the insert path.
type ShardMap = FxHashMap<Uarch, FxHashMap<Box<[u8]>, Arc<InternedInst>>>;

/// The process-wide descriptor intern table.
#[derive(Debug, Default)]
pub struct DescInterner {
    shards: [Mutex<ShardMap>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DescInterner {
    /// An empty interner (the global one is reached via [`interner`]).
    #[must_use]
    pub fn new() -> DescInterner {
        DescInterner::default()
    }

    #[inline]
    fn shard(&self, bytes: &[u8]) -> &Mutex<ShardMap> {
        &self.shards[(hash_bytes(bytes) as usize) & (SHARDS - 1)]
    }

    fn lookup(
        &self,
        bytes: &[u8],
        uarch: Uarch,
        build: impl FnOnce() -> InternedInst,
    ) -> Arc<InternedInst> {
        let shard = self.shard(bytes);
        if let Some(hit) = shard
            .lock()
            .expect("no poisoning")
            .get(&uarch)
            .and_then(|per_uarch| per_uarch.get(bytes))
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Classify outside the lock so concurrent misses on the same shard
        // don't serialize on the heavy work; a racing duplicate is
        // deterministic (same inputs, same descriptor) and harmless.
        let entry = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = shard.lock().expect("no poisoning");
        if map.values().map(FxHashMap::len).sum::<usize>() >= SHARD_CAP {
            // Bounded memory on unbounded streams: drop the shard and
            // start over. Interning is a pure memoization, so results
            // are unaffected.
            map.clear();
        }
        Arc::clone(
            map.entry(uarch)
                .or_default()
                .entry(bytes.into())
                .or_insert(entry),
        )
    }

    /// The interned entry for a single (unfused) instruction whose
    /// encoding is `bytes`.
    pub fn single(&self, bytes: &[u8], inst: &Inst, cfg: &UarchConfig) -> Arc<InternedInst> {
        self.lookup(bytes, cfg.arch, || InternedInst {
            inst: inst.clone(),
            effects: inst.effects(),
            desc: describe(inst, cfg),
        })
    }

    /// The interned entry for a macro-fused pair, keyed by the
    /// concatenated bytes of both instructions.
    pub fn pair(
        &self,
        bytes: &[u8],
        first: &Inst,
        second: &Inst,
        cfg: &UarchConfig,
    ) -> Arc<InternedInst> {
        self.lookup(bytes, cfg.arch, || InternedInst {
            inst: first.clone(),
            effects: first.effects(),
            desc: describe_fused_pair(first, second, cfg),
        })
    }

    /// Current counters.
    pub fn stats(&self) -> InternStats {
        InternStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| {
                    s.lock()
                        .expect("no poisoning")
                        .values()
                        .map(FxHashMap::len)
                        .sum::<usize>()
                })
                .sum(),
        }
    }

    /// Drop all entries and reset the counters. Outstanding `Arc`s keep
    /// their entries alive; only the table's references are released.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("no poisoning").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// The process-wide interner used by [`crate::AnnotatedBlock::new`].
pub fn interner() -> &'static DescInterner {
    static GLOBAL: OnceLock<DescInterner> = OnceLock::new();
    GLOBAL.get_or_init(DescInterner::new)
}

/// Counters of the process-wide interner (plumbed into
/// `facile_engine::Engine::cache_stats` and the CLI's `--stats` output).
#[must_use]
pub fn intern_stats() -> InternStats {
    interner().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_x86::reg::names::*;
    use facile_x86::{Block, Mnemonic};

    #[test]
    fn single_entries_are_shared_per_bytes_and_uarch() {
        let t = DescInterner::new();
        let b = Block::assemble(&[(Mnemonic::Add, vec![RAX.into(), RCX.into()])]).unwrap();
        let cfg_skl = Uarch::Skl.config();
        let cfg_hsw = Uarch::Hsw.config();
        let a1 = t.single(b.bytes(), &b.insts()[0], cfg_skl);
        let a2 = t.single(b.bytes(), &b.insts()[0], cfg_skl);
        assert!(Arc::ptr_eq(&a1, &a2));
        let a3 = t.single(b.bytes(), &b.insts()[0], cfg_hsw);
        assert!(!Arc::ptr_eq(&a1, &a3));
        let s = t.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 2));
        t.clear();
        assert_eq!(t.stats(), InternStats::default());
        // The cleared table re-interns; the old Arc is still valid.
        let a4 = t.single(b.bytes(), &b.insts()[0], cfg_skl);
        assert!(!Arc::ptr_eq(&a1, &a4));
        assert_eq!(a1.desc, a4.desc);
    }

    #[test]
    fn interned_matches_direct_classification() {
        let t = DescInterner::new();
        let b = Block::assemble(&[
            (Mnemonic::Imul, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Add, vec![RDX.into(), RBX.into()]),
        ])
        .unwrap();
        for u in Uarch::ALL {
            let cfg = u.config();
            for (i, inst) in b.insts().iter().enumerate() {
                let start = b.offset(i);
                let end = start + inst.len as usize;
                let e = t.single(&b.bytes()[start..end], inst, cfg);
                assert_eq!(e.desc, describe(inst, cfg), "{u}");
                assert_eq!(e.effects, inst.effects());
                assert_eq!(&e.inst, inst);
            }
        }
    }

    #[test]
    fn pair_entries_do_not_collide_with_singles() {
        // dec rdx; jne -7 macro-fuses on SKL: the pair key spans both
        // instructions and must be distinct from dec's own entry.
        let b = Block::assemble(&[
            (Mnemonic::Dec, vec![RDX.into()]),
            (
                Mnemonic::Jcc(facile_x86::Cond::Ne),
                vec![facile_x86::Operand::Rel(-7)],
            ),
        ])
        .unwrap();
        let t = DescInterner::new();
        let cfg = Uarch::Skl.config();
        let insts = b.insts();
        let single = t.single(&b.bytes()[..insts[0].len as usize], &insts[0], cfg);
        let pair = t.pair(b.bytes(), &insts[0], &insts[1], cfg);
        assert!(!Arc::ptr_eq(&single, &pair));
        assert_eq!(pair.desc, describe_fused_pair(&insts[0], &insts[1], cfg));
        assert_eq!(t.stats().entries, 2);
    }
}
