//! End-to-end annotation equivalence over generated corpora: the
//! table-served interned path (`AnnotatedBlock::new`) and the pure
//! runtime-classifier path (`new_uninterned`) must agree instruction by
//! instruction — descriptors, effects, and the precomputed kernel
//! columns — on every microarchitecture, for table hits and fallbacks
//! alike.

use facile_bhive::{generate_suite, BlockStream};
use facile_isa::AnnotatedBlock;
use facile_uarch::Uarch;
use proptest::prelude::*;

/// Assert the two annotation paths agree on one block.
fn assert_paths_agree(block: &facile_x86::Block, u: Uarch) {
    let interned = AnnotatedBlock::new(block.clone(), u);
    let reference = AnnotatedBlock::new_uninterned(block.clone(), u);
    assert_eq!(
        interned.insts(),
        reference.insts(),
        "annotation paths diverge on {u} for {}",
        block.to_hex()
    );
    assert_eq!(
        interned.columns(),
        reference.columns(),
        "kernel columns diverge on {u} for {}",
        block.to_hex()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stream-generated random blocks: table path == reference path.
    #[test]
    fn interned_matches_uninterned_on_random_blocks(
        seed in 0u64..5000,
        idx in 0usize..6,
        uarch_idx in 0usize..Uarch::ALL.len(),
    ) {
        let gb = BlockStream::new(seed).nth(idx).expect("infinite stream");
        assert_paths_agree(&gb.block, Uarch::ALL[uarch_idx]);
    }
}

/// The benchmark suite corpus drives both the table hit path and the
/// runtime fallback (the generators emit addressing shapes the probe
/// corpus does not key, e.g. absolute displacements), so this one run
/// pins equivalence on both paths and proves both counters actually
/// move.
#[test]
fn suite_corpus_exercises_hits_and_fallbacks_bit_identically() {
    let before = facile_isa::static_table_stats();
    for bench in generate_suite(200, 2023) {
        assert_paths_agree(&bench.unrolled, Uarch::Skl);
        assert_paths_agree(&bench.looped, Uarch::Rkl);
    }
    let after = facile_isa::static_table_stats();
    // The counters are process-wide and monotonic, so concurrent tests
    // only ever add to them: the deltas are lower bounds.
    assert!(
        after.hits > before.hits,
        "suite corpus never hit the static tables"
    );
    assert!(
        after.fallbacks > before.fallbacks,
        "suite corpus never took the runtime fallback — the fallback \
         path is untested"
    );
}
