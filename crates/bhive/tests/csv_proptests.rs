//! Property tests for the BHive CSV codec: parse → `Block` → serialize
//! must round-trip exactly over generator-produced blocks, and every
//! malformed-line shape must surface as its typed error, never a panic.

use facile_bhive::csv::{self, CsvError, CsvRecord};
use facile_bhive::BlockStream;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize → parse reproduces the record exactly (block bytes and
    /// measurement), for both bare-hex and measured lines.
    #[test]
    fn round_trip_serialize_then_parse(
        seed in 0u64..1000,
        idx in 0usize..8,
        tput_cents in proptest::option::of(0u32..1_000_000),
    ) {
        let gb = BlockStream::new(seed).nth(idx).expect("infinite stream");
        let record = CsvRecord {
            block: gb.block.clone(),
            throughput: tput_cents.map(|c| f64::from(c) / 100.0),
        };
        let line = record.to_line();
        let parsed = csv::parse_line(&line).expect("well-formed line").expect("not a comment");
        prop_assert_eq!(parsed.block.bytes(), record.block.bytes());
        prop_assert_eq!(parsed.block, record.block);
        prop_assert_eq!(parsed.throughput, record.throughput);
        // And serializing the parsed record is bit-stable.
        prop_assert_eq!(parsed.to_line(), line);
    }

    /// parse → serialize round-trips lines with extra provenance columns
    /// down to the canonical two-field form.
    #[test]
    fn parse_ignores_extra_columns(seed in 0u64..500, idx in 0usize..6) {
        let gb = BlockStream::new(seed).nth(idx).expect("infinite stream");
        let hex = gb.block.to_hex();
        let line = format!("{hex},3.25,skylake,extra");
        let parsed = csv::parse_line(&line).expect("well-formed").expect("record");
        prop_assert_eq!(parsed.to_line(), format!("{hex},3.25"));
    }

    /// Every malformed mutation of a valid line is rejected with the
    /// matching typed error — corrupt hex digits, odd lengths, and broken
    /// throughput fields never panic and never parse.
    #[test]
    fn malformed_lines_error_without_panicking(
        seed in 0u64..500,
        kind in 0u8..5,
    ) {
        let gb = BlockStream::new(seed).next().expect("infinite stream");
        let hex = gb.block.to_hex();
        let (line, expect_hex, expect_tput) = match kind {
            // Non-hex character in the block field.
            0 => (format!("z{}", &hex[1..]), true, false),
            // Odd number of hex digits.
            1 => (hex[..hex.len() - 1].to_string(), true, false),
            // Non-numeric throughput.
            2 => (format!("{hex},fast"), false, true),
            // Negative throughput.
            3 => (format!("{hex},-2.5"), false, true),
            // Non-finite throughput.
            _ => (format!("{hex},NaN"), false, true),
        };
        match csv::parse_line(&line) {
            Err(CsvError::BadHex { .. }) => prop_assert!(expect_hex, "{line}"),
            Err(CsvError::BadThroughput { .. }) => prop_assert!(expect_tput, "{line}"),
            other => prop_assert!(false, "expected a typed error for {line:?}, got {other:?}"),
        }
    }

    /// Whole-document parsing: valid lines mixed with comments parse in
    /// order; a malformed line reports its 1-based position.
    #[test]
    fn document_round_trip(seed in 0u64..200, n in 1usize..6) {
        let blocks: Vec<_> = BlockStream::new(seed).take(n).collect();
        let mut doc = String::from("# generated corpus\n\n");
        for (i, gb) in blocks.iter().enumerate() {
            doc.push_str(&CsvRecord {
                block: gb.block.clone(),
                throughput: Some(f64::from(i as u32) + 0.5),
            }.to_line());
            doc.push('\n');
        }
        let parsed = csv::parse(&doc).expect("document parses");
        prop_assert_eq!(parsed.len(), n);
        for (i, (rec, gb)) in parsed.iter().zip(&blocks).enumerate() {
            prop_assert_eq!(&rec.block, &gb.block);
            prop_assert_eq!(rec.throughput, Some(f64::from(i as u32) + 0.5));
        }
        // Corrupt the document: error pinpoints the line.
        let bad = format!("{doc}oddhex1\n");
        let (lineno, err) = csv::parse(&bad).unwrap_err();
        prop_assert_eq!(lineno, doc.lines().count() + 1);
        prop_assert!(matches!(err, CsvError::BadHex { .. }));
    }
}
