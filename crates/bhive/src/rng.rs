//! A small deterministic PRNG with the subset of the `rand` API the
//! generator uses (`seed_from_u64`, `gen_range`, `gen_bool`), so the
//! benchmark suite builds without external dependencies. xoshiro256**
//! seeded via splitmix64; sequences are stable across platforms and
//! releases, which keeps the generated suites reproducible.

/// Deterministic generator (drop-in for `rand::rngs::StdRng` usage here).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// Seed deterministically from a `u64`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        #[allow(clippy::cast_precision_loss)]
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

/// Integer types samplable from a range.
pub trait SampleRange: Sized {
    /// Uniform sample from `range`.
    fn sample(rng: &mut StdRng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_possible_wrap,
                clippy::cast_sign_loss,
                clippy::cast_lossless
            )]
            fn sample(rng: &mut StdRng, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let lo = range.start as i128;
                let span = (range.end as i128 - lo) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo + v as i128) as $t
            }
        }
    )*};
}
impl_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
