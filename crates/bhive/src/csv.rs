//! BHive CSV records: `hex[,throughput]` lines, as used by the BHive
//! suite's measurement files and by this workspace's batch inputs.
//!
//! Parsing is strict and typed: every malformed-line failure mode is a
//! [`CsvError`] variant, so harnesses can distinguish "skip this comment"
//! from "this line is broken" without string matching. Serialization via
//! [`CsvRecord::to_line`] round-trips: `parse_line(&r.to_line())`
//! reproduces `r` exactly (f64 `Display` is shortest-round-trip in Rust).

use facile_x86::{Block, DecodeError};
use std::fmt;

/// One parsed BHive CSV line: a block and its optional measured
/// throughput (cycles per iteration).
#[derive(Debug, Clone, PartialEq)]
pub struct CsvRecord {
    /// The decoded block.
    pub block: Block,
    /// The measured throughput, if the line carried one.
    pub throughput: Option<f64>,
}

impl CsvRecord {
    /// Serialize back to a BHive CSV line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        match self.throughput {
            Some(t) => format!("{},{t}", self.block.to_hex()),
            None => self.block.to_hex(),
        }
    }
}

/// Why a BHive CSV line could not be parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// The hex field is not a well-formed hex string (odd length or a
    /// non-hex digit).
    BadHex {
        /// The offending field, as supplied.
        field: String,
    },
    /// The hex field decoded to no instructions.
    EmptyBlock,
    /// The hex field is well-formed hex but does not decode to a block.
    Decode {
        /// The offending field, as supplied.
        field: String,
        /// The decoder's diagnosis.
        source: DecodeError,
    },
    /// The throughput field is not a finite, non-negative number.
    BadThroughput {
        /// The offending field, as supplied.
        field: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadHex { field } => write!(f, "not a hex-encoded block: {field:?}"),
            CsvError::EmptyBlock => f.write_str("empty basic block"),
            CsvError::Decode { field, source } => {
                write!(f, "cannot decode block {field:?}: {source}")
            }
            CsvError::BadThroughput { field } => {
                write!(f, "not a throughput value: {field:?}")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The hex field of a BHive CSV line (everything before the first
/// comma), or `None` for blank lines and `#` comments.
///
/// This is the line shape shared by every consumer: streaming batch
/// inputs use it directly (leaving hex validation to the engine, which
/// turns bad blocks into error rows), while [`parse_line`] layers strict
/// typed validation on top for whole-file inputs.
#[must_use]
pub fn hex_field(line: &str) -> Option<&str> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    Some(line.split(',').next().unwrap_or(line).trim())
}

/// Parse one BHive CSV line.
///
/// Returns `Ok(None)` for blank lines and `#` comments (skippable),
/// `Ok(Some(record))` for a well-formed `hex[,throughput]` line, and a
/// typed [`CsvError`] otherwise. Fields beyond the second are ignored,
/// matching the BHive files (which carry extra provenance columns).
///
/// # Errors
/// See [`CsvError`] for every failure mode.
pub fn parse_line(line: &str) -> Result<Option<CsvRecord>, CsvError> {
    let Some(hex) = hex_field(line) else {
        return Ok(None);
    };
    let mut fields = line.trim().split(',');
    fields.next(); // the hex field
    if hex.is_empty() || !hex.len().is_multiple_of(2) || !hex.bytes().all(|b| b.is_ascii_hexdigit())
    {
        return Err(CsvError::BadHex {
            field: hex.to_string(),
        });
    }
    let block = Block::from_hex(hex).map_err(|source| CsvError::Decode {
        field: hex.to_string(),
        source,
    })?;
    if block.is_empty() {
        return Err(CsvError::EmptyBlock);
    }
    let throughput = match fields.next().map(str::trim) {
        None | Some("") => None,
        Some(t) => {
            let v: f64 = t.parse().map_err(|_| CsvError::BadThroughput {
                field: t.to_string(),
            })?;
            if !v.is_finite() || v < 0.0 {
                return Err(CsvError::BadThroughput {
                    field: t.to_string(),
                });
            }
            Some(v)
        }
    };
    Ok(Some(CsvRecord { block, throughput }))
}

/// Parse a whole BHive CSV document, skipping blanks and comments.
///
/// # Errors
/// The first [`CsvError`] encountered, tagged with its 1-based line
/// number.
pub fn parse(text: &str) -> Result<Vec<CsvRecord>, (usize, CsvError)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_line(line) {
            Ok(Some(r)) => out.push(r),
            Ok(None) => {}
            Err(e) => return Err((i + 1, e)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_hex_and_measured_lines() {
        let r = parse_line("4801c8").unwrap().unwrap();
        assert_eq!(r.block.to_hex(), "4801c8");
        assert_eq!(r.throughput, None);
        let r = parse_line("4801c8,12.34,extra,columns").unwrap().unwrap();
        assert_eq!(r.throughput, Some(12.34));
    }

    #[test]
    fn skips_comments_and_blanks() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("# 4801c8").unwrap(), None);
    }

    #[test]
    fn malformed_lines_are_typed() {
        assert!(matches!(
            parse_line("zznothex"),
            Err(CsvError::BadHex { .. })
        ));
        assert!(matches!(parse_line("4801c"), Err(CsvError::BadHex { .. })));
        assert!(matches!(
            parse_line("0f0b"),
            Err(CsvError::Decode { .. }) // ud2: undecodable opcode
        ));
        assert!(matches!(
            parse_line("4801c8,fast"),
            Err(CsvError::BadThroughput { .. })
        ));
        assert!(matches!(
            parse_line("4801c8,-1.0"),
            Err(CsvError::BadThroughput { .. })
        ));
        assert!(matches!(
            parse_line("4801c8,inf"),
            Err(CsvError::BadThroughput { .. })
        ));
    }

    #[test]
    fn document_errors_carry_line_numbers() {
        let (line, err) = parse("# header\n4801c8\nzz\n").unwrap_err();
        assert_eq!(line, 3);
        assert!(matches!(err, CsvError::BadHex { .. }));
        assert_eq!(parse("# only comments\n\n").unwrap(), vec![]);
    }
}
