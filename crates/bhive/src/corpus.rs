//! A curated corpus of hand-written stress kernels.
//!
//! Each kernel targets one pipeline component, providing known-bottleneck
//! inputs for tests, examples, and the interpretability experiments.

use facile_x86::reg::names::*;
use facile_x86::reg::Width;
use facile_x86::{Block, Cond, Mem, Mnemonic, Operand, Reg};

/// A named stress kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Short name.
    pub name: &'static str,
    /// What the kernel stresses.
    pub stresses: &'static str,
    /// The block.
    pub block: Block,
}

type Asm = (Mnemonic, Vec<Operand>);

fn assemble(name: &'static str, stresses: &'static str, prog: &[Asm]) -> Kernel {
    Kernel {
        name,
        stresses,
        block: Block::assemble(prog).expect("corpus kernels must assemble"),
    }
}

/// The full corpus.
#[must_use]
pub fn kernels() -> Vec<Kernel> {
    let mut v = Vec::new();

    // Dependence-chain bound: one long multiply chain.
    v.push(assemble(
        "imul-chain",
        "Precedence (3-cycle loop-carried multiply)",
        &[(Mnemonic::Imul, vec![RAX.into(), RCX.into()])],
    ));

    // Pointer chase: load-latency chain.
    v.push(assemble(
        "pointer-chase",
        "Precedence (load latency)",
        &[(
            Mnemonic::Mov,
            vec![RAX.into(), Mem::base(RAX, Width::W64).into()],
        )],
    ));

    // Port storm: saturate the multiply port.
    v.push(assemble(
        "p1-storm",
        "Ports (all µops bound to the multiplier port)",
        &[
            (
                Mnemonic::Imul,
                vec![RAX.into(), RSI.into(), Operand::Imm(3)],
            ),
            (
                Mnemonic::Imul,
                vec![RCX.into(), RSI.into(), Operand::Imm(5)],
            ),
            (
                Mnemonic::Imul,
                vec![RDX.into(), RSI.into(), Operand::Imm(7)],
            ),
        ],
    ));

    // LCP-heavy: predecoder penalties dominate.
    v.push(assemble(
        "lcp-heavy",
        "Predec (length-changing prefixes)",
        &[
            (Mnemonic::Add, vec![AX.into(), Operand::Imm(0x1234)]),
            (Mnemonic::Add, vec![CX.into(), Operand::Imm(0x2345)]),
            (Mnemonic::Add, vec![DX.into(), Operand::Imm(0x3456)]),
        ],
    ));

    // Dense short instructions: predecode width bound.
    v.push(assemble(
        "nop-dense",
        "Predec (more than five instructions per 16-byte window)",
        &(0..12).map(|_| (Mnemonic::Nop, vec![])).collect::<Vec<_>>(),
    ));

    // Decode bound: complex-decoder instructions back to back.
    v.push(assemble(
        "rmw-train",
        "Dec (every instruction needs the complex decoder)",
        &[
            (
                Mnemonic::Add,
                vec![Mem::base_disp(R12, 0, Width::W64).into(), RAX.into()],
            ),
            (
                Mnemonic::Add,
                vec![Mem::base_disp(R12, 8, Width::W64).into(), RCX.into()],
            ),
            (
                Mnemonic::Add,
                vec![Mem::base_disp(R12, 16, Width::W64).into(), RDX.into()],
            ),
        ],
    ));

    // Issue bound: wide mix of eliminated and simple µops.
    v.push(assemble(
        "issue-wide",
        "Issue (more independent µops than the issue width)",
        &[
            (Mnemonic::Add, vec![RAX.into(), RSI.into()]),
            (Mnemonic::Add, vec![RCX.into(), RSI.into()]),
            (Mnemonic::Add, vec![RDX.into(), RSI.into()]),
            (Mnemonic::Add, vec![RBX.into(), RSI.into()]),
            (Mnemonic::Add, vec![RDI.into(), RSI.into()]),
            (Mnemonic::Add, vec![R8.into(), RSI.into()]),
        ],
    ));

    // Store-forwarding loop.
    v.push(assemble(
        "store-forward",
        "Precedence (memory-carried dependence)",
        &[(
            Mnemonic::Add,
            vec![Mem::base(R13, Width::W64).into(), RAX.into()],
        )],
    ));

    // Divider pressure.
    v.push(assemble(
        "div-pressure",
        "Ports (non-pipelined divider occupancy)",
        &[
            (Mnemonic::Xor, vec![EDX.into(), EDX.into()]),
            (Mnemonic::Div, vec![RCX.into()]),
        ],
    ));

    // FP latency chain with FMA.
    v.push(assemble(
        "fma-chain",
        "Precedence (FMA latency, AVX)",
        &[(
            Mnemonic::Vfmadd231ps,
            vec![
                Operand::Reg(Reg::Ymm(0)),
                Operand::Reg(Reg::Ymm(1)),
                Operand::Reg(Reg::Ymm(2)),
            ],
        )],
    ));

    // A tiny loop that fits the LSD.
    v.push({
        let body: Vec<Asm> = vec![
            (Mnemonic::Add, vec![RAX.into(), RSI.into()]),
            (Mnemonic::Dec, vec![R11.into()]),
            (Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-9)]),
        ];
        assemble("lsd-tiny", "LSD (2 fused µops per iteration)", &body)
    });

    // A loop whose branch ends exactly on a 32-byte boundary: triggers the
    // JCC-erratum mitigation on Skylake-derived cores.
    v.push({
        let mut body: Vec<Asm> = (0..30).map(|_| (Mnemonic::Nop, vec![])).collect();
        body.push((Mnemonic::Jmp, vec![Operand::Rel(-32)])); // ends at byte 32
        assemble(
            "jcc-erratum",
            "Predec/Dec via the JCC-erratum DSB exclusion (SKL/CLX)",
            &body,
        )
    });

    // Eliminated moves: pure issue-width pressure, zero port pressure.
    v.push(assemble(
        "move-elim-train",
        "Issue (all µops eliminated by the renamer)",
        &[
            (Mnemonic::Mov, vec![RAX.into(), RSI.into()]),
            (Mnemonic::Mov, vec![RCX.into(), RSI.into()]),
            (Mnemonic::Mov, vec![RDX.into(), RSI.into()]),
            (Mnemonic::Mov, vec![RBX.into(), RSI.into()]),
            (Mnemonic::Mov, vec![RDI.into(), RSI.into()]),
            (Mnemonic::Mov, vec![R8.into(), RSI.into()]),
            (Mnemonic::Mov, vec![R9.into(), RSI.into()]),
            (Mnemonic::Mov, vec![R10.into(), RSI.into()]),
        ],
    ));

    // A loop too big for the LSD (falls back to the DSB).
    v.push({
        let mut body: Vec<Asm> = Vec::new();
        for i in 0..30u8 {
            let r = Reg::Gpr {
                num: i % 4,
                width: Width::W64,
            };
            body.push((Mnemonic::Add, vec![r.into(), RSI.into()]));
        }
        body.push((Mnemonic::Dec, vec![R11.into()]));
        body.push((Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-98)]));
        assemble(
            "dsb-large-loop",
            "DSB (loop exceeds the SNB/IVB IDQ)",
            &body,
        )
    });

    // 16-byte-boundary crossing instructions (predecoder O(b) slots).
    v.push(assemble(
        "boundary-crossers",
        "Predec (instructions crossing 16-byte fetch blocks)",
        &[
            (
                Mnemonic::Mov,
                vec![RAX.into(), Operand::Imm(0x1122334455667788)],
            ), // 10 B
            (
                Mnemonic::Mov,
                vec![RCX.into(), Operand::Imm(0x1122334455667788)],
            ), // 10 B
            (
                Mnemonic::Mov,
                vec![RDX.into(), Operand::Imm(0x1122334455667788)],
            ), // 10 B
        ],
    ));

    v
}

/// Look up a kernel by name.
#[must_use]
pub fn kernel(name: &str) -> Option<Kernel> {
    kernels().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_assembles_and_is_named_uniquely() {
        let ks = kernels();
        assert!(ks.len() >= 10);
        let mut names: Vec<_> = ks.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ks.len());
    }

    #[test]
    fn lookup() {
        assert!(kernel("imul-chain").is_some());
        assert!(kernel("nonexistent").is_none());
    }

    #[test]
    fn lsd_kernel_is_a_loop() {
        assert!(kernel("lsd-tiny").unwrap().block.ends_in_branch());
    }
}
