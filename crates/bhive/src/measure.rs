//! The measurement framework: the BHive-profiler stand-in.
//!
//! Measurements come from the cycle-accurate simulator (`facile-sim`) and
//! are rounded to two decimal digits, exactly as the BHive measurements
//! used in the paper.

use crate::gen::Bench;
use facile_isa::AnnotatedBlock;
use facile_uarch::Uarch;
use facile_x86::Block;

/// A benchmark together with its measured throughputs on one µarch.
#[derive(Debug, Clone)]
pub struct Measured {
    /// The benchmark.
    pub bench: Bench,
    /// Measured TPU (cycles/iteration of the unrolled variant).
    pub tpu: f64,
    /// Measured TPL (cycles/iteration of the loop variant).
    pub tpl: f64,
}

/// Round to two decimal digits (BHive reports measurements this way).
#[must_use]
pub fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Measure one block on `uarch` under the given notion.
#[must_use]
pub fn measure_block(block: &Block, uarch: Uarch, loop_mode: bool) -> f64 {
    let ab = AnnotatedBlock::new(block.clone(), uarch);
    round2(facile_sim::simulate(&ab, loop_mode).cycles_per_iter)
}

/// Measure a whole suite on `uarch` (TPU on the unrolled variants, TPL on
/// the loop variants).
#[must_use]
pub fn measure_suite(suite: &[Bench], uarch: Uarch) -> Vec<Measured> {
    suite
        .iter()
        .map(|b| Measured {
            bench: b.clone(),
            tpu: measure_block(&b.unrolled, uarch, false),
            tpl: measure_block(&b.looped, uarch, true),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_suite;

    #[test]
    fn round2_behaviour() {
        assert_eq!(round2(1.234), 1.23);
        assert_eq!(round2(1.235), 1.24);
        assert_eq!(round2(0.0), 0.0);
    }

    #[test]
    fn measurements_are_positive_and_reproducible() {
        let suite = generate_suite(6, 9);
        let a = measure_suite(&suite, Uarch::Skl);
        let b = measure_suite(&suite, Uarch::Skl);
        for (x, y) in a.iter().zip(&b) {
            assert!(x.tpu > 0.0);
            assert!(x.tpl > 0.0);
            assert_eq!(x.tpu, y.tpu);
            assert_eq!(x.tpl, y.tpl);
        }
    }
}
