//! # facile-bhive
//!
//! A synthetic stand-in for the BHive benchmark suite and its measurement
//! framework. The generator produces deterministic, seeded basic blocks
//! from six application-domain mixes, each in a `BHiveU` (unrolled) and a
//! `BHiveL` (loop) variant; the measurement framework runs the
//! cycle-accurate simulator and rounds to two decimals like the BHive
//! profiler. A curated corpus of stress kernels with known bottlenecks is
//! included for tests and interpretability demos.
//!
//! ```
//! use facile_bhive::{generate_suite, measure_block};
//! use facile_uarch::Uarch;
//!
//! let suite = generate_suite(4, 42);
//! let tpu = measure_block(&suite[0].unrolled, Uarch::Skl, false);
//! assert!(tpu > 0.0);
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod csv;
pub mod gen;
pub mod measure;
pub mod rng;

pub use corpus::{kernel, kernels, Kernel};
pub use csv::{CsvError, CsvRecord};
pub use gen::{
    counter_reg, generate_suite, Bench, BenchStream, BlockStream, Domain, GenBlock, Preset,
};
pub use measure::{measure_block, measure_suite, round2, Measured};
