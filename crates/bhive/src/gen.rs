//! Seeded synthetic basic-block generator.
//!
//! Plays the role of the BHive benchmark suite: blocks are drawn from six
//! application-domain mixes matching BHive's documented composition
//! (numerical kernels, scalar integer code, cryptography, database,
//! compiler output, and SIMD-heavy code), with BHive-like size
//! distributions (most blocks have 2–16 instructions). Every block
//! satisfies the §3.3 modeling assumptions by construction, and each comes
//! in two variants: the plain block (`BHiveU`, measured under unrolling)
//! and a loop variant ending in a conditional branch (`BHiveL`).

use crate::rng::StdRng;
use facile_x86::reg::{names, Width};
use facile_x86::{Block, Cond, Mem, Mnemonic, Operand, Reg};
use std::fmt;

/// Application domain of a generated block (BHive's source categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Dense scalar floating-point numerics.
    Numeric,
    /// Scalar integer code (hashing, parsing, arithmetic).
    ScalarInt,
    /// Cryptography-flavored code (rotates, xors, shifts).
    Crypto,
    /// Database-flavored code (loads, compares, conditional moves).
    Database,
    /// Compiler-generated general-purpose code (address arithmetic, moves).
    Compiler,
    /// SIMD-heavy vector code.
    Simd,
}

impl Domain {
    /// All domains.
    pub const ALL: [Domain; 6] = [
        Domain::Numeric,
        Domain::ScalarInt,
        Domain::Crypto,
        Domain::Database,
        Domain::Compiler,
        Domain::Simd,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Domain::Numeric => "numeric",
            Domain::ScalarInt => "scalar-int",
            Domain::Crypto => "crypto",
            Domain::Database => "database",
            Domain::Compiler => "compiler",
            Domain::Simd => "simd",
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A domain-weighted generation preset: how a [`BenchStream`] picks the
/// application domain of each generated benchmark.
///
/// [`Preset::BALANCED`] cycles through the domains round-robin (consuming
/// no random draws, which keeps it byte-compatible with the historical
/// [`generate_suite`] sequence). The weighted presets draw the domain from
/// the weight table, biasing the adversarial workload toward one kind of
/// code — useful for differential testing, where e.g. a SIMD-heavy stream
/// stresses the port models much harder than a balanced mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preset {
    /// Preset name (stable; addressable from the CLI).
    pub name: &'static str,
    /// Per-domain weights in [`Domain::ALL`] order; all zero means
    /// round-robin.
    pub weights: [u32; 6],
}

impl Preset {
    /// Round-robin over all six domains (the BHive-like default mix).
    pub const BALANCED: Preset = Preset {
        name: "balanced",
        weights: [0; 6],
    };

    /// Every named preset: `balanced`, one single-domain preset per
    /// [`Domain`], and two mixed stress presets.
    pub const ALL: [Preset; 9] = [
        Preset::BALANCED,
        Preset::only(Domain::Numeric, "numeric"),
        Preset::only(Domain::ScalarInt, "scalar-int"),
        Preset::only(Domain::Crypto, "crypto"),
        Preset::only(Domain::Database, "database"),
        Preset::only(Domain::Compiler, "compiler"),
        Preset::only(Domain::Simd, "simd"),
        // Vector-biased: most blocks SIMD/numeric, a trickle of the rest.
        Preset {
            name: "vector-heavy",
            weights: [30, 4, 2, 2, 2, 60],
        },
        // Memory/branch-flavoured scalar code.
        Preset {
            name: "memory-heavy",
            weights: [2, 25, 5, 40, 28, 0],
        },
    ];

    const fn only(domain: Domain, name: &'static str) -> Preset {
        let mut weights = [0u32; 6];
        weights[domain as usize] = 1;
        Preset { name, weights }
    }

    /// Look up a preset by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Preset> {
        Preset::ALL.into_iter().find(|p| p.name == name)
    }

    /// Pick the domain of benchmark `id`. Round-robin presets consume no
    /// randomness; weighted presets consume exactly one draw.
    fn pick_domain(&self, rng: &mut StdRng, id: u32) -> Domain {
        let total: u32 = self.weights.iter().sum();
        if total == 0 {
            return Domain::ALL[id as usize % Domain::ALL.len()];
        }
        let mut roll = rng.gen_range(0..total);
        for (i, &w) in self.weights.iter().enumerate() {
            if roll < w {
                return Domain::ALL[i];
            }
            roll -= w;
        }
        Domain::ALL[0]
    }
}

/// One benchmark: a basic block in both throughput-notion variants.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Sequential identifier within the suite.
    pub id: u32,
    /// Source domain.
    pub domain: Domain,
    /// The BHiveU variant (no trailing branch; measured under unrolling).
    pub unrolled: Block,
    /// The BHiveL variant (same body ending in a conditional branch).
    pub looped: Block,
}

/// General-purpose registers used for data (caller-ish, avoiding rsp).
const DATA_REGS: [u8; 8] = [0, 1, 2, 3, 6, 7, 8, 10];
/// Registers reserved as loop counters / pointers (never clobbered by the
/// generated body so the loop variant stays well-formed).
const PTR_REGS: [u8; 4] = [12, 13, 14, 15];
const COUNTER_REG: u8 = 11; // r11 drives the loop branch

fn data_reg(rng: &mut StdRng, w: Width) -> Reg {
    Reg::Gpr {
        num: DATA_REGS[rng.gen_range(0..DATA_REGS.len())],
        width: w,
    }
}

fn ptr_reg(rng: &mut StdRng) -> Reg {
    Reg::Gpr {
        num: PTR_REGS[rng.gen_range(0..PTR_REGS.len())],
        width: Width::W64,
    }
}

fn xmm(rng: &mut StdRng) -> Reg {
    Reg::Xmm(rng.gen_range(0..8))
}

fn ymm(rng: &mut StdRng) -> Reg {
    Reg::Ymm(rng.gen_range(0..8))
}

fn mem(rng: &mut StdRng, w: Width) -> Mem {
    let base = ptr_reg(rng);
    let disp = *[0, 0, 8, 16, 24, 64, -8]
        .get(rng.gen_range(0..7))
        .expect("in range");
    if rng.gen_bool(0.3) {
        let mut index = data_reg(rng, Width::W64);
        while index.num() == 4 {
            index = data_reg(rng, Width::W64);
        }
        let scale = [1u8, 2, 4, 8][rng.gen_range(0..4)];
        Mem::base_index(base, index, scale, disp, w)
    } else {
        Mem::base_disp(base, disp, w)
    }
}

/// Instruction templates the generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum T {
    AluRR,
    AluRI,
    AluLoad,
    AluStore,
    MovRR,
    MovRI,
    Load,
    Store,
    Lea,
    Shift,
    Rotate,
    Imul,
    Imul3,
    Div,
    Cmov,
    Movzx,
    TestCmp,
    Setcc,
    Popcnt,
    ZeroIdiom,
    Lcp16,
    FpScalar,
    AvxScalar,
    FpPacked,
    FpDiv,
    FpSqrt,
    FpLoad,
    FpStore,
    Cvt,
    VecInt,
    VecLogic,
    Shuffle,
    Avx3,
    Fma,
    VecMul,
    Ucomis,
}

/// Weighted template mix per domain.
fn mix(domain: Domain) -> &'static [(T, u32)] {
    match domain {
        Domain::Numeric => &[
            (T::FpScalar, 10),
            (T::AvxScalar, 22),
            (T::FpPacked, 8),
            (T::FpLoad, 16),
            (T::FpStore, 8),
            (T::Fma, 6),
            (T::FpDiv, 2),
            (T::FpSqrt, 1),
            (T::Cvt, 4),
            (T::Lea, 5),
            (T::AluRR, 6),
            (T::Load, 6),
            (T::Ucomis, 2),
            (T::Shuffle, 6),
        ],
        Domain::ScalarInt => &[
            (T::AluRR, 25),
            (T::AluRI, 15),
            (T::AluLoad, 10),
            (T::MovRR, 8),
            (T::MovRI, 6),
            (T::Load, 8),
            (T::Store, 5),
            (T::Shift, 8),
            (T::Imul, 5),
            (T::Imul3, 2),
            (T::Movzx, 4),
            (T::Popcnt, 2),
            (T::Div, 1),
            (T::Lcp16, 2),
        ],
        Domain::Crypto => &[
            (T::AluRR, 20),
            (T::Rotate, 18),
            (T::Shift, 15),
            (T::AluRI, 10),
            (T::Load, 8),
            (T::Store, 5),
            (T::MovRR, 6),
            (T::VecLogic, 8),
            (T::ZeroIdiom, 3),
            (T::Imul, 3),
        ],
        Domain::Database => &[
            (T::Load, 22),
            (T::TestCmp, 15),
            (T::Cmov, 10),
            (T::Setcc, 6),
            (T::AluRR, 12),
            (T::AluLoad, 8),
            (T::MovRR, 6),
            (T::Movzx, 6),
            (T::Store, 6),
            (T::Lea, 6),
        ],
        Domain::Compiler => &[
            (T::MovRR, 15),
            (T::MovRI, 8),
            (T::Lea, 14),
            (T::AluRR, 12),
            (T::AluRI, 8),
            (T::Load, 10),
            (T::Store, 7),
            (T::AluStore, 4),
            (T::Movzx, 5),
            (T::Shift, 5),
            (T::TestCmp, 5),
            (T::Lcp16, 3),
            (T::ZeroIdiom, 3),
        ],
        Domain::Simd => &[
            (T::VecInt, 16),
            (T::VecLogic, 10),
            (T::Shuffle, 16),
            (T::Avx3, 18),
            (T::Fma, 6),
            (T::VecMul, 8),
            (T::FpPacked, 8),
            (T::FpLoad, 8),
            (T::FpStore, 6),
            (T::MovRR, 3),
        ],
    }
}

fn pick_template(rng: &mut StdRng, domain: Domain) -> T {
    let m = mix(domain);
    let total: u32 = m.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(t, w) in m {
        if roll < w {
            return t;
        }
        roll -= w;
    }
    m[0].0
}

type Asm = (Mnemonic, Vec<Operand>);

/// Destination register chosen from a rotating hint: real-world blocks
/// write to many different registers, giving instruction-level parallelism
/// that a fully random choice would destroy.
fn dest_reg(hint: u8, w: Width) -> Reg {
    Reg::Gpr {
        num: DATA_REGS[usize::from(hint) % DATA_REGS.len()],
        width: w,
    }
}

fn dest_xmm(hint: u8) -> Reg {
    Reg::Xmm(hint % 8)
}

#[allow(clippy::too_many_lines)]
fn instantiate(rng: &mut StdRng, t: T, hint: u8) -> Asm {
    use Mnemonic as M;
    let w = if rng.gen_bool(0.7) {
        Width::W64
    } else {
        Width::W32
    };
    let alu = [M::Add, M::Sub, M::And, M::Or, M::Xor][rng.gen_range(0..5)];
    match t {
        T::AluRR => (alu, vec![dest_reg(hint, w).into(), data_reg(rng, w).into()]),
        T::AluRI => (
            alu,
            vec![
                dest_reg(hint, w).into(),
                Operand::Imm(rng.gen_range(1..1000)),
            ],
        ),
        T::AluLoad => (alu, vec![dest_reg(hint, w).into(), mem(rng, w).into()]),
        T::AluStore => (alu, vec![mem(rng, w).into(), data_reg(rng, w).into()]),
        T::MovRR => (
            M::Mov,
            vec![dest_reg(hint, w).into(), data_reg(rng, w).into()],
        ),
        T::MovRI => (
            M::Mov,
            vec![
                dest_reg(hint, w).into(),
                Operand::Imm(rng.gen_range(0..1 << 30)),
            ],
        ),
        T::Load => (M::Mov, vec![dest_reg(hint, w).into(), mem(rng, w).into()]),
        T::Store => (M::Mov, vec![mem(rng, w).into(), data_reg(rng, w).into()]),
        T::Lea => (
            M::Lea,
            vec![
                dest_reg(hint, Width::W64).into(),
                mem(rng, Width::W64).into(),
            ],
        ),
        T::Shift => (
            [M::Shl, M::Shr, M::Sar][rng.gen_range(0..3)],
            vec![dest_reg(hint, w).into(), Operand::Imm(rng.gen_range(1..31))],
        ),
        T::Rotate => (
            [M::Rol, M::Ror][rng.gen_range(0..2)],
            vec![dest_reg(hint, w).into(), Operand::Imm(rng.gen_range(1..31))],
        ),
        T::Imul => (
            M::Imul,
            vec![dest_reg(hint, w).into(), data_reg(rng, w).into()],
        ),
        T::Imul3 => (
            M::Imul,
            vec![
                data_reg(rng, w).into(),
                data_reg(rng, w).into(),
                Operand::Imm(rng.gen_range(2..100)),
            ],
        ),
        T::Div => (M::Div, vec![Operand::Reg(Reg::Gpr { num: 9, width: w })]),
        T::Cmov => (
            M::Cmovcc([Cond::E, Cond::Ne, Cond::L, Cond::A][rng.gen_range(0..4)]),
            vec![data_reg(rng, w).into(), data_reg(rng, w).into()],
        ),
        T::Movzx => (
            M::Movzx,
            vec![
                dest_reg(hint, Width::W32).into(),
                Operand::Reg(Reg::Gpr {
                    num: DATA_REGS[rng.gen_range(0..DATA_REGS.len())],
                    width: Width::W8,
                }),
            ],
        ),
        T::TestCmp => (
            [M::Test, M::Cmp][rng.gen_range(0..2)],
            vec![data_reg(rng, w).into(), data_reg(rng, w).into()],
        ),
        T::Setcc => (
            M::Setcc([Cond::E, Cond::B, Cond::Ge][rng.gen_range(0..3)]),
            vec![Operand::Reg(Reg::Gpr {
                num: DATA_REGS[rng.gen_range(0..DATA_REGS.len())],
                width: Width::W8,
            })],
        ),
        T::Popcnt => (
            [M::Popcnt, M::Lzcnt, M::Tzcnt][rng.gen_range(0..3)],
            vec![data_reg(rng, w).into(), data_reg(rng, w).into()],
        ),
        T::ZeroIdiom => {
            let r = Reg::Gpr {
                num: dest_reg(hint, Width::W32).num(),
                width: Width::W32,
            };
            (M::Xor, vec![r.into(), r.into()])
        }
        T::Lcp16 => (
            [M::Add, M::Cmp, M::Mov][rng.gen_range(0..3)],
            vec![
                Operand::Reg(Reg::Gpr {
                    num: DATA_REGS[rng.gen_range(0..DATA_REGS.len())],
                    width: Width::W16,
                }),
                Operand::Imm(rng.gen_range(0x100..0x7FFF)),
            ],
        ),
        T::FpScalar => (
            [M::Addsd, M::Subsd, M::Mulsd, M::Addss, M::Mulss][rng.gen_range(0..5)],
            vec![dest_xmm(hint).into(), xmm(rng).into()],
        ),
        T::AvxScalar => (
            [M::Vaddsd, M::Vmulsd, M::Vaddss, M::Vmulss][rng.gen_range(0..4)],
            vec![dest_xmm(hint).into(), xmm(rng).into(), xmm(rng).into()],
        ),
        T::FpPacked => (
            [M::Addps, M::Mulps, M::Addpd, M::Mulpd, M::Minps, M::Maxps][rng.gen_range(0..6)],
            vec![dest_xmm(hint).into(), xmm(rng).into()],
        ),
        T::FpDiv => (
            [M::Divsd, M::Divss, M::Divps][rng.gen_range(0..3)],
            vec![dest_xmm(hint).into(), xmm(rng).into()],
        ),
        T::FpSqrt => (
            [M::Sqrtsd, M::Sqrtps][rng.gen_range(0..2)],
            vec![xmm(rng).into(), xmm(rng).into()],
        ),
        T::FpLoad => {
            let (m, width) = match rng.gen_range(0..3) {
                0 => (M::Movsd, Width::W64),
                1 => (M::Movss, Width::W32),
                _ => (M::Movaps, Width::W128),
            };
            (m, vec![dest_xmm(hint).into(), mem(rng, width).into()])
        }
        T::FpStore => {
            let (m, width) = match rng.gen_range(0..3) {
                0 => (M::Movsd, Width::W64),
                1 => (M::Movss, Width::W32),
                _ => (M::Movups, Width::W128),
            };
            (m, vec![mem(rng, width).into(), xmm(rng).into()])
        }
        T::Cvt => (
            [M::Cvtsi2sd, M::Cvtsi2ss][rng.gen_range(0..2)],
            vec![dest_xmm(hint).into(), data_reg(rng, Width::W64).into()],
        ),
        T::VecInt => (
            [M::Paddd, M::Paddq, M::Psubd, M::Paddb, M::Pcmpeqd][rng.gen_range(0..5)],
            vec![dest_xmm(hint).into(), xmm(rng).into()],
        ),
        T::VecLogic => (
            [M::Pand, M::Por, M::Pxor, M::Xorps, M::Andps][rng.gen_range(0..5)],
            vec![dest_xmm(hint).into(), xmm(rng).into()],
        ),
        T::Shuffle => (
            [M::Pshufd][0],
            vec![
                xmm(rng).into(),
                xmm(rng).into(),
                Operand::Imm(rng.gen_range(0..256)),
            ],
        ),
        T::Avx3 => (
            [M::Vaddps, M::Vmulps, M::Vpaddd, M::Vpand, M::Vxorps][rng.gen_range(0..5)],
            vec![ymm(rng).into(), ymm(rng).into(), ymm(rng).into()],
        ),
        T::Fma => (
            M::Vfmadd231ps,
            vec![
                Operand::Reg(Reg::Ymm(hint % 8)),
                ymm(rng).into(),
                ymm(rng).into(),
            ],
        ),
        T::VecMul => (
            [M::Pmulld, M::Pmullw, M::Pmuludq][rng.gen_range(0..3)],
            vec![dest_xmm(hint).into(), xmm(rng).into()],
        ),
        T::Ucomis => (
            [M::Ucomiss, M::Ucomisd][rng.gen_range(0..2)],
            vec![xmm(rng).into(), xmm(rng).into()],
        ),
    }
}

/// BHive-like size distribution: mostly small blocks, occasionally larger.
fn block_size(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..10) {
        0..=2 => rng.gen_range(2..5),
        3..=6 => rng.gen_range(5..11),
        7..=8 => rng.gen_range(11..18),
        _ => rng.gen_range(18..26),
    }
}

/// Generate the body of one block.
fn gen_body(rng: &mut StdRng, domain: Domain) -> Vec<Asm> {
    let n = block_size(rng);
    let mut body = Vec::with_capacity(n);
    let hint0: u8 = rng.gen_range(0..8);
    while body.len() < n {
        let t = pick_template(rng, domain);
        let hint = hint0.wrapping_add(body.len() as u8);
        body.push(instantiate(rng, t, hint));
    }
    body
}

/// The loop tail appended to form the BHiveL variant.
fn loop_tail(rng: &mut StdRng, body_bytes: i32) -> Vec<Asm> {
    let back = -(body_bytes + 5); // dec (3 bytes) + jcc rel8 (2 bytes)
    if rng.gen_bool(0.7) {
        vec![
            (Mnemonic::Dec, vec![Operand::Reg(names::R11)]),
            (Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(back)]),
        ]
    } else {
        let back = -(body_bytes + 4 + 2); // cmp r11, imm8 (4) + jcc rel8 (2)
        vec![
            (
                Mnemonic::Cmp,
                vec![Operand::Reg(names::R11), Operand::Imm(0)],
            ),
            (Mnemonic::Jcc(Cond::A), vec![Operand::Rel(back)]),
        ]
    }
}

/// A seedable, infinite, lazily-evaluated stream of generated benchmarks.
///
/// The streaming form of [`generate_suite`]: it produces the same
/// deterministic sequence for the same `(seed, preset)` without
/// materializing a whole suite up front, which is what the differential
/// harness needs to hunt over arbitrarily many blocks in bounded memory.
///
/// With [`Preset::BALANCED`], `BenchStream::new(seed)` reproduces the
/// historical [`generate_suite`] sequence exactly.
#[derive(Debug, Clone)]
pub struct BenchStream {
    rng: StdRng,
    next_id: u32,
    preset: Preset,
}

impl BenchStream {
    /// A balanced stream (identical to the [`generate_suite`] sequence).
    #[must_use]
    pub fn new(seed: u64) -> BenchStream {
        BenchStream::with_preset(seed, Preset::BALANCED)
    }

    /// A stream drawing domains from `preset`.
    #[must_use]
    pub fn with_preset(seed: u64, preset: Preset) -> BenchStream {
        BenchStream {
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
            preset,
        }
    }
}

impl Iterator for BenchStream {
    type Item = Bench;

    fn next(&mut self) -> Option<Bench> {
        let id = self.next_id;
        self.next_id += 1;
        let domain = self.preset.pick_domain(&mut self.rng, id);
        let body = gen_body(&mut self.rng, domain);
        let unrolled = Block::assemble(&body).expect("generated body must assemble");
        let mut looped_src = body.clone();
        looped_src.extend(loop_tail(&mut self.rng, unrolled.byte_len() as i32));
        let looped = Block::assemble(&looped_src).expect("loop variant must assemble");
        Some(Bench {
            id,
            domain,
            unrolled,
            looped,
        })
    }
}

/// One block drawn from a [`BlockStream`]: a benchmark variant plus its
/// provenance.
#[derive(Debug, Clone)]
pub struct GenBlock {
    /// The originating benchmark id.
    pub bench_id: u32,
    /// The originating domain.
    pub domain: Domain,
    /// Whether this is the loop variant (`BHiveL`; ends in a branch) or
    /// the unrolled variant (`BHiveU`).
    pub looped: bool,
    /// The block.
    pub block: Block,
}

impl GenBlock {
    /// A short stable identifier, e.g. `"gen-17u"` / `"gen-17l"`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "gen-{}{}",
            self.bench_id,
            if self.looped { 'l' } else { 'u' }
        )
    }
}

/// A seedable stream of individual blocks: each generated benchmark
/// contributes its unrolled variant, then its loop variant.
#[derive(Debug, Clone)]
pub struct BlockStream {
    benches: BenchStream,
    pending: Option<GenBlock>,
}

impl BlockStream {
    /// A balanced block stream.
    #[must_use]
    pub fn new(seed: u64) -> BlockStream {
        BlockStream::with_preset(seed, Preset::BALANCED)
    }

    /// A block stream drawing domains from `preset`.
    #[must_use]
    pub fn with_preset(seed: u64, preset: Preset) -> BlockStream {
        BlockStream {
            benches: BenchStream::with_preset(seed, preset),
            pending: None,
        }
    }
}

impl Iterator for BlockStream {
    type Item = GenBlock;

    fn next(&mut self) -> Option<GenBlock> {
        if let Some(looped) = self.pending.take() {
            return Some(looped);
        }
        let b = self.benches.next()?;
        self.pending = Some(GenBlock {
            bench_id: b.id,
            domain: b.domain,
            looped: true,
            block: b.looped,
        });
        Some(GenBlock {
            bench_id: b.id,
            domain: b.domain,
            looped: false,
            block: b.unrolled,
        })
    }
}

/// Generate a deterministic benchmark suite of `n` blocks.
///
/// Equivalent to `BenchStream::new(seed).take(n)` (the streaming form);
/// the sequence is stable across releases.
///
/// # Panics
/// Panics if a generated block fails to assemble (a generator bug caught
/// by the property tests).
#[must_use]
pub fn generate_suite(n: usize, seed: u64) -> Vec<Bench> {
    BenchStream::new(seed).take(n).collect()
}

/// The loop-counter register (`r11`), reserved by the generator: the body
/// never writes it, so the loop variant's trip count is well-defined.
#[must_use]
pub fn counter_reg() -> Reg {
    Reg::Gpr {
        num: COUNTER_REG,
        width: Width::W64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic() {
        let a = generate_suite(20, 42);
        let b = generate_suite(20, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.unrolled, y.unrolled);
            assert_eq!(x.looped, y.looped);
        }
        let c = generate_suite(20, 43);
        assert!(a.iter().zip(&c).any(|(x, y)| x.unrolled != y.unrolled));
    }

    #[test]
    fn loop_variants_end_in_branch() {
        for b in generate_suite(60, 7) {
            assert!(!b.unrolled.ends_in_branch());
            assert!(b.looped.ends_in_branch());
            assert!(b.unrolled.num_insts() >= 2);
        }
    }

    #[test]
    fn bodies_do_not_clobber_the_counter() {
        for b in generate_suite(120, 11) {
            for inst in b.unrolled.insts() {
                let e = inst.effects();
                assert!(
                    !e.reg_writes.iter().any(|r| r.num() == COUNTER_REG),
                    "{inst} writes the loop counter"
                );
            }
        }
    }

    #[test]
    fn all_domains_appear() {
        let suite = generate_suite(12, 3);
        for d in Domain::ALL {
            assert!(suite.iter().any(|b| b.domain == d));
        }
    }

    #[test]
    fn stream_matches_generate_suite() {
        // The streaming generator is the same sequence as the batch form:
        // callers can switch between them without changing any goldens.
        let suite = generate_suite(30, 2023);
        let streamed: Vec<Bench> = BenchStream::new(2023).take(30).collect();
        for (a, b) in suite.iter().zip(&streamed) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.unrolled, b.unrolled);
            assert_eq!(a.looped, b.looped);
        }
    }

    #[test]
    fn block_stream_yields_both_variants_in_order() {
        let blocks: Vec<GenBlock> = BlockStream::new(5).take(10).collect();
        let suite = generate_suite(5, 5);
        for (i, gb) in blocks.iter().enumerate() {
            let bench = &suite[i / 2];
            assert_eq!(gb.bench_id, bench.id);
            assert_eq!(gb.domain, bench.domain);
            if i % 2 == 0 {
                assert!(!gb.looped);
                assert_eq!(gb.block, bench.unrolled);
                assert_eq!(gb.label(), format!("gen-{}u", bench.id));
            } else {
                assert!(gb.looped);
                assert_eq!(gb.block, bench.looped);
                assert_eq!(gb.label(), format!("gen-{}l", bench.id));
            }
        }
    }

    #[test]
    fn presets_are_deterministic_and_biased() {
        let a: Vec<Bench> = BenchStream::with_preset(9, Preset::by_name("simd").unwrap())
            .take(20)
            .collect();
        let b: Vec<Bench> = BenchStream::with_preset(9, Preset::by_name("simd").unwrap())
            .take(20)
            .collect();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.unrolled, y.unrolled);
        }
        assert!(a.iter().all(|x| x.domain == Domain::Simd));
        let heavy: Vec<Bench> =
            BenchStream::with_preset(9, Preset::by_name("vector-heavy").unwrap())
                .take(60)
                .collect();
        let simd = heavy
            .iter()
            .filter(|x| matches!(x.domain, Domain::Simd | Domain::Numeric))
            .count();
        assert!(simd > 30, "vector-heavy should be mostly vector domains");
        assert!(Preset::by_name("nonexistent").is_none());
        // Every named preset generates assemblable blocks.
        for p in Preset::ALL {
            let n = BenchStream::with_preset(3, p).take(4).count();
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn blocks_reassemble_from_bytes() {
        for b in generate_suite(60, 5) {
            let re = Block::decode(b.unrolled.bytes()).unwrap();
            assert_eq!(re, b.unrolled);
            let re = Block::decode(b.looped.bytes()).unwrap();
            assert_eq!(re, b.looped);
        }
    }
}
