//! Quick demonstration hunt: facile vs the cycle-accurate simulator on
//! Skylake, printing the matrix and the first shrunken counterexamples.

use facile_diff::{run, DiffConfig};
use facile_engine::Engine;

fn main() {
    let engine = Engine::with_builtins();
    let mut cfg = DiffConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag value");
        match flag.as_str() {
            "--count" => cfg.count = val().parse().unwrap(),
            "--seed" => cfg.seed = val().parse().unwrap(),
            "--threshold" => cfg.threshold = val().parse().unwrap(),
            "--predictors" => cfg.selector = val(),
            other => panic!("unknown flag {other}"),
        }
    }
    let t0 = std::time::Instant::now();
    let report = run(&engine, &cfg).expect("hunt runs");
    eprintln!("elapsed: {:?}", t0.elapsed());
    for cell in &report.matrix {
        println!(
            "{} {}|{}: {}/{} flagged (rate {:.3}, max {:.2})",
            cell.uarch,
            cell.a,
            cell.b,
            cell.flagged,
            cell.compared,
            cell.rate(),
            cell.max_delta
        );
    }
    println!("{}", report.summary_json());
    for f in report.findings.iter().take(5) {
        print!("{}", f.to_text());
    }
}
