//! The streaming differential harness: scan, flag, shrink, classify,
//! report.

use crate::classify::{classify, DiffClass};
use crate::generalize::{generalize_findings, GenConfig, InconsistencySummary};
use crate::rel_delta;
use crate::shrink::{DiffPair, ShrinkResult};
use facile_bhive::{kernels, BlockStream, Preset};
use facile_engine::{BatchItem, Engine, PredictError};
use facile_explain::{json_escape, Explanation, Mode};
use facile_uarch::Uarch;
use facile_x86::Block;
use std::fmt;
use std::sync::Arc;

/// Scan chunk size: blocks annotated/predicted per engine batch. Bounds
/// memory on long hunts while still fanning each chunk across the pool.
const SCAN_CHUNK: usize = 512;

/// Configuration of one differential hunt.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Predictor selector (comma-separated registry keys / globs); must
    /// resolve to at least two predictors.
    pub selector: String,
    /// Microarchitectures to hunt on.
    pub uarchs: Vec<Uarch>,
    /// Relative-disagreement threshold (see [`rel_delta`]).
    pub threshold: f64,
    /// Generator seed.
    pub seed: u64,
    /// Number of generated blocks to scan.
    pub count: usize,
    /// Domain-weighted generation preset.
    pub preset: Preset,
    /// Also scan the curated stress-kernel corpus.
    pub include_corpus: bool,
    /// When set, only compare pairs that include this predictor key
    /// (e.g. pivot on `facile` to hunt every baseline against the
    /// interpretable reference — every finding is then classifiable).
    /// `None` compares all pairs.
    pub pivot: Option<String>,
    /// Extra caller-supplied blocks (label, block), e.g. from a BHive CSV
    /// file.
    pub extra_blocks: Vec<(String, Block)>,
    /// Cap on the number of flagged disagreements that are shrunk and
    /// reported (the scan itself, and the disagreement matrix, always
    /// cover everything). The cap keeps hunt time bounded; `truncated`
    /// in the report says how many flags were left unshrunk.
    pub max_counterexamples: usize,
    /// Delta-debug each finding to a 1-minimal block (disable for
    /// scan-only sweeps).
    pub shrink: bool,
    /// Lift findings into abstract patterns and cluster them (see
    /// [`crate::generalize`]).
    pub generalize: bool,
    /// Instantiations sampled per proposed pattern widening.
    pub gen_samples: usize,
    /// Samples that must preserve the disagreement for a widening to be
    /// accepted (≤ `gen_samples`).
    pub gen_min_preserved: usize,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            selector: "facile,sim".to_string(),
            uarchs: vec![Uarch::Skl],
            threshold: 0.5,
            seed: 0,
            count: 200,
            preset: Preset::BALANCED,
            include_corpus: false,
            pivot: None,
            extra_blocks: Vec::new(),
            max_counterexamples: 25,
            shrink: true,
            generalize: false,
            gen_samples: 4,
            gen_min_preserved: 3,
        }
    }
}

/// Why a hunt could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffError {
    /// The selector failed to resolve (unknown key) — carried verbatim.
    Predict(PredictError),
    /// The selector resolved to fewer than two predictors: nothing to
    /// disagree.
    NeedTwoPredictors {
        /// The keys that did resolve.
        resolved: Vec<String>,
    },
    /// The threshold is not a positive finite number.
    BadThreshold(f64),
    /// The pivot key is not among the resolved predictors.
    PivotNotSelected {
        /// The pivot key.
        pivot: String,
        /// The keys that did resolve.
        resolved: Vec<String>,
    },
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Predict(e) => e.fmt(f),
            DiffError::NeedTwoPredictors { resolved } => write!(
                f,
                "differential testing needs at least two predictors (selector resolved to: {})",
                resolved.join(", ")
            ),
            DiffError::BadThreshold(t) => {
                write!(f, "threshold must be a positive finite number, got {t}")
            }
            DiffError::PivotNotSelected { pivot, resolved } => write!(
                f,
                "pivot predictor {pivot:?} is not in the selection ({})",
                resolved.join(", ")
            ),
        }
    }
}

impl std::error::Error for DiffError {}

impl From<PredictError> for DiffError {
    fn from(e: PredictError) -> DiffError {
        DiffError::Predict(e)
    }
}

/// One predictor's side of a finding.
#[derive(Debug, Clone)]
pub struct PredictorSide {
    /// Registry key.
    pub key: String,
    /// Prediction on the original flagged block.
    pub original: f64,
    /// Prediction on the shrunk block.
    pub shrunk: f64,
    /// Full-detail explanation of the shrunk block, if this predictor is
    /// interpretable.
    pub explanation: Option<Box<Explanation>>,
}

/// One shrunken counterexample: a minimal block on which two predictors
/// disagree past the threshold, with both sides' numbers (and, where
/// available, typed explanations) side by side.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Provenance label of the originating block (`gen-17u`,
    /// `corpus:imul-chain`, an input label, ...).
    pub source: String,
    /// Microarchitecture of the disagreement.
    pub uarch: Uarch,
    /// Throughput notion (pinned through shrinking).
    pub mode: Mode,
    /// First predictor's side.
    pub a: PredictorSide,
    /// Second predictor's side.
    pub b: PredictorSide,
    /// The original flagged block (hex).
    pub original_hex: String,
    /// Instructions in the original block.
    pub original_insts: usize,
    /// Relative disagreement on the original block.
    pub original_delta: f64,
    /// The 1-minimal shrunk block (hex).
    pub shrunk_hex: String,
    /// Instructions in the shrunk block.
    pub shrunk_insts: usize,
    /// Relative disagreement on the shrunk block.
    pub delta: f64,
    /// Divergence classification from the typed explanations.
    pub class: DiffClass,
}

impl Finding {
    /// Render as a single JSON object (one line, stable field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let side = |s: &PredictorSide| {
            let expl = s
                .explanation
                .as_ref()
                .map_or_else(|| "null".to_string(), |e| e.to_json());
            format!(
                "{{\"predictor\":\"{}\",\"original\":{:.4},\"shrunk\":{:.4},\"explanation\":{expl}}}",
                json_escape(&s.key),
                s.original,
                s.shrunk,
            )
        };
        format!(
            "{{\"source\":\"{}\",\"uarch\":\"{}\",\"mode\":\"{}\",\"class\":\"{}\",\"class_label\":\"{}\",\
             \"original\":{{\"block\":\"{}\",\"insts\":{},\"delta\":{:.4}}},\
             \"shrunk\":{{\"block\":\"{}\",\"insts\":{},\"delta\":{:.4}}},\
             \"a\":{},\"b\":{}}}",
            json_escape(&self.source),
            self.uarch,
            match self.mode {
                Mode::Unrolled => "tpu",
                Mode::Loop => "tpl",
            },
            self.class.code(),
            self.class.label(),
            self.original_hex,
            self.original_insts,
            self.original_delta,
            self.shrunk_hex,
            self.shrunk_insts,
            self.delta,
            side(&self.a),
            side(&self.b),
        )
    }

    /// Render as an indented human-readable summary.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "{} on {} ({}): {} — {:.2} vs {:.2} (delta {:.2})\n",
            self.source,
            self.uarch,
            match self.mode {
                Mode::Unrolled => "TPU",
                Mode::Loop => "TPL",
            },
            self.class.label(),
            self.a.shrunk,
            self.b.shrunk,
            self.delta,
        );
        s.push_str(&format!(
            "  original: {} ({} insts, delta {:.2})\n  shrunk:   {} ({} insts)\n",
            self.original_hex,
            self.original_insts,
            self.original_delta,
            self.shrunk_hex,
            self.shrunk_insts,
        ));
        for (label, side) in [("a", &self.a), ("b", &self.b)] {
            s.push_str(&format!("  {label}={}: {:.4}", side.key, side.shrunk));
            if let Some(e) = &side.explanation {
                s.push_str(&format!(
                    " (bottleneck {})",
                    e.primary_bottleneck().map_or("none", |c| c.name())
                ));
            }
            s.push('\n');
        }
        s
    }
}

/// One cell of the disagreement-rate matrix: a predictor pair on one
/// microarchitecture.
#[derive(Debug, Clone)]
pub struct PairCell {
    /// Microarchitecture.
    pub uarch: Uarch,
    /// First predictor key (registration order).
    pub a: String,
    /// Second predictor key.
    pub b: String,
    /// Blocks where both sides produced a prediction.
    pub compared: u32,
    /// Blocks whose relative disagreement reached the threshold.
    pub flagged: u32,
    /// Largest relative disagreement observed.
    pub max_delta: f64,
}

impl PairCell {
    /// Disagreement rate (`flagged / compared`; 0 when nothing compared).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.compared == 0 {
            0.0
        } else {
            f64::from(self.flagged) / f64::from(self.compared)
        }
    }

    /// Render as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"uarch\":\"{}\",\"a\":\"{}\",\"b\":\"{}\",\"compared\":{},\"flagged\":{},\"rate\":{:.4},\"max_delta\":{:.4}}}",
            self.uarch,
            json_escape(&self.a),
            json_escape(&self.b),
            self.compared,
            self.flagged,
            self.rate(),
            self.max_delta,
        )
    }
}

/// The result of one differential hunt.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Generator seed the hunt ran with.
    pub seed: u64,
    /// Relative-disagreement threshold.
    pub threshold: f64,
    /// Blocks scanned (generated + corpus + extra).
    pub scanned_blocks: usize,
    /// `(block, uarch, pair)` comparisons where both sides predicted.
    pub rows_compared: usize,
    /// Comparisons that reached the threshold.
    pub flagged: usize,
    /// Flagged disagreements beyond [`DiffConfig::max_counterexamples`]
    /// that were not shrunk/reported.
    pub truncated: usize,
    /// The full disagreement matrix (every pair × uarch, in registration
    /// and [`Uarch::ALL`] order).
    pub matrix: Vec<PairCell>,
    /// Shrunken, classified counterexamples (deduplicated by shrunk
    /// block, pair, uarch, and notion).
    pub findings: Vec<Finding>,
    /// Ranked inconsistency-pattern clusters (empty unless
    /// [`DiffConfig::generalize`] is set).
    pub patterns: Vec<InconsistencySummary>,
}

impl DiffReport {
    /// Whether any reported finding could not be classified.
    #[must_use]
    pub fn has_unclassified(&self) -> bool {
        self.findings.iter().any(|f| !f.class.is_classified())
    }

    /// The trailing summary JSON object (stable field order).
    #[must_use]
    pub fn summary_json(&self) -> String {
        let unclassified = self
            .findings
            .iter()
            .filter(|f| !f.class.is_classified())
            .count();
        format!(
            "{{\"summary\":{{\"seed\":{},\"threshold\":{:.4},\"scanned_blocks\":{},\"rows_compared\":{},\
             \"flagged\":{},\"findings\":{},\"unclassified\":{},\"truncated\":{}}}}}",
            self.seed,
            self.threshold,
            self.scanned_blocks,
            self.rows_compared,
            self.flagged,
            self.findings.len(),
            unclassified,
            self.truncated,
        )
    }
}

/// A flagged comparison awaiting shrinking. Owns its block and label so
/// the scan can stream sources without retaining unflagged blocks.
struct Candidate {
    label: String,
    block: Block,
    uarch: Uarch,
    mode: Mode,
    pair: (usize, usize),
    predictions: (f64, f64),
    delta: f64,
}

/// Run a differential hunt.
///
/// Deterministic: for a fixed `(engine registry, config)` the report —
/// rows, matrix, findings, shrunken blocks, classifications — is
/// bit-identical across runs and worker-thread counts.
///
/// # Errors
/// [`DiffError`] when the selector does not resolve to two or more
/// predictors or the threshold is invalid.
///
/// # Panics
/// Panics only on engine-level invariant violations (a batch returning
/// the wrong number of rows).
pub fn run(engine: &Engine, cfg: &DiffConfig) -> Result<DiffReport, DiffError> {
    if !cfg.threshold.is_finite() || cfg.threshold <= 0.0 {
        return Err(DiffError::BadThreshold(cfg.threshold));
    }
    let predictors = engine.registry().resolve(&cfg.selector)?;
    if predictors.len() < 2 {
        return Err(DiffError::NeedTwoPredictors {
            resolved: predictors.iter().map(|p| p.key().to_string()).collect(),
        });
    }

    // The block sources, as a lazy stream: generated blocks, then the
    // corpus, then caller-supplied blocks. Labels are stable identifiers.
    // Only flagged blocks are retained past their scan chunk, so a hunt
    // over arbitrarily many generated blocks runs in bounded memory.
    let corpus: Vec<(String, Block)> = if cfg.include_corpus {
        kernels()
            .into_iter()
            .map(|k| (format!("corpus:{}", k.name), k.block))
            .collect()
    } else {
        Vec::new()
    };
    let mut source_stream = BlockStream::with_preset(cfg.seed, cfg.preset)
        .take(cfg.count)
        .map(|gb| (gb.label(), gb.block))
        .chain(corpus)
        .chain(cfg.extra_blocks.iter().cloned());

    // The compared pairs: all (i, j) with i < j in registration order, or
    // only pairs through the pivot when one is set.
    let pairs: Vec<(usize, usize)> = {
        let pivot_idx = match &cfg.pivot {
            None => None,
            Some(key) => Some(
                predictors
                    .iter()
                    .position(|p| p.key() == key.as_str())
                    .ok_or_else(|| DiffError::PivotNotSelected {
                        pivot: key.clone(),
                        resolved: predictors.iter().map(|p| p.key().to_string()).collect(),
                    })?,
            ),
        };
        (0..predictors.len())
            .flat_map(|i| (i + 1..predictors.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| pivot_idx.is_none_or(|p| i == p || j == p))
            .collect()
    };

    // Scan: predict every (block, uarch) with every predictor, in
    // chunks, tallying the matrix and collecting flag candidates.
    let mut matrix: Vec<PairCell> = cfg
        .uarchs
        .iter()
        .flat_map(|&u| pairs.iter().map(move |&(i, j)| (u, i, j)))
        .map(|(u, i, j)| PairCell {
            uarch: u,
            a: predictors[i].key().to_string(),
            b: predictors[j].key().to_string(),
            compared: 0,
            flagged: 0,
            max_delta: 0.0,
        })
        .collect();

    let mut candidates: Vec<Candidate> = Vec::new();
    let mut rows_compared = 0usize;
    let mut scanned_blocks = 0usize;
    loop {
        let chunk: Vec<(String, Block)> = source_stream.by_ref().take(SCAN_CHUNK).collect();
        if chunk.is_empty() {
            break;
        }
        scanned_blocks += chunk.len();
        let items: Vec<BatchItem> = chunk
            .iter()
            .flat_map(|(_, b)| cfg.uarchs.iter().map(|&u| BatchItem::block(b.clone(), u)))
            .collect();
        let rows = engine.run_batch(&items, &predictors);
        for (item_idx, item_rows) in rows.chunks(predictors.len()).enumerate() {
            let (label, block) = &chunk[item_idx / cfg.uarchs.len()];
            let u_idx = item_idx % cfg.uarchs.len();
            for (pair_idx, &(i, j)) in pairs.iter().enumerate() {
                let (Ok(pa), Ok(pb)) = (&item_rows[i].prediction, &item_rows[j].prediction) else {
                    continue;
                };
                rows_compared += 1;
                let delta = rel_delta(pa.throughput, pb.throughput);
                let cell = &mut matrix[u_idx * pairs.len() + pair_idx];
                cell.compared += 1;
                if delta > cell.max_delta {
                    cell.max_delta = delta;
                }
                if delta >= cfg.threshold {
                    cell.flagged += 1;
                    // Blocks beyond the counterexample cap are never
                    // shrunk; keeping only the tallies bounds memory.
                    if candidates.len() < cfg.max_counterexamples {
                        candidates.push(Candidate {
                            label: label.clone(),
                            block: block.clone(),
                            uarch: cfg.uarchs[u_idx],
                            mode: item_rows[i].mode.expect("predicted rows have a mode"),
                            pair: (i, j),
                            predictions: (pa.throughput, pb.throughput),
                            delta,
                        });
                    }
                }
            }
        }
        // Annotations are only shared within a chunk; dropping them keeps
        // memory bounded on long hunts.
        engine.clear_cache();
    }

    let flagged: usize = matrix.iter().map(|c| c.flagged as usize).sum();
    let truncated = flagged - candidates.len();

    // Shrink + classify each candidate. Order-preserving parallel map:
    // each shrink is an independent pure function of its block, so the
    // thread count cannot change any result.
    let findings_raw: Vec<Option<Finding>> =
        facile_engine::parallel_map_indexed(candidates.len(), engine.threads(), |k| {
            let c = &candidates[k];
            let (label, block) = (&c.label, &c.block);
            let pair = DiffPair::from_predictors(
                engine,
                Arc::clone(&predictors[c.pair.0]),
                Arc::clone(&predictors[c.pair.1]),
                c.uarch,
                c.mode,
            );
            let shrunk = if cfg.shrink {
                pair.shrink(block, cfg.threshold)?
            } else {
                ShrinkResult {
                    block: block.clone(),
                    predictions: c.predictions,
                    delta: c.delta,
                    removals: 0,
                    simplifications: 0,
                }
            };
            let (ea, eb) = pair.explain(&shrunk.block);
            let class = classify(ea.as_deref(), eb.as_deref());
            Some(Finding {
                source: label.clone(),
                uarch: c.uarch,
                mode: c.mode,
                a: PredictorSide {
                    key: predictors[c.pair.0].key().to_string(),
                    original: c.predictions.0,
                    shrunk: shrunk.predictions.0,
                    explanation: ea,
                },
                b: PredictorSide {
                    key: predictors[c.pair.1].key().to_string(),
                    original: c.predictions.1,
                    shrunk: shrunk.predictions.1,
                    explanation: eb,
                },
                original_hex: block.to_hex(),
                original_insts: block.num_insts(),
                original_delta: c.delta,
                shrunk_hex: shrunk.block.to_hex(),
                shrunk_insts: shrunk.block.num_insts(),
                delta: shrunk.delta,
                class,
            })
        });
    engine.clear_cache();

    // Deduplicate: distinct flagged originals often shrink to the same
    // minimal block. Keep the first occurrence (deterministic order).
    let mut findings: Vec<Finding> = Vec::new();
    for f in findings_raw.into_iter().flatten() {
        let dup = findings.iter().any(|g| {
            g.shrunk_hex == f.shrunk_hex
                && g.uarch == f.uarch
                && g.mode == f.mode
                && g.a.key == f.a.key
                && g.b.key == f.b.key
        });
        if !dup {
            findings.push(f);
        }
    }

    // Pattern generalization: lift each finding into an abstract,
    // engine-validated pattern and cluster. Runs after dedup so every
    // cluster member is a distinct minimal block.
    let patterns = if cfg.generalize {
        let gen_cfg = GenConfig {
            samples: cfg.gen_samples,
            min_preserved: cfg.gen_min_preserved,
            seed: cfg.seed,
        };
        let patterns = generalize_findings(engine, &findings, cfg.threshold, &gen_cfg);
        engine.clear_cache();
        patterns
    } else {
        Vec::new()
    };

    Ok(DiffReport {
        seed: cfg.seed,
        threshold: cfg.threshold,
        scanned_blocks,
        rows_compared,
        flagged,
        truncated,
        matrix,
        findings,
        patterns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_configs_are_rejected() {
        let engine = Engine::with_builtins();
        let cfg = DiffConfig {
            threshold: 0.0,
            ..DiffConfig::default()
        };
        assert!(matches!(
            run(&engine, &cfg),
            Err(DiffError::BadThreshold(_))
        ));
        let cfg = DiffConfig {
            selector: "facile".to_string(),
            ..DiffConfig::default()
        };
        assert!(matches!(
            run(&engine, &cfg),
            Err(DiffError::NeedTwoPredictors { .. })
        ));
        let cfg = DiffConfig {
            selector: "uica".to_string(),
            ..DiffConfig::default()
        };
        assert!(matches!(run(&engine, &cfg), Err(DiffError::Predict(_))));
    }

    #[test]
    fn pivot_restricts_pairs() {
        let engine = Engine::with_builtins();
        let cfg = DiffConfig {
            selector: "facile,iaca,osaca,cqa".to_string(),
            count: 8,
            pivot: Some("facile".to_string()),
            ..DiffConfig::default()
        };
        let report = run(&engine, &cfg).unwrap();
        assert_eq!(report.matrix.len(), 3); // facile × {iaca, osaca, cqa}
        assert!(report
            .matrix
            .iter()
            .all(|c| c.a == "facile" || c.b == "facile"));
        // A pivot outside the selection is rejected.
        let cfg = DiffConfig {
            selector: "iaca,osaca".to_string(),
            pivot: Some("facile".to_string()),
            ..DiffConfig::default()
        };
        assert!(matches!(
            run(&engine, &cfg),
            Err(DiffError::PivotNotSelected { .. })
        ));
    }

    #[test]
    fn scan_covers_matrix_and_counts() {
        let engine = Engine::with_builtins();
        let cfg = DiffConfig {
            selector: "facile,iaca,osaca".to_string(),
            count: 12,
            threshold: 0.4,
            max_counterexamples: 4,
            ..DiffConfig::default()
        };
        let report = run(&engine, &cfg).unwrap();
        assert_eq!(report.scanned_blocks, 12);
        assert_eq!(report.matrix.len(), 3); // 3 pairs × 1 uarch
        assert_eq!(report.rows_compared, 36);
        let total_flagged: u32 = report.matrix.iter().map(|c| c.flagged).sum();
        assert_eq!(total_flagged as usize, report.flagged);
        assert!(report.findings.len() <= 4);
        for f in &report.findings {
            assert!(f.delta >= cfg.threshold);
            assert!(f.shrunk_insts <= f.original_insts);
        }
    }
}
