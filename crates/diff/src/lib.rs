//! # facile-diff
//!
//! Differential testing for throughput predictors: hunt for blocks where
//! two registry predictors disagree, then shrink each disagreement to a
//! minimal reproducing block.
//!
//! Aggregate error metrics (MAPE, Kendall's τ) hide model bugs: a
//! predictor can be 10% off on average while being 5× off on one family
//! of blocks. Following AnICA's insight that *disagreements between
//! predictors* are where model bugs live, this crate streams
//! generator-produced (and corpus / user-supplied) blocks through any set
//! of registry predictors via the batch engine, flags every pair whose
//! relative disagreement exceeds a threshold, classifies the divergence
//! using the typed explanation layer (port-map vs chain-latency vs
//! front-end divergence), and delta-debugs each flagged block down to a
//! **1-minimal counterexample**: removing any single instruction from the
//! shrunken block drops the disagreement below the threshold.
//!
//! Everything is deterministic — seeded generation, no wall clock, no
//! randomness in the shrinker — so a reported counterexample replays
//! bit-identically from `(seed, config)`, regardless of worker-thread
//! count.
//!
//! ```
//! use facile_diff::{DiffConfig, run};
//! use facile_engine::Engine;
//!
//! let engine = Engine::with_builtins();
//! let cfg = DiffConfig {
//!     count: 20,
//!     threshold: 0.5,
//!     ..DiffConfig::default()
//! };
//! let report = run(&engine, &cfg).unwrap();
//! assert_eq!(report.scanned_blocks, 20);
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod generalize;
pub mod harness;
pub mod shrink;

pub use classify::{classify, DiffClass};
pub use generalize::{
    generalize_block, generalize_findings, BlockPattern, Facet, GenConfig, InconsistencySummary,
    PatternResult, SlotPattern,
};
pub use harness::{run, DiffConfig, DiffError, DiffReport, Finding, PairCell, PredictorSide};
pub use shrink::{remove_inst, DiffPair, ShrinkResult};

/// Floor for the relative-disagreement denominator, in cycles: two
/// predictions a quarter cycle apart on a sub-quarter-cycle block are
/// measurement noise, not a model bug.
pub const MIN_DENOM: f64 = 0.25;

/// Relative disagreement between two throughput predictions:
/// `|a − b| / max(min(a, b), MIN_DENOM)`.
///
/// Symmetric, zero iff equal, and scaled by the smaller prediction so a
/// 2-vs-4-cycle disagreement (1.0) counts as hard as 20-vs-40.
#[must_use]
pub fn rel_delta(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.min(b).max(MIN_DENOM)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_delta_basics() {
        assert_eq!(rel_delta(2.0, 2.0), 0.0);
        assert_eq!(rel_delta(2.0, 4.0), 1.0);
        assert_eq!(rel_delta(4.0, 2.0), 1.0);
        // Sub-quarter-cycle denominators are clamped.
        assert_eq!(rel_delta(0.0, 0.25), 1.0);
        assert!(rel_delta(0.01, 0.02).abs() < 0.05);
    }
}
