//! AnICA-style generalization: lift shrunk counterexamples into
//! abstract block patterns and cluster findings by pattern.
//!
//! A 1-minimal counterexample answers "does this exact block disagree?";
//! an *inconsistency pattern* answers "what family of blocks does?". In
//! the spirit of AnICA (Ritter & Hack, 2022), each finding's shrunk
//! block is abstracted one facet at a time — the condition code, the
//! concrete register choice, the immediate value, the displacement, the
//! index scale — and every proposed widening is **validated through the
//! engine**: concrete instantiations of the widened pattern are sampled
//! and the widening is kept only if enough of them preserve the
//! disagreement. The accepted pattern therefore never over-claims: it
//! subsumes its counterexample by construction, and every abstraction
//! step is backed by replayable evidence blocks.
//!
//! Findings whose blocks generalize to the same pattern (for the same
//! predictor pair and notion) are one model bug, not many; they are
//! clustered into ranked [`InconsistencySummary`] groups.
//!
//! Determinism: each finding's sampling RNG is seeded from a hash of
//! `(config seed, block bytes, pair keys, uarch, mode)` — a pure
//! function of the finding — so generalization is bit-identical across
//! runs and worker-thread counts, matching the shrinker's guarantees.

use crate::harness::Finding;
use crate::shrink::DiffPair;
use facile_bhive::rng::StdRng;
use facile_engine::Engine;
use facile_explain::{json_escape, Mode};
use facile_isa::vocab;
use facile_uarch::Uarch;
use facile_x86::reg::Width;
use facile_x86::{Block, Cond, Mem, Mnemonic, Operand, Reg};
use std::hash::{Hash, Hasher};

/// One abstraction facet of a pattern slot. Facets are independent and
/// attempted in this fixed ladder order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Facet {
    /// Abstract the condition code: `jne` becomes "any `jcc`".
    Cond,
    /// Abstract the concrete register choice, keeping each register's
    /// class and width and the slot's register-aliasing structure.
    Regs,
    /// Abstract immediate values.
    Imm,
    /// Abstract a nonzero memory displacement.
    Disp,
    /// Abstract the index-register scale factor.
    Scale,
}

/// The widening ladder: facets in attempt order.
pub const LADDER: [Facet; 5] = [
    Facet::Cond,
    Facet::Regs,
    Facet::Imm,
    Facet::Disp,
    Facet::Scale,
];

/// One instruction slot of a block pattern: the concrete instruction it
/// came from, plus the facets that have been abstracted away.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotPattern {
    /// The representative's mnemonic (concrete condition code retained
    /// even when [`Facet::Cond`] is widened, as the sampling anchor).
    pub mnemonic: Mnemonic,
    /// The representative's operands.
    pub operands: Vec<Operand>,
    /// The facets abstracted away for this slot.
    pub widened: Vec<Facet>,
}

/// Physical-register identity: width-aliased views (`eax`/`rax`,
/// `xmm3`/`ymm3`) are the same underlying register. `rip` has none.
fn phys(r: Reg) -> Option<(bool, u8)> {
    match r {
        Reg::Rip => None,
        other => Some((other.is_vec(), other.num())),
    }
}

/// Every register the slot's operands touch, in a fixed order: operand
/// registers, then memory base and index. `rip` is skipped (it is not a
/// renameable register).
fn slot_regs(operands: &[Operand]) -> Vec<Reg> {
    let mut out = Vec::new();
    for op in operands {
        match *op {
            Operand::Reg(r) if r != Reg::Rip => out.push(r),
            Operand::Mem(m) => {
                out.extend(m.base.into_iter().filter(|&r| r != Reg::Rip));
                out.extend(m.index);
            }
            _ => {}
        }
    }
    out
}

/// Whether two register views have the same class and width (GPR of the
/// same width, both XMM, both YMM, same high-byte-ness).
fn same_view(a: Reg, b: Reg) -> bool {
    match (a, b) {
        (Reg::Gpr { width: wa, .. }, Reg::Gpr { width: wb, .. }) => wa == wb,
        (Reg::HighByte(_), Reg::HighByte(_))
        | (Reg::Xmm(_), Reg::Xmm(_))
        | (Reg::Ymm(_), Reg::Ymm(_))
        | (Reg::Rip, Reg::Rip) => true,
        _ => false,
    }
}

impl SlotPattern {
    fn has(&self, f: Facet) -> bool {
        self.widened.contains(&f)
    }

    /// Whether `facet` can be abstracted for this slot at all.
    #[must_use]
    pub fn applicable(&self, facet: Facet) -> bool {
        match facet {
            Facet::Cond => vocab::cond_of(self.mnemonic).is_some(),
            // High-byte registers have no samplable renaming pool; a slot
            // touching one keeps its concrete registers.
            Facet::Regs => {
                let regs = slot_regs(&self.operands);
                !regs.is_empty() && !regs.iter().any(|r| matches!(r, Reg::HighByte(_)))
            }
            Facet::Imm => self.operands.iter().any(|o| matches!(o, Operand::Imm(_))),
            Facet::Disp => self
                .operands
                .iter()
                .filter_map(|o| o.mem())
                .any(|m| m.disp != 0),
            Facet::Scale => self
                .operands
                .iter()
                .filter_map(|o| o.mem())
                .any(|m| m.index.is_some()),
        }
    }

    /// Whether a concrete instruction is an instance of this slot.
    fn matches_inst(&self, mnemonic: Mnemonic, operands: &[Operand]) -> bool {
        if self.has(Facet::Cond) {
            if vocab::mnemonic_group(mnemonic) != vocab::mnemonic_group(self.mnemonic) {
                return false;
            }
        } else if mnemonic != self.mnemonic {
            return false;
        }
        if operands.len() != self.operands.len() {
            return false;
        }
        for (p, q) in self.operands.iter().zip(operands) {
            match (*p, *q) {
                (Operand::Reg(a), Operand::Reg(b)) => {
                    if self.has(Facet::Regs) {
                        if !same_view(a, b) {
                            return false;
                        }
                    } else if a != b {
                        return false;
                    }
                }
                (Operand::Imm(a), Operand::Imm(b)) => {
                    if !self.has(Facet::Imm) && a != b {
                        return false;
                    }
                }
                (Operand::Rel(a), Operand::Rel(b)) => {
                    if a != b {
                        return false;
                    }
                }
                (Operand::Mem(a), Operand::Mem(b)) => {
                    if a.width != b.width
                        || a.base.is_some() != b.base.is_some()
                        || a.index.is_some() != b.index.is_some()
                        || a.is_rip_relative() != b.is_rip_relative()
                    {
                        return false;
                    }
                    let reg_ok = |x: Option<Reg>, y: Option<Reg>| match (x, y) {
                        (None, None) => true,
                        (Some(x), Some(y)) => {
                            if self.has(Facet::Regs) {
                                same_view(x, y)
                            } else {
                                x == y
                            }
                        }
                        _ => false,
                    };
                    if !reg_ok(a.base, b.base) || !reg_ok(a.index, b.index) {
                        return false;
                    }
                    if self.has(Facet::Disp) {
                        // Zero vs nonzero is structural (it changes the
                        // encoding shape); only the value is abstract.
                        if (a.disp == 0) != (b.disp == 0) {
                            return false;
                        }
                    } else if a.disp != b.disp {
                        return false;
                    }
                    if !self.has(Facet::Scale) && a.scale != b.scale {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        // The register-aliasing structure must be preserved: `add rax,
        // rax` and `add rax, rcx` are different shapes even when the
        // register choice is abstract.
        if self.has(Facet::Regs) {
            let pr = slot_regs(&self.operands);
            let qr = slot_regs(operands);
            if pr.len() != qr.len() {
                return false;
            }
            for i in 0..pr.len() {
                for j in i + 1..pr.len() {
                    if (phys(pr[i]) == phys(pr[j])) != (phys(qr[i]) == phys(qr[j])) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Render this slot for reports: abstract parts by their class.
    fn render(&self) -> String {
        let mnem = if self.has(Facet::Cond) {
            vocab::mnemonic_group(self.mnemonic)
        } else {
            self.mnemonic.name()
        };
        let reg = |r: Reg| {
            if self.has(Facet::Regs) {
                vocab::class_name(r)
            } else {
                r.to_string()
            }
        };
        let ops: Vec<String> = self
            .operands
            .iter()
            .map(|op| match *op {
                Operand::Reg(r) => reg(r),
                Operand::Imm(v) => {
                    if self.has(Facet::Imm) {
                        "imm".to_string()
                    } else {
                        format!("{v:#x}")
                    }
                }
                Operand::Rel(d) => format!(".{d:+}"),
                Operand::Mem(m) => {
                    let mut parts: Vec<String> = Vec::new();
                    if let Some(b) = m.base {
                        parts.push(if b == Reg::Rip {
                            "rip".to_string()
                        } else {
                            reg(b)
                        });
                    }
                    if let Some(i) = m.index {
                        let scale = if self.has(Facet::Scale) {
                            "s".to_string()
                        } else {
                            m.scale.to_string()
                        };
                        parts.push(format!("{}*{scale}", reg(i)));
                    }
                    if self.has(Facet::Disp) && m.disp != 0 {
                        parts.push("disp".to_string());
                    } else if m.disp != 0 || parts.is_empty() {
                        parts.push(format!("{:#x}", m.disp));
                    }
                    let unit = match m.width {
                        Width::W8 => "byte",
                        Width::W16 => "word",
                        Width::W32 => "dword",
                        Width::W64 => "qword",
                        Width::W128 => "xmmword",
                        Width::W256 => "ymmword",
                    };
                    format!("{unit} [{}]", parts.join("+"))
                }
            })
            .collect();
        if ops.is_empty() {
            mnem
        } else {
            format!("{mnem} {}", ops.join(", "))
        }
    }
}

/// An abstract block pattern: one [`SlotPattern`] per instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockPattern {
    /// Instruction slots, in block order.
    pub slots: Vec<SlotPattern>,
}

impl BlockPattern {
    /// The fully-concrete pattern of `block`: matches exactly that block.
    #[must_use]
    pub fn concrete(block: &Block) -> BlockPattern {
        BlockPattern {
            slots: block
                .insts()
                .iter()
                .map(|i| SlotPattern {
                    mnemonic: i.mnemonic,
                    operands: i.operands.clone(),
                    widened: Vec::new(),
                })
                .collect(),
        }
    }

    /// Whether `block` is an instance of this pattern.
    #[must_use]
    pub fn matches(&self, block: &Block) -> bool {
        block.num_insts() == self.slots.len()
            && self
                .slots
                .iter()
                .zip(block.insts())
                .all(|(s, i)| s.matches_inst(i.mnemonic, &i.operands))
    }

    /// Total number of widened facets across all slots.
    #[must_use]
    pub fn widenings(&self) -> usize {
        self.slots.iter().map(|s| s.widened.len()).sum()
    }

    /// Human-readable pattern string (abstract slots render by class:
    /// `jcc`, `r64`, `imm`, `disp`, ...). Used as the clustering key.
    #[must_use]
    pub fn render(&self) -> String {
        self.slots
            .iter()
            .map(SlotPattern::render)
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Sample one concrete instantiation. Register renaming is drawn
    /// per-instruction and per-class so that distinct registers stay
    /// distinct and width-aliased views (`eax`/`rax`) stay aliased.
    /// `None` when a draw fails to assemble (or — defensively — fails to
    /// re-match the pattern after the assemble/decode round-trip).
    #[must_use]
    pub fn instantiate(&self, rng: &mut StdRng) -> Option<Block> {
        let mut prog: Vec<(Mnemonic, Vec<Operand>)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let mnemonic = if slot.has(Facet::Cond) {
                let c = Cond::ALL[rng.gen_range(0..Cond::ALL.len())];
                vocab::with_cond(slot.mnemonic, c)
            } else {
                slot.mnemonic
            };
            // Per-class renaming: the k-th distinct physical register of
            // the slot maps to pool[(offset + k) % pool] — a random
            // rotation, which preserves distinctness within the slot.
            let mut gpr_map: Vec<(u8, u8)> = Vec::new();
            let mut vec_map: Vec<(u8, u8)> = Vec::new();
            let gpr_off = rng.gen_range(0..vocab::GPR_POOL.len());
            let vec_off = rng.gen_range(0..vocab::VEC_POOL.len());
            let mut rename = |r: Reg| -> Option<Reg> {
                if !slot.has(Facet::Regs) || r == Reg::Rip {
                    return Some(r);
                }
                let (map, pool, off): (&mut Vec<(u8, u8)>, &[u8], usize) = if r.is_vec() {
                    (&mut vec_map, &vocab::VEC_POOL, vec_off)
                } else {
                    (&mut gpr_map, &vocab::GPR_POOL, gpr_off)
                };
                let num = r.num();
                let new = match map.iter().find(|(from, _)| *from == num) {
                    Some(&(_, to)) => to,
                    None => {
                        let to = pool[(off + map.len()) % pool.len()];
                        map.push((num, to));
                        to
                    }
                };
                match r {
                    Reg::Gpr { width, .. } => Some(Reg::Gpr { num: new, width }),
                    Reg::Xmm(_) => Some(Reg::Xmm(new)),
                    Reg::Ymm(_) => Some(Reg::Ymm(new)),
                    Reg::HighByte(_) | Reg::Rip => None,
                }
            };
            let mut ops: Vec<Operand> = Vec::with_capacity(slot.operands.len());
            for op in &slot.operands {
                ops.push(match *op {
                    Operand::Reg(r) => Operand::Reg(rename(r)?),
                    Operand::Imm(v) => {
                        if slot.has(Facet::Imm) {
                            Operand::Imm(rng.gen_range(0i64..256))
                        } else {
                            Operand::Imm(v)
                        }
                    }
                    Operand::Rel(d) => Operand::Rel(d),
                    Operand::Mem(m) => {
                        let base = match m.base {
                            Some(b) => Some(rename(b)?),
                            None => None,
                        };
                        let index = match m.index {
                            Some(i) => Some(rename(i)?),
                            None => None,
                        };
                        let disp = if slot.has(Facet::Disp) && m.disp != 0 {
                            rng.gen_range(1i32..2048)
                        } else {
                            m.disp
                        };
                        let scale = if slot.has(Facet::Scale) && index.is_some() {
                            vocab::SCALE_POOL[rng.gen_range(0..vocab::SCALE_POOL.len())]
                        } else {
                            m.scale
                        };
                        Operand::Mem(Mem {
                            base,
                            index,
                            scale,
                            disp,
                            width: m.width,
                        })
                    }
                });
            }
            prog.push((mnemonic, ops));
        }
        let block = Block::assemble(&prog).ok()?;
        self.matches(&block).then_some(block)
    }
}

/// Generalization tuning.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Concrete instantiations sampled per proposed widening.
    pub samples: usize,
    /// Samples that must preserve the disagreement for the widening to
    /// be accepted.
    pub min_preserved: usize,
    /// Mixed into each finding's sampling RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            samples: 4,
            min_preserved: 3,
            seed: 0,
        }
    }
}

/// One finding lifted to a validated pattern.
#[derive(Debug, Clone)]
pub struct PatternResult {
    /// The widest validated pattern.
    pub pattern: BlockPattern,
    /// Evidence blocks that reproduce the disagreement: the original
    /// counterexample first, then every distinct preserved sample that
    /// backed an accepted widening.
    pub validated: Vec<Block>,
}

/// Greedily widen the concrete pattern of `block`, one slot-facet at a
/// time in a fixed order, keeping a widening only if at least
/// `cfg.min_preserved` of `cfg.samples` sampled instantiations still
/// disagree past `threshold` on `pair`.
///
/// Returns `None` when the block does not disagree past the threshold
/// in the first place. The result's pattern always subsumes `block`
/// (widening never un-matches the anchor), and `validated` is non-empty
/// (it starts with `block` itself).
#[must_use]
pub fn generalize_block(
    pair: &DiffPair<'_>,
    block: &Block,
    threshold: f64,
    cfg: &GenConfig,
) -> Option<PatternResult> {
    pair.delta(block).filter(|d| *d >= threshold)?;
    let (key_a, key_b) = pair.keys();
    let mut hasher = facile_util::FxHasher::default();
    cfg.seed.hash(&mut hasher);
    block.bytes().hash(&mut hasher);
    key_a.hash(&mut hasher);
    key_b.hash(&mut hasher);
    pair.uarch().hash(&mut hasher);
    pair.mode().hash(&mut hasher);
    let mut rng = StdRng::seed_from_u64(hasher.finish());

    let mut pattern = BlockPattern::concrete(block);
    let mut validated: Vec<Block> = vec![block.clone()];
    for slot in 0..pattern.slots.len() {
        for facet in LADDER {
            if pattern.slots[slot].has(facet) || !pattern.slots[slot].applicable(facet) {
                continue;
            }
            let mut trial = pattern.clone();
            trial.slots[slot].widened.push(facet);
            let mut preserved: Vec<Block> = Vec::new();
            for _ in 0..cfg.samples {
                if let Some(cand) = trial.instantiate(&mut rng) {
                    if pair.delta(&cand).is_some_and(|d| d >= threshold) {
                        preserved.push(cand);
                    }
                }
            }
            if preserved.len() >= cfg.min_preserved {
                pattern = trial;
                for b in preserved {
                    if !validated.iter().any(|v| v.bytes() == b.bytes()) {
                        validated.push(b);
                    }
                }
            }
        }
    }
    Some(PatternResult { pattern, validated })
}

/// One ranked cluster of findings that generalize to the same pattern.
#[derive(Debug, Clone)]
pub struct InconsistencySummary {
    /// Rendered pattern string (the clustering key).
    pub pattern: String,
    /// First predictor key.
    pub a: String,
    /// Second predictor key.
    pub b: String,
    /// Throughput notion.
    pub mode: Mode,
    /// Findings subsumed by this pattern.
    pub blocks: usize,
    /// Microarchitectures the cluster's findings were flagged on,
    /// deduplicated, in [`Uarch::ALL`] order.
    pub uarchs: Vec<Uarch>,
    /// Mean relative disagreement over the subsumed findings.
    pub mean_delta: f64,
    /// Largest relative disagreement over the subsumed findings.
    pub max_delta: f64,
    /// The representative counterexample (the first subsumed finding's
    /// shrunk block, hex).
    pub representative_hex: String,
    /// The representative's disagreement.
    pub representative_delta: f64,
    /// Widened facets in the pattern (0 = the finding never generalized
    /// beyond its concrete block).
    pub widenings: usize,
    /// Evidence blocks validating the representative's pattern
    /// (original + preserved samples).
    pub validated: usize,
    /// Up to three validated sample blocks (hex, excluding the
    /// representative itself) that reproduce the disagreement.
    pub sample_hexes: Vec<String>,
}

impl InconsistencySummary {
    /// Render as a single JSON object (one line, stable field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let uarchs: Vec<String> = self.uarchs.iter().map(|u| format!("\"{u}\"")).collect();
        let samples: Vec<String> = self
            .sample_hexes
            .iter()
            .map(|h| format!("\"{h}\""))
            .collect();
        format!(
            "{{\"pattern\":\"{}\",\"a\":\"{}\",\"b\":\"{}\",\"mode\":\"{}\",\"blocks\":{},\
             \"uarchs\":[{}],\"mean_delta\":{:.4},\"max_delta\":{:.4},\"widenings\":{},\
             \"validated\":{},\"representative\":{{\"block\":\"{}\",\"delta\":{:.4}}},\
             \"samples\":[{}]}}",
            json_escape(&self.pattern),
            json_escape(&self.a),
            json_escape(&self.b),
            match self.mode {
                Mode::Unrolled => "tpu",
                Mode::Loop => "tpl",
            },
            self.blocks,
            uarchs.join(","),
            self.mean_delta,
            self.max_delta,
            self.widenings,
            self.validated,
            self.representative_hex,
            self.representative_delta,
            samples.join(","),
        )
    }

    /// Render as an indented human-readable summary.
    #[must_use]
    pub fn to_text(&self) -> String {
        let uarchs: Vec<String> = self.uarchs.iter().map(ToString::to_string).collect();
        let mut s = format!(
            "{} vs {} ({}): {}\n",
            self.a,
            self.b,
            match self.mode {
                Mode::Unrolled => "TPU",
                Mode::Loop => "TPL",
            },
            self.pattern,
        );
        s.push_str(&format!(
            "  {} block(s) on {} — mean delta {:.2}, max {:.2}, {} widening(s), {} evidence block(s)\n",
            self.blocks,
            uarchs.join(","),
            self.mean_delta,
            self.max_delta,
            self.widenings,
            self.validated,
        ));
        s.push_str(&format!(
            "  representative: {} (delta {:.2})\n",
            self.representative_hex, self.representative_delta,
        ));
        if !self.sample_hexes.is_empty() {
            s.push_str(&format!("  samples: {}\n", self.sample_hexes.join(" ")));
        }
        s
    }
}

/// Generalize every finding and cluster the results by `(pattern, pair,
/// mode)`, ranked by blocks subsumed (desc), then mean disagreement
/// (desc), then pattern string.
///
/// Per-finding generalization runs on the engine's worker pool via an
/// order-preserving parallel map; clustering folds the results in
/// finding order, so the output is deterministic across thread counts.
#[must_use]
pub fn generalize_findings(
    engine: &Engine,
    findings: &[Finding],
    threshold: f64,
    cfg: &GenConfig,
) -> Vec<InconsistencySummary> {
    let results: Vec<Option<PatternResult>> =
        facile_engine::parallel_map_indexed(findings.len(), engine.threads(), |k| {
            let f = &findings[k];
            let pair = DiffPair::new(engine, &f.a.key, &f.b.key, f.uarch, f.mode).ok()?;
            let block = Block::from_hex(&f.shrunk_hex).ok()?;
            generalize_block(&pair, &block, threshold, cfg)
        });

    let mut clusters: Vec<(String, String, String, Mode, Vec<usize>)> = Vec::new();
    for (k, result) in results.iter().enumerate() {
        let Some(r) = result else { continue };
        let f = &findings[k];
        let key = (r.pattern.render(), f.a.key.clone(), f.b.key.clone(), f.mode);
        match clusters
            .iter_mut()
            .find(|(p, a, b, m, _)| *p == key.0 && *a == key.1 && *b == key.2 && *m == key.3)
        {
            Some((_, _, _, _, members)) => members.push(k),
            None => clusters.push((key.0, key.1, key.2, key.3, vec![k])),
        }
    }

    let mut out: Vec<InconsistencySummary> = clusters
        .into_iter()
        .map(|(pattern, a, b, mode, members)| {
            let rep = members[0];
            let rep_result = results[rep]
                .as_ref()
                .expect("clustered members generalized");
            let deltas: Vec<f64> = members.iter().map(|&k| findings[k].delta).collect();
            #[allow(clippy::cast_precision_loss)]
            let mean_delta = deltas.iter().sum::<f64>() / deltas.len() as f64;
            let max_delta = deltas.iter().fold(0.0f64, |m, &d| m.max(d));
            let uarchs: Vec<Uarch> = Uarch::ALL
                .into_iter()
                .filter(|u| members.iter().any(|&k| findings[k].uarch == *u))
                .collect();
            let sample_hexes: Vec<String> = rep_result
                .validated
                .iter()
                .skip(1)
                .take(3)
                .map(Block::to_hex)
                .collect();
            InconsistencySummary {
                pattern,
                a,
                b,
                mode,
                blocks: members.len(),
                uarchs,
                mean_delta,
                max_delta,
                representative_hex: findings[rep].shrunk_hex.clone(),
                representative_delta: findings[rep].delta,
                widenings: rep_result.pattern.widenings(),
                validated: rep_result.validated.len(),
                sample_hexes,
            }
        })
        .collect();
    out.sort_by(|x, y| {
        y.blocks
            .cmp(&x.blocks)
            .then_with(|| y.mean_delta.total_cmp(&x.mean_delta))
            .then_with(|| x.pattern.cmp(&y.pattern))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_x86::reg::names::*;

    fn block(prog: &[(Mnemonic, Vec<Operand>)]) -> Block {
        Block::assemble(prog).unwrap()
    }

    fn widen(b: &Block, slot: usize, facet: Facet) -> BlockPattern {
        let mut p = BlockPattern::concrete(b);
        p.slots[slot].widened.push(facet);
        p
    }

    #[test]
    fn concrete_pattern_matches_exactly_itself() {
        let b = block(&[
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Imul, vec![RDX.into(), RAX.into()]),
        ]);
        let p = BlockPattern::concrete(&b);
        assert!(p.matches(&b));
        assert_eq!(p.widenings(), 0);
        let other = block(&[
            (Mnemonic::Add, vec![RAX.into(), RBX.into()]),
            (Mnemonic::Imul, vec![RDX.into(), RAX.into()]),
        ]);
        assert!(!p.matches(&other));
        assert_eq!(p.render(), "add rax, rcx; imul rdx, rax");
    }

    #[test]
    fn regs_widening_preserves_aliasing_structure() {
        let b = block(&[(Mnemonic::Add, vec![RAX.into(), RCX.into()])]);
        let p = widen(&b, 0, Facet::Regs);
        assert!(p.matches(&b));
        // Distinct-register instances match...
        assert!(p.matches(&block(&[(Mnemonic::Add, vec![RSI.into(), RDI.into()])])));
        // ...same-register instances have a different aliasing shape...
        assert!(!p.matches(&block(&[(Mnemonic::Add, vec![RAX.into(), RAX.into()])])));
        // ...and widths stay rigid.
        assert!(!p.matches(&block(&[(Mnemonic::Add, vec![EAX.into(), ECX.into()])])));
        assert_eq!(p.render(), "add r64, r64");

        // The converse: an aliased anchor only matches aliased instances.
        let b2 = block(&[(Mnemonic::Add, vec![RAX.into(), RAX.into()])]);
        let p2 = widen(&b2, 0, Facet::Regs);
        assert!(p2.matches(&block(&[(Mnemonic::Add, vec![RBX.into(), RBX.into()])])));
        assert!(!p2.matches(&block(&[(Mnemonic::Add, vec![RBX.into(), RCX.into()])])));
    }

    #[test]
    fn cond_widening_spans_the_family() {
        let b = block(&[
            (Mnemonic::Cmp, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Jcc(Cond::E), vec![Operand::Rel(-9)]),
        ]);
        let p = widen(&b, 1, Facet::Cond);
        assert!(p.matches(&b));
        let ne = block(&[
            (Mnemonic::Cmp, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Jcc(Cond::Ne), vec![Operand::Rel(-9)]),
        ]);
        assert!(p.matches(&ne));
        assert!(p.render().contains("jcc"));
        // An unconditional jump is not in the family.
        let jmp = block(&[
            (Mnemonic::Cmp, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Jmp, vec![Operand::Rel(-9)]),
        ]);
        assert!(!p.matches(&jmp));
    }

    #[test]
    fn instantiate_produces_matching_blocks() {
        let m = Mem::base_index(RBX, RCX, 4, 64, Width::W64);
        let b = block(&[
            (Mnemonic::Mov, vec![RAX.into(), m.into()]),
            (Mnemonic::Add, vec![RAX.into(), Operand::Imm(7)]),
        ]);
        let mut p = BlockPattern::concrete(&b);
        for facet in [Facet::Regs, Facet::Disp, Facet::Scale] {
            p.slots[0].widened.push(facet);
        }
        p.slots[1].widened.push(Facet::Imm);
        p.slots[1].widened.push(Facet::Regs);
        let mut rng = StdRng::seed_from_u64(42);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..32 {
            let inst = p.instantiate(&mut rng).expect("samples assemble");
            assert!(p.matches(&inst), "{}", inst.to_hex());
            distinct.insert(inst.to_hex());
        }
        assert!(distinct.len() > 5, "sampling collapsed: {distinct:?}");
        // Determinism: same seed, same draws.
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            assert_eq!(
                p.instantiate(&mut r1).map(|b| b.to_hex()),
                p.instantiate(&mut r2).map(|b| b.to_hex())
            );
        }
    }

    #[test]
    fn applicability_follows_structure() {
        let b = block(&[(Mnemonic::Nop, vec![])]);
        let s = &BlockPattern::concrete(&b).slots[0];
        for f in LADDER {
            assert!(!s.applicable(f), "{f:?} applicable to bare nop");
        }
        let m = Mem::base_disp(RBX, 8, Width::W64);
        let b = block(&[(Mnemonic::Mov, vec![RAX.into(), m.into()])]);
        let s = &BlockPattern::concrete(&b).slots[0];
        assert!(s.applicable(Facet::Regs));
        assert!(s.applicable(Facet::Disp));
        assert!(!s.applicable(Facet::Scale)); // no index register
        assert!(!s.applicable(Facet::Imm));
        assert!(!s.applicable(Facet::Cond));
    }
}
