//! Classification of a disagreement through the typed explanation layer.

use facile_explain::{Component, Explanation};

/// What kind of model divergence a flagged disagreement is, derived from
/// the typed [`Explanation`]s of the two predictors (where available).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffClass {
    /// Both sides explain themselves and blame *different* components:
    /// the models disagree about what limits the block at all.
    BottleneckDivergence {
        /// Primary bottleneck of the first predictor.
        a: Component,
        /// Primary bottleneck of the second predictor.
        b: Component,
    },
    /// The divergence is localized to one component: either both sides
    /// blame it but bound it differently (e.g. two port maps that assign
    /// the same µops to different pipes), or only one side explains
    /// itself and this is the component its number rests on.
    ComponentDivergence(Component),
    /// Neither side produced an explanation; the disagreement is real but
    /// cannot be attributed to a model component.
    Unclassified,
}

/// The divergence vocabulary: what a [`ComponentDivergence`] on each
/// component is called.
///
/// [`ComponentDivergence`]: DiffClass::ComponentDivergence
#[must_use]
pub fn component_divergence_label(c: Component) -> &'static str {
    match c {
        Component::Predec => "predecode divergence",
        Component::Dec => "decode divergence",
        Component::Dsb => "dsb-delivery divergence",
        Component::Lsd => "lsd-stream divergence",
        Component::Issue => "issue-width divergence",
        Component::Ports => "port-map divergence",
        Component::Precedence => "chain-latency divergence",
    }
}

impl DiffClass {
    /// Human-readable label, e.g. `"port-map divergence"` or
    /// `"bottleneck divergence (Ports vs Precedence)"`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            DiffClass::BottleneckDivergence { a, b } => {
                format!("bottleneck divergence ({} vs {})", a.name(), b.name())
            }
            DiffClass::ComponentDivergence(c) => component_divergence_label(*c).to_string(),
            DiffClass::Unclassified => "unclassified".to_string(),
        }
    }

    /// Stable machine-readable code: `"bottleneck:Ports|Precedence"`,
    /// `"component:Ports"`, or `"unclassified"`.
    #[must_use]
    pub fn code(&self) -> String {
        match self {
            DiffClass::BottleneckDivergence { a, b } => {
                format!("bottleneck:{}|{}", a.name(), b.name())
            }
            DiffClass::ComponentDivergence(c) => format!("component:{}", c.name()),
            DiffClass::Unclassified => "unclassified".to_string(),
        }
    }

    /// Whether the disagreement could be attributed to the model.
    #[must_use]
    pub fn is_classified(&self) -> bool {
        !matches!(self, DiffClass::Unclassified)
    }
}

/// Classify a disagreement from the two sides' explanations (either may
/// be absent: only interpretable predictors produce one).
#[must_use]
pub fn classify(a: Option<&Explanation>, b: Option<&Explanation>) -> DiffClass {
    let pa = a.and_then(Explanation::primary_bottleneck);
    let pb = b.and_then(Explanation::primary_bottleneck);
    match (pa, pb) {
        (Some(x), Some(y)) if x == y => DiffClass::ComponentDivergence(x),
        (Some(x), Some(y)) => DiffClass::BottleneckDivergence { a: x, b: y },
        (Some(x), None) | (None, Some(x)) => DiffClass::ComponentDivergence(x),
        (None, None) => DiffClass::Unclassified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_explain::{ComponentAnalysis, FrontEndPath, Mode};

    fn explanation(bottleneck: Component, bound: f64) -> Explanation {
        Explanation::compose(
            Mode::Unrolled,
            FrontEndPath::Mite,
            vec![ComponentAnalysis::bare(bottleneck, bound)],
            Vec::new(),
        )
    }

    #[test]
    fn classification_cases() {
        let ports = explanation(Component::Ports, 2.0);
        let prec = explanation(Component::Precedence, 3.0);
        assert_eq!(
            classify(Some(&ports), Some(&prec)),
            DiffClass::BottleneckDivergence {
                a: Component::Ports,
                b: Component::Precedence
            }
        );
        assert_eq!(
            classify(Some(&ports), Some(&explanation(Component::Ports, 4.0))),
            DiffClass::ComponentDivergence(Component::Ports)
        );
        assert_eq!(
            classify(Some(&prec), None),
            DiffClass::ComponentDivergence(Component::Precedence)
        );
        assert_eq!(classify(None, None), DiffClass::Unclassified);
    }

    #[test]
    fn labels_and_codes_are_stable() {
        let c = DiffClass::ComponentDivergence(Component::Ports);
        assert_eq!(c.label(), "port-map divergence");
        assert_eq!(c.code(), "component:Ports");
        assert!(c.is_classified());
        let c = DiffClass::ComponentDivergence(Component::Precedence);
        assert_eq!(c.label(), "chain-latency divergence");
        let c = DiffClass::BottleneckDivergence {
            a: Component::Ports,
            b: Component::Precedence,
        };
        assert_eq!(c.label(), "bottleneck divergence (Ports vs Precedence)");
        assert_eq!(c.code(), "bottleneck:Ports|Precedence");
        assert!(!DiffClass::Unclassified.is_classified());
        assert_eq!(DiffClass::Unclassified.code(), "unclassified");
    }
}
