//! The deterministic delta-debugger: shrink a flagged block to a
//! 1-minimal counterexample.
//!
//! Two reduction moves, applied greedily in a fixed order until neither
//! applies:
//!
//! 1. **Instruction-subset reduction** — drop one instruction (splicing
//!    its bytes out of the block; every remaining instruction re-decodes
//!    unchanged) if the pair still disagrees past the threshold.
//! 2. **Operand simplification** — re-assemble one instruction with a
//!    structurally simpler operand (drop an index register, zero a
//!    displacement, collapse an immediate to 1) if the disagreement
//!    survives.
//!
//! Each accepted move strictly decreases `(instruction count, operand
//! complexity)` lexicographically, so the loop terminates; candidates are
//! tried in a fixed order with no randomness or wall-clock input, so for
//! a given engine the result is a pure function of the input block — and
//! because the loop only stops when **no** single-instruction removal
//! keeps the disagreement above threshold, the result is 1-minimal by
//! construction.

use crate::rel_delta;
use facile_engine::{BatchItem, Engine, PredictError, Predictor};
use facile_explain::{Explanation, Mode};
use facile_uarch::Uarch;
use facile_x86::{Block, Mem, Mnemonic, Operand};
use std::sync::Arc;

/// One predictor pair bound to a microarchitecture and throughput notion:
/// the oracle the shrinker queries. The notion is pinned at flag time so
/// that removing a trailing branch during shrinking cannot silently flip
/// a TPL disagreement into a TPU one.
pub struct DiffPair<'e> {
    engine: &'e Engine,
    pair: [Arc<dyn Predictor>; 2],
    uarch: Uarch,
    mode: Mode,
}

/// The outcome of shrinking one flagged block.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The 1-minimal block.
    pub block: Block,
    /// The two predictions on the shrunk block.
    pub predictions: (f64, f64),
    /// Relative disagreement of the shrunk block (still ≥ the threshold).
    pub delta: f64,
    /// Number of instructions removed.
    pub removals: u32,
    /// Number of operand simplifications applied.
    pub simplifications: u32,
}

impl<'e> DiffPair<'e> {
    /// Bind a predictor pair by registry key.
    ///
    /// # Errors
    /// [`PredictError::UnknownPredictor`] if either key is unregistered.
    pub fn new(
        engine: &'e Engine,
        a: &str,
        b: &str,
        uarch: Uarch,
        mode: Mode,
    ) -> Result<DiffPair<'e>, PredictError> {
        let resolve = |key: &str| {
            engine
                .registry()
                .get(key)
                .ok_or_else(|| PredictError::UnknownPredictor {
                    pattern: key.to_string(),
                    available: engine.registry().keys().map(str::to_string).collect(),
                })
        };
        Ok(DiffPair {
            engine,
            pair: [resolve(a)?, resolve(b)?],
            uarch,
            mode,
        })
    }

    /// Bind an already-resolved pair.
    #[must_use]
    pub fn from_predictors(
        engine: &'e Engine,
        a: Arc<dyn Predictor>,
        b: Arc<dyn Predictor>,
        uarch: Uarch,
        mode: Mode,
    ) -> DiffPair<'e> {
        DiffPair {
            engine,
            pair: [a, b],
            uarch,
            mode,
        }
    }

    /// The registry keys of the pair.
    #[must_use]
    pub fn keys(&self) -> (&str, &str) {
        (self.pair[0].key(), self.pair[1].key())
    }

    /// The microarchitecture the pair is bound to.
    #[must_use]
    pub fn uarch(&self) -> Uarch {
        self.uarch
    }

    /// The throughput notion the pair is bound to.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Both predictions for `block`, or `None` if either side fails
    /// (undecodable subsets and predictor errors end a shrink branch,
    /// they never abort the hunt).
    #[must_use]
    pub fn predict(&self, block: &Block) -> Option<(f64, f64)> {
        if block.is_empty() {
            return None;
        }
        let item = BatchItem::block(block.clone(), self.uarch).with_mode(self.mode);
        let rows = self
            .engine
            .run_batch(std::slice::from_ref(&item), &self.pair);
        match (&rows[0].prediction, &rows[1].prediction) {
            (Ok(a), Ok(b)) => Some((a.throughput, b.throughput)),
            _ => None,
        }
    }

    /// Both sides' full-detail explanations for `block` (either side may
    /// be `None`: only interpretable predictors produce one).
    #[must_use]
    pub fn explain(&self, block: &Block) -> (Option<Box<Explanation>>, Option<Box<Explanation>>) {
        let item = BatchItem::block(block.clone(), self.uarch)
            .with_mode(self.mode)
            .with_detail(facile_explain::Detail::Full);
        let mut rows = self
            .engine
            .run_batch(std::slice::from_ref(&item), &self.pair);
        let mut take = |i: usize| match std::mem::replace(
            &mut rows[i].prediction,
            Err(PredictError::EmptyBlock),
        ) {
            Ok(p) => p.explanation,
            Err(_) => None,
        };
        let a = take(0);
        let b = take(1);
        (a, b)
    }

    /// Relative disagreement for `block`, or `None` if either side fails.
    #[must_use]
    pub fn delta(&self, block: &Block) -> Option<f64> {
        self.predict(block).map(|(a, b)| rel_delta(a, b))
    }

    /// Shrink `block` to a 1-minimal counterexample for `threshold`.
    ///
    /// Returns `None` if the block does not disagree past the threshold
    /// in the first place. Otherwise the result satisfies: (1) its delta
    /// is still ≥ `threshold`; (2) removing **any** single instruction
    /// drops the delta below `threshold` (or makes a side fail); (3) the
    /// function is deterministic and idempotent — shrinking the result
    /// again returns it unchanged.
    #[must_use]
    pub fn shrink(&self, block: &Block, threshold: f64) -> Option<ShrinkResult> {
        self.delta(block).filter(|d| *d >= threshold)?;
        let mut cur = block.clone();
        let mut removals = 0u32;
        let mut simplifications = 0u32;
        loop {
            if let Some(next) = self.reduce_once(&cur, threshold) {
                cur = next;
                removals += 1;
                continue;
            }
            if let Some(next) = self.simplify_once(&cur, threshold) {
                cur = next;
                simplifications += 1;
                continue;
            }
            break;
        }
        let predictions = self.predict(&cur).expect("accepted shrink states predict");
        let delta = rel_delta(predictions.0, predictions.1);
        Some(ShrinkResult {
            block: cur,
            predictions,
            delta,
            removals,
            simplifications,
        })
    }

    /// The first single-instruction removal that keeps the disagreement
    /// above threshold, in instruction order.
    fn reduce_once(&self, block: &Block, threshold: f64) -> Option<Block> {
        (0..block.num_insts())
            .filter_map(|i| remove_inst(block, i))
            .find(|cand| self.delta(cand).is_some_and(|d| d >= threshold))
    }

    /// The first operand simplification that keeps the disagreement above
    /// threshold, scanning instructions and their simplification ladders
    /// in order.
    fn simplify_once(&self, block: &Block, threshold: f64) -> Option<Block> {
        for i in 0..block.num_insts() {
            for cand in simplified_variants(block, i) {
                if self.delta(&cand).is_some_and(|d| d >= threshold) {
                    return Some(cand);
                }
            }
        }
        None
    }
}

/// `block` with instruction `i` spliced out (its bytes removed and the
/// remainder re-decoded). Returns `None` when the block has a single
/// instruction (counterexamples never shrink to empty) or — defensively —
/// if the spliced bytes fail to re-decode.
#[must_use]
pub fn remove_inst(block: &Block, i: usize) -> Option<Block> {
    if block.num_insts() <= 1 || i >= block.num_insts() {
        return None;
    }
    let mut bytes = Vec::with_capacity(block.byte_len());
    for (j, (off, inst)) in block.iter_with_offsets().enumerate() {
        if j != i {
            bytes.extend_from_slice(&block.bytes()[off..inst.end_offset(off)]);
        }
    }
    Block::decode(&bytes).ok()
}

/// Structural complexity of one operand: the count of simplifiable
/// features. Every accepted simplification strictly decreases the total,
/// which is what makes the shrink loop terminate.
fn operand_complexity(op: &Operand) -> u32 {
    match op {
        Operand::Mem(m) => u32::from(m.index.is_some()) + u32::from(m.disp != 0),
        Operand::Imm(v) => u32::from(*v != 0 && *v != 1),
        _ => 0,
    }
}

fn block_complexity(block: &Block) -> u32 {
    block
        .insts()
        .iter()
        .flat_map(|i| i.operands.iter())
        .map(operand_complexity)
        .sum()
}

/// Candidate blocks where instruction `i` has exactly one operand
/// simplified, in a fixed order (per operand: drop the index register,
/// then zero the displacement; immediates collapse to 1). Candidates
/// that fail to re-assemble or that do not strictly decrease the block's
/// operand complexity are dropped.
fn simplified_variants(block: &Block, i: usize) -> Vec<Block> {
    let inst = &block.insts()[i];
    let mut out = Vec::new();
    for (k, op) in inst.operands.iter().enumerate() {
        let mut simpler: Vec<Operand> = Vec::new();
        match *op {
            Operand::Mem(m) => {
                if m.index.is_some() {
                    simpler.push(Operand::Mem(Mem {
                        index: None,
                        scale: 1,
                        ..m
                    }));
                }
                if m.disp != 0 {
                    simpler.push(Operand::Mem(Mem { disp: 0, ..m }));
                }
            }
            Operand::Imm(v) if v != 0 && v != 1 => simpler.push(Operand::Imm(1)),
            _ => {}
        }
        for s in simpler {
            if let Some(cand) = reassemble_with(block, i, k, s) {
                if block_complexity(&cand) < block_complexity(block) {
                    out.push(cand);
                }
            }
        }
    }
    out
}

/// Re-assemble the whole block with operand `k` of instruction `i`
/// replaced. `None` if any instruction fails to re-encode (blocks from
/// foreign encoders may not round-trip through our assembler).
fn reassemble_with(block: &Block, i: usize, k: usize, op: Operand) -> Option<Block> {
    let prog: Vec<(Mnemonic, Vec<Operand>)> = block
        .insts()
        .iter()
        .enumerate()
        .map(|(j, inst)| {
            let mut ops = inst.operands.clone();
            if j == i {
                ops[k] = op;
            }
            (inst.mnemonic, ops)
        })
        .collect();
    Block::assemble(&prog).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_x86::reg::names::*;
    use facile_x86::reg::Width;

    fn block(prog: &[(Mnemonic, Vec<Operand>)]) -> Block {
        Block::assemble(prog).unwrap()
    }

    #[test]
    fn remove_inst_splices_bytes() {
        let b = block(&[
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Imul, vec![RDX.into(), RAX.into()]),
            (Mnemonic::Nop, vec![]),
        ]);
        let r = remove_inst(&b, 1).unwrap();
        assert_eq!(r.num_insts(), 2);
        assert_eq!(r.insts()[0], b.insts()[0]);
        assert_eq!(r.insts()[1], b.insts()[2]);
        // Single-instruction blocks are irreducible.
        let one = block(&[(Mnemonic::Nop, vec![])]);
        assert!(remove_inst(&one, 0).is_none());
        assert!(remove_inst(&b, 99).is_none());
    }

    #[test]
    fn simplified_variants_reduce_complexity() {
        let m = Mem::base_index(R12, RCX, 8, 64, Width::W64);
        let b = block(&[
            (Mnemonic::Mov, vec![RAX.into(), m.into()]),
            (Mnemonic::Add, vec![RAX.into(), Operand::Imm(500)]),
        ]);
        let c0 = block_complexity(&b);
        assert_eq!(c0, 3); // index + disp + non-unit imm
        let vars = simplified_variants(&b, 0);
        assert_eq!(vars.len(), 2); // drop index; zero disp
        for v in &vars {
            assert!(block_complexity(v) < c0);
            assert_eq!(v.num_insts(), 2);
        }
        let vars = simplified_variants(&b, 1);
        assert_eq!(vars.len(), 1); // imm -> 1
        assert_eq!(vars[0].insts()[1].operands[1], Operand::Imm(1));
        // Already-minimal operands yield no candidates.
        let simple = block(&[(Mnemonic::Add, vec![RAX.into(), RCX.into()])]);
        assert!(simplified_variants(&simple, 0).is_empty());
    }
}
