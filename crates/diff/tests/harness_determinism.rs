//! End-to-end determinism of the differential harness: for a fixed
//! config, the full report — matrix, findings, shrunken blocks,
//! classifications — must be identical across runs and worker-thread
//! counts.

use facile_diff::{run, DiffConfig, DiffReport};
use facile_engine::Engine;
use facile_uarch::Uarch;

/// Canonical serialization of everything the report asserts.
fn signature(r: &DiffReport) -> String {
    let mut s = r.summary_json();
    s.push('\n');
    for c in &r.matrix {
        s.push_str(&c.to_json());
        s.push('\n');
    }
    for f in &r.findings {
        s.push_str(&f.to_json());
        s.push('\n');
    }
    s
}

fn config() -> DiffConfig {
    DiffConfig {
        selector: "facile,llvm-mca,cqa".to_string(),
        uarchs: vec![Uarch::Skl, Uarch::Rkl],
        threshold: 0.4,
        seed: 13,
        count: 40,
        include_corpus: true,
        max_counterexamples: 8,
        ..DiffConfig::default()
    }
}

#[test]
fn report_is_identical_across_thread_counts() {
    let one = run(&Engine::with_builtins().with_threads(1), &config()).unwrap();
    let eight = run(&Engine::with_builtins().with_threads(8), &config()).unwrap();
    assert_eq!(signature(&one), signature(&eight));
    // And across two runs of the same engine (cache warm vs cold).
    let engine = Engine::with_builtins();
    let a = run(&engine, &config()).unwrap();
    let b = run(&engine, &config()).unwrap();
    assert_eq!(signature(&a), signature(&b));
    assert_eq!(signature(&a), signature(&one));
}

#[test]
fn findings_are_classified_and_deduplicated() {
    let engine = Engine::with_builtins();
    let report = run(&engine, &config()).unwrap();
    assert!(report.flagged > 0, "config should surface disagreements");
    assert!(!report.findings.is_empty());
    for f in &report.findings {
        // facile participates in every pair here, so every finding has at
        // least one explanation to classify from.
        if f.a.key == "facile" || f.b.key == "facile" {
            assert!(f.class.is_classified(), "{}", f.to_json());
        }
        assert!(f.delta >= report.threshold);
        assert!(f.original_delta >= report.threshold);
        assert!(f.shrunk_insts <= f.original_insts);
    }
    // Deduplication: no two findings share (pair, uarch, mode, block).
    for (i, f) in report.findings.iter().enumerate() {
        for g in &report.findings[i + 1..] {
            assert!(
                !(f.shrunk_hex == g.shrunk_hex
                    && f.uarch == g.uarch
                    && f.mode == g.mode
                    && f.a.key == g.a.key
                    && f.b.key == g.b.key),
                "duplicate finding: {}",
                f.shrunk_hex
            );
        }
    }
}

#[test]
fn corpus_and_extra_blocks_are_scanned() {
    let engine = Engine::with_builtins();
    let mut cfg = config();
    cfg.count = 0;
    cfg.include_corpus = true;
    cfg.extra_blocks = vec![(
        "mine".to_string(),
        facile_x86::Block::from_hex("4801c8480fafd0").unwrap(),
    )];
    let report = run(&engine, &cfg).unwrap();
    let n_kernels = facile_bhive::kernels().len();
    assert_eq!(report.scanned_blocks, n_kernels + 1);
}
