//! Property tests for the delta-debugger: every shrunk block still
//! disagrees past the threshold, shrinking is deterministic and
//! idempotent, and the result is 1-minimal (removing any single
//! instruction kills the disagreement).

use facile_diff::{rel_delta, remove_inst, DiffPair};
use facile_engine::Engine;
use facile_explain::Mode;
use facile_uarch::Uarch;
use facile_x86::Block;
use proptest::prelude::*;

const THRESHOLD: f64 = 0.3;

/// Fast analytic predictor pairs with healthy disagreement rates (no
/// learned rows: no training cost, no simulator: debug-build speed).
const PAIRS: [(&str, &str); 3] = [
    ("facile", "llvm-mca"),
    ("facile", "iaca"),
    ("llvm-mca", "cqa"),
];

/// Scan the seeded stream for the first block the pair disagrees on.
fn find_flagged(
    engine: &Engine,
    pair_idx: usize,
    uarch: Uarch,
    seed: u64,
) -> Option<(DiffPair<'_>, Block)> {
    let (a, b) = PAIRS[pair_idx];
    for gb in facile_bhive::BlockStream::new(seed).take(40) {
        let mode = if gb.looped {
            Mode::Loop
        } else {
            Mode::Unrolled
        };
        let pair = DiffPair::new(engine, a, b, uarch, mode).expect("builtin keys");
        if pair.delta(&gb.block).is_some_and(|d| d >= THRESHOLD) {
            return Some((pair, gb.block));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Soundness + 1-minimality: the shrunk block still exceeds the
    /// threshold, and removing any single instruction drops the
    /// disagreement below it (or breaks a predictor).
    #[test]
    fn shrunk_blocks_are_sound_and_minimal(
        seed in 0u64..40,
        pair_idx in 0usize..3,
        uarch_idx in 0usize..3,
    ) {
        let engine = Engine::with_builtins();
        let uarch = [Uarch::Skl, Uarch::Icl, Uarch::Snb][uarch_idx];
        // `None` = no disagreement in this window: vacuously true case.
        if let Some((pair, block)) = find_flagged(&engine, pair_idx, uarch, seed) {
            let shrunk = pair.shrink(&block, THRESHOLD).expect("block was flagged");
            // Sound: still a counterexample.
            prop_assert!(shrunk.delta >= THRESHOLD);
            prop_assert_eq!(
                shrunk.delta,
                rel_delta(shrunk.predictions.0, shrunk.predictions.1)
            );
            prop_assert!(shrunk.block.num_insts() >= 1);
            prop_assert!(shrunk.block.num_insts() <= block.num_insts());
            // 1-minimal: no single-instruction removal stays above threshold.
            for i in 0..shrunk.block.num_insts() {
                if let Some(cand) = remove_inst(&shrunk.block, i) {
                    let d = pair.delta(&cand);
                    prop_assert!(
                        d.is_none() || d.unwrap() < THRESHOLD,
                        "removing inst {i} keeps delta {:?} >= {THRESHOLD} on {}",
                        d,
                        shrunk.block.to_hex()
                    );
                }
            }
        }
    }

    /// Determinism + idempotence: shrinking the same flagged block twice
    /// (and on engines with different thread counts) yields the same
    /// bytes, and re-shrinking the result is a no-op.
    #[test]
    fn shrinking_is_deterministic_and_idempotent(
        seed in 0u64..40,
        pair_idx in 0usize..3,
    ) {
        let engine1 = Engine::with_builtins().with_threads(1);
        let engine8 = Engine::with_builtins().with_threads(8);
        if let Some((pair1, block)) = find_flagged(&engine1, pair_idx, Uarch::Skl, seed) {
            let (a, b) = PAIRS[pair_idx];
            let mode = if block.ends_in_branch() { Mode::Loop } else { Mode::Unrolled };
            let pair8 = DiffPair::new(&engine8, a, b, Uarch::Skl, mode).expect("builtin keys");

            let s1 = pair1.shrink(&block, THRESHOLD).expect("flagged");
            let s1b = pair1.shrink(&block, THRESHOLD).expect("flagged");
            let s8 = pair8.shrink(&block, THRESHOLD).expect("flagged");
            prop_assert_eq!(s1.block.bytes(), s1b.block.bytes());
            prop_assert_eq!(s1.block.bytes(), s8.block.bytes());
            prop_assert_eq!(s1.delta, s8.delta);
            prop_assert_eq!(s1.predictions, s8.predictions);

            // Idempotent: the shrunk block is its own fixpoint.
            let again = pair1.shrink(&s1.block, THRESHOLD).expect("still flagged");
            prop_assert_eq!(again.block.bytes(), s1.block.bytes());
            prop_assert_eq!(again.removals, 0);
            prop_assert_eq!(again.simplifications, 0);
        }
    }
}
