//! Property tests for pattern generalization: every pattern subsumes
//! the counterexample it was lifted from, every validated sample
//! reproduces the disagreement, and both per-block generalization and
//! the full clustered harness report are deterministic across engine
//! thread counts.

use facile_diff::{generalize_block, run, BlockPattern, DiffConfig, DiffPair, GenConfig};
use facile_engine::Engine;
use facile_explain::Mode;
use facile_uarch::Uarch;
use facile_x86::Block;
use proptest::prelude::*;

const THRESHOLD: f64 = 0.6;

/// Fast analytic predictor pairs with healthy disagreement rates (same
/// rationale as the shrink proptests: no training, no simulator).
const PAIRS: [(&str, &str); 3] = [
    ("facile", "llvm-mca"),
    ("facile", "iaca"),
    ("llvm-mca", "cqa"),
];

/// Scan the seeded stream for the first block the pair disagrees on.
fn find_flagged(
    engine: &Engine,
    pair_idx: usize,
    uarch: Uarch,
    seed: u64,
) -> Option<(DiffPair<'_>, Block)> {
    let (a, b) = PAIRS[pair_idx];
    for gb in facile_bhive::BlockStream::new(seed).take(40) {
        let mode = if gb.looped {
            Mode::Loop
        } else {
            Mode::Unrolled
        };
        let pair = DiffPair::new(engine, a, b, uarch, mode).expect("builtin keys");
        if pair.delta(&gb.block).is_some_and(|d| d >= THRESHOLD) {
            return Some((pair, gb.block));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Soundness: the widened pattern still matches (subsumes) the
    /// original counterexample, and every block offered as validation
    /// evidence — the original plus each preserved sample — matches the
    /// pattern and reproduces the disagreement past the threshold.
    #[test]
    fn patterns_subsume_and_samples_reproduce(
        seed in 0u64..40,
        pair_idx in 0usize..3,
        uarch_idx in 0usize..3,
    ) {
        let engine = Engine::with_builtins();
        let uarch = [Uarch::Skl, Uarch::Icl, Uarch::Snb][uarch_idx];
        // `None` = no disagreement in this window: vacuously true case.
        if let Some((pair, block)) = find_flagged(&engine, pair_idx, uarch, seed) {
            let cfg = GenConfig::default();
            let res = generalize_block(&pair, &block, THRESHOLD, &cfg)
                .expect("block was flagged");
            // Subsumption: widening never un-matches the anchor.
            prop_assert!(
                res.pattern.matches(&block),
                "pattern {} does not match its own counterexample {}",
                res.pattern.render(),
                block.to_hex()
            );
            // The concrete pattern trivially matches; the widened one
            // must not have fewer slots.
            prop_assert_eq!(res.pattern.slots.len(), block.num_insts());
            // Evidence: validated[0] is the original, and every entry
            // matches the pattern and still disagrees past the threshold.
            prop_assert!(!res.validated.is_empty());
            prop_assert_eq!(res.validated[0].bytes(), block.bytes());
            for v in &res.validated {
                prop_assert!(res.pattern.matches(v), "validated block escapes pattern");
                let d = pair.delta(v);
                prop_assert!(
                    d.is_some_and(|d| d >= THRESHOLD),
                    "validated block {} has delta {:?} < {THRESHOLD}",
                    v.to_hex(),
                    d
                );
            }
            // A pattern with zero widenings is just the concrete block.
            if res.pattern.widenings() == 0 {
                prop_assert_eq!(
                    res.pattern.render(),
                    BlockPattern::concrete(&block).render()
                );
            }
        }
    }

    /// Determinism: generalizing the same flagged block on engines with
    /// different thread counts yields the same pattern and the same
    /// validated evidence (the sampling RNG is content-keyed, not
    /// schedule-keyed).
    #[test]
    fn generalization_is_thread_count_invariant(
        seed in 0u64..40,
        pair_idx in 0usize..3,
    ) {
        let engine1 = Engine::with_builtins().with_threads(1);
        let engine8 = Engine::with_builtins().with_threads(8);
        if let Some((pair1, block)) = find_flagged(&engine1, pair_idx, Uarch::Skl, seed) {
            let (a, b) = PAIRS[pair_idx];
            let mode = if block.ends_in_branch() { Mode::Loop } else { Mode::Unrolled };
            let pair8 = DiffPair::new(&engine8, a, b, Uarch::Skl, mode).expect("builtin keys");
            let cfg = GenConfig::default();
            let r1 = generalize_block(&pair1, &block, THRESHOLD, &cfg).expect("flagged");
            let r1b = generalize_block(&pair1, &block, THRESHOLD, &cfg).expect("flagged");
            let r8 = generalize_block(&pair8, &block, THRESHOLD, &cfg).expect("flagged");
            let hexes = |r: &facile_diff::PatternResult| {
                r.validated.iter().map(|v| v.to_hex()).collect::<Vec<_>>()
            };
            prop_assert_eq!(r1.pattern.render(), r1b.pattern.render());
            prop_assert_eq!(hexes(&r1), hexes(&r1b));
            prop_assert_eq!(r1.pattern.render(), r8.pattern.render());
            prop_assert_eq!(hexes(&r1), hexes(&r8));
        }
    }

    /// The full harness report — findings lifted, clustered, and ranked
    /// — serializes identically across runs and thread counts.
    #[test]
    fn clustered_report_is_deterministic(seed in 0u64..8) {
        let cfg = DiffConfig {
            selector: "facile,llvm-mca,iaca".to_string(),
            threshold: THRESHOLD,
            seed,
            count: 60,
            max_counterexamples: 8,
            generalize: true,
            ..DiffConfig::default()
        };
        let engine1 = Engine::with_builtins().with_threads(1);
        let engine8 = Engine::with_builtins().with_threads(8);
        let rep1 = run(&engine1, &cfg).expect("hunt");
        let rep1b = run(&engine1, &cfg).expect("hunt");
        let rep8 = run(&engine8, &cfg).expect("hunt");
        let json = |r: &facile_diff::DiffReport| {
            r.patterns.iter().map(|p| p.to_json()).collect::<Vec<_>>()
        };
        prop_assert_eq!(json(&rep1), json(&rep1b));
        prop_assert_eq!(json(&rep1), json(&rep8));
        // Every cluster's representative is a real finding and its
        // pattern validated at least the representative itself.
        for p in &rep1.patterns {
            prop_assert!(p.blocks >= 1);
            prop_assert!(p.validated >= 1);
            prop_assert!(
                rep1.findings.iter().any(|f| f.shrunk_hex == p.representative_hex),
                "representative {} is not a finding",
                p.representative_hex
            );
        }
    }
}
