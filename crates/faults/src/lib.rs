//! # facile-faults
//!
//! Deterministic, seeded fault injection for chaos-testing the facile
//! pipeline. The engine, server, and snapshot layers call the hooks in
//! this crate at well-known *injection points* (decode, annotate,
//! predict, snapshot save, connection handling, batcher loop); each hook
//! decides — purely as a function of the configured seed and the item
//! being processed — whether to inject a fault at that point.
//!
//! Two decision modes keep chaos runs reproducible:
//!
//! * **Content-keyed** ([`decide`]): the verdict hashes `(seed, point,
//!   key)` where `key` is the bytes of the item (e.g. the block being
//!   predicted). The same item is faulted on every run and on every
//!   thread interleaving, so a chaos run's "good rows" are byte-identical
//!   to a fault-free run over the non-faulted items.
//! * **Occurrence-keyed** ([`decide_seq`]): the verdict hashes `(seed,
//!   point, n)` for the n-th arrival at that point. Used where there is
//!   no stable content key (connection drops, snapshot saves) and where
//!   content keying would be wrong — a content-keyed connection drop
//!   would make every retry of the same request fail forever.
//!
//! ## Zero cost when disabled
//!
//! The whole mechanism sits behind the `injection` cargo feature, which
//! is **off by default**. Without it every public function compiles to an
//! inlineable no-op — release binaries carry no fault-injection code at
//! all. Test builds turn the feature on via dev-dependency feature
//! unification, and the CI chaos-smoke job builds the CLI with
//! `--features fault-injection` explicitly.
//!
//! ## Spec strings
//!
//! Faults are configured from a compact spec string (env var
//! `FACILE_FAULTS`, the `facile serve --faults` flag, or
//! programmatically via [`configure`]):
//!
//! ```text
//! seed=42,predict-panic=0.01,conn-drop=0.05,slow-predict=0.02,slow-ms=2
//! ```
//!
//! Each `<point>=<rate>` entry sets the injection probability (0.0–1.0)
//! for that point; `seed` picks the deterministic universe and `slow-ms`
//! sets the delay injected by `slow-predict`.

#![warn(missing_docs)]

/// Marker embedded in every injected panic payload. The quiet panic hook
/// (see [`install_quiet_panic_hook`]) suppresses payloads containing it,
/// and tests assert on it to distinguish injected panics from real bugs.
pub const PANIC_MARKER: &str = "facile-faults: injected panic";

/// An injection point: a named site in the pipeline where a fault can be
/// introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Point {
    /// Panic inside block decoding (engine stage 1).
    DecodePanic,
    /// Panic inside block annotation (engine stage 1).
    AnnotatePanic,
    /// Panic inside a predictor call (engine stage 2).
    PredictPanic,
    /// A predictor returns an error instead of a prediction.
    PredictError,
    /// A predictor call is delayed by `slow-ms` milliseconds.
    SlowPredict,
    /// A snapshot save fails with an injected I/O error.
    SnapshotFail,
    /// The server drops a connection before processing a request line.
    ConnDrop,
    /// The server's batcher thread panics between batches.
    BatcherPanic,
    /// An external-predictor request times out (the adapter reports
    /// `ExternalTimeout` without touching the subprocess).
    ExtTimeout,
    /// An external-predictor request observes a crashed subprocess (the
    /// adapter reports `ExternalCrashed` without touching the
    /// subprocess).
    ExtCrash,
}

impl Point {
    /// All injection points, in spec-key order.
    pub const ALL: [Point; 10] = [
        Point::DecodePanic,
        Point::AnnotatePanic,
        Point::PredictPanic,
        Point::PredictError,
        Point::SlowPredict,
        Point::SnapshotFail,
        Point::ConnDrop,
        Point::BatcherPanic,
        Point::ExtTimeout,
        Point::ExtCrash,
    ];

    /// The spec-string key for this point.
    pub fn name(self) -> &'static str {
        match self {
            Point::DecodePanic => "decode-panic",
            Point::AnnotatePanic => "annotate-panic",
            Point::PredictPanic => "predict-panic",
            Point::PredictError => "predict-error",
            Point::SlowPredict => "slow-predict",
            Point::SnapshotFail => "snapshot-fail",
            Point::ConnDrop => "conn-drop",
            Point::BatcherPanic => "batcher-panic",
            Point::ExtTimeout => "ext-timeout",
            Point::ExtCrash => "ext-crash",
        }
    }

    #[allow(dead_code)]
    fn index(self) -> usize {
        self as usize
    }
}

/// Whether fault injection was compiled into this binary. `false` in
/// default builds; [`configure`] is a no-op returning `Ok(false)` then.
pub fn compiled() -> bool {
    cfg!(feature = "injection")
}

#[cfg(feature = "injection")]
mod imp {
    use super::{Point, PANIC_MARKER};
    use std::hash::Hasher;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Once, RwLock};
    use std::time::Duration;

    const POINTS: usize = Point::ALL.len();
    const PPM: u64 = 1_000_000;

    struct Config {
        spec: String,
        seed: u64,
        /// Injection rate per point, in parts-per-million.
        rates: [u32; POINTS],
        slow: Duration,
    }

    static STATE: RwLock<Option<Config>> = RwLock::new(None);
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    static SEQ: [AtomicU64; POINTS] = [ZERO; POINTS];

    fn parse(spec: &str) -> Result<Config, String> {
        let mut cfg = Config {
            spec: spec.to_string(),
            seed: 0,
            rates: [0; POINTS],
            slow: Duration::from_millis(1),
        };
        let mut any = false;
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {tok:?} is not key=value"))?;
            match key {
                "seed" => {
                    cfg.seed = val
                        .parse()
                        .map_err(|_| format!("bad seed {val:?}: expected an unsigned integer"))?;
                }
                "slow-ms" => {
                    let ms: u64 = val
                        .parse()
                        .map_err(|_| format!("bad slow-ms {val:?}: expected milliseconds"))?;
                    cfg.slow = Duration::from_millis(ms);
                }
                _ => {
                    let point = Point::ALL
                        .iter()
                        .find(|p| p.name() == key)
                        .ok_or_else(|| format!("unknown fault key {key:?}"))?;
                    let rate: f64 = val
                        .parse()
                        .map_err(|_| format!("bad rate {val:?} for {key}: expected 0.0..=1.0"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("rate {rate} for {key} is outside 0.0..=1.0"));
                    }
                    cfg.rates[point.index()] = (rate * PPM as f64).round() as u32;
                    any = true;
                }
            }
        }
        if !any {
            return Err("fault spec enables no injection points".to_string());
        }
        Ok(cfg)
    }

    pub fn configure(spec: &str) -> Result<bool, String> {
        let cfg = parse(spec)?;
        let mut state = STATE.write().unwrap_or_else(|e| e.into_inner());
        for seq in &SEQ {
            seq.store(0, Ordering::Relaxed);
        }
        ACTIVE.store(true, Ordering::Release);
        *state = Some(cfg);
        Ok(true)
    }

    pub fn clear() {
        let mut state = STATE.write().unwrap_or_else(|e| e.into_inner());
        ACTIVE.store(false, Ordering::Release);
        *state = None;
    }

    pub fn active() -> bool {
        ACTIVE.load(Ordering::Acquire)
    }

    pub fn spec() -> Option<String> {
        let state = STATE.read().unwrap_or_else(|e| e.into_inner());
        state.as_ref().map(|c| c.spec.clone())
    }

    fn hit(seed: u64, point: Point, key: &[u8], rate_ppm: u32) -> bool {
        if rate_ppm == 0 {
            return false;
        }
        let mut h = facile_util::FxHasher::default();
        h.write_u64(seed);
        h.write_u8(point.index() as u8);
        h.write(key);
        h.finish() % PPM < u64::from(rate_ppm)
    }

    pub fn decide(point: Point, key: &[u8]) -> bool {
        if !active() {
            return false;
        }
        let state = STATE.read().unwrap_or_else(|e| e.into_inner());
        match state.as_ref() {
            Some(cfg) => hit(cfg.seed, point, key, cfg.rates[point.index()]),
            None => false,
        }
    }

    pub fn decide_seq(point: Point) -> bool {
        if !active() {
            return false;
        }
        let state = STATE.read().unwrap_or_else(|e| e.into_inner());
        match state.as_ref() {
            Some(cfg) if cfg.rates[point.index()] > 0 => {
                let n = SEQ[point.index()].fetch_add(1, Ordering::Relaxed);
                hit(cfg.seed, point, &n.to_le_bytes(), cfg.rates[point.index()])
            }
            _ => false,
        }
    }

    pub fn slow_predict_delay(key: &[u8]) -> Option<Duration> {
        if !active() {
            return None;
        }
        let state = STATE.read().unwrap_or_else(|e| e.into_inner());
        let cfg = state.as_ref()?;
        hit(
            cfg.seed,
            Point::SlowPredict,
            key,
            cfg.rates[Point::SlowPredict.index()],
        )
        .then_some(cfg.slow)
    }

    pub fn install_quiet_panic_hook() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(|s| s.as_str())
                    .or_else(|| info.payload().downcast_ref::<&str>().copied())
                    // Injected panics *begin* with the marker; merely
                    // mentioning it (say, a test assertion quoting an
                    // `internal-panic` reply) must still be reported.
                    .is_some_and(|s| s.starts_with(PANIC_MARKER));
                if !injected {
                    prev(info);
                }
            }));
        });
    }
}

#[cfg(not(feature = "injection"))]
mod imp {
    use super::Point;
    use std::time::Duration;

    #[inline(always)]
    pub fn configure(_spec: &str) -> Result<bool, String> {
        Ok(false)
    }
    #[inline(always)]
    pub fn clear() {}
    #[inline(always)]
    pub fn active() -> bool {
        false
    }
    #[inline(always)]
    pub fn spec() -> Option<String> {
        None
    }
    #[inline(always)]
    pub fn decide(_point: Point, _key: &[u8]) -> bool {
        false
    }
    #[inline(always)]
    pub fn decide_seq(_point: Point) -> bool {
        false
    }
    #[inline(always)]
    pub fn slow_predict_delay(_key: &[u8]) -> Option<Duration> {
        None
    }
    #[inline(always)]
    pub fn install_quiet_panic_hook() {}
}

/// Arm fault injection from a spec string (see the crate docs for the
/// grammar). Returns `Ok(true)` if injection is now active, `Ok(false)`
/// if this binary was built without the `injection` feature (the spec is
/// ignored), and `Err` if the spec is malformed. Reconfiguring resets
/// all occurrence counters, so runs are reproducible from any
/// `configure` call.
pub fn configure(spec: &str) -> Result<bool, String> {
    imp::configure(spec)
}

/// Arm fault injection from the `FACILE_FAULTS` environment variable.
/// Returns `Ok(false)` when the variable is unset or injection is not
/// compiled in.
pub fn configure_from_env() -> Result<bool, String> {
    match std::env::var("FACILE_FAULTS") {
        Ok(spec) if !spec.is_empty() => configure(&spec),
        _ => Ok(false),
    }
}

/// Disarm fault injection. Subsequent decisions all come back `false`.
pub fn clear() {
    imp::clear()
}

/// Whether fault injection is currently armed.
pub fn active() -> bool {
    imp::active()
}

/// The currently armed spec string, if any (for logging).
pub fn spec() -> Option<String> {
    imp::spec()
}

/// Content-keyed decision: should a fault fire at `point` for the item
/// identified by `key`? Deterministic in `(seed, point, key)` — the same
/// item gets the same verdict on every run and thread interleaving.
pub fn decide(point: Point, key: &[u8]) -> bool {
    imp::decide(point, key)
}

/// Occurrence-keyed decision: should a fault fire at the n-th arrival at
/// `point`? Deterministic in `(seed, point, n)`.
pub fn decide_seq(point: Point) -> bool {
    imp::decide_seq(point)
}

/// Panic with the injected-fault marker if [`decide`] fires for
/// `(point, key)`.
pub fn maybe_panic(point: Point, key: &[u8]) {
    if decide(point, key) {
        panic!("{PANIC_MARKER} at {}", point.name());
    }
}

/// Panic with the injected-fault marker if [`decide_seq`] fires at
/// `point`.
pub fn maybe_panic_seq(point: Point) {
    if decide_seq(point) {
        panic!("{PANIC_MARKER} at {}", point.name());
    }
}

/// The delay to inject for this predictor call, if the `slow-predict`
/// point fires for `key`.
pub fn slow_predict_delay(key: &[u8]) -> Option<std::time::Duration> {
    imp::slow_predict_delay(key)
}

/// Install a process-wide panic hook that suppresses the default
/// "thread panicked" stderr noise for *injected* panics (payloads
/// containing [`PANIC_MARKER`]) while forwarding every real panic to the
/// previous hook. Idempotent; a no-op without the `injection` feature.
pub fn install_quiet_panic_hook() {
    imp::install_quiet_panic_hook()
}

#[cfg(all(test, feature = "injection"))]
mod tests {
    use super::*;

    /// Serialize tests that touch the process-global fault state.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        for bad in [
            "",
            "predict-panic",
            "predict-panic=nope",
            "predict-panic=1.5",
            "warp-core=0.5",
            "seed=-3",
        ] {
            assert!(configure(bad).is_err(), "spec {bad:?} should be rejected");
        }
        clear();
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let _g = guard();
        assert!(configure("seed=42,predict-panic=0.5").unwrap());
        let keys: Vec<Vec<u8>> = (0u32..512).map(|i| i.to_le_bytes().to_vec()).collect();
        let first: Vec<bool> = keys
            .iter()
            .map(|k| decide(Point::PredictPanic, k))
            .collect();
        let second: Vec<bool> = keys
            .iter()
            .map(|k| decide(Point::PredictPanic, k))
            .collect();
        assert_eq!(first, second, "content-keyed decisions are stable");
        let hits = first.iter().filter(|h| **h).count();
        assert!(
            (128..=384).contains(&hits),
            "a 50% rate should hit roughly half of 512 keys, got {hits}"
        );

        assert!(configure("seed=43,predict-panic=0.5").unwrap());
        let reseeded: Vec<bool> = keys
            .iter()
            .map(|k| decide(Point::PredictPanic, k))
            .collect();
        assert_ne!(first, reseeded, "a different seed picks different items");
        clear();
        assert!(keys.iter().all(|k| !decide(Point::PredictPanic, k)));
    }

    #[test]
    fn points_are_independent() {
        let _g = guard();
        assert!(configure("seed=7,decode-panic=1.0").unwrap());
        assert!(decide(Point::DecodePanic, b"x"));
        assert!(!decide(Point::PredictPanic, b"x"));
        assert!(!decide_seq(Point::ConnDrop));
        clear();
    }

    #[test]
    fn seq_decisions_reset_on_configure() {
        let _g = guard();
        assert!(configure("seed=1,conn-drop=0.5").unwrap());
        let a: Vec<bool> = (0..64).map(|_| decide_seq(Point::ConnDrop)).collect();
        assert!(configure("seed=1,conn-drop=0.5").unwrap());
        let b: Vec<bool> = (0..64).map(|_| decide_seq(Point::ConnDrop)).collect();
        assert_eq!(a, b, "occurrence counters reset with the config");
        assert!(a.iter().any(|h| *h) && a.iter().any(|h| !*h));
        clear();
    }

    #[test]
    fn slow_predict_uses_configured_delay() {
        let _g = guard();
        assert!(configure("seed=5,slow-predict=1.0,slow-ms=3").unwrap());
        assert_eq!(
            slow_predict_delay(b"k"),
            Some(std::time::Duration::from_millis(3))
        );
        clear();
        assert_eq!(slow_predict_delay(b"k"), None);
    }

    #[test]
    fn injected_panics_carry_the_marker() {
        let _g = guard();
        assert!(configure("seed=9,predict-panic=1.0").unwrap());
        let err = std::panic::catch_unwind(|| maybe_panic(Point::PredictPanic, b"k"))
            .expect_err("a 100% rate always panics");
        let msg = err
            .downcast_ref::<String>()
            .expect("injected payloads are Strings");
        assert!(msg.contains(PANIC_MARKER), "{msg}");
        clear();
    }
}
