//! The `facile diff` subcommand: differential testing from the command
//! line.
//!
//! Runs a seeded inconsistency hunt over two or more registry predictors
//! (see `facile-diff`), printing shrunken counterexamples with both
//! predictors' numbers — and typed explanations, where available — side
//! by side. Output is deterministic: for a fixed seed/config it is
//! byte-identical across runs and `--threads` values.
//!
//! Exit codes: `0` success (findings or not), `1` runtime error (e.g. an
//! unreadable `--input` file), `2` usage error (bad flag, unknown
//! predictor key, bad threshold), `3` when `--fail-on-unclassified` is
//! set and an unclassified disagreement was reported.

use facile_diff::{run, DiffConfig, DiffError};
use facile_engine::{Engine, PredictorRegistry};
use facile_uarch::Uarch;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "\
facile diff — cross-predictor inconsistency hunting with block shrinking

USAGE:
    facile diff [OPTIONS]

OPTIONS:
    --predictors <KEYS>  two or more registry keys / glob patterns
                         (default `facile,sim`). `ext:<name>=<cmd...>`
                         tokens define and select an external tool
                         speaking the line-JSON protocol
    --ext-config <FILE>  register external predictors from a TOML file
                         (see the README's External predictors section)
    --uarch <ABBR>       microarchitecture (SNB..RKL; default SKL)
    --all-uarchs         hunt on all nine microarchitectures
    --seed <N>           generator seed (default 0)
    --count <N>          generated blocks to scan (default 200)
    --threshold <X>      relative-disagreement threshold, > 0
                         (default 0.5: flag when the larger prediction
                         exceeds the smaller by 50%)
    --preset <NAME>      generation preset: balanced, numeric, scalar-int,
                         crypto, database, compiler, simd, vector-heavy,
                         memory-heavy (default balanced)
    --corpus             also scan the built-in stress-kernel corpus
    --input <FILE>       also scan blocks from a BHive CSV file
    --pivot <KEY>        only compare pairs that include this predictor
                         (e.g. --pivot facile hunts every baseline against
                         the interpretable reference, so every finding is
                         classifiable)
    --max-counterexamples <N>
                         cap on shrunk/reported findings (default 25)
    --no-shrink          report flagged blocks without delta-debugging
    --generalize         lift each finding into an abstract block
                         pattern (mnemonic group × operand shape),
                         validate it by sampling concrete instantiations,
                         and report ranked pattern clusters
    --gen-samples <N>    instantiations sampled per proposed pattern
                         widening (default 4)
    --gen-min-preserved <N>
                         samples that must preserve the disagreement for
                         a widening to be accepted (default 3)
    --format <FMT>       text | json (default text); json emits one object
                         per finding, then the disagreement matrix, then a
                         summary object
    --threads <N>        worker threads (default: all cores)
    --fail-on-unclassified
                         exit 3 if any finding cannot be classified from
                         the typed explanations
    --help               show this help
";

struct DiffOptions {
    cfg: DiffConfig,
    json: bool,
    threads: Option<usize>,
    fail_on_unclassified: bool,
    input: Option<String>,
    ext_config: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Option<DiffOptions>, String> {
    let mut o = DiffOptions {
        cfg: DiffConfig::default(),
        json: false,
        threads: None,
        fail_on_unclassified: false,
        input: None,
        ext_config: None,
    };
    let mut all_uarchs = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--predictors" => o.cfg.selector = val("--predictors")?.clone(),
            "--uarch" => {
                o.cfg.uarchs = vec![val("--uarch")?
                    .parse::<Uarch>()
                    .map_err(|e| e.to_string())?];
            }
            "--all-uarchs" => all_uarchs = true,
            "--seed" => {
                o.cfg.seed = val("--seed")?
                    .parse()
                    .map_err(|_| "numeric --seed".to_string())?;
            }
            "--count" => {
                o.cfg.count = val("--count")?
                    .parse()
                    .map_err(|_| "numeric --count".to_string())?;
            }
            "--threshold" => {
                let raw = val("--threshold")?;
                let t: f64 = raw
                    .parse()
                    .map_err(|_| format!("numeric --threshold, got {raw:?}"))?;
                if !t.is_finite() || t <= 0.0 {
                    return Err(format!(
                        "--threshold must be a positive finite number, got {raw}"
                    ));
                }
                o.cfg.threshold = t;
            }
            "--preset" => {
                let name = val("--preset")?;
                o.cfg.preset = facile_bhive::Preset::by_name(name).ok_or_else(|| {
                    format!(
                        "unknown preset: {name} (available: {})",
                        facile_bhive::Preset::ALL
                            .iter()
                            .map(|p| p.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
            }
            "--corpus" => o.cfg.include_corpus = true,
            "--input" => o.input = Some(val("--input")?.clone()),
            "--pivot" => o.cfg.pivot = Some(val("--pivot")?.clone()),
            "--max-counterexamples" => {
                o.cfg.max_counterexamples = val("--max-counterexamples")?
                    .parse()
                    .map_err(|_| "numeric --max-counterexamples".to_string())?;
            }
            "--no-shrink" => o.cfg.shrink = false,
            "--generalize" => o.cfg.generalize = true,
            "--gen-samples" => {
                o.cfg.gen_samples = val("--gen-samples")?
                    .parse()
                    .map_err(|_| "numeric --gen-samples".to_string())?;
            }
            "--gen-min-preserved" => {
                o.cfg.gen_min_preserved = val("--gen-min-preserved")?
                    .parse()
                    .map_err(|_| "numeric --gen-min-preserved".to_string())?;
            }
            "--ext-config" => o.ext_config = Some(val("--ext-config")?.clone()),
            "--format" => {
                o.json = match val("--format")?.as_str() {
                    "text" | "human" => false,
                    "json" => true,
                    other => return Err(format!("unknown format: {other} (text|json)")),
                };
            }
            "--threads" => {
                o.threads = Some(
                    val("--threads")?
                        .parse()
                        .map_err(|_| "numeric --threads".to_string())?,
                );
            }
            "--fail-on-unclassified" => o.fail_on_unclassified = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if all_uarchs {
        o.cfg.uarchs = Uarch::ALL.to_vec();
    }
    Ok(Some(o))
}

fn load_input(path: &str) -> Result<Vec<(String, facile_x86::Block)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let records =
        facile_bhive::csv::parse(&text).map_err(|(line, e)| format!("{path}:{line}: {e}"))?;
    Ok(records
        .into_iter()
        .enumerate()
        .map(|(i, r)| (format!("input-{i}"), r.block))
        .collect())
}

fn emit(report: &facile_diff::DiffReport, json: bool, generalize: bool) -> std::io::Result<()> {
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    if json {
        for f in &report.findings {
            writeln!(out, "{}", f.to_json())?;
        }
        // Only with --generalize, so default JSON output stays stable.
        if generalize {
            let pats: Vec<String> = report.patterns.iter().map(|p| p.to_json()).collect();
            writeln!(out, "{{\"patterns\":[{}]}}", pats.join(","))?;
        }
        let cells: Vec<String> = report.matrix.iter().map(|c| c.to_json()).collect();
        writeln!(out, "{{\"matrix\":[{}]}}", cells.join(","))?;
        writeln!(out, "{}", report.summary_json())?;
    } else {
        writeln!(
            out,
            "scanned {} blocks (seed {}), {} comparisons, {} flagged at threshold {}",
            report.scanned_blocks,
            report.seed,
            report.rows_compared,
            report.flagged,
            report.threshold,
        )?;
        for cell in &report.matrix {
            writeln!(
                out,
                "  {} {} vs {}: {}/{} flagged (rate {:.3}, max delta {:.2})",
                cell.uarch,
                cell.a,
                cell.b,
                cell.flagged,
                cell.compared,
                cell.rate(),
                cell.max_delta,
            )?;
        }
        if report.findings.is_empty() {
            writeln!(out, "no counterexamples at this threshold")?;
        }
        for (i, f) in report.findings.iter().enumerate() {
            writeln!(out, "counterexample #{i}:")?;
            for line in f.to_text().lines() {
                writeln!(out, "  {line}")?;
            }
        }
        if report.truncated > 0 {
            writeln!(
                out,
                "({} flagged disagreements beyond --max-counterexamples were not shrunk)",
                report.truncated
            )?;
        }
        if generalize {
            if report.patterns.is_empty() {
                writeln!(out, "no inconsistency patterns (nothing generalized)")?;
            } else {
                writeln!(out, "inconsistency patterns:")?;
                for (i, p) in report.patterns.iter().enumerate() {
                    writeln!(out, "  pattern #{i}:")?;
                    for line in p.to_text().lines() {
                        writeln!(out, "    {line}")?;
                    }
                }
            }
        }
    }
    out.flush()
}

/// Entry point for `facile diff` (args exclude the subcommand itself).
pub fn main(args: Vec<String>) -> ExitCode {
    let mut o = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &o.input {
        match load_input(path) {
            Ok(blocks) => o.cfg.extra_blocks = blocks,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(1);
            }
        }
    }
    let mut engine = Engine::new(PredictorRegistry::with_builtins());
    // `ext:<name>=<cmd>` selector tokens define external tools; the
    // selector the hunt sees carries only their bare `ext:<name>` keys.
    match facile_engine::register_selector_externals(engine.registry_mut(), &o.cfg.selector) {
        Ok(rewritten) => o.cfg.selector = rewritten,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &o.ext_config {
        if let Err(e) = facile_engine::load_external_config(engine.registry_mut(), path) {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    }
    if let Some(t) = o.threads {
        engine = engine.with_threads(t);
    }
    let report = match run(&engine, &o.cfg) {
        Ok(r) => r,
        Err(
            e @ (DiffError::Predict(_)
            | DiffError::NeedTwoPredictors { .. }
            | DiffError::PivotNotSelected { .. }),
        ) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    if let Err(e) = emit(&report, o.json, o.cfg.generalize) {
        eprintln!("error: {e}");
        return ExitCode::from(1);
    }
    if o.fail_on_unclassified && report.has_unclassified() {
        eprintln!(
            "error: {} finding(s) could not be classified from the typed explanations",
            report
                .findings
                .iter()
                .filter(|f| !f.class.is_classified())
                .count()
        );
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}
