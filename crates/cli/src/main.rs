//! `facile` — command-line front end for the throughput model, built on
//! the batched prediction engine (`facile-engine`).
//!
//! ```text
//! facile --hex 4801c84889c8 --uarch SKL --mode auto
//! facile --kernel imul-chain --all-uarchs
//! facile --hex 01c8 --compare
//! facile --hex 4801c8 --explain --format json
//! echo 4801c8480fafd0 | facile --batch --predictors 'facile,sim' --format json
//! facile --batch --all-uarchs --format csv --explain < blocks.csv
//! facile diff --predictors facile,sim --seed 42 --count 500 --format json
//! ```
//!
//! Batch mode reads one block per line from stdin — either bare hex or
//! BHive CSV (`hex,...`; everything after the first comma is ignored) —
//! and emits one row per `(block, uarch, predictor)` combination. Rows
//! are ordered and byte-identical regardless of `--threads`, so output
//! is diffable across runs and machines. Undecodable lines become error
//! rows; they never abort the batch.
//!
//! `--explain` upgrades rows to full explanation detail: structured
//! per-component bounds, critical-chain edges, and port loads as an
//! `explanation` JSON object (`--format json`/`csv`) or an indented
//! text summary (`--format text`).

use facile_core::{Detail, Explanation, Facile, Mode, Report};
use facile_engine::{BatchItem, Engine, ItemResult, PredictorRegistry};
use facile_explain::json_escape;
use facile_isa::AnnotatedBlock;
use facile_uarch::Uarch;
use facile_x86::Block;
use std::io::{BufRead, Write};
use std::process::ExitCode;

mod diff_cmd;

struct Options {
    hex: Option<String>,
    kernel: Option<String>,
    batch: bool,
    uarch: Uarch,
    all_uarchs: bool,
    mode: ModeArg,
    compare: bool,
    predictors: String,
    format: Format,
    explain: bool,
    threads: Option<usize>,
    stats: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum ModeArg {
    Auto,
    Loop,
    Unroll,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Human,
    Json,
    Csv,
}

const USAGE: &str = "\
facile — fast, accurate, and interpretable basic-block throughput prediction

USAGE:
    facile --hex <BYTES> [OPTIONS]
    facile --kernel <NAME> [OPTIONS]
    facile --batch [OPTIONS] < blocks.txt
    facile diff [DIFF OPTIONS]        (see `facile diff --help`)

INPUT:
    --hex <BYTES>      basic block as hex machine code (BHive format)
    --kernel <NAME>    analyze a named kernel from the built-in corpus
    --batch            read blocks from stdin, one per line (bare hex or
                       BHive CSV `hex,...`; `#` lines are comments)

OPTIONS:
    --uarch <ABBR>     microarchitecture (SNB..RKL; default SKL)
    --all-uarchs       analyze on all nine microarchitectures
    --mode <MODE>      auto | loop (TPL) | unroll (TPU); default auto:
                       loop if the block ends in a branch
    --predictors <KEYS> comma-separated registry keys or glob patterns
                       (default `facile`; e.g. `facile,sim`, `*`)
    --compare          shorthand for adding `sim` to --predictors
    --format <FMT>     text | json | csv (default text); json/csv are
                       machine-readable, one row per (block, uarch,
                       predictor)
    --explain          attach the full typed explanation to every row:
                       per-component bounds with evidence, critical
                       dependence chain, and port loads (an `explanation`
                       object with --format json/csv, indented text
                       otherwise); composes with --batch
    --json, --csv      deprecated aliases for --format json / --format csv
    --threads <N>      batch worker threads (default: all cores)
    --stats            report run counters after the run (batch planner
                       dedup, two-level block cache, descriptor intern
                       table, per-kernel mean/max timing): a trailing JSON
                       object with --format json, stderr lines otherwise
    --list-predictors  list registered predictor keys
    --list-kernels     list the built-in corpus kernels
    --help             show this help
";

fn parse_args() -> Result<Option<Options>, String> {
    let mut o = Options {
        hex: None,
        kernel: None,
        batch: false,
        uarch: Uarch::Skl,
        all_uarchs: false,
        mode: ModeArg::Auto,
        compare: false,
        predictors: String::from("facile"),
        format: Format::Human,
        explain: false,
        threads: None,
        stats: false,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().is_none() {
        return Err("no input given".into());
    }
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list-kernels" => {
                for k in facile_bhive::kernels() {
                    println!("{:<16} {}", k.name, k.stresses);
                }
                return Ok(None);
            }
            "--list-predictors" => {
                let registry = PredictorRegistry::with_builtins();
                for key in registry.keys() {
                    let p = registry.get(key).expect("listed key resolves");
                    let notion = p
                        .native_notion()
                        .map_or_else(|| "both".to_string(), |m| m.to_string());
                    println!("{key:<14} {:<20} native notion: {notion}", p.name());
                }
                return Ok(None);
            }
            "--hex" => o.hex = Some(val("--hex")?),
            "--kernel" => o.kernel = Some(val("--kernel")?),
            "--batch" => o.batch = true,
            "--uarch" => {
                o.uarch = val("--uarch")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--all-uarchs" => o.all_uarchs = true,
            "--mode" => {
                o.mode = match val("--mode")?.as_str() {
                    "auto" => ModeArg::Auto,
                    "loop" | "tpl" => ModeArg::Loop,
                    "unroll" | "tpu" => ModeArg::Unroll,
                    other => return Err(format!("unknown mode: {other}")),
                };
            }
            "--compare" => o.compare = true,
            "--predictors" => o.predictors = val("--predictors")?,
            "--format" => {
                o.format = match val("--format")?.as_str() {
                    "text" | "human" => Format::Human,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format: {other} (text|json|csv)")),
                };
            }
            "--explain" => o.explain = true,
            "--json" => {
                eprintln!("note: --json is deprecated; use --format json");
                o.format = Format::Json;
            }
            "--csv" => {
                eprintln!("note: --csv is deprecated; use --format csv");
                o.format = Format::Csv;
            }
            "--threads" => {
                o.threads = Some(
                    val("--threads")?
                        .parse()
                        .map_err(|_| "numeric --threads".to_string())?,
                );
            }
            "--stats" => o.stats = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if o.compare && !o.predictors.split(',').any(|t| t.trim() == "sim") {
        o.predictors.push_str(",sim");
    }
    Ok(Some(o))
}

fn uarch_list(o: &Options) -> Vec<Uarch> {
    if o.all_uarchs {
        Uarch::ALL.to_vec()
    } else {
        vec![o.uarch]
    }
}

fn fixed_mode(o: &Options) -> Option<Mode> {
    match o.mode {
        ModeArg::Auto => None,
        ModeArg::Loop => Some(Mode::Loop),
        ModeArg::Unroll => Some(Mode::Unrolled),
    }
}

fn detail(o: &Options) -> Detail {
    if o.explain {
        Detail::Full
    } else {
        Detail::Brief
    }
}

/// CSV field quoting per RFC 4180 (only when needed).
fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn mode_str(mode: Option<Mode>) -> &'static str {
    match mode {
        Some(Mode::Unrolled) => "tpu",
        Some(Mode::Loop) => "tpl",
        None => "",
    }
}

const CSV_HEADER: &str = "block,uarch,mode,predictor,status,throughput,bottleneck,error";

fn csv_header(explain: bool) -> String {
    if explain {
        format!("{CSV_HEADER},explanation")
    } else {
        CSV_HEADER.to_string()
    }
}

fn emit_row<W: Write + ?Sized>(
    out: &mut W,
    format: Format,
    explain: bool,
    r: &ItemResult,
) -> std::io::Result<()> {
    match format {
        Format::Json => {
            let core = format!(
                "\"block\":\"{}\",\"uarch\":\"{}\",\"mode\":\"{}\",\"predictor\":\"{}\"",
                json_escape(&r.block_hex),
                r.uarch,
                mode_str(r.mode),
                json_escape(&r.predictor),
            );
            match &r.prediction {
                Ok(p) => {
                    let bn = p
                        .bottleneck
                        .map_or_else(|| "null".to_string(), |b| format!("\"{}\"", b.name()));
                    let expl = p
                        .explanation
                        .as_ref()
                        .map_or_else(String::new, |e| format!(",\"explanation\":{}", e.to_json()));
                    writeln!(
                        out,
                        "{{{core},\"status\":\"ok\",\"throughput\":{:.4},\"bottleneck\":{bn}{expl}}}",
                        p.throughput
                    )
                }
                Err(e) => writeln!(
                    out,
                    "{{{core},\"status\":\"error\",\"code\":\"{}\",\"error\":\"{}\"}}",
                    e.code(),
                    json_escape(&e.to_string())
                ),
            }
        }
        Format::Csv => {
            let extra = |expl_field: &str| {
                if explain {
                    format!(",{expl_field}")
                } else {
                    String::new()
                }
            };
            match &r.prediction {
                Ok(p) => writeln!(
                    out,
                    "{},{},{},{},ok,{:.4},{},{}",
                    csv_escape(&r.block_hex),
                    r.uarch,
                    mode_str(r.mode),
                    csv_escape(&r.predictor),
                    p.throughput,
                    p.bottleneck.map_or("", |b| b.name()),
                    extra(
                        &p.explanation
                            .as_ref()
                            .map_or_else(String::new, |e| { csv_escape(&e.to_json()) })
                    ),
                ),
                Err(e) => writeln!(
                    out,
                    "{},{},{},{},{},,,{}{}",
                    csv_escape(&r.block_hex),
                    r.uarch,
                    mode_str(r.mode),
                    csv_escape(&r.predictor),
                    e.code(),
                    csv_escape(&e.to_string()),
                    extra(""),
                ),
            }
        }
        Format::Human => match &r.prediction {
            Ok(p) => {
                writeln!(
                    out,
                    "{:<24} {:<4} {:<3} {:<12} {:>8.2} cyc/iter{}",
                    r.block_hex,
                    r.uarch.to_string(),
                    mode_str(r.mode),
                    r.predictor,
                    p.throughput,
                    p.bottleneck
                        .map_or_else(String::new, |b| format!("  bottleneck: {b}")),
                )?;
                if let Some(e) = &p.explanation {
                    for line in e.to_text().lines() {
                        writeln!(out, "    {line}")?;
                    }
                }
                Ok(())
            }
            Err(e) => writeln!(
                out,
                "{:<24} {:<4} {:<3} {:<12} error: {e}",
                r.block_hex,
                r.uarch.to_string(),
                mode_str(r.mode),
                r.predictor,
            ),
        },
    }
}

fn build_engine(o: &Options) -> Engine {
    let mut engine = Engine::new(PredictorRegistry::with_builtins());
    if let Some(t) = o.threads {
        engine = engine.with_threads(t);
    }
    if o.stats {
        // `--stats` reports per-kernel timing, which is only collected
        // while the opt-in accounting is on.
        Engine::set_kernel_timing(true);
    }
    engine
}

/// Counters accumulated over a run (batch mode drops annotations
/// between chunks to bound memory, so hits/misses are summed across
/// chunks and resident-entry counts are high-water marks).
#[derive(Default, Clone, Copy)]
struct StatsTally {
    planned: u64,
    deduped: u64,
    ann_hits: u64,
    ann_misses: u64,
    decode_hits: u64,
    decode_misses: u64,
    ann_entries: usize,
    blocks: usize,
}

impl StatsTally {
    fn absorb(&mut self, s: facile_engine::EngineStats) {
        // Planner counters are engine-lifetime totals, not per-chunk
        // deltas: take the latest value instead of summing.
        self.planned = s.planner.items;
        self.deduped = s.planner.deduped;
        self.ann_hits += s.annotation.hits;
        self.ann_misses += s.annotation.misses;
        self.decode_hits += s.annotation.decode_hits;
        self.decode_misses += s.annotation.decode_misses;
        self.ann_entries = self.ann_entries.max(s.annotation.entries);
        self.blocks = self.blocks.max(s.annotation.blocks);
    }
}

/// Emit planner/cache counters and (when collected) per-kernel timing:
/// a trailing JSON object on stdout with JSON output, a human-readable
/// summary on stderr otherwise (CSV output stays pure).
fn emit_stats<W: Write + ?Sized>(
    out: &mut W,
    format: Format,
    t: StatsTally,
) -> std::io::Result<()> {
    let i = facile_isa::intern_stats();
    let kernels = facile_core::timing::snapshot();
    let kernel_rows: Vec<(facile_core::Component, facile_engine::KernelTiming)> =
        facile_core::Component::ALL
            .into_iter()
            .map(|c| (c, kernels[c as usize]))
            .filter(|(_, k)| k.count > 0)
            .collect();
    match format {
        Format::Json => {
            let kernel_json: Vec<String> = kernel_rows
                .iter()
                .map(|(c, k)| {
                    format!(
                        "{{\"kernel\":\"{}\",\"count\":{},\"mean_us\":{:.3},\"max_us\":{:.3}}}",
                        c.name(),
                        k.count,
                        k.mean_us,
                        k.max_us
                    )
                })
                .collect();
            writeln!(
                out,
                "{{\"stats\":{{\"planner\":{{\"items\":{},\"deduped\":{}}},\
                 \"block_cache\":{{\"decode_hits\":{},\"decode_misses\":{},\"annotate_hits\":{},\
                 \"annotate_misses\":{},\"blocks\":{},\"annotations\":{}}},\
                 \"intern_table\":{{\"hits\":{},\"misses\":{},\"core_hits\":{},\"core_misses\":{},\
                 \"byte_entries\":{},\"entries\":{}}},\"kernels\":[{}]}}}}",
                t.planned,
                t.deduped,
                t.decode_hits,
                t.decode_misses,
                t.ann_hits,
                t.ann_misses,
                t.blocks,
                t.ann_entries,
                i.hits,
                i.misses,
                i.core_hits,
                i.core_misses,
                i.byte_entries,
                i.entries,
                kernel_json.join(",")
            )
        }
        Format::Csv | Format::Human => {
            eprintln!(
                "stats: planner {} items / {} deduped; block cache {} decode hits / {} decode \
                 misses / {} annotate hits / {} annotate misses ({} blocks, {} annotations); \
                 intern table {} hits / {} misses ({} core hits / {} core misses, {} byte \
                 entries, {} descriptors)",
                t.planned,
                t.deduped,
                t.decode_hits,
                t.decode_misses,
                t.ann_hits,
                t.ann_misses,
                t.blocks,
                t.ann_entries,
                i.hits,
                i.misses,
                i.core_hits,
                i.core_misses,
                i.byte_entries,
                i.entries
            );
            for (c, k) in kernel_rows {
                eprintln!(
                    "stats: kernel {} mean {:.2} us / max {:.2} us over {} calls",
                    c.name(),
                    k.mean_us,
                    k.max_us,
                    k.count
                );
            }
            Ok(())
        }
    }
}

/// Batch mode: stream stdin lines through the engine.
fn run_batch(o: &Options) -> Result<(), String> {
    let engine = build_engine(o);
    let uarchs = uarch_list(o);
    let mode = fixed_mode(o);
    let row_detail = detail(o);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    if o.format == Format::Csv {
        writeln!(&mut out, "{}", csv_header(o.explain)).map_err(|e| e.to_string())?;
    }

    // Stream in chunks: bounded memory on arbitrarily large inputs, and
    // each chunk still fans out in parallel across the worker pool.
    const CHUNK: usize = 4096;
    let mut items: Vec<BatchItem> = Vec::with_capacity(CHUNK);
    let mut tally = StatsTally::default();
    let flush = |items: &mut Vec<BatchItem>,
                 out: &mut dyn Write,
                 tally: &mut StatsTally|
     -> Result<(), String> {
        if items.is_empty() {
            return Ok(());
        }
        let rows = engine
            .predict_batch(items, &o.predictors)
            .map_err(|e| e.to_string())?;
        for r in &rows {
            emit_row(out, o.format, o.explain, r).map_err(|e| e.to_string())?;
        }
        items.clear();
        // Annotations are only reused within a chunk; dropping them here
        // keeps memory bounded on arbitrarily large streams.
        tally.absorb(engine.cache_stats());
        engine.clear_cache();
        Ok(())
    };
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        // BHive CSV line shape (block = everything before the first
        // comma); hex validation stays with the engine so bad blocks
        // become error rows instead of aborting the stream.
        let Some(hex) = facile_bhive::csv::hex_field(&line) else {
            continue;
        };
        let hex = hex.to_string();
        for &u in &uarchs {
            items.push(BatchItem {
                input: facile_engine::BlockInput::Hex(hex.clone()),
                uarch: u,
                mode,
                detail: row_detail,
            });
        }
        if items.len() >= CHUNK {
            flush(&mut items, &mut out, &mut tally)?;
        }
    }
    flush(&mut items, &mut out, &mut tally)?;
    if o.stats {
        emit_stats(&mut out, o.format, tally).map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())
}

fn load_block(o: &Options) -> Result<Block, String> {
    match (&o.hex, &o.kernel) {
        (Some(h), None) => Block::from_hex(h).map_err(|e| format!("cannot decode block: {e}")),
        (None, Some(k)) => facile_bhive::kernel(k)
            .map(|k| k.block)
            .ok_or_else(|| format!("unknown kernel: {k} (try --list-kernels)")),
        _ => Err("provide exactly one of --hex, --kernel, or --batch".into()),
    }
}

/// `--explain` extras for the single-block text report: the contended-port
/// load map and the per-instruction attribution with disassembly.
fn print_explain_details(ab: &AnnotatedBlock, e: &Explanation) {
    if let Some(p) = e.ports() {
        if !p.port_loads.is_empty() {
            print!("port loads:");
            for l in &p.port_loads {
                print!(" {}={:.2}", l.ports, l.uops);
            }
            println!();
        }
    }
    let contributors: Vec<_> = e.attributions.iter().filter(|a| !a.is_zero()).collect();
    if !contributors.is_empty() {
        println!("per-instruction attribution:");
        for a in contributors {
            let inst = ab.insts()[a.inst as usize].inst();
            let mut line = format!("  #{:<2} {:<28}", a.inst, inst.to_string());
            if a.critical_port_uops > 0.0 {
                line.push_str(&format!(" ports={:.2}", a.critical_port_uops));
            }
            if a.chain_latency > 0.0 {
                line.push_str(&format!(" chain={:.2}", a.chain_latency));
            }
            println!("{line}");
        }
    }
}

/// Single-block mode: the interpretable report (plus any extra
/// predictors), or machine-readable rows with --format json/csv.
fn run_single(o: &Options) -> Result<(), String> {
    let block = load_block(o)?;
    if block.is_empty() {
        return Err("empty basic block".into());
    }
    let mode = fixed_mode(o).unwrap_or(if block.ends_in_branch() {
        Mode::Loop
    } else {
        Mode::Unrolled
    });
    let engine = build_engine(o);
    let uarchs = uarch_list(o);

    if o.format != Format::Human {
        let items: Vec<BatchItem> = uarchs
            .iter()
            .map(|&u| {
                BatchItem::block(block.clone(), u)
                    .with_mode(mode)
                    .with_detail(detail(o))
            })
            .collect();
        let rows = engine
            .predict_batch(&items, &o.predictors)
            .map_err(|e| e.to_string())?;
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        if o.format == Format::Csv {
            writeln!(&mut out, "{}", csv_header(o.explain)).map_err(|e| e.to_string())?;
        }
        for r in &rows {
            emit_row(&mut out, o.format, o.explain, r).map_err(|e| e.to_string())?;
        }
        if o.stats {
            let mut tally = StatsTally::default();
            tally.absorb(engine.cache_stats());
            emit_stats(&mut out, o.format, tally).map_err(|e| e.to_string())?;
        }
        return out.flush().map_err(|e| e.to_string());
    }

    println!(
        "block ({} instructions, {} bytes):",
        block.num_insts(),
        block.byte_len()
    );
    print!("{block}");
    println!();
    let extra = engine
        .registry()
        .resolve(&o.predictors)
        .map_err(|e| e.to_string())?;
    for &uarch in &uarchs {
        let ab = engine.annotate(&block, uarch);
        let explanation = Facile::new().explain(&ab, mode);
        print!("{}", Report::new(&ab, &explanation));
        if o.explain {
            print_explain_details(&ab, &explanation);
        }
        println!();
        for p in extra.iter().filter(|p| p.key() != "facile") {
            match p.predict(&facile_engine::PredictRequest::new(&ab, mode)) {
                Ok(pred) => println!("{}: {:.2} cycles/iteration", p.name(), pred.throughput),
                Err(e) => println!("{}: error: {e}", p.name()),
            }
        }
        if !extra.is_empty() && extra.iter().any(|p| p.key() != "facile") {
            println!();
        }
    }
    if o.stats {
        let mut tally = StatsTally::default();
        tally.absorb(engine.cache_stats());
        emit_stats(&mut std::io::stderr(), Format::Human, tally).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("diff") {
        return diff_cmd::main(std::env::args().skip(2).collect());
    }
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = if opts.batch {
        run_batch(&opts)
    } else {
        run_single(&opts)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
