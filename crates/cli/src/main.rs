//! `facile` — command-line front end for the throughput model, built on
//! the batched prediction engine (`facile-engine`).
//!
//! ```text
//! facile --hex 4801c84889c8 --uarch SKL --mode auto
//! facile --kernel imul-chain --all-uarchs
//! facile --hex 01c8 --compare
//! facile --hex 4801c8 --explain --format json
//! echo 4801c8480fafd0 | facile --batch --predictors 'facile,sim' --format json
//! facile --batch --all-uarchs --format csv --explain < blocks.csv
//! facile diff --predictors facile,sim --seed 42 --count 500 --format json
//! ```
//!
//! Batch mode reads one block per line from stdin — either bare hex or
//! BHive CSV (`hex,...`; everything after the first comma is ignored) —
//! and emits one row per `(block, uarch, predictor)` combination. Rows
//! are ordered and byte-identical regardless of `--threads`, so output
//! is diffable across runs and machines. Undecodable lines become error
//! rows; they never abort the batch.
//!
//! `--explain` upgrades rows to full explanation detail: structured
//! per-component bounds, critical-chain edges, and port loads as an
//! `explanation` JSON object (`--format json`/`csv`) or an indented
//! text summary (`--format text`).

use facile_core::{Detail, Explanation, Facile, Mode, Report};
use facile_engine::render::{self, csv_header, mode_str};
use facile_engine::{BatchItem, Engine, EngineStats, ItemResult, PredictorRegistry};
use facile_isa::AnnotatedBlock;
use facile_uarch::Uarch;
use facile_x86::Block;
use std::io::{BufRead, Write};
use std::process::ExitCode;

mod client_cmd;
mod diff_cmd;
mod serve_cmd;

struct Options {
    hex: Option<String>,
    kernel: Option<String>,
    batch: bool,
    uarch: Uarch,
    all_uarchs: bool,
    mode: ModeArg,
    compare: bool,
    predictors: String,
    format: Format,
    explain: bool,
    threads: Option<usize>,
    stats: bool,
    ext_config: Option<String>,
}

#[derive(PartialEq, Clone, Copy)]
enum ModeArg {
    Auto,
    Loop,
    Unroll,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Human,
    Json,
    Csv,
}

const USAGE: &str = "\
facile — fast, accurate, and interpretable basic-block throughput prediction

USAGE:
    facile --hex <BYTES> [OPTIONS]
    facile --kernel <NAME> [OPTIONS]
    facile --batch [OPTIONS] < blocks.txt
    facile diff [DIFF OPTIONS]        (see `facile diff --help`)
    facile serve [SERVE OPTIONS]      (see `facile serve --help`)
    facile client [CLIENT OPTIONS]    (see `facile client --help`)

INPUT:
    --hex <BYTES>      basic block as hex machine code (BHive format)
    --kernel <NAME>    analyze a named kernel from the built-in corpus
    --batch            read blocks from stdin, one per line (bare hex or
                       BHive CSV `hex,...`; `#` lines are comments)

OPTIONS:
    --uarch <ABBR>     microarchitecture (SNB..RKL; default SKL)
    --all-uarchs       analyze on all nine microarchitectures
    --mode <MODE>      auto | loop (TPL) | unroll (TPU); default auto:
                       loop if the block ends in a branch
    --predictors <KEYS> comma-separated registry keys or glob patterns
                       (default `facile`; e.g. `facile,sim`, `*`).
                       `ext:<name>=<cmd...>` tokens define and select an
                       external tool speaking the line-JSON protocol
                       (e.g. `facile,ext:mca=/usr/bin/my-mca --fast`)
    --ext-config <FILE> register external predictors from a TOML file
                       (see the README's External predictors section)
    --compare          shorthand for adding `sim` to --predictors
    --format <FMT>     text | json | csv (default text); json/csv are
                       machine-readable, one row per (block, uarch,
                       predictor)
    --explain          attach the full typed explanation to every row:
                       per-component bounds with evidence, critical
                       dependence chain, and port loads (an `explanation`
                       object with --format json/csv, indented text
                       otherwise); composes with --batch
    --json, --csv      deprecated aliases for --format json / --format csv
    --threads <N>      batch worker threads (default: all cores)
    --stats            report run counters after the run (batch planner
                       dedup, two-level block cache, descriptor intern
                       table, per-kernel mean/max timing): a trailing JSON
                       object with --format json, stderr lines otherwise
    --list-predictors  list registered predictor keys
    --list-kernels     list the built-in corpus kernels
    --help             show this help
";

fn parse_args() -> Result<Option<Options>, String> {
    let mut o = Options {
        hex: None,
        kernel: None,
        batch: false,
        uarch: Uarch::Skl,
        all_uarchs: false,
        mode: ModeArg::Auto,
        compare: false,
        predictors: String::from("facile"),
        format: Format::Human,
        explain: false,
        threads: None,
        stats: false,
        ext_config: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().is_none() {
        return Err("no input given".into());
    }
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list-kernels" => {
                for k in facile_bhive::kernels() {
                    println!("{:<16} {}", k.name, k.stresses);
                }
                return Ok(None);
            }
            "--list-predictors" => {
                let registry = PredictorRegistry::with_builtins();
                for key in registry.keys() {
                    let p = registry.get(key).expect("listed key resolves");
                    let notion = p
                        .native_notion()
                        .map_or_else(|| "both".to_string(), |m| m.to_string());
                    println!("{key:<14} {:<20} native notion: {notion}", p.name());
                }
                return Ok(None);
            }
            "--hex" => o.hex = Some(val("--hex")?),
            "--kernel" => o.kernel = Some(val("--kernel")?),
            "--batch" => o.batch = true,
            "--uarch" => {
                o.uarch = val("--uarch")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--all-uarchs" => o.all_uarchs = true,
            "--mode" => {
                o.mode = match val("--mode")?.as_str() {
                    "auto" => ModeArg::Auto,
                    "loop" | "tpl" => ModeArg::Loop,
                    "unroll" | "tpu" => ModeArg::Unroll,
                    other => return Err(format!("unknown mode: {other}")),
                };
            }
            "--compare" => o.compare = true,
            "--predictors" => o.predictors = val("--predictors")?,
            "--ext-config" => o.ext_config = Some(val("--ext-config")?),
            "--format" => {
                o.format = match val("--format")?.as_str() {
                    "text" | "human" => Format::Human,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format: {other} (text|json|csv)")),
                };
            }
            "--explain" => o.explain = true,
            "--json" => {
                eprintln!("note: --json is deprecated; use --format json");
                o.format = Format::Json;
            }
            "--csv" => {
                eprintln!("note: --csv is deprecated; use --format csv");
                o.format = Format::Csv;
            }
            "--threads" => {
                o.threads = Some(
                    val("--threads")?
                        .parse()
                        .map_err(|_| "numeric --threads".to_string())?,
                );
            }
            "--stats" => o.stats = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if o.compare && !o.predictors.split(',').any(|t| t.trim() == "sim") {
        o.predictors.push_str(",sim");
    }
    Ok(Some(o))
}

fn uarch_list(o: &Options) -> Vec<Uarch> {
    if o.all_uarchs {
        Uarch::ALL.to_vec()
    } else {
        vec![o.uarch]
    }
}

fn fixed_mode(o: &Options) -> Option<Mode> {
    match o.mode {
        ModeArg::Auto => None,
        ModeArg::Loop => Some(Mode::Loop),
        ModeArg::Unroll => Some(Mode::Unrolled),
    }
}

fn detail(o: &Options) -> Detail {
    if o.explain {
        Detail::Full
    } else {
        Detail::Brief
    }
}

fn emit_row<W: Write + ?Sized>(
    out: &mut W,
    format: Format,
    explain: bool,
    r: &ItemResult,
) -> std::io::Result<()> {
    match format {
        Format::Json => writeln!(out, "{}", render::row_json(r)),
        Format::Csv => writeln!(out, "{}", render::row_csv(r, explain)),
        Format::Human => match &r.prediction {
            Ok(p) => {
                writeln!(
                    out,
                    "{:<24} {:<4} {:<3} {:<12} {:>8.2} cyc/iter{}",
                    r.block_hex,
                    r.uarch.to_string(),
                    mode_str(r.mode),
                    r.predictor,
                    p.throughput,
                    p.bottleneck
                        .map_or_else(String::new, |b| format!("  bottleneck: {b}")),
                )?;
                if let Some(e) = &p.explanation {
                    for line in e.to_text().lines() {
                        writeln!(out, "    {line}")?;
                    }
                }
                Ok(())
            }
            Err(e) => writeln!(
                out,
                "{:<24} {:<4} {:<3} {:<12} error: {e}",
                r.block_hex,
                r.uarch.to_string(),
                mode_str(r.mode),
                r.predictor,
            ),
        },
    }
}

/// Build the engine and resolve any external-predictor definitions:
/// `ext:<name>=<cmd>` tokens in `o.predictors` (rewritten in place to
/// their bare keys) and the `--ext-config` file, if given.
fn build_engine(o: &mut Options) -> Result<Engine, String> {
    let mut engine = Engine::new(PredictorRegistry::with_builtins());
    o.predictors =
        facile_engine::register_selector_externals(engine.registry_mut(), &o.predictors)?;
    if let Some(path) = &o.ext_config {
        facile_engine::load_external_config(engine.registry_mut(), path)?;
    }
    if let Some(t) = o.threads {
        engine = engine.with_threads(t);
    }
    if o.stats {
        // `--stats` reports per-kernel timing, which is only collected
        // while the opt-in accounting is on.
        Engine::set_kernel_timing(true);
    }
    Ok(engine)
}

/// Emit planner/cache counters and (when collected) per-kernel timing:
/// a trailing JSON object on stdout with JSON output, a human-readable
/// summary on stderr otherwise (CSV output stays pure). The JSON is the
/// engine's canonical [`EngineStats::to_json`] — the same object the
/// server's `stats` reply carries.
fn emit_stats<W: Write + ?Sized>(
    out: &mut W,
    format: Format,
    t: &EngineStats,
) -> std::io::Result<()> {
    match format {
        Format::Json => writeln!(out, "{{\"stats\":{}}}", t.to_json()),
        Format::Csv | Format::Human => {
            let (a, i) = (t.annotation, t.intern);
            eprintln!(
                "stats: planner {} items / {} deduped; block cache {} decode hits / {} decode \
                 misses / {} annotate hits / {} annotate misses ({} blocks, {} annotations); \
                 intern table {} hits / {} misses ({} core hits / {} core misses, {} byte \
                 entries, {} descriptors)",
                t.planner.items,
                t.planner.deduped,
                a.decode_hits,
                a.decode_misses,
                a.hits,
                a.misses,
                a.blocks,
                a.entries,
                i.hits,
                i.misses,
                i.core_hits,
                i.core_misses,
                i.byte_entries,
                i.entries
            );
            let s = t.static_tables;
            eprintln!(
                "stats: static tables {} hits / {} fallbacks ({:.1}% coverage)",
                s.hits,
                s.fallbacks,
                s.coverage() * 100.0
            );
            for (c, k) in t.kernel_rows() {
                eprintln!(
                    "stats: kernel {} mean {:.2} us / p50 {:.2} us / p99 {:.2} us / max {:.2} us \
                     over {} calls",
                    c.name(),
                    k.mean_us,
                    k.p50_us,
                    k.p99_us,
                    k.max_us,
                    k.count
                );
            }
            Ok(())
        }
    }
}

/// Batch mode: stream stdin lines through the engine.
fn run_batch(o: &mut Options) -> Result<(), String> {
    let engine = build_engine(o)?;
    let o = &*o;
    let uarchs = uarch_list(o);
    let mode = fixed_mode(o);
    let row_detail = detail(o);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    if o.format == Format::Csv {
        writeln!(&mut out, "{}", csv_header(o.explain)).map_err(|e| e.to_string())?;
    }

    // Stream in chunks: bounded memory on arbitrarily large inputs, and
    // each chunk still fans out in parallel across the worker pool.
    const CHUNK: usize = 4096;
    let mut items: Vec<BatchItem> = Vec::with_capacity(CHUNK);
    let mut tally = EngineStats::default();
    let flush = |items: &mut Vec<BatchItem>,
                 out: &mut dyn Write,
                 tally: &mut EngineStats|
     -> Result<(), String> {
        if items.is_empty() {
            return Ok(());
        }
        let rows = engine
            .predict_batch(items, &o.predictors)
            .map_err(|e| e.to_string())?;
        for r in &rows {
            emit_row(out, o.format, o.explain, r).map_err(|e| e.to_string())?;
        }
        items.clear();
        // Annotations are only reused within a chunk; dropping them here
        // keeps memory bounded on arbitrarily large streams.
        tally.absorb(&engine.snapshot());
        engine.clear_cache();
        Ok(())
    };
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        // BHive CSV line shape (block = everything before the first
        // comma); hex validation stays with the engine so bad blocks
        // become error rows instead of aborting the stream.
        let Some(hex) = facile_bhive::csv::hex_field(&line) else {
            continue;
        };
        let hex = hex.to_string();
        for &u in &uarchs {
            items.push(BatchItem {
                input: facile_engine::BlockInput::Hex(hex.clone()),
                uarch: u,
                mode,
                detail: row_detail,
            });
        }
        if items.len() >= CHUNK {
            flush(&mut items, &mut out, &mut tally)?;
        }
    }
    flush(&mut items, &mut out, &mut tally)?;
    if o.stats {
        emit_stats(&mut out, o.format, &tally).map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())
}

fn load_block(o: &Options) -> Result<Block, String> {
    match (&o.hex, &o.kernel) {
        (Some(h), None) => Block::from_hex(h).map_err(|e| format!("cannot decode block: {e}")),
        (None, Some(k)) => facile_bhive::kernel(k)
            .map(|k| k.block)
            .ok_or_else(|| format!("unknown kernel: {k} (try --list-kernels)")),
        _ => Err("provide exactly one of --hex, --kernel, or --batch".into()),
    }
}

/// `--explain` extras for the single-block text report: the contended-port
/// load map and the per-instruction attribution with disassembly.
fn print_explain_details(ab: &AnnotatedBlock, e: &Explanation) {
    if let Some(p) = e.ports() {
        if !p.port_loads.is_empty() {
            print!("port loads:");
            for l in &p.port_loads {
                print!(" {}={:.2}", l.ports, l.uops);
            }
            println!();
        }
    }
    let contributors: Vec<_> = e.attributions.iter().filter(|a| !a.is_zero()).collect();
    if !contributors.is_empty() {
        println!("per-instruction attribution:");
        for a in contributors {
            let inst = ab.insts()[a.inst as usize].inst();
            let mut line = format!("  #{:<2} {:<28}", a.inst, inst.to_string());
            if a.critical_port_uops > 0.0 {
                line.push_str(&format!(" ports={:.2}", a.critical_port_uops));
            }
            if a.chain_latency > 0.0 {
                line.push_str(&format!(" chain={:.2}", a.chain_latency));
            }
            println!("{line}");
        }
    }
}

/// Single-block mode: the interpretable report (plus any extra
/// predictors), or machine-readable rows with --format json/csv.
fn run_single(o: &mut Options) -> Result<(), String> {
    let block = load_block(o)?;
    if block.is_empty() {
        return Err("empty basic block".into());
    }
    let mode = fixed_mode(o).unwrap_or(if block.ends_in_branch() {
        Mode::Loop
    } else {
        Mode::Unrolled
    });
    let engine = build_engine(o)?;
    let o = &*o;
    let uarchs = uarch_list(o);

    if o.format != Format::Human {
        let items: Vec<BatchItem> = uarchs
            .iter()
            .map(|&u| {
                BatchItem::block(block.clone(), u)
                    .with_mode(mode)
                    .with_detail(detail(o))
            })
            .collect();
        let rows = engine
            .predict_batch(&items, &o.predictors)
            .map_err(|e| e.to_string())?;
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        if o.format == Format::Csv {
            writeln!(&mut out, "{}", csv_header(o.explain)).map_err(|e| e.to_string())?;
        }
        for r in &rows {
            emit_row(&mut out, o.format, o.explain, r).map_err(|e| e.to_string())?;
        }
        if o.stats {
            emit_stats(&mut out, o.format, &engine.snapshot()).map_err(|e| e.to_string())?;
        }
        return out.flush().map_err(|e| e.to_string());
    }

    println!(
        "block ({} instructions, {} bytes):",
        block.num_insts(),
        block.byte_len()
    );
    print!("{block}");
    println!();
    let extra = engine
        .registry()
        .resolve(&o.predictors)
        .map_err(|e| e.to_string())?;
    for &uarch in &uarchs {
        let ab = engine.annotate(&block, uarch);
        let explanation = Facile::new().explain(&ab, mode);
        print!("{}", Report::new(&ab, &explanation));
        if o.explain {
            print_explain_details(&ab, &explanation);
        }
        println!();
        for p in extra.iter().filter(|p| p.key() != "facile") {
            match p.predict(&facile_engine::PredictRequest::new(&ab, mode)) {
                Ok(pred) => println!("{}: {:.2} cycles/iteration", p.name(), pred.throughput),
                Err(e) => println!("{}: error: {e}", p.name()),
            }
        }
        if !extra.is_empty() && extra.iter().any(|p| p.key() != "facile") {
            println!();
        }
    }
    if o.stats {
        emit_stats(&mut std::io::stderr(), Format::Human, &engine.snapshot())
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("diff") => return diff_cmd::main(std::env::args().skip(2).collect()),
        Some("serve") => return serve_cmd::main(std::env::args().skip(2).collect()),
        Some("client") => return client_cmd::main(std::env::args().skip(2).collect()),
        _ => {}
    }
    let mut opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = if opts.batch {
        run_batch(&mut opts)
    } else {
        run_single(&mut opts)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
