//! `facile` — command-line front end for the throughput model (the
//! counterpart of the original tool's `facile.py`).
//!
//! ```text
//! facile --hex 4801c84889c8 --uarch SKL --mode auto
//! facile --kernel imul-chain --all-uarchs
//! facile --hex 01c8 --compare
//! ```

use facile_core::{Facile, Mode, Report};
use facile_isa::AnnotatedBlock;
use facile_uarch::Uarch;
use facile_x86::Block;
use std::process::ExitCode;

struct Options {
    hex: Option<String>,
    kernel: Option<String>,
    uarch: Uarch,
    all_uarchs: bool,
    mode: ModeArg,
    compare: bool,
}

#[derive(PartialEq)]
enum ModeArg {
    Auto,
    Loop,
    Unroll,
}

const USAGE: &str = "\
facile — fast, accurate, and interpretable basic-block throughput prediction

USAGE:
    facile --hex <BYTES> [OPTIONS]
    facile --kernel <NAME> [OPTIONS]

OPTIONS:
    --hex <BYTES>      basic block as hex machine code (BHive format)
    --kernel <NAME>    analyze a named kernel from the built-in corpus
    --uarch <ABBR>     microarchitecture (SNB..RKL; default SKL)
    --all-uarchs       analyze on all nine microarchitectures
    --mode <MODE>      auto | loop (TPL) | unroll (TPU); default auto:
                       loop if the block ends in a branch
    --compare          also run the cycle-accurate simulator
    --list-kernels     list the built-in corpus kernels
    --help             show this help
";

fn parse_args() -> Result<Option<Options>, String> {
    let mut o = Options {
        hex: None,
        kernel: None,
        uarch: Uarch::Skl,
        all_uarchs: false,
        mode: ModeArg::Auto,
        compare: false,
    };
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().is_none() {
        return Err("no input given".into());
    }
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list-kernels" => {
                for k in facile_bhive::kernels() {
                    println!("{:<16} {}", k.name, k.stresses);
                }
                return Ok(None);
            }
            "--hex" => o.hex = Some(val("--hex")?),
            "--kernel" => o.kernel = Some(val("--kernel")?),
            "--uarch" => {
                o.uarch = val("--uarch")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--all-uarchs" => o.all_uarchs = true,
            "--mode" => {
                o.mode = match val("--mode")?.as_str() {
                    "auto" => ModeArg::Auto,
                    "loop" | "tpl" => ModeArg::Loop,
                    "unroll" | "tpu" => ModeArg::Unroll,
                    other => return Err(format!("unknown mode: {other}")),
                };
            }
            "--compare" => o.compare = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(Some(o))
}

fn load_block(o: &Options) -> Result<Block, String> {
    match (&o.hex, &o.kernel) {
        (Some(h), None) => Block::from_hex(h).map_err(|e| format!("cannot decode block: {e}")),
        (None, Some(k)) => facile_bhive::kernel(k)
            .map(|k| k.block)
            .ok_or_else(|| format!("unknown kernel: {k} (try --list-kernels)")),
        _ => Err("provide exactly one of --hex or --kernel".into()),
    }
}

fn analyze(block: &Block, uarch: Uarch, mode: Mode, compare: bool) {
    let ab = AnnotatedBlock::new(block.clone(), uarch);
    let prediction = Facile::new().predict(&ab, mode);
    println!("{}", Report::new(&ab, mode, &prediction));
    if compare {
        let sim = facile_sim::simulate(&ab, mode == Mode::Loop);
        println!(
            "cycle-accurate simulation: {:.2} cycles/iteration (via {:?})\n",
            sim.cycles_per_iter, sim.path
        );
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let block = match load_block(&opts) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    if block.is_empty() {
        eprintln!("error: empty basic block");
        return ExitCode::from(1);
    }
    let mode = match opts.mode {
        ModeArg::Loop => Mode::Loop,
        ModeArg::Unroll => Mode::Unrolled,
        ModeArg::Auto => {
            if block.ends_in_branch() {
                Mode::Loop
            } else {
                Mode::Unrolled
            }
        }
    };
    println!("block ({} instructions, {} bytes):", block.num_insts(), block.byte_len());
    print!("{block}");
    println!();
    if opts.all_uarchs {
        for u in Uarch::ALL {
            analyze(&block, u, mode, opts.compare);
        }
    } else {
        analyze(&block, opts.uarch, mode, opts.compare);
    }
    ExitCode::SUCCESS
}
