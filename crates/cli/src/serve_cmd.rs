//! `facile serve` — run the prediction daemon (`facile-server`).
//!
//! Prints one JSON line to stdout when the socket is bound and
//! accepting — `{"serving":"<address>"}` — so scripts can wait for
//! readiness (and, with `--tcp host:0`, learn the ephemeral port). The
//! daemon then parks until SIGTERM/SIGINT, drains in-flight requests,
//! writes the annotation snapshot when one is configured, and exits 0.

use facile_server::{Endpoint, Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
facile serve — prediction-as-a-service daemon

USAGE:
    facile serve --socket <PATH> [OPTIONS]
    facile serve --tcp <HOST:PORT> [OPTIONS]

ENDPOINT (exactly one):
    --socket <PATH>    listen on a Unix-domain socket
    --tcp <ADDR>       listen on TCP (port 0 = ephemeral; the bound
                       address is printed on the ready line)

OPTIONS:
    --threads <N>             engine worker threads (default: all cores)
    --predictors <KEYS>       default selector for requests that omit
                              one (default `facile`). `ext:<name>=<cmd...>`
                              tokens define and register an external tool
                              speaking the line-JSON protocol; requests
                              can then select it as `ext:<name>`
    --ext-config <FILE>       register external predictors from a TOML
                              file (see the README's External predictors
                              section)
    --queue-cap <N>           admission bound on queued + in-flight
                              batch items (default 65536); requests over
                              it are rejected with `overloaded`
    --cache-budget-mb <N>     total memory budget for the annotation,
                              intern, and external-result caches
                              (default: unbounded). Above 80% / 95% of
                              pressure the server sheds batch / all
                              prediction work; `health` reports the tier
    --conn-max-items <N>      largest single request one connection may
                              send, in items (default 0 = unlimited)
    --conn-rps <N>            per-connection prediction requests per
                              second (default 0 = unlimited)
    --breaker-threshold <N>   consecutive external-tool failures that
                              open its circuit breaker (default 5;
                              0 disables the breaker)
    --breaker-cooldown <N>    requests a tripped breaker fails fast
                              before probing the tool again (default 32;
                              doubles on consecutive trips)
    --gather-us <N>           micro-batch gather window in microseconds
                              (default 500)
    --max-batch <N>           largest gathered engine batch, in items
                              (default 8192)
    --snapshot <FILE>         persistent annotation cache: loaded at
                              startup (stale/corrupt files are ignored),
                              written on shutdown
    --snapshot-interval-secs <N>  additionally write the snapshot every
                              N seconds while serving
    --faults <SPEC>           arm deterministic fault injection (chaos
                              testing; also read from the FACILE_FAULTS
                              env var). Ignored with a warning unless
                              the binary was built with the
                              fault-injection feature
    --help                    show this help

The daemon serves newline-delimited JSON requests; see the protocol
section of the README. Stop it with SIGTERM or SIGINT: it stops
accepting, answers everything already admitted, saves the snapshot, and
exits.
";

fn parse(args: Vec<String>) -> Result<Option<ServerConfig>, String> {
    let mut endpoint: Option<Endpoint> = None;
    let mut cfg_threads = 0usize;
    let mut predictors = String::from("facile");
    let mut queue_cap = 65_536usize;
    let mut gather_us = 500u64;
    let mut max_batch = 8_192usize;
    let mut snapshot = None;
    let mut snapshot_interval = None;
    let mut faults = None;
    let mut ext_config = None;
    let mut cache_budget_mb = None;
    let mut conn_max_items = 0usize;
    let mut conn_rps = 0u64;
    let mut breaker_threshold = 5u32;
    let mut breaker_cooldown = 32u64;
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--socket" => endpoint = Some(Endpoint::Unix(val("--socket")?.into())),
            "--tcp" => endpoint = Some(Endpoint::Tcp(val("--tcp")?)),
            "--threads" => {
                cfg_threads = val("--threads")?
                    .parse()
                    .map_err(|_| "numeric --threads".to_string())?;
            }
            "--predictors" => predictors = val("--predictors")?,
            "--queue-cap" => {
                queue_cap = val("--queue-cap")?
                    .parse()
                    .map_err(|_| "numeric --queue-cap".to_string())?;
            }
            "--gather-us" => {
                gather_us = val("--gather-us")?
                    .parse()
                    .map_err(|_| "numeric --gather-us".to_string())?;
            }
            "--max-batch" => {
                max_batch = val("--max-batch")?
                    .parse()
                    .map_err(|_| "numeric --max-batch".to_string())?;
            }
            "--snapshot" => snapshot = Some(std::path::PathBuf::from(val("--snapshot")?)),
            "--snapshot-interval-secs" => {
                let secs: u64 = val("--snapshot-interval-secs")?
                    .parse()
                    .map_err(|_| "numeric --snapshot-interval-secs".to_string())?;
                snapshot_interval = Some(Duration::from_secs(secs));
            }
            "--faults" => faults = Some(val("--faults")?),
            "--ext-config" => ext_config = Some(val("--ext-config")?),
            "--cache-budget-mb" => {
                let mb: usize = val("--cache-budget-mb")?
                    .parse()
                    .ok()
                    .filter(|mb| *mb > 0)
                    .ok_or_else(|| "positive numeric --cache-budget-mb".to_string())?;
                cache_budget_mb = Some(mb);
            }
            "--conn-max-items" => {
                conn_max_items = val("--conn-max-items")?
                    .parse()
                    .map_err(|_| "numeric --conn-max-items".to_string())?;
            }
            "--conn-rps" => {
                conn_rps = val("--conn-rps")?
                    .parse()
                    .map_err(|_| "numeric --conn-rps".to_string())?;
            }
            "--breaker-threshold" => {
                breaker_threshold = val("--breaker-threshold")?
                    .parse()
                    .map_err(|_| "numeric --breaker-threshold".to_string())?;
            }
            "--breaker-cooldown" => {
                breaker_cooldown = val("--breaker-cooldown")?
                    .parse()
                    .map_err(|_| "numeric --breaker-cooldown".to_string())?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    let endpoint = endpoint.ok_or("provide --socket <PATH> or --tcp <ADDR>")?;
    // `ext:<name>=<cmd>` tokens in the selector define external tools;
    // the server registers them at startup and the default selector
    // keeps only their bare `ext:<name>` keys.
    let (mut external, predictors) = facile_engine::extract_selector_externals(&predictors)?;
    if let Some(path) = &ext_config {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        external.extend(
            facile_engine::external::parse_config(&text).map_err(|e| format!("{path}: {e}"))?,
        );
    }
    let mut cfg = ServerConfig::new(endpoint);
    cfg.external = external;
    cfg.threads = cfg_threads;
    cfg.predictors = predictors;
    cfg.queue_cap = queue_cap;
    cfg.gather_window = Duration::from_micros(gather_us);
    cfg.max_batch_items = max_batch;
    cfg.snapshot = snapshot;
    cfg.snapshot_interval = snapshot_interval;
    cfg.faults = faults;
    cfg.cache_budget = cache_budget_mb.map(facile_engine::CacheBudget::from_total_mb);
    cfg.conn_max_items = conn_max_items;
    cfg.conn_rps = conn_rps;
    cfg.breaker = (breaker_threshold > 0).then_some(facile_engine::BreakerSpec {
        threshold: breaker_threshold,
        cooldown: breaker_cooldown,
    });
    Ok(Some(cfg))
}

pub fn main(args: Vec<String>) -> ExitCode {
    let mut cfg = match parse(args) {
        Ok(Some(cfg)) => cfg,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if cfg.faults.is_none() {
        if let Ok(spec) = std::env::var("FACILE_FAULTS") {
            if !spec.is_empty() {
                cfg.faults = Some(spec);
            }
        }
    }
    if let Some(spec) = &cfg.faults {
        if facile_server::faults::compiled() {
            // Injected panics are expected events; keep the default
            // panic hook's backtrace noise off stderr for them.
            facile_server::faults::install_quiet_panic_hook();
            eprintln!("fault injection armed: {spec}");
        } else {
            eprintln!(
                "warning: fault injection not compiled in \
                 (build with --features fault-injection); ignoring {spec:?}"
            );
        }
    }
    facile_server::sig::install();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return ExitCode::from(1);
        }
    };
    match &server.snapshot_loaded {
        Some(Ok(info)) => eprintln!(
            "snapshot: loaded {} blocks / {} annotations ({} bytes)",
            info.blocks, info.annotations, info.file_bytes
        ),
        Some(Err(e)) => eprintln!("snapshot: starting cold ({e})"),
        None => {}
    }
    println!("{{\"serving\":\"{}\"}}", server.bound());
    let _ = std::io::stdout().flush();
    match server.run_until_signal() {
        Some(Ok(info)) => eprintln!(
            "snapshot: saved {} blocks / {} annotations ({} bytes)",
            info.blocks, info.annotations, info.file_bytes
        ),
        Some(Err(e)) => eprintln!("snapshot: save failed ({e})"),
        None => {}
    }
    ExitCode::SUCCESS
}
