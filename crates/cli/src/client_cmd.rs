//! `facile client` — talk to a running `facile serve` daemon.
//!
//! The client is deliberately thin: it builds protocol request lines,
//! streams reply rows to stdout, and does **no row formatting of its
//! own** — JSON rows are echoed verbatim from the reply (byte-identical
//! to `facile --batch --format json` by construction), CSV rows are the
//! reply's carried strings under the same header line `facile --batch
//! --format csv` prints.

use facile_engine::render::csv_header;
use facile_server::json::{self, Kind, Value};
use facile_uarch::Uarch;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
facile client — send prediction requests to a facile serve daemon

USAGE:
    facile client --socket <PATH> --hex <BYTES> [OPTIONS]
    facile client --tcp <ADDR> --batch [FILE] [OPTIONS]
    facile client --socket <PATH> --op stats|ping|health

CONNECTION (exactly one):
    --socket <PATH>    connect to a Unix-domain socket
    --tcp <ADDR>       connect to a TCP address (host:port)

INPUT (exactly one):
    --hex <BYTES>      predict a single block
    --batch [FILE]     read blocks from FILE (default stdin), one per
                       line — bare hex or BHive CSV, exactly like
                       `facile --batch`
    --op <OP>          a one-off request: `stats` (print the server's
                       counters as JSON), `ping`, or `health` (the
                       degradation tier and pressure)

OPTIONS:
    --uarch <ABBR>     microarchitecture (default SKL)
    --all-uarchs       predict on all nine microarchitectures
    --mode <MODE>      auto | loop | unroll (default auto)
    --predictors <KEYS> predictor selector (server default when omitted)
    --format <FMT>     json | csv row output (default json)
    --explain          request full explanations (and the CSV
                       explanation column)
    --deadline-ms <N>  per-request queue deadline
    --chunk <N>        blocks per request in batch mode (default 1024)
    --retries <N>      resend a request up to N times after an
                       `overloaded` or `deadline-exceeded` rejection, a
                       refused connection, or a mid-stream disconnect
                       (default 0 = fail fast)
    --connect-timeout-ms <N>  give up on a TCP connect attempt after N
                       milliseconds (default 5000; 0 = the OS default,
                       blocking. Unix sockets connect without a timeout)
    --backoff-ms <N>   base delay between retries; attempt k waits
                       about N*2^k ms with deterministic jitter
                       (default 50)
    --help             show this help

Row output is byte-identical to `facile --batch` with the same flags:
rows come off the wire in the CLI's own rendering.
";

/// Where to connect (resolved to a live socket in [`drive`]).
enum ConnectTo {
    #[cfg(unix)]
    Unix(String),
    Tcp(String),
}

struct Options {
    connect: ConnectTo,
    hex: Option<String>,
    /// `Some(path)` = batch from a file, `Some(None)` = batch from stdin.
    batch: Option<Option<String>>,
    op: Option<String>,
    uarch: Uarch,
    all_uarchs: bool,
    mode: Option<&'static str>,
    predictors: Option<String>,
    csv: bool,
    explain: bool,
    deadline_ms: Option<u64>,
    chunk: usize,
    retries: u32,
    backoff_ms: u64,
    connect_timeout_ms: u64,
}

fn parse(args: Vec<String>) -> Result<Option<Options>, String> {
    let mut connect: Option<ConnectTo> = None;
    let mut hex = None;
    let mut batch: Option<Option<String>> = None;
    let mut op = None;
    let mut uarch = Uarch::Skl;
    let mut all_uarchs = false;
    let mut mode = None;
    let mut predictors = None;
    let mut csv = false;
    let mut explain = false;
    let mut deadline_ms = None;
    let mut chunk = 1024usize;
    let mut retries = 0u32;
    let mut backoff_ms = 50u64;
    let mut connect_timeout_ms = 5_000u64;
    let mut it = args.into_iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--socket" => {
                let path = it.next().ok_or("--socket requires a value")?;
                #[cfg(unix)]
                {
                    connect = Some(ConnectTo::Unix(path));
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    return Err("--socket is only available on Unix".into());
                }
            }
            "--tcp" => connect = Some(ConnectTo::Tcp(it.next().ok_or("--tcp requires a value")?)),
            "--hex" => hex = Some(it.next().ok_or("--hex requires a value")?),
            "--batch" => {
                // An optional positional FILE follows unless the next
                // token is a flag; `-` means stdin.
                let file = if it.peek().is_some_and(|t| !t.starts_with("--")) {
                    it.next()
                } else {
                    None
                };
                batch = Some(file.filter(|f| f != "-"));
            }
            "--op" => op = Some(it.next().ok_or("--op requires a value")?),
            "--uarch" => {
                uarch = it
                    .next()
                    .ok_or("--uarch requires a value")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--all-uarchs" => all_uarchs = true,
            "--mode" => {
                mode = match it.next().ok_or("--mode requires a value")?.as_str() {
                    "auto" => None,
                    "loop" | "tpl" => Some("tpl"),
                    "unroll" | "tpu" => Some("tpu"),
                    other => return Err(format!("unknown mode: {other}")),
                };
            }
            "--predictors" => {
                predictors = Some(it.next().ok_or("--predictors requires a value")?);
            }
            "--format" => {
                csv = match it.next().ok_or("--format requires a value")?.as_str() {
                    "json" => false,
                    "csv" => true,
                    other => return Err(format!("unknown format: {other} (json|csv)")),
                };
            }
            "--explain" => explain = true,
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .ok_or("--deadline-ms requires a value")?
                        .parse()
                        .map_err(|_| "numeric --deadline-ms".to_string())?,
                );
            }
            "--chunk" => {
                chunk = it
                    .next()
                    .ok_or("--chunk requires a value")?
                    .parse()
                    .map_err(|_| "numeric --chunk".to_string())?;
                if chunk == 0 {
                    return Err("--chunk must be at least 1".into());
                }
            }
            "--retries" => {
                retries = it
                    .next()
                    .ok_or("--retries requires a value")?
                    .parse()
                    .map_err(|_| "numeric --retries".to_string())?;
            }
            "--backoff-ms" => {
                backoff_ms = it
                    .next()
                    .ok_or("--backoff-ms requires a value")?
                    .parse()
                    .map_err(|_| "numeric --backoff-ms".to_string())?;
            }
            "--connect-timeout-ms" => {
                connect_timeout_ms = it
                    .next()
                    .ok_or("--connect-timeout-ms requires a value")?
                    .parse()
                    .map_err(|_| "numeric --connect-timeout-ms".to_string())?;
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    let connect = connect.ok_or("provide --socket <PATH> or --tcp <ADDR>")?;
    let inputs =
        usize::from(hex.is_some()) + usize::from(batch.is_some()) + usize::from(op.is_some());
    if inputs != 1 {
        return Err("provide exactly one of --hex, --batch, or --op".into());
    }
    if let Some(op) = &op {
        if op != "stats" && op != "ping" && op != "health" {
            return Err(format!("unknown op: {op} (stats|ping|health)"));
        }
    }
    Ok(Some(Options {
        connect,
        hex,
        batch,
        op,
        uarch,
        all_uarchs,
        mode,
        predictors,
        csv,
        explain,
        deadline_ms,
        chunk,
        retries,
        backoff_ms,
        connect_timeout_ms,
    }))
}

/// A JSON string literal for a request field (blocks may carry
/// arbitrary bytes from malformed input lines; the server turns those
/// into error rows, not protocol errors).
fn jstr(s: &str) -> String {
    format!("\"{}\"", facile_explain::json_escape(s))
}

fn batch_request(o: &Options, blocks: &[String]) -> String {
    let mut req = String::with_capacity(64 + blocks.len() * 20);
    req.push_str("{\"op\":\"batch\",\"blocks\":[");
    for (i, b) in blocks.iter().enumerate() {
        if i > 0 {
            req.push(',');
        }
        req.push_str(&jstr(b));
    }
    req.push_str("],\"uarch\":");
    if o.all_uarchs {
        req.push_str("\"all\"");
    } else {
        req.push_str(&jstr(&o.uarch.to_string()));
    }
    if let Some(m) = o.mode {
        req.push_str(",\"mode\":\"");
        req.push_str(m);
        req.push('"');
    }
    if o.explain {
        req.push_str(",\"detail\":\"full\"");
    }
    if let Some(p) = &o.predictors {
        req.push_str(",\"predictors\":");
        req.push_str(&jstr(p));
    }
    if o.csv {
        req.push_str(",\"format\":\"csv\"");
    }
    if let Some(d) = o.deadline_ms {
        req.push_str(&format!(",\"deadline_ms\":{d}"));
    }
    req.push('}');
    req
}

/// Why the client gave up, split by exit code: an unreachable endpoint
/// exits 3 (scripts can tell "daemon not running" from "bad request"),
/// everything else exits 1.
enum ClientError {
    /// The endpoint could not be reached (after any retries).
    Connect {
        /// The socket path / TCP address as given.
        addr: String,
        /// The underlying io error.
        cause: String,
    },
    /// Any other failure (protocol, rejection, local io).
    Other(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect { addr, cause } => {
                write!(f, "cannot connect to {addr}: {cause}")
            }
            ClientError::Other(msg) => f.write_str(msg),
        }
    }
}

/// One attempt's verdict: retry-worthy failures are transient by nature
/// (the daemon restarting, a full queue, a dropped connection); fatal
/// ones would fail identically on every resend.
enum Attempt {
    Retry(ClientError),
    Fatal(ClientError),
}

/// A live connection to the daemon.
struct Conn {
    tx: Box<dyn Write>,
    rx: Box<dyn BufRead>,
}

fn connect(o: &Options) -> Result<Conn, ClientError> {
    match &o.connect {
        #[cfg(unix)]
        ConnectTo::Unix(path) => {
            let s = UnixStream::connect(path).map_err(|e| ClientError::Connect {
                addr: path.clone(),
                cause: e.to_string(),
            })?;
            let r = s
                .try_clone()
                .map_err(|e| ClientError::Other(e.to_string()))?;
            Ok(Conn {
                tx: Box::new(s),
                rx: Box::new(BufReader::new(r)),
            })
        }
        ConnectTo::Tcp(addr) => {
            let s =
                tcp_connect(addr, o.connect_timeout_ms).map_err(|cause| ClientError::Connect {
                    addr: addr.clone(),
                    cause,
                })?;
            let _ = s.set_nodelay(true); // request lines are small
            let r = s
                .try_clone()
                .map_err(|e| ClientError::Other(e.to_string()))?;
            Ok(Conn {
                tx: Box::new(s),
                rx: Box::new(BufReader::new(r)),
            })
        }
    }
}

/// TCP connect with a bounded wait: a daemon that is down fails fast
/// (connection refused), but a blackholed address (firewall drop, dead
/// host) would otherwise block for the OS default of minutes. Resolves
/// the address and tries each candidate under the same per-attempt
/// timeout; `0` keeps the plain blocking connect.
fn tcp_connect(addr: &str, timeout_ms: u64) -> Result<TcpStream, String> {
    use std::net::ToSocketAddrs;
    if timeout_ms == 0 {
        return TcpStream::connect(addr).map_err(|e| e.to_string());
    }
    let timeout = Duration::from_millis(timeout_ms);
    let candidates = addr.to_socket_addrs().map_err(|e| e.to_string())?;
    let mut last = format!("{addr} did not resolve to any address");
    for candidate in candidates {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = e.to_string(),
        }
    }
    Err(last)
}

/// Exponential backoff with deterministic jitter: attempt `k` waits
/// roughly `base * 2^k` ms, where the jittered half is hashed from
/// `(request seq, attempt)` — reproducible run-to-run, decorrelated
/// across requests (a thundering herd of identical clients still
/// spreads out, because each is on a different request sequence).
fn backoff(base_ms: u64, attempt: u32, seq: u64) -> Duration {
    let base = base_ms.saturating_mul(1 << attempt.min(10)).min(10_000);
    let mut key = [0u8; 12];
    key[..8].copy_from_slice(&seq.to_le_bytes());
    key[8..].copy_from_slice(&attempt.to_le_bytes());
    let jitter = facile_util::hash_bytes(&key) % (base / 2 + 1);
    Duration::from_millis(base - base / 2 + jitter)
}

/// The retrying request loop: at most one request is outstanding at a
/// time, and a resend carries the same `"id"` the original did, so a
/// retry can never double-answer (replies are matched to the one id in
/// flight) and only the unanswered request is ever resent.
struct Client<'a> {
    o: &'a Options,
    conn: Option<Conn>,
    /// Requests issued so far; names the next request id (`q<seq>`).
    seq: u64,
}

impl<'a> Client<'a> {
    fn new(o: &'a Options) -> Client<'a> {
        Client {
            o,
            conn: None,
            seq: 0,
        }
    }

    /// Send `body` (a request object without an id) and return the
    /// verified reply, retrying per the options. With retries enabled,
    /// requests are tagged `"id":"q<n>"` and the echoed id is checked.
    fn call(&mut self, body: &str) -> Result<(String, Value), ClientError> {
        self.seq += 1;
        let id = (self.o.retries > 0).then(|| format!("q{}", self.seq));
        let req = match &id {
            // Every request body is a JSON object; splice the id in
            // before the closing brace.
            Some(i) => format!("{},\"id\":\"{i}\"}}", &body[..body.len() - 1]),
            None => body.to_string(),
        };
        let mut attempt = 0u32;
        loop {
            match self.try_once(&req, id.as_deref()) {
                Ok(ok) => return Ok(ok),
                Err(Attempt::Fatal(e)) => return Err(e),
                Err(Attempt::Retry(e)) => {
                    if attempt >= self.o.retries {
                        return Err(e);
                    }
                    let delay = backoff(self.o.backoff_ms, attempt, self.seq);
                    eprintln!("facile-client: {e}; retrying in {}ms", delay.as_millis());
                    std::thread::sleep(delay);
                    attempt += 1;
                }
            }
        }
    }

    fn try_once(&mut self, req: &str, id: Option<&str>) -> Result<(String, Value), Attempt> {
        if self.conn.is_none() {
            self.conn = Some(connect(self.o).map_err(Attempt::Retry)?);
        }
        let conn = self.conn.as_mut().expect("connected above");
        let exchanged = (|| -> Result<String, String> {
            conn.tx
                .write_all(req.as_bytes())
                .map_err(|e| e.to_string())?;
            conn.tx.write_all(b"\n").map_err(|e| e.to_string())?;
            conn.tx.flush().map_err(|e| e.to_string())?;
            let mut reply = String::new();
            let n = conn.rx.read_line(&mut reply).map_err(|e| e.to_string())?;
            if n == 0 {
                return Err("server closed the connection".into());
            }
            reply.truncate(reply.trim_end_matches(['\n', '\r']).len());
            Ok(reply)
        })();
        let reply = match exchanged {
            Ok(reply) => reply,
            Err(cause) => {
                // Mid-stream disconnect: this connection is dead (or
                // desynced); a retry starts from a fresh one.
                self.conn = None;
                return Err(Attempt::Retry(ClientError::Other(format!(
                    "connection lost mid-request: {cause}"
                ))));
            }
        };
        let v = json::parse(&reply)
            .map_err(|e| Attempt::Fatal(ClientError::Other(format!("unparseable reply: {e}"))))?;
        match v.get("ok").map(|k| &k.kind) {
            Some(Kind::Bool(true)) => {
                if id.is_some() && v.get("id").and_then(Value::as_str) != id {
                    // One request is in flight, so its id is the only
                    // one a reply may carry; anything else means the
                    // stream is not speaking our protocol.
                    return Err(Attempt::Fatal(ClientError::Other(format!(
                        "reply id does not match the request in flight: {reply}"
                    ))));
                }
                Ok((reply, v))
            }
            _ => {
                let code = v.get("code").and_then(Value::as_str).unwrap_or("unknown");
                let msg = v
                    .get("error")
                    .and_then(Value::as_str)
                    .map_or_else(|| reply.clone(), str::to_string);
                let err =
                    ClientError::Other(format!("server rejected the request ({code}): {msg}"));
                if code == "overloaded" || code == "deadline-exceeded" {
                    // Admission pressure and queue-deadline expiry are
                    // transient; back off and resend (the request was
                    // rejected or dropped, never executed).
                    Err(Attempt::Retry(err))
                } else {
                    Err(Attempt::Fatal(err))
                }
            }
        }
    }
}

/// Print a prediction reply's rows: JSON rows verbatim off the wire,
/// CSV rows as the carried strings.
fn print_rows(reply: &str, v: &Value, csv: bool, out: &mut dyn Write) -> Result<(), String> {
    let rows = v
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or("reply has no rows")?;
    for r in rows {
        if csv {
            let s = r.as_str().ok_or("CSV reply row is not a string")?;
            writeln!(out, "{s}").map_err(|e| e.to_string())?;
        } else {
            writeln!(out, "{}", r.raw(reply)).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn drive(o: &Options) -> Result<(), ClientError> {
    let mut client = Client::new(o);
    let local = |e: String| ClientError::Other(e);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    if let Some(op) = &o.op {
        let (reply, v) = client.call(&format!("{{\"op\":{}}}", jstr(op)))?;
        // stats: print the payload object alone; ping/health: the
        // whole reply.
        let payload = v.get("stats").map_or(reply.as_str(), |s| s.raw(&reply));
        writeln!(&mut out, "{payload}").map_err(|e| local(e.to_string()))?;
        return out.flush().map_err(|e| local(e.to_string()));
    }

    if o.csv {
        writeln!(&mut out, "{}", csv_header(o.explain)).map_err(|e| local(e.to_string()))?;
    }
    if let Some(hex) = &o.hex {
        let (reply, v) = client.call(&batch_request(o, std::slice::from_ref(hex)))?;
        print_rows(&reply, &v, o.csv, &mut out).map_err(local)?;
        return out.flush().map_err(|e| local(e.to_string()));
    }

    // Batch mode: stream input lines in chunks, one request per chunk.
    // Rows arrive in request order, so output order matches the input
    // (and `facile --batch`) regardless of chunk size.
    let input: Box<dyn BufRead> = match o.batch.as_ref().expect("batch mode") {
        Some(path) => {
            Box::new(BufReader::new(std::fs::File::open(path).map_err(|e| {
                ClientError::Other(format!("cannot open {path}: {e}"))
            })?))
        }
        None => Box::new(BufReader::new(std::io::stdin())),
    };
    let mut blocks: Vec<String> = Vec::with_capacity(o.chunk);
    for line in input.lines() {
        let line = line.map_err(|e| local(e.to_string()))?;
        let Some(hex) = facile_bhive::csv::hex_field(&line) else {
            continue;
        };
        blocks.push(hex.to_string());
        if blocks.len() >= o.chunk {
            let (reply, v) = client.call(&batch_request(o, &blocks))?;
            print_rows(&reply, &v, o.csv, &mut out).map_err(local)?;
            blocks.clear();
        }
    }
    if !blocks.is_empty() {
        let (reply, v) = client.call(&batch_request(o, &blocks))?;
        print_rows(&reply, &v, o.csv, &mut out).map_err(local)?;
    }
    out.flush().map_err(|e| local(e.to_string()))
}

pub fn main(args: Vec<String>) -> ExitCode {
    let o = match parse(args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match drive(&o) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e @ ClientError::Connect { .. }) => {
            // Exit 3: the daemon is unreachable — distinct from exit 1
            // (bad request / server-side failure) so wrappers can decide
            // whether starting a daemon would help.
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
