//! `facile client` — talk to a running `facile serve` daemon.
//!
//! The client is deliberately thin: it builds protocol request lines,
//! streams reply rows to stdout, and does **no row formatting of its
//! own** — JSON rows are echoed verbatim from the reply (byte-identical
//! to `facile --batch --format json` by construction), CSV rows are the
//! reply's carried strings under the same header line `facile --batch
//! --format csv` prints.

use facile_engine::render::csv_header;
use facile_server::json::{self, Kind, Value};
use facile_uarch::Uarch;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

const USAGE: &str = "\
facile client — send prediction requests to a facile serve daemon

USAGE:
    facile client --socket <PATH> --hex <BYTES> [OPTIONS]
    facile client --tcp <ADDR> --batch [FILE] [OPTIONS]
    facile client --socket <PATH> --op stats|ping

CONNECTION (exactly one):
    --socket <PATH>    connect to a Unix-domain socket
    --tcp <ADDR>       connect to a TCP address (host:port)

INPUT (exactly one):
    --hex <BYTES>      predict a single block
    --batch [FILE]     read blocks from FILE (default stdin), one per
                       line — bare hex or BHive CSV, exactly like
                       `facile --batch`
    --op <OP>          a one-off request: `stats` (print the server's
                       counters as JSON) or `ping`

OPTIONS:
    --uarch <ABBR>     microarchitecture (default SKL)
    --all-uarchs       predict on all nine microarchitectures
    --mode <MODE>      auto | loop | unroll (default auto)
    --predictors <KEYS> predictor selector (server default when omitted)
    --format <FMT>     json | csv row output (default json)
    --explain          request full explanations (and the CSV
                       explanation column)
    --deadline-ms <N>  per-request queue deadline
    --chunk <N>        blocks per request in batch mode (default 1024)
    --help             show this help

Row output is byte-identical to `facile --batch` with the same flags:
rows come off the wire in the CLI's own rendering.
";

/// Where to connect (resolved to a live socket in [`drive`]).
enum ConnectTo {
    #[cfg(unix)]
    Unix(String),
    Tcp(String),
}

struct Options {
    connect: ConnectTo,
    hex: Option<String>,
    /// `Some(path)` = batch from a file, `Some(None)` = batch from stdin.
    batch: Option<Option<String>>,
    op: Option<String>,
    uarch: Uarch,
    all_uarchs: bool,
    mode: Option<&'static str>,
    predictors: Option<String>,
    csv: bool,
    explain: bool,
    deadline_ms: Option<u64>,
    chunk: usize,
}

fn parse(args: Vec<String>) -> Result<Option<Options>, String> {
    let mut connect: Option<ConnectTo> = None;
    let mut hex = None;
    let mut batch: Option<Option<String>> = None;
    let mut op = None;
    let mut uarch = Uarch::Skl;
    let mut all_uarchs = false;
    let mut mode = None;
    let mut predictors = None;
    let mut csv = false;
    let mut explain = false;
    let mut deadline_ms = None;
    let mut chunk = 1024usize;
    let mut it = args.into_iter().peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--socket" => {
                let path = it.next().ok_or("--socket requires a value")?;
                #[cfg(unix)]
                {
                    connect = Some(ConnectTo::Unix(path));
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    return Err("--socket is only available on Unix".into());
                }
            }
            "--tcp" => connect = Some(ConnectTo::Tcp(it.next().ok_or("--tcp requires a value")?)),
            "--hex" => hex = Some(it.next().ok_or("--hex requires a value")?),
            "--batch" => {
                // An optional positional FILE follows unless the next
                // token is a flag; `-` means stdin.
                let file = match it.peek() {
                    Some(t) if !t.starts_with("--") => Some(it.next().expect("peeked")),
                    _ => None,
                };
                batch = Some(file.filter(|f| f != "-"));
            }
            "--op" => op = Some(it.next().ok_or("--op requires a value")?),
            "--uarch" => {
                uarch = it
                    .next()
                    .ok_or("--uarch requires a value")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--all-uarchs" => all_uarchs = true,
            "--mode" => {
                mode = match it.next().ok_or("--mode requires a value")?.as_str() {
                    "auto" => None,
                    "loop" | "tpl" => Some("tpl"),
                    "unroll" | "tpu" => Some("tpu"),
                    other => return Err(format!("unknown mode: {other}")),
                };
            }
            "--predictors" => {
                predictors = Some(it.next().ok_or("--predictors requires a value")?);
            }
            "--format" => {
                csv = match it.next().ok_or("--format requires a value")?.as_str() {
                    "json" => false,
                    "csv" => true,
                    other => return Err(format!("unknown format: {other} (json|csv)")),
                };
            }
            "--explain" => explain = true,
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .ok_or("--deadline-ms requires a value")?
                        .parse()
                        .map_err(|_| "numeric --deadline-ms".to_string())?,
                );
            }
            "--chunk" => {
                chunk = it
                    .next()
                    .ok_or("--chunk requires a value")?
                    .parse()
                    .map_err(|_| "numeric --chunk".to_string())?;
                if chunk == 0 {
                    return Err("--chunk must be at least 1".into());
                }
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    let connect = connect.ok_or("provide --socket <PATH> or --tcp <ADDR>")?;
    let inputs =
        usize::from(hex.is_some()) + usize::from(batch.is_some()) + usize::from(op.is_some());
    if inputs != 1 {
        return Err("provide exactly one of --hex, --batch, or --op".into());
    }
    if let Some(op) = &op {
        if op != "stats" && op != "ping" {
            return Err(format!("unknown op: {op} (stats|ping)"));
        }
    }
    Ok(Some(Options {
        connect,
        hex,
        batch,
        op,
        uarch,
        all_uarchs,
        mode,
        predictors,
        csv,
        explain,
        deadline_ms,
        chunk,
    }))
}

/// A JSON string literal for a request field (blocks may carry
/// arbitrary bytes from malformed input lines; the server turns those
/// into error rows, not protocol errors).
fn jstr(s: &str) -> String {
    format!("\"{}\"", facile_explain::json_escape(s))
}

fn batch_request(o: &Options, blocks: &[String]) -> String {
    let mut req = String::with_capacity(64 + blocks.len() * 20);
    req.push_str("{\"op\":\"batch\",\"blocks\":[");
    for (i, b) in blocks.iter().enumerate() {
        if i > 0 {
            req.push(',');
        }
        req.push_str(&jstr(b));
    }
    req.push_str("],\"uarch\":");
    if o.all_uarchs {
        req.push_str("\"all\"");
    } else {
        req.push_str(&jstr(&o.uarch.to_string()));
    }
    if let Some(m) = o.mode {
        req.push_str(",\"mode\":\"");
        req.push_str(m);
        req.push('"');
    }
    if o.explain {
        req.push_str(",\"detail\":\"full\"");
    }
    if let Some(p) = &o.predictors {
        req.push_str(",\"predictors\":");
        req.push_str(&jstr(p));
    }
    if o.csv {
        req.push_str(",\"format\":\"csv\"");
    }
    if let Some(d) = o.deadline_ms {
        req.push_str(&format!(",\"deadline_ms\":{d}"));
    }
    req.push('}');
    req
}

/// Send one request line and read one reply line, verifying `ok`.
fn round_trip(
    tx: &mut dyn Write,
    rx: &mut dyn BufRead,
    req: &str,
) -> Result<(String, Value), String> {
    tx.write_all(req.as_bytes()).map_err(|e| e.to_string())?;
    tx.write_all(b"\n").map_err(|e| e.to_string())?;
    tx.flush().map_err(|e| e.to_string())?;
    let mut reply = String::new();
    let n = rx.read_line(&mut reply).map_err(|e| e.to_string())?;
    if n == 0 {
        return Err("server closed the connection".into());
    }
    reply.truncate(reply.trim_end_matches(['\n', '\r']).len());
    let v = json::parse(&reply).map_err(|e| format!("unparseable reply: {e}"))?;
    match v.get("ok").map(|k| &k.kind) {
        Some(Kind::Bool(true)) => Ok((reply, v)),
        _ => {
            let code = v.get("code").and_then(Value::as_str).unwrap_or("unknown");
            let msg = v
                .get("error")
                .and_then(Value::as_str)
                .map_or_else(|| reply.clone(), str::to_string);
            Err(format!("server rejected the request ({code}): {msg}"))
        }
    }
}

/// Print a prediction reply's rows: JSON rows verbatim off the wire,
/// CSV rows as the carried strings.
fn print_rows(reply: &str, v: &Value, csv: bool, out: &mut dyn Write) -> Result<(), String> {
    let rows = v
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or("reply has no rows")?;
    for r in rows {
        if csv {
            let s = r.as_str().ok_or("CSV reply row is not a string")?;
            writeln!(out, "{s}").map_err(|e| e.to_string())?;
        } else {
            writeln!(out, "{}", r.raw(reply)).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn drive(o: &Options) -> Result<(), String> {
    let (mut tx, mut rx): (Box<dyn Write>, Box<dyn BufRead>) = match &o.connect {
        #[cfg(unix)]
        ConnectTo::Unix(path) => {
            let s =
                UnixStream::connect(path).map_err(|e| format!("cannot connect to {path}: {e}"))?;
            let r = s.try_clone().map_err(|e| e.to_string())?;
            (Box::new(s), Box::new(BufReader::new(r)))
        }
        ConnectTo::Tcp(addr) => {
            let s =
                TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let _ = s.set_nodelay(true); // request lines are small
            let r = s.try_clone().map_err(|e| e.to_string())?;
            (Box::new(s), Box::new(BufReader::new(r)))
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    if let Some(op) = &o.op {
        let (reply, v) = round_trip(&mut tx, &mut rx, &format!("{{\"op\":{}}}", jstr(op)))?;
        // stats: print the payload object alone; ping: the whole reply.
        let payload = v.get("stats").map_or(reply.as_str(), |s| s.raw(&reply));
        writeln!(&mut out, "{payload}").map_err(|e| e.to_string())?;
        return out.flush().map_err(|e| e.to_string());
    }

    if o.csv {
        writeln!(&mut out, "{}", csv_header(o.explain)).map_err(|e| e.to_string())?;
    }
    if let Some(hex) = &o.hex {
        let (reply, v) = round_trip(
            &mut tx,
            &mut rx,
            &batch_request(o, std::slice::from_ref(hex)),
        )?;
        print_rows(&reply, &v, o.csv, &mut out)?;
        return out.flush().map_err(|e| e.to_string());
    }

    // Batch mode: stream input lines in chunks, one request per chunk.
    // Rows arrive in request order, so output order matches the input
    // (and `facile --batch`) regardless of chunk size.
    let input: Box<dyn BufRead> = match o.batch.as_ref().expect("batch mode") {
        Some(path) => Box::new(BufReader::new(
            std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?,
        )),
        None => Box::new(BufReader::new(std::io::stdin())),
    };
    let mut blocks: Vec<String> = Vec::with_capacity(o.chunk);
    for line in input.lines() {
        let line = line.map_err(|e| e.to_string())?;
        let Some(hex) = facile_bhive::csv::hex_field(&line) else {
            continue;
        };
        blocks.push(hex.to_string());
        if blocks.len() >= o.chunk {
            let (reply, v) = round_trip(&mut tx, &mut rx, &batch_request(o, &blocks))?;
            print_rows(&reply, &v, o.csv, &mut out)?;
            blocks.clear();
        }
    }
    if !blocks.is_empty() {
        let (reply, v) = round_trip(&mut tx, &mut rx, &batch_request(o, &blocks))?;
        print_rows(&reply, &v, o.csv, &mut out)?;
    }
    out.flush().map_err(|e| e.to_string())
}

pub fn main(args: Vec<String>) -> ExitCode {
    let o = match parse(args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match drive(&o) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
