//! Golden tests for the CLI's machine-readable batch output: the exact
//! bytes must be stable (they are diffed by downstream tooling) and
//! independent of the worker-thread count.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_facile(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_facile"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn facile");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("facile runs");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.success(),
    )
}

const BATCH_INPUT: &str = "\
# comment lines and blanks are skipped

4801c8480fafd0
4801c8,12.34
zznothex
49ffcb75fb
";

#[test]
fn batch_json_golden() {
    let (stdout, stderr, ok) = run_facile(
        &["--batch", "--predictors", "facile", "--json"],
        BATCH_INPUT,
    );
    assert!(ok, "stderr: {stderr}");
    let expected = "\
{\"block\":\"4801c8480fafd0\",\"uarch\":\"SKL\",\"mode\":\"tpu\",\"predictor\":\"facile\",\"status\":\"ok\",\"throughput\":3.0000,\"bottleneck\":\"Precedence\"}
{\"block\":\"4801c8\",\"uarch\":\"SKL\",\"mode\":\"tpu\",\"predictor\":\"facile\",\"status\":\"ok\",\"throughput\":1.0000,\"bottleneck\":\"Precedence\"}
{\"block\":\"zznothex\",\"uarch\":\"SKL\",\"mode\":\"\",\"predictor\":\"facile\",\"status\":\"error\",\"code\":\"bad-hex\",\"error\":\"not a hex-encoded block: \\\"zznothex\\\"\"}
{\"block\":\"49ffcb75fb\",\"uarch\":\"SKL\",\"mode\":\"tpl\",\"predictor\":\"facile\",\"status\":\"ok\",\"throughput\":1.0000,\"bottleneck\":\"DSB\"}
";
    assert_eq!(stdout, expected);
}

#[test]
fn batch_csv_golden() {
    let (stdout, stderr, ok) =
        run_facile(&["--batch", "--predictors", "facile", "--csv"], BATCH_INPUT);
    assert!(ok, "stderr: {stderr}");
    let expected = "\
block,uarch,mode,predictor,status,throughput,bottleneck,error
4801c8480fafd0,SKL,tpu,facile,ok,3.0000,Precedence,
4801c8,SKL,tpu,facile,ok,1.0000,Precedence,
zznothex,SKL,,facile,bad-hex,,,\"not a hex-encoded block: \"\"zznothex\"\"\"
49ffcb75fb,SKL,tpl,facile,ok,1.0000,DSB,
";
    assert_eq!(stdout, expected);
}

#[test]
fn batch_output_is_identical_across_thread_counts() {
    // A bigger batch (including error lines) must produce byte-identical
    // output on one thread and on many.
    let mut input = String::new();
    for b in facile_bhive::generate_suite(50, 1234) {
        input.push_str(&b.unrolled.to_hex());
        input.push('\n');
        input.push_str(&b.looped.to_hex());
        input.push('\n');
        if b.id % 7 == 0 {
            input.push_str("deadbeefdeadbeefff\n"); // undecodable
        }
    }
    let args_base = ["--batch", "--predictors", "facile,sim", "--json"];
    let (one, _, ok1) = run_facile(&[&args_base[..], &["--threads", "1"]].concat(), &input);
    let (many, _, ok8) = run_facile(&[&args_base[..], &["--threads", "8"]].concat(), &input);
    assert!(ok1 && ok8);
    assert_eq!(one, many);
    let rows = one.lines().count();
    assert_eq!(rows, (100 + 8) * 2, "one row per (block, predictor)");
}

#[test]
fn batch_thousand_blocks_no_panics() {
    // Acceptance criterion: >= 1000 blocks through stdin, one row per
    // (block, predictor), no panics on undecodable input.
    let mut input = String::new();
    let suite = facile_bhive::generate_suite(500, 77);
    for b in &suite {
        input.push_str(&b.unrolled.to_hex());
        input.push('\n');
        input.push_str(&b.looped.to_hex());
        input.push('\n');
    }
    input.push_str("zz\n0f0b\n"); // junk: non-hex, then an unsupported opcode (ud2)
    let (stdout, stderr, ok) = run_facile(&["--batch", "--predictors", "facile", "--json"], &input);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.lines().count(), 1002);
    let errors = stdout
        .lines()
        .filter(|l| l.contains("\"status\":\"error\""))
        .count();
    assert_eq!(errors, 2);
    assert!(!stderr.contains("panic"), "{stderr}");
}

#[test]
fn unknown_predictor_selector_fails_cleanly() {
    let (_, stderr, ok) = run_facile(&["--batch", "--predictors", "uica", "--json"], "4801c8\n");
    assert!(!ok);
    assert!(stderr.contains("no predictor matches"), "{stderr}");
}

#[test]
fn single_block_json_uses_the_same_row_format() {
    let (stdout, stderr, ok) = run_facile(
        &[
            "--hex",
            "4801c8480fafd0",
            "--json",
            "--predictors",
            "facile,sim",
        ],
        "",
    );
    assert!(ok, "stderr: {stderr}");
    let expected = "\
{\"block\":\"4801c8480fafd0\",\"uarch\":\"SKL\",\"mode\":\"tpu\",\"predictor\":\"facile\",\"status\":\"ok\",\"throughput\":3.0000,\"bottleneck\":\"Precedence\"}
{\"block\":\"4801c8480fafd0\",\"uarch\":\"SKL\",\"mode\":\"tpu\",\"predictor\":\"sim\",\"status\":\"ok\",\"throughput\":3.0000,\"bottleneck\":null}
";
    assert_eq!(stdout, expected);
}

#[test]
fn format_flag_matches_deprecated_aliases() {
    // `--format json`/`--format csv` must be byte-identical on stdout to
    // the deprecated `--json`/`--csv` aliases (which stay supported).
    for (new_flag, old_flag) in [
        (&["--format", "json"][..], "--json"),
        (&["--format", "csv"][..], "--csv"),
    ] {
        let (new_out, _, ok_new) = run_facile(
            &[&["--batch", "--predictors", "facile"], new_flag].concat(),
            BATCH_INPUT,
        );
        let (old_out, old_err, ok_old) = run_facile(
            &["--batch", "--predictors", "facile", old_flag],
            BATCH_INPUT,
        );
        assert!(ok_new && ok_old);
        assert_eq!(new_out, old_out);
        assert!(old_err.contains("deprecated"), "{old_err}");
    }
}

#[test]
fn explain_json_rows_carry_structured_explanations() {
    let (stdout, stderr, ok) = run_facile(
        &[
            "--batch",
            "--predictors",
            "facile",
            "--explain",
            "--format",
            "json",
        ],
        "4801c8480fafd0\n49ffcb75fb\n",
    );
    assert!(ok, "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        assert!(line.contains("\"explanation\":{"), "{line}");
        assert!(line.contains("\"bounds\":[{\"component\":"), "{line}");
        assert!(line.contains("\"critical_chain\":[{\"inst\":"), "{line}");
        assert!(line.contains("\"port_loads\":[{\"ports\":"), "{line}");
        assert!(line.contains("\"front_end\":"), "{line}");
    }
    // The TPU row decodes through MITE, the short loop through the DSB.
    assert!(lines[0].contains("\"front_end\":\"MITE\""), "{}", lines[0]);
    assert!(lines[1].contains("\"front_end\":\"DSB\""), "{}", lines[1]);

    // Without --explain the rows carry no explanation object but still
    // have the bottleneck column.
    let (brief, _, ok) = run_facile(
        &["--batch", "--predictors", "facile", "--format", "json"],
        "4801c8480fafd0\n",
    );
    assert!(ok);
    assert!(!brief.contains("explanation"));
    assert!(brief.contains("\"bottleneck\":\"Precedence\""));
}

#[test]
fn explain_csv_appends_an_explanation_column() {
    let (stdout, stderr, ok) = run_facile(
        &[
            "--batch",
            "--predictors",
            "facile",
            "--explain",
            "--format",
            "csv",
        ],
        "4801c8\nzznothex\n",
    );
    assert!(ok, "stderr: {stderr}");
    let mut lines = stdout.lines();
    assert_eq!(
        lines.next().unwrap(),
        "block,uarch,mode,predictor,status,throughput,bottleneck,error,explanation"
    );
    let ok_row = lines.next().unwrap();
    assert!(
        ok_row.starts_with("4801c8,SKL,tpu,facile,ok,1.0000,Precedence,,"),
        "{ok_row}"
    );
    assert!(ok_row.contains("critical_chain"), "{ok_row}");
    // Error rows keep the column (empty).
    let err_row = lines.next().unwrap();
    assert!(err_row.ends_with(','), "{err_row}");
}

#[test]
fn explain_text_batch_rows_get_indented_summaries() {
    let (stdout, stderr, ok) = run_facile(
        &["--batch", "--predictors", "facile", "--explain"],
        "4801c8480fafd0\n",
    );
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("    front end: MITE; bottleneck: Precedence"),
        "{stdout}"
    );
    assert!(stdout.contains("    bounds: "), "{stdout}");
    assert!(stdout.contains("    chain: [rdx]@1+3.00/carry"), "{stdout}");
}
