//! Server-vs-CLI bit-identity: rows served by a `facile serve` daemon
//! through `facile client --batch` must be **byte-identical** to what
//! `facile --batch` prints for the same input and flags — the server is
//! a transport, never a second formatter. Exercised over a 2000-block
//! generated suite in both row formats, plus daemon lifecycle (ready
//! line, SIGTERM drain, exit 0).

#![cfg(unix)]

use facile_bhive::generate_suite;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("facile-srvcli-{}-{tag}", std::process::id()))
}

/// The 2000-block workload: both rotations of a generated suite.
fn suite_lines() -> String {
    let mut s = String::new();
    for b in generate_suite(1000, 0xb10c) {
        s.push_str(&b.unrolled.to_hex());
        s.push('\n');
        s.push_str(&b.looped.to_hex());
        s.push('\n');
    }
    s
}

/// Spawn `facile serve --socket <path>` and wait for its ready line.
fn spawn_server(socket: &PathBuf, extra: &[&str]) -> Child {
    spawn_server_env(socket, extra, &[])
}

/// [`spawn_server`] with extra environment (chaos runs arm fault
/// injection through `FACILE_FAULTS`).
fn spawn_server_env(socket: &PathBuf, extra: &[&str], envs: &[(&str, &str)]) -> Child {
    let mut child = Command::new(env!("CARGO_BIN_EXE_facile"))
        .arg("serve")
        .arg("--socket")
        .arg(socket)
        .args(extra)
        .envs(envs.iter().copied())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn facile serve");
    let mut ready = String::new();
    BufReader::new(child.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut ready)
        .expect("ready line");
    assert!(
        ready.starts_with(r#"{"serving":""#),
        "unexpected ready line: {ready}"
    );
    child
}

/// SIGTERM the daemon and assert a clean drain (exit 0).
fn terminate(child: Child) -> String {
    let pid = child.id().to_string();
    let ok = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs")
        .success();
    assert!(ok, "kill -TERM failed");
    let out = child.wait_with_output().expect("server exits");
    assert!(
        out.status.success(),
        "serve exited nonzero after SIGTERM: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn run_facile(args: &[&str], stdin: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_facile"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn facile");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("facile runs");
    assert!(
        out.status.success(),
        "facile {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn served_rows_are_byte_identical_to_cli_batch() {
    let socket = temp_path("bitident.sock");
    let input_file = temp_path("bitident.blocks");
    let input = suite_lines();
    std::fs::write(&input_file, &input).expect("input file writes");
    let server = spawn_server(&socket, &[]);
    let sock = socket.to_str().expect("utf8 path");
    let file = input_file.to_str().expect("utf8 path");

    // JSON rows, default uarch.
    let direct = run_facile(&["--batch", "--predictors", "facile", "--json"], &input);
    let served = run_facile(
        &[
            "client", "--socket", sock, "--batch", file, "--format", "json",
        ],
        "",
    );
    assert_eq!(
        served, direct,
        "served JSON rows diverge from `facile --batch --json`"
    );
    assert_eq!(direct.lines().count(), 2000, "one row per suite block");

    // CSV rows (header included), and a non-default chunk size to prove
    // output is independent of how the client slices requests.
    let direct = run_facile(&["--batch", "--predictors", "facile", "--csv"], &input);
    let served = run_facile(
        &[
            "client", "--socket", sock, "--batch", file, "--format", "csv", "--chunk", "333",
        ],
        "",
    );
    assert_eq!(
        served, direct,
        "served CSV rows diverge from `facile --batch --csv`"
    );

    terminate(server);
    std::fs::remove_file(&input_file).ok();
    assert!(!socket.exists(), "socket file should be unlinked on drain");
}

#[test]
fn single_hex_and_stats_round_trip() {
    let socket = temp_path("single.sock");
    let server = spawn_server(&socket, &[]);
    let sock = socket.to_str().expect("utf8 path");

    let row = run_facile(&["client", "--socket", sock, "--hex", "4801c8"], "");
    assert_eq!(
        row,
        "{\"block\":\"4801c8\",\"uarch\":\"SKL\",\"mode\":\"tpu\",\"predictor\":\"facile\",\
         \"status\":\"ok\",\"throughput\":1.0000,\"bottleneck\":\"Precedence\"}\n"
    );

    let stats = run_facile(&["client", "--socket", sock, "--op", "stats"], "");
    assert!(
        stats.starts_with(r#"{"server":{"connections":"#),
        "stats payload: {stats}"
    );
    assert!(stats.contains(r#""engine":{"#), "stats payload: {stats}");

    let pong = run_facile(&["client", "--socket", sock, "--op", "ping"], "");
    assert_eq!(pong, "{\"ok\":true,\"pong\":true}\n");

    terminate(server);
}

#[test]
fn snapshot_persists_across_daemon_restarts() {
    let socket = temp_path("warm.sock");
    let snap = temp_path("warm.snap");
    let input: String = suite_lines()
        .lines()
        .take(200)
        .fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        });

    // First life: serve the suite cold, snapshot on SIGTERM.
    let server = spawn_server(&socket, &["--snapshot", snap.to_str().expect("utf8")]);
    let sock = socket.to_str().expect("utf8 path");
    let first = run_facile(
        &[
            "client", "--socket", sock, "--batch", "-", "--format", "json",
        ],
        &input,
    );
    let stderr = terminate(server);
    assert!(
        stderr.contains("snapshot: saved"),
        "no snapshot save on drain: {stderr}"
    );
    assert!(snap.exists(), "snapshot file missing");

    // Second life: the daemon reports the warm load, and warm rows are
    // byte-identical to the cold ones.
    let server = spawn_server(&socket, &["--snapshot", snap.to_str().expect("utf8")]);
    let second = run_facile(
        &[
            "client", "--socket", sock, "--batch", "-", "--format", "json",
        ],
        &input,
    );
    assert_eq!(second, first, "warm-from-snapshot rows diverge from cold");
    let stderr = terminate(server);
    assert!(
        stderr.contains("snapshot: loaded"),
        "no snapshot load on restart: {stderr}"
    );

    // Third life: a corrupted snapshot degrades to a cold start with
    // identical rows, not an error.
    let mut bytes = std::fs::read(&snap).expect("snapshot readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).expect("snapshot writable");
    let server = spawn_server(&socket, &["--snapshot", snap.to_str().expect("utf8")]);
    let third = run_facile(
        &[
            "client", "--socket", sock, "--batch", "-", "--format", "json",
        ],
        &input,
    );
    assert_eq!(third, first, "cold-fallback rows diverge");
    let stderr = terminate(server);
    assert!(
        stderr.contains("snapshot: starting cold"),
        "corrupt snapshot not reported: {stderr}"
    );

    std::fs::remove_file(&snap).ok();
}

/// Run `facile` without asserting success; callers inspect the output.
fn run_facile_raw(args: &[&str], stdin: &str) -> std::process::Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_facile"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn facile");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("facile runs")
}

#[test]
fn client_reports_connection_failure() {
    let sock = temp_path("nosuch.sock");
    let out = run_facile_raw(
        &[
            "client",
            "--socket",
            sock.to_str().expect("utf8"),
            "--hex",
            "90",
        ],
        "",
    );
    // Exit 3 is the "daemon unreachable" code, distinct from exit 1
    // (request/server failures) and exit 2 (usage errors).
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(&format!("cannot connect to {}: ", sock.display())),
        "{stderr}"
    );
    let mut empty = String::new();
    // stdout stays empty on connection failure (no spurious header).
    out.stdout
        .as_slice()
        .read_to_string(&mut empty)
        .expect("utf8");
    assert_eq!(empty, "");
}

/// `--batch` must not swallow a following flag as its FILE operand
/// (this once required a lookahead `expect`), and genuine usage errors
/// exit 2 with the usage text.
#[test]
fn batch_flag_lookahead_and_usage_errors() {
    // `--format csv` after a file-less `--batch` stays a flag: the run
    // parses, reads an empty stdin batch, and prints only the header.
    let sock = temp_path("nosuch2.sock");
    let out = run_facile_raw(
        &[
            "client",
            "--socket",
            sock.to_str().expect("utf8"),
            "--batch",
            "--format",
            "csv",
        ],
        "",
    );
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("block,uarch,") && stdout.lines().count() == 1,
        "expected a lone CSV header, got: {stdout}"
    );

    // An unknown flag is a usage error: exit 2, usage on stderr.
    let out = run_facile_raw(&["client", "--socket", "x", "--bogus"], "");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag: --bogus"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

/// `deadline-exceeded` is a transient rejection: the client retries it
/// like `overloaded` (the request was dropped in the queue, never run),
/// and exits 1 — not 3 — when retries are exhausted.
#[test]
fn client_retries_deadline_exceeded_then_exits_one() {
    let socket = temp_path("deadline.sock");
    let server = spawn_server(&socket, &[]);
    let sock = socket.to_str().expect("utf8 path");

    // deadline_ms 0 expires in the queue on every attempt.
    let out = run_facile_raw(
        &[
            "client",
            "--socket",
            sock,
            "--hex",
            "90",
            "--deadline-ms",
            "0",
            "--retries",
            "2",
            "--backoff-ms",
            "1",
        ],
        "",
    );
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.matches("retrying in").count() == 2,
        "expected exactly 2 retries: {stderr}"
    );
    assert!(stderr.contains("deadline-exceeded"), "{stderr}");

    // Without retries it fails fast on the first rejection.
    let out = run_facile_raw(
        &[
            "client",
            "--socket",
            sock,
            "--hex",
            "90",
            "--deadline-ms",
            "0",
        ],
        "",
    );
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("retrying in"), "{stderr}");

    terminate(server);
}

/// The TCP connect timeout path: a refused port fails through
/// `connect_timeout` (exit 3, the unreachable-daemon code), and a live
/// daemon connects fine under a tight timeout.
#[test]
fn tcp_connect_timeout_paths() {
    // Bind-then-drop reserves a port nobody is listening on.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
        l.local_addr().expect("addr")
    };
    let out = run_facile_raw(
        &[
            "client",
            "--tcp",
            &dead.to_string(),
            "--hex",
            "90",
            "--connect-timeout-ms",
            "500",
        ],
        "",
    );
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(&format!("cannot connect to {dead}")),
        "{stderr}"
    );

    // Against a live daemon the timed connect succeeds.
    let mut server = Command::new(env!("CARGO_BIN_EXE_facile"))
        .args(["serve", "--tcp", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn facile serve");
    let mut ready = String::new();
    BufReader::new(server.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut ready)
        .expect("ready line");
    let addr = ready
        .trim()
        .strip_prefix(r#"{"serving":""#)
        .and_then(|s| s.strip_suffix(r#""}"#))
        .expect("ready line carries the bound address")
        .to_string();
    let out = run_facile_raw(
        &[
            "client",
            "--tcp",
            &addr,
            "--hex",
            "4801c8",
            "--connect-timeout-ms",
            "2000",
        ],
        "",
    );
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains(r#""status":"ok""#),
        "{out:?}"
    );
    let pid = server.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs")
        .success());
    let _ = server.wait();
}

/// End-to-end chaos: a daemon armed (via `FACILE_FAULTS`) to drop
/// connections mid-stream, a client resending with `--retries` — the
/// output must be byte-identical to a fault-free run, and the daemon
/// must still drain cleanly on SIGTERM.
#[test]
fn client_retries_through_injected_connection_drops() {
    let input: String = suite_lines()
        .lines()
        .take(40)
        .fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        });

    let socket = temp_path("clean.sock");
    let server = spawn_server(&socket, &[]);
    let clean = run_facile(
        &[
            "client",
            "--socket",
            socket.to_str().expect("utf8"),
            "--batch",
            "-",
            "--chunk",
            "1",
        ],
        &input,
    );
    terminate(server);

    let socket = temp_path("droppy.sock");
    let server = spawn_server_env(&socket, &[], &[("FACILE_FAULTS", "seed=7,conn-drop=0.2")]);
    let out = run_facile_raw(
        &[
            "client",
            "--socket",
            socket.to_str().expect("utf8"),
            "--batch",
            "-",
            "--chunk",
            "1",
            "--retries",
            "8",
            "--backoff-ms",
            "1",
        ],
        &input,
    );
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("retrying in"),
        "the chosen seed never dropped a connection: {stderr}"
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        clean,
        "rows after retries diverge from the fault-free run"
    );
    // SIGTERM mid-chaos still drains with exit 0 (asserted inside).
    let server_stderr = terminate(server);
    assert!(
        server_stderr.contains("fault injection armed"),
        "{server_stderr}"
    );
}
