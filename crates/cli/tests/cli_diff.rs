//! Tests for the `facile diff` subcommand: golden JSON on a fixed seed
//! (byte-identical across runs and thread counts), and the documented
//! exit codes for unknown predictor keys and bad thresholds.

use std::process::Command;

fn run_diff(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_facile"))
        .arg("diff")
        .args(args)
        .output()
        .expect("facile runs");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
        out.status.code(),
    )
}

const GOLDEN_ARGS: &[&str] = &[
    "--predictors",
    "facile,llvm-mca",
    "--seed",
    "7",
    "--count",
    "40",
    "--threshold",
    "0.6",
    "--format",
    "json",
];

#[test]
fn golden_json_on_fixed_seed() {
    let golden = include_str!("golden/diff.json");
    let (stdout, stderr, code) = run_diff(GOLDEN_ARGS);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert_eq!(
        stdout,
        golden,
        "diff output drifted from crates/cli/tests/golden/diff.json;\n\
         if the change is intentional, regenerate with:\n\
         facile diff {} > crates/cli/tests/golden/diff.json",
        GOLDEN_ARGS.join(" ")
    );
}

#[test]
fn output_is_identical_across_runs_and_thread_counts() {
    let (first, _, c1) = run_diff(GOLDEN_ARGS);
    let (second, _, c2) = run_diff(GOLDEN_ARGS);
    let one = [GOLDEN_ARGS, &["--threads", "1"]].concat();
    let eight = [GOLDEN_ARGS, &["--threads", "8"]].concat();
    let (t1, _, c3) = run_diff(&one);
    let (t8, _, c4) = run_diff(&eight);
    assert_eq!(c1, Some(0));
    assert_eq!(c2, Some(0));
    assert_eq!(c3, Some(0));
    assert_eq!(c4, Some(0));
    assert_eq!(first, second, "two consecutive runs must be bit-identical");
    assert_eq!(first, t1, "--threads 1 must not change the output");
    assert_eq!(first, t8, "--threads 8 must not change the output");
}

#[test]
fn unknown_predictor_key_is_a_usage_error() {
    let (stdout, stderr, code) = run_diff(&["--predictors", "uica,sim", "--count", "5"]);
    assert_eq!(code, Some(2));
    assert!(stdout.is_empty());
    assert!(stderr.contains("no predictor matches"), "{stderr}");
    assert!(stderr.contains("uica"), "{stderr}");
    // A selector resolving to a single predictor is equally unusable.
    let (_, stderr, code) = run_diff(&["--predictors", "facile", "--count", "5"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("at least two predictors"), "{stderr}");
}

#[test]
fn bad_thresholds_are_usage_errors() {
    for bad in ["0", "-0.5", "abc", "inf", "NaN"] {
        let (stdout, stderr, code) = run_diff(&["--threshold", bad, "--count", "5"]);
        assert_eq!(code, Some(2), "threshold {bad:?}: stderr {stderr}");
        assert!(stdout.is_empty(), "threshold {bad:?}");
        assert!(stderr.contains("threshold"), "threshold {bad:?}: {stderr}");
    }
}

#[test]
fn unknown_flags_and_presets_are_usage_errors() {
    let (_, stderr, code) = run_diff(&["--bogus"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown flag"), "{stderr}");
    let (_, stderr, code) = run_diff(&["--preset", "nope"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown preset"), "{stderr}");
    assert!(stderr.contains("balanced"), "{stderr}");
}

#[test]
fn missing_input_file_is_a_runtime_error() {
    let (_, stderr, code) = run_diff(&["--input", "/nonexistent/blocks.csv", "--count", "5"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn input_csv_blocks_are_hunted() {
    // Two blocks llvm-mca and iaca disagree on would be hard to pin by
    // hand; instead verify the plumbing: records are scanned and labeled.
    let dir = std::env::temp_dir().join("facile-diff-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("blocks.csv");
    std::fs::write(&path, "# corpus\n4801c8480fafd0,3.0\n4801c8\n").expect("write csv");
    let (stdout, stderr, code) = run_diff(&[
        "--input",
        path.to_str().expect("utf8 path"),
        "--count",
        "0",
        "--threshold",
        "5.0",
        "--format",
        "json",
    ]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("\"scanned_blocks\":2"),
        "both CSV records scanned: {stdout}"
    );
    // A malformed CSV is rejected with its line number.
    std::fs::write(&path, "4801c8\nzznothex\n").expect("write csv");
    let (_, stderr, code) = run_diff(&["--input", path.to_str().expect("utf8 path")]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains(":2:"), "line number in: {stderr}");
}

#[test]
fn text_format_reports_matrix_and_counterexamples() {
    let (stdout, stderr, code) = run_diff(&[
        "--predictors",
        "facile,llvm-mca",
        "--seed",
        "7",
        "--count",
        "40",
        "--threshold",
        "0.6",
    ]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stdout.contains("scanned 40 blocks"), "{stdout}");
    assert!(stdout.contains("facile vs llvm-mca"), "{stdout}");
    assert!(stdout.contains("counterexample #0:"), "{stdout}");
    assert!(stdout.contains("dsb-delivery divergence"), "{stdout}");
}

const GENERALIZE_ARGS: &[&str] = &[
    "--predictors",
    "facile,llvm-mca",
    "--seed",
    "7",
    "--count",
    "40",
    "--threshold",
    "0.6",
    "--generalize",
    "--format",
    "json",
];

#[test]
fn generalize_golden_json_on_fixed_seed() {
    let golden = include_str!("golden/diff_generalize.json");
    let (stdout, stderr, code) = run_diff(GENERALIZE_ARGS);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert_eq!(
        stdout,
        golden,
        "diff --generalize output drifted from \
         crates/cli/tests/golden/diff_generalize.json;\n\
         if the change is intentional, regenerate with:\n\
         facile diff {} > crates/cli/tests/golden/diff_generalize.json",
        GENERALIZE_ARGS.join(" ")
    );
    assert!(
        stdout.contains("{\"patterns\":[{\"pattern\":"),
        "at least one clustered pattern: {stdout}"
    );
}

/// Build the external mock tool (it lives in `facile-bench`, so its
/// `CARGO_BIN_EXE_*` var is not visible here) and return its path.
fn mock_predictor() -> std::path::PathBuf {
    static BUILD: std::sync::Once = std::sync::Once::new();
    BUILD.call_once(|| {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
        let status = Command::new(cargo)
            .args(["build", "-p", "facile-bench", "--bin", "mock_predictor"])
            .status()
            .expect("cargo runs");
        assert!(status.success(), "mock_predictor builds");
    });
    // Same profile directory as the facile binary under test.
    std::path::Path::new(env!("CARGO_BIN_EXE_facile")).with_file_name("mock_predictor")
}

#[test]
fn external_predictor_generalize_is_deterministic_end_to_end() {
    let mock = mock_predictor();
    let selector = format!(
        "facile,ext:mock={} --mode constant-offset --offset 2.0",
        mock.display()
    );
    let base = [
        "--predictors",
        &selector,
        "--seed",
        "7",
        "--count",
        "40",
        "--threshold",
        "0.5",
        "--max-counterexamples",
        "4",
        "--generalize",
        "--format",
        "json",
    ];
    let (first, stderr, code) = run_diff(&base);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(first.contains("\"predictor\":\"ext:mock\""), "{first}");
    assert!(
        first.contains("{\"patterns\":[{\"pattern\":"),
        "external disagreements must cluster: {first}"
    );
    // Acceptance: bit-identical across runs and thread counts, even
    // with a live subprocess in the loop.
    let (second, _, c2) = run_diff(&base);
    let (t1, _, c3) = run_diff(&[&base[..], &["--threads", "1"]].concat());
    let (t8, _, c4) = run_diff(&[&base[..], &["--threads", "8"]].concat());
    assert_eq!(c2, Some(0));
    assert_eq!(c3, Some(0));
    assert_eq!(c4, Some(0));
    assert_eq!(first, second, "two consecutive runs must be bit-identical");
    assert_eq!(first, t1, "--threads 1 must not change the output");
    assert_eq!(first, t8, "--threads 8 must not change the output");
}

#[test]
fn bad_external_definitions_are_usage_errors() {
    // An invalid tool name in an `ext:` selector token.
    let (_, stderr, code) = run_diff(&["--predictors", "facile,ext:bad name=/bin/true"]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("external predictor"), "{stderr}");
    // An empty command.
    let (_, stderr, code) = run_diff(&["--predictors", "facile,ext:mock="]);
    assert_eq!(code, Some(2), "stderr: {stderr}");
    assert!(stderr.contains("command"), "{stderr}");
    // A missing --ext-config file is a runtime error.
    let (_, stderr, code) = run_diff(&["--ext-config", "/nonexistent/ext.toml", "--count", "5"]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn fail_on_unclassified_gates() {
    // facile explains itself, so facile pairs always classify: exit 0.
    let (_, _, code) = run_diff(&[
        "--predictors",
        "facile,llvm-mca",
        "--seed",
        "7",
        "--count",
        "40",
        "--threshold",
        "0.6",
        "--fail-on-unclassified",
    ]);
    assert_eq!(code, Some(0));
    // Two baselines with no explanation layer cannot classify: exit 3
    // (llvm-mca vs iaca disagree within 40 blocks at this threshold).
    let (_, stderr, code) = run_diff(&[
        "--predictors",
        "llvm-mca,iaca",
        "--seed",
        "7",
        "--count",
        "40",
        "--threshold",
        "0.6",
        "--fail-on-unclassified",
    ]);
    assert_eq!(code, Some(3), "stderr: {stderr}");
    assert!(stderr.contains("could not be classified"), "{stderr}");
}
