//! The decoded stream buffer (µop cache) throughput predictor (§4.5).

use facile_explain::{Component, ComponentAnalysis, DsbEvidence, Evidence};
use facile_isa::AnnotatedBlock;

/// The kernel's view of the block: the evidence struct doubles as the
/// single source of the bound's inputs, so the Full-detail evidence can
/// never diverge from the computed bound.
fn dsb_view(ab: &AnnotatedBlock) -> DsbEvidence {
    DsbEvidence {
        fused_uops: ab.total_fused_uops(),
        dsb_width: ab.uarch().config().dsb_width,
        rounded_up: ab.byte_len() < 32,
    }
}

fn dsb_bound(v: DsbEvidence) -> f64 {
    let n = f64::from(v.fused_uops);
    let w = f64::from(v.dsb_width);
    if v.rounded_up {
        (n / w).ceil()
    } else {
        n / w
    }
}

/// DSB delivery bound: `n / w` µops over the DSB width, rounded up to whole
/// cycles for blocks shorter than 32 bytes (after a branch, the DSB cannot
/// deliver further µops from the same 32-byte window in the same cycle).
///
/// Returns predicted cycles per iteration.
#[must_use]
pub fn dsb(ab: &AnnotatedBlock) -> f64 {
    dsb_bound(dsb_view(ab))
}

/// The DSB bound as a typed [`ComponentAnalysis`], with the delivery
/// breakdown as evidence.
#[must_use]
pub fn dsb_analysis(ab: &AnnotatedBlock) -> ComponentAnalysis {
    let view = dsb_view(ab);
    ComponentAnalysis {
        component: Component::Dsb,
        bound: dsb_bound(view),
        evidence: Evidence::Dsb(view),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_uarch::Uarch;
    use facile_x86::reg::names::*;
    use facile_x86::{Block, Mnemonic, Operand};

    fn block_of_adds(n: usize) -> Block {
        let prog: Vec<_> = (0..n)
            .map(|_| (Mnemonic::Add, vec![Operand::Reg(RAX), Operand::Reg(RCX)]))
            .collect();
        Block::assemble(&prog).unwrap()
    }

    #[test]
    fn short_block_rounds_up() {
        // 7 µops over DSB width 6 on SKL, block < 32 bytes: ceil(7/6) = 2.
        let ab = AnnotatedBlock::new(block_of_adds(7), Uarch::Skl);
        assert!(ab.byte_len() < 32);
        assert!((dsb(&ab) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn long_block_fractional() {
        // 13 adds = 39 bytes >= 32: 13/6 cycles on SKL.
        let ab = AnnotatedBlock::new(block_of_adds(13), Uarch::Skl);
        assert!(ab.byte_len() >= 32);
        assert!((dsb(&ab) - 13.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn dsb_width_differs_by_uarch() {
        let ab = AnnotatedBlock::new(block_of_adds(12), Uarch::Hsw); // width 4
        assert!((dsb(&ab) - 3.0).abs() < 1e-9);
        let ab = AnnotatedBlock::new(block_of_adds(12), Uarch::Skl); // width 6
        assert!((dsb(&ab) - 2.0).abs() < 1e-9);
    }
}
