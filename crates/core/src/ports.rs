//! The execution-port contention predictor (§4.8).
//!
//! Under the idealizing assumption that the renamer distributes µops
//! optimally across ports, the throughput bound due to port contention is
//! `max over port sets S of load(S) / |S|`, where `load(S)` counts the
//! (occupancy-weighted) µops that can only execute on ports in `S`.
//!
//! The paper's heuristic considers only port sets that are unions of the
//! port combinations of *pairs* of µops; this module implements both that
//! heuristic and the exact enumeration over all port subsets, which is
//! feasible because the machines have at most 10 ports. The paper reports
//! that the heuristic matches the exact (LP-derived) bound on all BHive
//! benchmarks; the property tests replicate that comparison.

use facile_explain::{Component, ComponentAnalysis, Evidence, PortLoad, PortsEvidence};
use facile_isa::AnnotatedBlock;
use facile_uarch::PortMask;
use facile_util::SmallVec;

/// Inline capacity for per-prediction port-load and candidate lists: real
/// machines have at most ten ports, so distinct port combinations per
/// block are few and these buffers essentially never spill.
const INLINE_MASKS: usize = 24;

/// Result of the port-contention analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct PortsAnalysis {
    /// The throughput bound in cycles per iteration.
    pub bound: f64,
    /// The port set achieving the bound.
    pub critical_ports: PortMask,
    /// Occupancy-weighted µop count bound to the critical port set.
    pub load_on_critical: f64,
}

/// Occupancy-weighted µops of the block, grouped by port mask.
///
/// Aggregates the annotation's precomputed µop column: µops of
/// eliminated instructions and macro-fused branches never reach the
/// ports and are already filtered out of it (the fused pair's µops are
/// attributed to the pair's head instruction), so this is one linear
/// pass over a flat `(mask, occupancy)` array instead of a walk over
/// per-instruction descriptor lists.
fn port_loads(ab: &AnnotatedBlock, loads: &mut SmallVec<(PortMask, f64), INLINE_MASKS>) {
    loads.clear();
    for &(ports, occupancy) in &ab.columns().port_uops {
        match loads.as_mut_slice().iter_mut().find(|(m, _)| *m == ports) {
            Some((_, w)) => *w += f64::from(occupancy),
            None => loads.push((ports, f64::from(occupancy))),
        }
    }
}

fn best_bound(loads: &[(PortMask, f64)], candidates: &[PortMask]) -> PortsAnalysis {
    let mut best = PortsAnalysis {
        bound: 0.0,
        critical_ports: PortMask::EMPTY,
        load_on_critical: 0.0,
    };
    for &pc in candidates {
        if pc.is_empty() {
            continue;
        }
        let load: f64 = loads
            .iter()
            .filter(|(m, _)| m.is_subset_of(pc))
            .map(|(_, w)| *w)
            .sum();
        let bound = load / f64::from(pc.count());
        if bound > best.bound + 1e-12 {
            best = PortsAnalysis {
                bound,
                critical_ports: pc,
                load_on_critical: load,
            };
        }
    }
    best
}

/// The shared pairwise-heuristic implementation: fill `loads` with the
/// per-combination load map and return the best bound over unions of
/// µop-pair port combinations. Both [`ports`] and [`ports_analysis`] are
/// thin wrappers, so the brief bound and the Full-detail evidence can
/// never diverge. (`loads` is an out-param rather than a return value:
/// the inline SmallVec is large, and this runs on the warm batch path.)
fn pairwise_best(
    ab: &AnnotatedBlock,
    loads: &mut SmallVec<(PortMask, f64), INLINE_MASKS>,
) -> PortsAnalysis {
    port_loads(ab, loads);
    let mut candidates: SmallVec<PortMask, INLINE_MASKS> = SmallVec::new();
    for (i, &(a, _)) in loads.iter().enumerate() {
        for &(b, _) in &loads[i..] {
            let u = a.union(b);
            if !candidates.contains(&u) {
                candidates.push(u);
            }
        }
    }
    best_bound(loads, &candidates)
}

/// The paper's pairwise heuristic: consider only unions of the port
/// combinations of pairs of µops (including each combination by itself).
#[must_use]
pub fn ports(ab: &AnnotatedBlock) -> PortsAnalysis {
    let mut loads: SmallVec<(PortMask, f64), INLINE_MASKS> = SmallVec::new();
    pairwise_best(ab, &mut loads)
}

/// The port-contention bound as a typed [`ComponentAnalysis`]: the
/// pairwise-heuristic bound plus the full contended-port load map as
/// evidence.
#[must_use]
pub fn ports_analysis(ab: &AnnotatedBlock) -> ComponentAnalysis {
    let mut loads: SmallVec<(PortMask, f64), INLINE_MASKS> = SmallVec::new();
    let best = pairwise_best(ab, &mut loads);
    ComponentAnalysis {
        component: Component::Ports,
        bound: best.bound,
        evidence: Evidence::Ports(PortsEvidence {
            critical_ports: best.critical_ports,
            load_on_critical: best.load_on_critical,
            port_loads: loads
                .iter()
                .map(|&(ports, uops)| PortLoad { ports, uops })
                .collect(),
        }),
    }
}

/// The exact bound: enumerate *all* subsets of the ports that appear in the
/// block (equivalent to the uops.info linear program under the optimal-
/// distribution assumption).
#[must_use]
pub fn ports_exact(ab: &AnnotatedBlock) -> PortsAnalysis {
    let mut loads: SmallVec<(PortMask, f64), INLINE_MASKS> = SmallVec::new();
    port_loads(ab, &mut loads);
    let all: PortMask = loads
        .iter()
        .map(|(m, _)| *m)
        .fold(PortMask::EMPTY, PortMask::union);
    // Enumerate subsets of `all` via the standard submask iteration.
    let full = all.0;
    let mut candidates = Vec::with_capacity(1 << full.count_ones());
    let mut s = full;
    loop {
        candidates.push(PortMask(s));
        if s == 0 {
            break;
        }
        s = (s - 1) & full;
    }
    best_bound(&loads, &candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_uarch::Uarch;
    use facile_x86::reg::names::*;
    use facile_x86::{Block, Mnemonic, Operand, Reg};

    fn annotate(prog: &[(Mnemonic, Vec<Operand>)], u: Uarch) -> AnnotatedBlock {
        AnnotatedBlock::new(Block::assemble(prog).unwrap(), u)
    }

    #[test]
    fn single_port_contention() {
        // Two imuls: both bound to p1 -> 2 cycles/iter.
        let prog = vec![
            (Mnemonic::Imul, vec![Operand::Reg(RAX), Operand::Reg(RCX)]),
            (Mnemonic::Imul, vec![Operand::Reg(RDX), Operand::Reg(RCX)]),
        ];
        let ab = annotate(&prog, Uarch::Skl);
        let p = ports(&ab);
        assert!((p.bound - 2.0).abs() < 1e-9);
        assert_eq!(p.critical_ports, PortMask::of(&[1]));
    }

    #[test]
    fn spread_across_alu_ports() {
        // Four adds on SKL (p0156): 4 µops over 4 ports -> 1.0.
        let prog: Vec<_> = (0..4)
            .map(|_| (Mnemonic::Add, vec![Operand::Reg(RAX), Operand::Reg(RCX)]))
            .collect();
        let ab = annotate(&prog, Uarch::Skl);
        assert!((ports(&ab).bound - 1.0).abs() < 1e-9);
    }

    #[test]
    fn union_of_pairs_needed() {
        // Mix shifts (p06) and adds (p0156): the shift pair alone gives
        // 2/2 = 1; adding the adds over the union p0156 gives 6/4 = 1.5.
        let mut prog = vec![
            (Mnemonic::Shl, vec![Operand::Reg(RAX), Operand::Imm(3)]),
            (Mnemonic::Shl, vec![Operand::Reg(RCX), Operand::Imm(3)]),
        ];
        for _ in 0..4 {
            prog.push((Mnemonic::Add, vec![Operand::Reg(RDX), Operand::Reg(RBX)]));
        }
        let ab = annotate(&prog, Uarch::Skl);
        let p = ports(&ab);
        assert!((p.bound - 1.5).abs() < 1e-9, "got {}", p.bound);
        assert_eq!(p.critical_ports, PortMask::of(&[0, 1, 5, 6]));
    }

    #[test]
    fn heuristic_matches_exact_on_examples() {
        let progs: Vec<Vec<(Mnemonic, Vec<Operand>)>> = vec![
            vec![
                (Mnemonic::Imul, vec![Operand::Reg(RAX), Operand::Reg(RCX)]),
                (Mnemonic::Shl, vec![Operand::Reg(RDX), Operand::Imm(1)]),
                (Mnemonic::Add, vec![Operand::Reg(RBX), Operand::Reg(RCX)]),
            ],
            vec![
                (
                    Mnemonic::Mulsd,
                    vec![Operand::Reg(Reg::Xmm(0)), Operand::Reg(Reg::Xmm(1))],
                ),
                (
                    Mnemonic::Addsd,
                    vec![Operand::Reg(Reg::Xmm(2)), Operand::Reg(Reg::Xmm(3))],
                ),
                (
                    Mnemonic::Pshufd,
                    vec![
                        Operand::Reg(Reg::Xmm(4)),
                        Operand::Reg(Reg::Xmm(5)),
                        Operand::Imm(0),
                    ],
                ),
            ],
        ];
        for prog in progs {
            for u in Uarch::ALL {
                let ab = annotate(&prog, u);
                let h = ports(&ab).bound;
                let e = ports_exact(&ab).bound;
                assert!((h - e).abs() < 1e-9, "{u}: heuristic {h} != exact {e}");
            }
        }
    }

    #[test]
    fn heuristic_never_exceeds_exact() {
        // The heuristic considers a subset of candidates, so it can only be
        // lower or equal.
        let prog = vec![
            (
                Mnemonic::Divss,
                vec![Operand::Reg(Reg::Xmm(0)), Operand::Reg(Reg::Xmm(1))],
            ),
            (Mnemonic::Imul, vec![Operand::Reg(RAX), Operand::Reg(RCX)]),
        ];
        let ab = annotate(&prog, Uarch::Hsw);
        assert!(ports(&ab).bound <= ports_exact(&ab).bound + 1e-12);
    }

    #[test]
    fn divider_occupancy_counts() {
        // divss occupies the divide unit for several cycles.
        let prog = vec![(
            Mnemonic::Divss,
            vec![Operand::Reg(Reg::Xmm(0)), Operand::Reg(Reg::Xmm(1))],
        )];
        let ab = annotate(&prog, Uarch::Skl);
        let p = ports(&ab);
        assert!(
            p.bound >= 3.0,
            "divider occupancy should bound: {}",
            p.bound
        );
    }

    #[test]
    fn eliminated_uops_excluded() {
        let prog = vec![
            (Mnemonic::Mov, vec![Operand::Reg(RAX), Operand::Reg(RCX)]),
            (Mnemonic::Nop, vec![]),
        ];
        let ab = annotate(&prog, Uarch::Skl);
        assert_eq!(ports(&ab).bound, 0.0);
    }
}
