//! # facile-core
//!
//! The Facile analytical basic-block throughput model — the primary
//! contribution of the paper, reimplemented in Rust.
//!
//! Facile predicts the steady-state throughput (cycles per iteration) of a
//! basic block as the **maximum over a small set of independently analyzed
//! bottlenecks**:
//!
//! | Component | Section | Module |
//! |-----------|---------|--------|
//! | `Predec` (predecoder, LCP penalties) | §4.3 | [`predec`] |
//! | `Dec` (decoder allocation, Algorithm 1) | §4.4 | [`dec`] |
//! | `DSB` (µop cache delivery) | §4.5 | [`dsb`] |
//! | `LSD` (loop stream detector + unrolling) | §4.6 | [`lsd`] |
//! | `Issue` (rename width after unlamination) | §4.7 | [`issue`] |
//! | `Ports` (port contention, pairwise heuristic) | §4.8 | [`ports`] |
//! | `Precedence` (max cycle ratio of the dependence graph) | §4.9 | [`precedence`], [`mcr`] |
//!
//! Two throughput notions are supported: [`Mode::Unrolled`] (TPU, Eq. 1)
//! and [`Mode::Loop`] (TPL, Eq. 2–3 with JCC-erratum and LSD handling).
//! Because the model is compositional, every prediction is directly
//! explainable: [`Facile::predict`] returns the per-component bounds and
//! the bottleneck set, [`Facile::explain`] returns the full typed
//! [`Explanation`] (evidence per component, critical dependence chain,
//! contended-port load map, per-instruction attributions — see the
//! `facile-explain` crate), [`Facile::speedup_if_idealized`] computes
//! counterfactual speedups, and [`report::Report`] renders an
//! explanation as text.
//!
//! ```
//! use facile_core::{Facile, Mode};
//! use facile_isa::AnnotatedBlock;
//! use facile_uarch::Uarch;
//! use facile_x86::{Block, Mnemonic, reg::names::*};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let block = Block::assemble(&[
//!     (Mnemonic::Imul, vec![RAX.into(), RCX.into()]),
//!     (Mnemonic::Add, vec![RDX.into(), RAX.into()]),
//! ])?;
//! let ab = AnnotatedBlock::new(block, Uarch::Skl);
//! let prediction = Facile::new().predict(&ab, Mode::Unrolled);
//! assert!(prediction.throughput > 0.0);
//! println!("bottleneck: {:?}", prediction.primary_bottleneck());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ablation;
pub mod dec;
pub mod dsb;
pub mod issue;
pub mod lsd;
pub mod mcr;
pub mod ports;
pub mod precedence;
pub mod predec;
pub mod predict;
pub mod report;
pub mod timing;

pub use ablation::{variants as ablation_variants, Variant};
pub use facile_explain::{
    ChainStep, ComponentAnalysis, Detail, Evidence, Explanation, InstAttribution, ValueRef,
};
pub use ports::PortsAnalysis;
pub use precedence::PrecedenceAnalysis;
pub use predict::{Component, Facile, FacileConfig, FrontEndPath, Mode, Prediction};
pub use report::Report;
