//! The predecoder throughput predictor (§4.3 of the paper).
//!
//! The predecoder fetches aligned 16-byte blocks and can predecode up to
//! five instructions per cycle. Instructions that cross a 16-byte boundary
//! may incur an extra cycle, and instructions with a length-changing prefix
//! (LCP) incur a three-cycle penalty that can partially overlap with the
//! predecoding of the previous block.

use crate::predict::Mode;
use facile_explain::{Component, ComponentAnalysis, Evidence, PredecEvidence};
use facile_isa::AnnotatedBlock;
use std::cell::RefCell;

/// Reusable per-16-byte-block counters (one set per thread): the
/// predecoder bound runs once per prediction, and for layouts that only
/// repeat after several unrolled copies the counter arrays are the size
/// of the whole repeating window.
#[derive(Debug, Default)]
struct PredecScratch {
    l_cnt: Vec<u32>,
    o_cnt: Vec<u32>,
    lcp_cnt: Vec<u32>,
}

thread_local! {
    static PREDEC_SCRATCH: RefCell<PredecScratch> = RefCell::new(PredecScratch::default());
}

/// The full predecoder model: per-16-byte-block cycle counts with boundary
/// and LCP penalties (the paper's `Predec`).
///
/// Returns predicted cycles per iteration.
#[must_use]
pub fn predec(ab: &AnnotatedBlock, mode: Mode) -> f64 {
    predec_impl(ab, mode, None)
}

/// The predecoder bound as a typed [`ComponentAnalysis`], with the
/// frontend path breakdown (unroll window, chunk count, boundary
/// crossings, LCP penalty cycles) as evidence.
#[must_use]
pub fn predec_analysis(ab: &AnnotatedBlock, mode: Mode) -> ComponentAnalysis {
    let mut ev = PredecEvidence::default();
    let bound = predec_impl(ab, mode, Some(&mut ev));
    ComponentAnalysis {
        component: Component::Predec,
        bound,
        evidence: Evidence::Predec(ev),
    }
}

fn predec_impl(ab: &AnnotatedBlock, mode: Mode, evidence: Option<&mut PredecEvidence>) -> f64 {
    let l = ab.byte_len();
    if l == 0 {
        return 0.0;
    }
    let width = f64::from(ab.uarch().config().predecode_width);

    // Number of unrolled copies until the byte layout repeats.
    let u = match mode {
        Mode::Unrolled => lcm(l, 16) / l,
        Mode::Loop => 1,
    };
    let n_blocks = (u * l).div_ceil(16);

    PREDEC_SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        // L(b): instructions whose last byte is in block b.
        // O(b): instructions whose nominal opcode starts in block b but
        //       whose last byte is in a later block.
        // LCP(b): LCP instructions whose nominal opcode starts in block b.
        let (l_cnt, o_cnt, lcp_cnt) = (&mut s.l_cnt, &mut s.o_cnt, &mut s.lcp_cnt);
        for c in [&mut *l_cnt, &mut *o_cnt, &mut *lcp_cnt] {
            c.clear();
            c.resize(n_blocks, 0);
        }
        // Per-instruction placement facts come from the annotation's
        // precomputed column — a flat array built once per block, not
        // re-derived per prediction (let alone per unrolled copy).
        let facts = &ab.columns().predec;
        // Placements of all instruction instances across the unrolled
        // copies, counted directly (no materialized placement list).
        for copy in 0..u {
            let base = (copy * l) as u32;
            for &(last, opcode, has_lcp) in facts {
                let last_block = ((base + last) / 16) as usize;
                let opcode_block = ((base + opcode) / 16) as usize;
                l_cnt[last_block] += 1;
                if opcode_block != last_block {
                    o_cnt[opcode_block] += 1;
                }
                if has_lcp {
                    lcp_cnt[opcode_block] += 1;
                }
            }
        }

        let cycle_nlcp = |b: usize| -> f64 { (f64::from(l_cnt[b] + o_cnt[b]) / width).ceil() };

        let mut total = 0.0;
        let mut base = 0.0;
        let mut penalty = 0.0;
        // Index arithmetic over a ring of blocks (b and its predecessor):
        // clearer with explicit indices than with enumerate().
        #[allow(clippy::needless_range_loop)]
        for b in 0..n_blocks {
            let prev = if b == 0 { n_blocks - 1 } else { b - 1 };
            let nlcp = cycle_nlcp(b);
            // The length-decoding algorithm for LCP instructions runs while
            // the previous block finishes predecoding, hiding all but one
            // of the previous block's cycles.
            let lcp_pen = (3.0 * f64::from(lcp_cnt[b]) - (cycle_nlcp(prev) - 1.0)).max(0.0);
            total += nlcp + lcp_pen;
            // Evidence-only split; `total` stays the authoritative sum so
            // the bound is bit-identical with and without evidence.
            base += nlcp;
            penalty += lcp_pen;
        }
        if let Some(ev) = evidence {
            *ev = PredecEvidence {
                unroll_copies: u as u32,
                chunks: n_blocks as u32,
                lcp_insts: ab.columns().lcp_insts,
                boundary_crossings: o_cnt.iter().sum(),
                base_cycles: base / u as f64,
                lcp_penalty_cycles: penalty / u as f64,
            };
        }
        total / u as f64
    })
}

/// The simplified predecoder model (`SimplePredec`): one 16-byte block per
/// cycle, i.e. `l / 16` cycles per iteration.
#[must_use]
pub fn simple_predec(ab: &AnnotatedBlock) -> f64 {
    ab.byte_len() as f64 / 16.0
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_uarch::Uarch;
    use facile_x86::reg::names::*;
    use facile_x86::{Block, Mnemonic, Operand};

    fn annotate(prog: &[(Mnemonic, Vec<Operand>)]) -> AnnotatedBlock {
        AnnotatedBlock::new(Block::assemble(prog).unwrap(), Uarch::Skl)
    }

    #[test]
    fn lcm_gcd() {
        assert_eq!(lcm(4, 16), 16);
        assert_eq!(lcm(6, 16), 48);
        assert_eq!(lcm(16, 16), 16);
        assert_eq!(lcm(5, 16), 80);
    }

    #[test]
    fn five_wide_limit() {
        // Eight single-byte NOPs: 8 bytes, one 16-byte block per unrolled
        // pair of copies; 16 instructions in the block -> ceil(16/5) = 4
        // cycles per block = 2 copies -> 2 cycles per iteration.
        let prog: Vec<_> = (0..8).map(|_| (Mnemonic::Nop, vec![])).collect();
        let ab = annotate(&prog);
        assert_eq!(ab.byte_len(), 8);
        let tp = predec(&ab, Mode::Unrolled);
        assert!((tp - 2.0).abs() < 1e-9, "got {tp}");
    }

    #[test]
    fn sixteen_bytes_one_instruction_per_block() {
        // Two 8-byte instructions (mov rax, imm32 is 7 bytes; use lea with
        // disp32): easier: 4 x "add rax, rcx" (3B) + 4 nops = 16 bytes.
        let mut prog: Vec<(Mnemonic, Vec<Operand>)> = Vec::new();
        for _ in 0..4 {
            prog.push((Mnemonic::Add, vec![RAX.into(), RCX.into()]));
        }
        for _ in 0..4 {
            prog.push((Mnemonic::Nop, vec![]));
        }
        let ab = annotate(&prog);
        assert_eq!(ab.byte_len(), 16);
        // 8 instructions in one block -> ceil(8/5) = 2 cycles.
        let tp = predec(&ab, Mode::Unrolled);
        assert!((tp - 2.0).abs() < 1e-9, "got {tp}");
    }

    #[test]
    fn lcp_penalty_applies() {
        // One LCP instruction (add ax, imm16) alone in its block.
        let prog = vec![
            (Mnemonic::Add, vec![AX.into(), Operand::Imm(0x1234)]), // 5 bytes, LCP
            (Mnemonic::Nop, vec![]),
            (Mnemonic::Nop, vec![]),
        ]; // 7 bytes total
        let ab = annotate(&prog);
        assert!(ab.insts()[0].inst().has_lcp);
        let with_lcp = predec(&ab, Mode::Unrolled);
        // Same layout without LCP.
        let prog2 = vec![
            (Mnemonic::Add, vec![EAX.into(), Operand::Imm(0x11223344)]), // 6 bytes, no LCP
            (Mnemonic::Nop, vec![]),
        ]; // 7 bytes total
        let ab2 = annotate(&prog2);
        assert_eq!(ab.byte_len(), ab2.byte_len());
        let without = predec(&ab2, Mode::Unrolled);
        assert!(
            with_lcp > without,
            "LCP should slow predecode: {with_lcp} vs {without}"
        );
    }

    #[test]
    fn loop_mode_single_copy() {
        let prog = vec![
            (Mnemonic::Add, vec![RAX.into(), RCX.into()]),
            (Mnemonic::Dec, vec![RDX.into()]),
            (Mnemonic::Jcc(facile_x86::Cond::Ne), vec![Operand::Rel(-7)]),
        ];
        let ab = annotate(&prog);
        // 8 bytes, 3 instructions, all in one block: 1 cycle.
        let tp = predec(&ab, Mode::Loop);
        assert!((tp - 1.0).abs() < 1e-9, "got {tp}");
    }

    #[test]
    fn simple_predec_is_length_over_16() {
        let prog: Vec<_> = (0..5).map(|_| (Mnemonic::Nop, vec![])).collect();
        let ab = annotate(&prog);
        assert!((simple_predec(&ab) - 5.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_block_is_zero() {
        let ab = AnnotatedBlock::new(Block::decode(&[]).unwrap(), Uarch::Skl);
        assert_eq!(predec(&ab, Mode::Unrolled), 0.0);
        assert_eq!(predec(&ab, Mode::Loop), 0.0);
    }
}
