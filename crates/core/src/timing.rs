//! Opt-in per-kernel wall-clock accounting.
//!
//! When enabled, [`Facile::analyze`](crate::Facile::analyze) records the
//! duration of every component-kernel invocation into process-wide
//! relaxed counters, so `--stats` (and `bench_engine`) can report where
//! prediction time goes without a separate `fig4` run. Disabled (the
//! default), the cost is one relaxed load per kernel call; the timers
//! themselves only run while enabled, so production throughput is
//! unaffected.

use facile_explain::Component;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

struct Cell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: Cell = Cell {
    count: AtomicU64::new(0),
    total_ns: AtomicU64::new(0),
    max_ns: AtomicU64::new(0),
};

static CELLS: [Cell; Component::ALL.len()] = [ZERO; Component::ALL.len()];

/// Turn kernel timing on or off, process-wide.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether kernel timing is currently on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record one kernel invocation (called by `Facile::analyze` when
/// [`enabled`] — callers outside the crate normally never need this).
pub fn record(kernel: Component, ns: u64) {
    let cell = &CELLS[kernel as usize];
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.total_ns.fetch_add(ns, Ordering::Relaxed);
    cell.max_ns.fetch_max(ns, Ordering::Relaxed);
}

/// Aggregated timing of one component kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelTiming {
    /// Invocations recorded.
    pub count: u64,
    /// Mean time per invocation, in microseconds (0 when `count == 0`).
    pub mean_us: f64,
    /// Slowest invocation, in microseconds.
    pub max_us: f64,
}

/// Snapshot of all kernels, indexed by discriminant: read entry
/// `kernel as usize` (NOT the position in [`Component::ALL`], whose
/// tie-break order swaps Lsd and Dsb).
#[must_use]
pub fn snapshot() -> [KernelTiming; Component::ALL.len()] {
    let mut out = [KernelTiming::default(); Component::ALL.len()];
    for (cell, slot) in CELLS.iter().zip(out.iter_mut()) {
        let count = cell.count.load(Ordering::Relaxed);
        let total = cell.total_ns.load(Ordering::Relaxed);
        let max = cell.max_ns.load(Ordering::Relaxed);
        *slot = KernelTiming {
            count,
            #[allow(clippy::cast_precision_loss)]
            mean_us: if count == 0 {
                0.0
            } else {
                total as f64 / count as f64 / 1e3
            },
            #[allow(clippy::cast_precision_loss)]
            max_us: max as f64 / 1e3,
        };
    }
    out
}

/// Reset all counters to zero (the enabled flag is left as-is).
pub fn reset() {
    for cell in &CELLS {
        cell.count.store(0, Ordering::Relaxed);
        cell.total_ns.store(0, Ordering::Relaxed);
        cell.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        reset();
        record(Component::Ports, 2_000);
        record(Component::Ports, 4_000);
        record(Component::Precedence, 10_000);
        let snap = snapshot();
        let ports = snap[Component::Ports as usize];
        assert_eq!(ports.count, 2);
        assert!((ports.mean_us - 3.0).abs() < 1e-9);
        assert!((ports.max_us - 4.0).abs() < 1e-9);
        assert_eq!(snap[Component::Precedence as usize].count, 1);
        reset();
        assert_eq!(snapshot()[Component::Ports as usize].count, 0);
    }

    #[test]
    fn disabled_by_default() {
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
    }
}
