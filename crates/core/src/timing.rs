//! Opt-in per-kernel wall-clock accounting.
//!
//! When enabled, [`Facile::analyze`](crate::Facile::analyze) records the
//! duration of every component-kernel invocation into process-wide
//! relaxed counters, so `--stats` (and `bench_engine`) can report where
//! prediction time goes without a separate `fig4` run. Disabled (the
//! default), the cost is one relaxed load per kernel call; the timers
//! themselves only run while enabled, so production throughput is
//! unaffected.
//!
//! Alongside count/mean/max, each kernel keeps a log2-bucketed latency
//! histogram (64 buckets cover the full `u64` nanosecond range), from
//! which the snapshot derives p50 and p99 estimates. Bucketing costs one
//! more relaxed increment per invocation and no allocation; the
//! percentile error is bounded by the bucket width (a factor of two),
//! which is plenty to tell "tight distribution" from "mean hides a slow
//! tail" in `--stats` output.

use facile_explain::Component;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Log2 latency buckets per kernel: bucket `b` holds durations in
/// `[2^(b-1), 2^b)` nanoseconds (bucket 0 holds 0–1 ns).
const BUCKETS: usize = 64;

struct Cell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    hist: [AtomicU64; BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_BUCKET: AtomicU64 = AtomicU64::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: Cell = Cell {
    count: AtomicU64::new(0),
    total_ns: AtomicU64::new(0),
    max_ns: AtomicU64::new(0),
    hist: [ZERO_BUCKET; BUCKETS],
};

static CELLS: [Cell; Component::ALL.len()] = [ZERO; Component::ALL.len()];

/// The histogram bucket of a duration: the position of its highest set
/// bit, so each bucket spans a factor of two.
fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(BUCKETS - 1)
}

/// A representative duration for bucket `b`: the geometric-ish midpoint
/// `1.5 * 2^(b-1)` of its `[2^(b-1), 2^b)` range.
fn bucket_mid_ns(b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        1.5 * (1u64 << (b - 1)) as f64
    }
}

/// Turn kernel timing on or off, process-wide.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether kernel timing is currently on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record one kernel invocation (called by `Facile::analyze` when
/// [`enabled`] — callers outside the crate normally never need this).
pub fn record(kernel: Component, ns: u64) {
    let cell = &CELLS[kernel as usize];
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.total_ns.fetch_add(ns, Ordering::Relaxed);
    cell.max_ns.fetch_max(ns, Ordering::Relaxed);
    cell.hist[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
}

/// Aggregated timing of one component kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelTiming {
    /// Invocations recorded.
    pub count: u64,
    /// Mean time per invocation, in microseconds (0 when `count == 0`).
    pub mean_us: f64,
    /// Median invocation, in microseconds, estimated from the log2
    /// histogram (accurate to within its factor-of-two bucket).
    pub p50_us: f64,
    /// 99th-percentile invocation, in microseconds (same estimate).
    pub p99_us: f64,
    /// Slowest invocation, in microseconds.
    pub max_us: f64,
}

/// The smallest bucket whose cumulative count reaches `rank` (1-based),
/// rendered as its representative midpoint in microseconds.
fn percentile_us(hist: &[AtomicU64; BUCKETS], rank: u64) -> f64 {
    let mut seen = 0u64;
    for (b, slot) in hist.iter().enumerate() {
        seen += slot.load(Ordering::Relaxed);
        if seen >= rank {
            return bucket_mid_ns(b) / 1e3;
        }
    }
    0.0
}

/// Snapshot of all kernels, indexed by discriminant: read entry
/// `kernel as usize` (NOT the position in [`Component::ALL`], whose
/// tie-break order swaps Lsd and Dsb).
#[must_use]
pub fn snapshot() -> [KernelTiming; Component::ALL.len()] {
    let mut out = [KernelTiming::default(); Component::ALL.len()];
    for (cell, slot) in CELLS.iter().zip(out.iter_mut()) {
        let count = cell.count.load(Ordering::Relaxed);
        let total = cell.total_ns.load(Ordering::Relaxed);
        let max = cell.max_ns.load(Ordering::Relaxed);
        // Percentile ranks (1-based, ceiling): p50 of 2 samples is the
        // 1st, p99 of 200 samples is the 198th.
        let (p50, p99) = if count == 0 {
            (0.0, 0.0)
        } else {
            (
                percentile_us(&cell.hist, count.div_ceil(2)),
                percentile_us(&cell.hist, (count * 99).div_ceil(100)),
            )
        };
        *slot = KernelTiming {
            count,
            #[allow(clippy::cast_precision_loss)]
            mean_us: if count == 0 {
                0.0
            } else {
                total as f64 / count as f64 / 1e3
            },
            p50_us: p50,
            p99_us: p99,
            #[allow(clippy::cast_precision_loss)]
            max_us: max as f64 / 1e3,
        };
    }
    out
}

/// Reset all counters to zero (the enabled flag is left as-is).
pub fn reset() {
    for cell in &CELLS {
        cell.count.store(0, Ordering::Relaxed);
        cell.total_ns.store(0, Ordering::Relaxed);
        cell.max_ns.store(0, Ordering::Relaxed);
        for slot in &cell.hist {
            slot.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cells are process-wide and `reset()` clears all of them, so
    /// tests that record and reset must not interleave.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn record_and_snapshot() {
        let _g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        record(Component::Ports, 2_000);
        record(Component::Ports, 4_000);
        record(Component::Precedence, 10_000);
        let snap = snapshot();
        let ports = snap[Component::Ports as usize];
        assert_eq!(ports.count, 2);
        assert!((ports.mean_us - 3.0).abs() < 1e-9);
        assert!((ports.max_us - 4.0).abs() < 1e-9);
        assert_eq!(snap[Component::Precedence as usize].count, 1);
        reset();
        assert_eq!(snapshot()[Component::Ports as usize].count, 0);
    }

    #[test]
    fn buckets_partition_durations() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every bucket's midpoint lies inside its range.
        for b in 1..BUCKETS - 1 {
            let lo = (1u64 << (b - 1)) as f64;
            let hi = (1u64 << b) as f64;
            let mid = bucket_mid_ns(b);
            assert!(lo <= mid && mid < hi, "bucket {b}: {lo} <= {mid} < {hi}");
        }
    }

    #[test]
    fn percentiles_separate_tight_body_from_slow_tail() {
        let _g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        // Ten fast invocations (~1 µs) and one slow outlier (~1 ms): the
        // outlier is the top sample, so nearest-rank p99 (the 11th of 11)
        // lands in its bucket while the median stays in the fast body.
        for _ in 0..10 {
            record(Component::Dec, 1_000);
        }
        record(Component::Dec, 1_000_000);
        let t = snapshot()[Component::Dec as usize];
        assert_eq!(t.count, 11);
        assert!(
            t.p50_us < 2.0,
            "p50 {} should sit in the fast body",
            t.p50_us
        );
        assert!(
            t.p99_us > 100.0,
            "p99 {} should surface the slow tail",
            t.p99_us
        );
        assert!(t.p50_us <= t.p99_us && t.p99_us <= t.max_us);
        reset();
    }

    #[test]
    fn single_sample_percentiles_agree() {
        let _g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        reset();
        record(Component::Issue, 5_000);
        let t = snapshot()[Component::Issue as usize];
        // One sample: p50 and p99 are the same bucket, within a factor
        // of two of the true 5 µs duration.
        assert_eq!(t.p50_us, t.p99_us);
        assert!(t.p50_us >= 2.5 && t.p50_us <= 10.0, "got {}", t.p50_us);
        reset();
    }

    #[test]
    fn disabled_by_default() {
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
    }
}
