//! Maximum cycle ratio solvers.
//!
//! The Precedence component (§4.9 of the paper) bounds throughput by the
//! maximum, over all cycles `C` of a dependence graph, of
//! `Σ latency(e) / Σ iteration_count(e)` for `e ∈ C`.
//!
//! Three solvers are provided:
//! * [`solve`] — the production solver: a scratch-pooled iterative Tarjan
//!   SCC condensation, with cheap linear-time fast paths inside each
//!   nontrivial SCC (a simple cycle is summed directly; an SCC whose only
//!   loop-carried edge closes an otherwise acyclic subgraph is solved by a
//!   longest-path DP in topological order) and Howard policy iteration
//!   only for the SCCs that genuinely need it. Dependence graphs of
//!   straight-line blocks are overwhelmingly acyclic or close small
//!   cycles, so the common case is O(V+E) instead of policy iteration
//!   over the whole graph.
//! * [`solve_reference`] (= [`max_cycle_ratio_howard`]) — Howard's
//!   policy-iteration algorithm over the full graph, as used by the paper
//!   (citing Dasdan's survey). Retained as the oracle the property tests
//!   pin [`solve`] against, and as the cycle extractor behind the typed
//!   critical-chain rendering.
//! * [`max_cycle_ratio_lawler`] — Lawler's binary search over λ with
//!   Bellman–Ford positive-cycle detection; used to cross-check Howard in
//!   the test suite.
//!
//! All edge weights that reach these solvers are sums of small integral
//! latencies, so cycle/path sums are exact in `f64` regardless of
//! summation order; [`solve`] and [`solve_reference`] therefore agree
//! *bit for bit* on the ratio (both compute the same `Σw / Σt` division),
//! which the equivalence proptests assert.

/// An edge of a ratio graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct REdge {
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Latency weight (numerator contribution).
    pub weight: f64,
    /// Iteration count (denominator contribution); 0 for intra-iteration
    /// edges, 1 for loop-carried edges.
    pub count: u32,
}

/// A directed graph with two edge weights, for cycle-ratio queries.
#[derive(Debug, Clone, Default)]
pub struct RatioGraph {
    n: usize,
    edges: Vec<REdge>,
}

impl RatioGraph {
    /// An empty graph with `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> RatioGraph {
        RatioGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Reset to an empty graph with `n` nodes, keeping the edge buffer's
    /// allocation (for scratch-arena reuse across calls).
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.edges.clear();
    }

    /// Add an edge.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or the weight is negative/NaN.
    pub fn add_edge(&mut self, from: usize, to: usize, weight: f64, count: u32) {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        assert!(weight >= 0.0, "negative or NaN latency weight");
        self.edges.push(REdge {
            from,
            to,
            weight,
            count,
        });
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges of the graph.
    #[must_use]
    pub fn edges(&self) -> &[REdge] {
        &self.edges
    }
}

const EPS: f64 = 1e-9;

/// Result of a maximum-cycle-ratio query.
#[derive(Debug, Clone, PartialEq)]
pub enum Mcr {
    /// The graph has no cycle (through counted edges): no bound.
    Acyclic,
    /// The maximum ratio and one critical cycle achieving it, as a list of
    /// node indices in order (the cycle closes from the last back to the
    /// first).
    Ratio {
        /// The maximum cycle ratio.
        value: f64,
        /// Nodes of a critical cycle.
        cycle: Vec<usize>,
    },
    /// A cycle with positive latency but zero iteration count exists: the
    /// constraint system is infeasible (cannot happen for well-formed
    /// dependence graphs).
    Unbounded,
}

impl Mcr {
    /// The ratio as a plain number: 0 for acyclic graphs, infinity when
    /// unbounded.
    #[must_use]
    pub fn value(&self) -> f64 {
        match self {
            Mcr::Acyclic => 0.0,
            Mcr::Ratio { value, .. } => *value,
            Mcr::Unbounded => f64::INFINITY,
        }
    }
}

/// Reusable buffers for [`max_cycle_ratio_howard`]. The solver runs once
/// per prediction in the batch hot path; without reuse each call makes
/// eight-plus vector allocations (plus two more per trim round).
#[derive(Debug, Default)]
struct HowardScratch {
    alive: Vec<bool>,
    has_out: Vec<bool>,
    has_in: Vec<bool>,
    policy: Vec<Option<usize>>,
    lambda: Vec<f64>,
    dist: Vec<f64>,
    cycle_of: Vec<Option<usize>>,
    state: Vec<u8>,
    path: Vec<usize>,
}

thread_local! {
    static HOWARD_SCRATCH: std::cell::RefCell<HowardScratch> =
        std::cell::RefCell::new(HowardScratch::default());
}

fn reset<T: Clone>(buf: &mut Vec<T>, n: usize, value: T) {
    buf.clear();
    buf.resize(n, value);
}

/// Maximum cycle ratio via Howard's policy iteration.
#[must_use]
pub fn max_cycle_ratio_howard(g: &RatioGraph) -> Mcr {
    HOWARD_SCRATCH.with(|s| howard_with(g, &mut s.borrow_mut()))
}

#[allow(clippy::too_many_lines)]
fn howard_with(g: &RatioGraph, s: &mut HowardScratch) -> Mcr {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        return Mcr::Acyclic;
    }

    // Restrict to nodes that can lie on a cycle: iteratively trim nodes
    // without outgoing or incoming edges.
    let alive = &mut s.alive;
    reset(alive, n, true);
    loop {
        let mut changed = false;
        let has_out = &mut s.has_out;
        let has_in = &mut s.has_in;
        reset(has_out, n, false);
        reset(has_in, n, false);
        for e in g.edges() {
            if alive[e.from] && alive[e.to] {
                has_out[e.from] = true;
                has_in[e.to] = true;
            }
        }
        for v in 0..n {
            if alive[v] && (!has_out[v] || !has_in[v]) {
                alive[v] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if !alive.iter().any(|a| *a) {
        return Mcr::Acyclic;
    }

    // Initial policy: any outgoing edge to a live node.
    let policy = &mut s.policy;
    reset(policy, n, None);
    for (ei, e) in g.edges().iter().enumerate() {
        if alive[e.from] && alive[e.to] && policy[e.from].is_none() {
            policy[e.from] = Some(ei);
        }
    }

    let lambda = &mut s.lambda;
    let dist = &mut s.dist;
    let cycle_of = &mut s.cycle_of; // representative node of the policy cycle reached
    reset(lambda, n, f64::NEG_INFINITY);
    reset(dist, n, 0.0f64);
    reset(cycle_of, n, None);
    let mut best = Mcr::Acyclic;

    for _round in 0..1000 {
        // --- policy evaluation ---
        // Walk the functional policy graph; every live node reaches exactly
        // one cycle.
        let state = &mut s.state; // 0 unvisited, 1 in progress, 2 done
        reset(state, n, 0u8);
        let mut unbounded = false;
        for start in 0..n {
            if !alive[start] || state[start] != 0 {
                continue;
            }
            // Follow the policy path, marking in-progress nodes.
            let path = &mut s.path;
            path.clear();
            let mut v = start;
            while alive[v] && state[v] == 0 {
                state[v] = 1;
                path.push(v);
                v = g.edges()[policy[v].expect("live node has a policy edge")].to;
            }
            if state[v] == 1 {
                // Found a new cycle starting at `v` within `path`.
                let pos = path.iter().position(|x| *x == v).expect("v is on path");
                let cyc = &path[pos..];
                let mut w_sum = 0.0;
                let mut t_sum = 0u32;
                for &u in cyc {
                    let e = g.edges()[policy[u].expect("policy edge")];
                    w_sum += e.weight;
                    t_sum += e.count;
                }
                let lam = if t_sum == 0 {
                    if w_sum > EPS {
                        unbounded = true;
                        f64::INFINITY
                    } else {
                        0.0
                    }
                } else {
                    w_sum / f64::from(t_sum)
                };
                // Anchor distances on the cycle: d(v) = 0, propagate
                // backwards around the cycle using
                // d(u) = w(u,π(u)) − λ·t + d(π(u)).
                dist[v] = 0.0;
                lambda[v] = lam;
                cycle_of[v] = Some(v);
                let mut u = v;
                loop {
                    // find predecessor of u along the cycle
                    let pred = cyc
                        .iter()
                        .copied()
                        .find(|&p| {
                            g.edges()[policy[p].expect("edge")].to == u && p != u
                                || (p == u && cyc.len() == 1)
                        })
                        .expect("cycle predecessor exists");
                    if pred == v {
                        break;
                    }
                    let e = g.edges()[policy[pred].expect("edge")];
                    dist[pred] = e.weight - lam * f64::from(e.count) + dist[u];
                    lambda[pred] = lam;
                    cycle_of[pred] = Some(v);
                    u = pred;
                }
                for &u in cyc {
                    state[u] = 2;
                }
            }
            // Unwind the tree part of the path (nodes feeding the cycle).
            for &u in path.iter().rev() {
                if state[u] == 2 {
                    continue;
                }
                let e = g.edges()[policy[u].expect("edge")];
                let succ = e.to;
                lambda[u] = lambda[succ];
                cycle_of[u] = cycle_of[succ];
                dist[u] = e.weight - lambda[u] * f64::from(e.count) + dist[succ];
                state[u] = 2;
            }
        }
        if unbounded {
            return Mcr::Unbounded;
        }

        // --- policy improvement ---
        let mut changed = false;
        for (ei, e) in g.edges().iter().enumerate() {
            if !alive[e.from] || !alive[e.to] {
                continue;
            }
            let (u, v) = (e.from, e.to);
            if lambda[v] > lambda[u] + EPS {
                policy[u] = Some(ei);
                changed = true;
            } else if (lambda[v] - lambda[u]).abs() <= EPS {
                let cand = e.weight - lambda[u] * f64::from(e.count) + dist[v];
                if cand > dist[u] + EPS {
                    policy[u] = Some(ei);
                    changed = true;
                }
            }
        }
        if !changed {
            // Converged: the answer is the best policy cycle.
            let lam = lambda
                .iter()
                .zip(alive.iter())
                .filter(|(_, a)| **a)
                .map(|(l, _)| *l)
                .fold(f64::NEG_INFINITY, f64::max);
            if lam == f64::NEG_INFINITY {
                return Mcr::Acyclic;
            }
            // Extract one critical cycle: walk the policy from a node whose
            // λ equals the maximum.
            let start = (0..n)
                .find(|&v| alive[v] && (lambda[v] - lam).abs() <= EPS * lam.abs().max(1.0))
                .expect("a node attains the maximum ratio");
            let rep = cycle_of[start].expect("evaluated node has a cycle");
            let mut cycle = vec![rep];
            let mut v = g.edges()[policy[rep].expect("edge")].to;
            while v != rep {
                cycle.push(v);
                v = g.edges()[policy[v].expect("edge")].to;
            }
            best = Mcr::Ratio {
                value: lam.max(0.0),
                cycle,
            };
            break;
        }
    }
    if matches!(best, Mcr::Acyclic) {
        // The iteration cap was reached without convergence (should not
        // happen for well-formed graphs); fall back to the binary-search
        // solver so callers still get a sound answer.
        return max_cycle_ratio_lawler(g);
    }
    best
}

/// Howard's policy iteration over the full graph: the reference solver
/// the structure-aware [`solve`] is property-tested against, and the one
/// the chain extraction uses (its critical cycle — including its
/// starting rotation — is what the golden reports pin).
#[must_use]
pub fn solve_reference(g: &RatioGraph) -> Mcr {
    max_cycle_ratio_howard(g)
}

/// Reusable buffers for [`solve`] (one set per thread). The solver runs
/// once per prediction on the batch hot path, so everything — CSR
/// adjacency, Tarjan state, SCC buckets, the per-SCC subgraph, and the
/// DP arrays — lives in pooled vectors that warm up once.
#[derive(Debug, Default)]
struct SolveScratch {
    // CSR adjacency: edge indices of node v are csr[head[v]..head[v+1]].
    head: Vec<u32>,
    csr: Vec<u32>,
    // Iterative Tarjan state.
    order: Vec<u32>, // 0 = unvisited, else DFS index + 1
    low: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<u32>,
    call: Vec<(u32, u32)>, // (node, cursor into its CSR window)
    comp: Vec<u32>,        // SCC id per node, in completion order
    // SCC buckets: members grouped by component, edges grouped by the
    // component both endpoints share.
    comp_members: Vec<u32>,
    member_start: Vec<u32>,
    comp_edges: Vec<u32>,
    edge_start: Vec<u32>,
    // Per-SCC fast paths: local ids, out-degrees, DP state.
    local: Vec<u32>,
    out_deg: Vec<u32>,
    indeg: Vec<u32>,
    dist: Vec<f64>,
    pred: Vec<u32>,
    topo: Vec<u32>,
    cycle_buf: Vec<usize>,
    // Howard-inside-SCC subproblem.
    sub: RatioGraph,
    sub_nodes: Vec<u32>, // local id -> global node
    howard: HowardScratch,
}

thread_local! {
    static SOLVE_SCRATCH: std::cell::RefCell<SolveScratch> =
        std::cell::RefCell::new(SolveScratch::default());
}

/// Which per-SCC strategies [`solve`] has taken, process-wide: how often
/// the query ended with no nontrivial SCC at all, and how many SCCs were
/// resolved by direct simple-cycle summation, the single-carried-edge
/// longest-path DP, and Howard policy iteration respectively. Relaxed
/// counters; cheap enough to stay on in production and exposed so the
/// perf harness can show *why* the fast paths win.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolvePathCounts {
    /// Queries that found no cycle (acyclic graph).
    pub acyclic: u64,
    /// SCCs resolved as a single simple cycle (one summation).
    pub simple_cycle: u64,
    /// SCCs resolved by the longest-path DP over one carried edge.
    pub longest_path: u64,
    /// SCCs that needed Howard policy iteration.
    pub howard: u64,
}

static SOLVE_ACYCLIC: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static SOLVE_SIMPLE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static SOLVE_DP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static SOLVE_HOWARD: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn bump(counter: &std::sync::atomic::AtomicU64) {
    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Current [`SolvePathCounts`].
#[must_use]
pub fn solve_path_counts() -> SolvePathCounts {
    use std::sync::atomic::Ordering::Relaxed;
    SolvePathCounts {
        acyclic: SOLVE_ACYCLIC.load(Relaxed),
        simple_cycle: SOLVE_SIMPLE.load(Relaxed),
        longest_path: SOLVE_DP.load(Relaxed),
        howard: SOLVE_HOWARD.load(Relaxed),
    }
}

/// Maximum cycle ratio via SCC condensation with linear fast paths:
/// the production solver. Bit-identical in ratio to [`solve_reference`]
/// whenever edge weights are exactly representable sums (integral
/// latencies are), which the proptests pin. The reported critical cycle
/// attains the ratio but may be a different (equally critical) cycle, or
/// the same cycle under a different rotation, than the reference's.
#[must_use]
pub fn solve(g: &RatioGraph) -> Mcr {
    SOLVE_SCRATCH.with(|s| solve_with(g, &mut s.borrow_mut(), true))
}

/// [`solve`] without critical-cycle extraction: the returned
/// [`Mcr::Ratio`] has an empty `cycle`. The batch hot path only needs
/// the bound, and skipping extraction keeps the fast paths free of the
/// one per-call allocation the cycle vector would cost.
#[must_use]
pub fn solve_value(g: &RatioGraph) -> Mcr {
    SOLVE_SCRATCH.with(|s| solve_with(g, &mut s.borrow_mut(), false))
}

/// Component id of nodes in trivial SCCs (single node, no self-loop):
/// they cannot lie on a cycle and are skipped everywhere.
const TRIVIAL: u32 = u32::MAX;

/// Iterative Tarjan over the CSR adjacency in `s`. Nodes of trivial
/// components get `comp = TRIVIAL`; each *nontrivial* component (size
/// ≥ 2, or a single node with a self-loop) is assigned an id in
/// completion order and its members — which Tarjan pops consecutively —
/// are appended to `s.comp_members`, with `s.member_start` delimiting
/// the per-component ranges. Returns the number of nontrivial
/// components; when it is zero the graph is acyclic and the caller is
/// done without any bucketing passes.
fn tarjan(g: &RatioGraph, s: &mut SolveScratch) -> usize {
    let n = g.num_nodes();
    reset(&mut s.order, n, 0u32);
    reset(&mut s.comp, n, TRIVIAL);
    // `low` and `on_stack` are written at push time before any read, so
    // they only need capacity, not re-initialization.
    if s.low.len() < n {
        s.low.resize(n, 0);
    }
    if s.on_stack.len() < n {
        s.on_stack.resize(n, false);
    }
    s.stack.clear();
    s.call.clear();
    s.comp_members.clear();
    s.member_start.clear();
    s.member_start.push(0);
    let mut next_order = 1u32;
    let mut ncomp = 0usize;
    for root in 0..n {
        if s.order[root] != 0 {
            continue;
        }
        s.call.push((root as u32, s.head[root]));
        s.order[root] = next_order;
        s.low[root] = next_order;
        next_order += 1;
        s.stack.push(root as u32);
        s.on_stack[root] = true;
        while let Some(&mut (v, ref mut cursor)) = s.call.last_mut() {
            let v = v as usize;
            if *cursor < s.head[v + 1] {
                let w = g.edges()[s.csr[*cursor as usize] as usize].to;
                *cursor += 1;
                if s.order[w] == 0 {
                    s.call.push((w as u32, s.head[w]));
                    s.order[w] = next_order;
                    s.low[w] = next_order;
                    next_order += 1;
                    s.stack.push(w as u32);
                    s.on_stack[w] = true;
                } else if s.on_stack[w] {
                    s.low[v] = s.low[v].min(s.order[w]);
                }
            } else {
                s.call.pop();
                if let Some(&(p, _)) = s.call.last() {
                    let p = p as usize;
                    s.low[p] = s.low[p].min(s.low[v]);
                }
                if s.low[v] == s.order[v] {
                    // v is the root of a component: pop it off the stack.
                    let first = s.comp_members.len();
                    loop {
                        let w = s.stack.pop().expect("stack holds the component") as usize;
                        s.on_stack[w] = false;
                        s.comp[w] = ncomp as u32;
                        s.comp_members.push(w as u32);
                        if w == v {
                            break;
                        }
                    }
                    let size = s.comp_members.len() - first;
                    let nontrivial = size > 1
                        || (s.head[v] as usize..s.head[v + 1] as usize)
                            .any(|i| g.edges()[s.csr[i] as usize].to == v);
                    if nontrivial {
                        ncomp += 1;
                        s.member_start.push(s.comp_members.len() as u32);
                    } else {
                        s.comp[v] = TRIVIAL;
                        s.comp_members.truncate(first);
                    }
                }
            }
        }
    }
    ncomp
}

/// The contribution of one SCC, as `(ratio numerator/denominator already
/// divided, cycle in global node ids)`, or `None` for an unbounded SCC.
type SccRatio = Option<(f64, Vec<usize>)>;

#[allow(clippy::too_many_lines)]
fn solve_with(g: &RatioGraph, s: &mut SolveScratch, want_cycle: bool) -> Mcr {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        bump(&SOLVE_ACYCLIC);
        return Mcr::Acyclic;
    }

    // CSR adjacency (counting sort of edges by source).
    let ne = g.num_edges();
    reset(&mut s.head, n + 1, 0u32);
    for e in g.edges() {
        s.head[e.from + 1] += 1;
    }
    for v in 0..n {
        s.head[v + 1] += s.head[v];
    }
    reset(&mut s.csr, ne, 0u32);
    {
        // `head` doubles as the write cursor and is rewound afterwards.
        for (ei, e) in g.edges().iter().enumerate() {
            s.csr[s.head[e.from] as usize] = ei as u32;
            s.head[e.from] += 1;
        }
        for v in (1..=n).rev() {
            s.head[v] = s.head[v - 1];
        }
        s.head[0] = 0;
    }

    let ncomp = tarjan(g, s);
    if ncomp == 0 {
        bump(&SOLVE_ACYCLIC);
        return Mcr::Acyclic; // every component is trivial: no cycle at all
    }

    // Bucket intra-SCC edges by (nontrivial) component: a counting sort
    // over `ncomp` buckets — `ncomp` is almost always 1 or 2, so these
    // arrays are tiny regardless of graph size.
    reset(&mut s.edge_start, ncomp + 1, 0u32);
    for e in g.edges() {
        let c = s.comp[e.from];
        if c != TRIVIAL && c == s.comp[e.to] {
            s.edge_start[c as usize + 1] += 1;
        }
    }
    for c in 0..ncomp {
        s.edge_start[c + 1] += s.edge_start[c];
    }
    let intra_total = s.edge_start[ncomp] as usize;
    reset(&mut s.comp_edges, intra_total, 0u32);
    for (ei, e) in g.edges().iter().enumerate() {
        let c = s.comp[e.from];
        if c != TRIVIAL && c == s.comp[e.to] {
            s.comp_edges[s.edge_start[c as usize] as usize] = ei as u32;
            s.edge_start[c as usize] += 1;
        }
    }
    for c in (1..=ncomp).rev() {
        s.edge_start[c] = s.edge_start[c - 1];
    }
    s.edge_start[0] = 0;

    // `local` is written for every member before any read, per SCC.
    if s.local.len() < n {
        s.local.resize(n, 0);
    }
    let mut best: Option<(f64, Vec<usize>)> = None;
    for c in 0..ncomp {
        let members = s.member_start[c] as usize..s.member_start[c + 1] as usize;
        let edges = s.edge_start[c] as usize..s.edge_start[c + 1] as usize;
        let (m, k) = (members.len(), edges.len());
        debug_assert!(k > 0, "a nontrivial SCC has at least one intra edge");
        let ratio = scc_ratio(g, s, members, edges, m, k, want_cycle);
        match ratio {
            None => return Mcr::Unbounded,
            Some((value, cycle)) => {
                if best.as_ref().is_none_or(|(b, _)| value > *b) {
                    best = Some((value, cycle));
                }
            }
        }
    }
    match best {
        None => Mcr::Acyclic,
        Some((value, cycle)) => Mcr::Ratio {
            value: value.max(0.0),
            cycle,
        },
    }
}

/// The maximum cycle ratio contributed by one nontrivial SCC, via the
/// cheapest applicable method: direct summation of a simple cycle, a
/// longest-path DP when a single carried edge closes an acyclic
/// subgraph, or Howard policy iteration on the induced subproblem.
#[allow(clippy::too_many_lines)]
fn scc_ratio(
    g: &RatioGraph,
    s: &mut SolveScratch,
    members: std::ops::Range<usize>,
    edges: std::ops::Range<usize>,
    m: usize,
    k: usize,
    want_cycle: bool,
) -> SccRatio {
    // Local ids + per-member out-degree within the SCC.
    for (li, &v) in s.comp_members[members.clone()].iter().enumerate() {
        s.local[v as usize] = li as u32;
    }
    reset(&mut s.out_deg, m, 0u32);
    let mut carried = 0usize;
    let mut carried_edge = 0usize;
    for &ei in &s.comp_edges[edges.clone()] {
        let e = &g.edges()[ei as usize];
        s.out_deg[s.local[e.from] as usize] += 1;
        if e.count > 0 {
            carried += 1;
            carried_edge = ei as usize;
        }
    }

    // Fast path 1 — a simple cycle: as many intra edges as members and
    // every member with exactly one in-SCC successor. Strong
    // connectivity then forces a single Hamiltonian cycle; its ratio is
    // one summation.
    if k == m && s.out_deg.iter().all(|&d| d == 1) {
        bump(&SOLVE_SIMPLE);
        let start = s.comp_members[members.start] as usize;
        let mut w_sum = 0.0;
        let mut t_sum = 0u32;
        s.cycle_buf.clear();
        let mut v = start;
        loop {
            if want_cycle {
                s.cycle_buf.push(v);
            }
            // The unique in-SCC out-edge of v (first CSR hit suffices).
            let ei = (s.head[v] as usize..s.head[v + 1] as usize)
                .map(|i| s.csr[i] as usize)
                .find(|&ei| {
                    let e = &g.edges()[ei];
                    s.comp[e.from] == s.comp[e.to]
                })
                .expect("member has one in-SCC out-edge");
            let e = &g.edges()[ei];
            w_sum += e.weight;
            t_sum += e.count;
            v = e.to;
            if v == start {
                break;
            }
        }
        if t_sum == 0 {
            return if w_sum > EPS {
                None
            } else {
                Some((0.0, std::mem::take(&mut s.cycle_buf)))
            };
        }
        return Some((w_sum / f64::from(t_sum), std::mem::take(&mut s.cycle_buf)));
    }

    // Fast path 2 — exactly one loop-carried edge: removing it must
    // leave the SCC acyclic (every cycle of a well-formed dependence
    // graph crosses an iteration boundary), and then the maximum ratio
    // is the longest path closing that edge, found by one DP pass in
    // topological order.
    if carried == 1 {
        if let Some(r) = single_carried_ratio(g, s, &members, &edges, m, carried_edge, want_cycle) {
            bump(&SOLVE_DP);
            return Some(r);
        }
        // A residual zero-count cycle exists: fall through to Howard,
        // which classifies it (Unbounded or ratio-0) consistently.
    }

    // General case: Howard policy iteration, but only on this SCC's
    // induced subgraph.
    bump(&SOLVE_HOWARD);
    s.sub.reset(m);
    s.sub_nodes.clear();
    s.sub_nodes
        .extend(s.comp_members[members.clone()].iter().copied());
    for &ei in &s.comp_edges[edges.clone()] {
        let e = &g.edges()[ei as usize];
        s.sub.add_edge(
            s.local[e.from] as usize,
            s.local[e.to] as usize,
            e.weight,
            e.count,
        );
    }
    match howard_with(&s.sub, &mut s.howard) {
        Mcr::Unbounded => None,
        // A nontrivial SCC always contains a cycle; Howard can only
        // report Acyclic here if every cycle has ratio ≤ 0, i.e. 0.
        Mcr::Acyclic => Some((0.0, vec![s.sub_nodes[0] as usize])),
        Mcr::Ratio { value, cycle } => Some((
            value,
            cycle.into_iter().map(|v| s.sub_nodes[v] as usize).collect(),
        )),
    }
}

/// Fast path 2 of [`scc_ratio`]: the SCC's single carried edge closes an
/// otherwise acyclic subgraph, so the maximum ratio is
/// `(longest path from the edge's head back to its tail + its weight) /
/// its count`. Returns `None` when the residual subgraph still has a
/// (zero-count) cycle and the caller must fall back to Howard.
fn single_carried_ratio(
    g: &RatioGraph,
    s: &mut SolveScratch,
    members: &std::ops::Range<usize>,
    edges: &std::ops::Range<usize>,
    m: usize,
    carried_edge: usize,
    want_cycle: bool,
) -> Option<(f64, Vec<usize>)> {
    let ce = g.edges()[carried_edge];
    // Kahn topological order over the intra edges minus the carried one.
    reset(&mut s.indeg, m, 0u32);
    for &ei in &s.comp_edges[edges.clone()] {
        if ei as usize == carried_edge {
            continue;
        }
        s.indeg[s.local[g.edges()[ei as usize].to] as usize] += 1;
    }
    s.topo.clear();
    for li in 0..m {
        if s.indeg[li] == 0 {
            s.topo.push(li as u32);
        }
    }
    // The DP runs interleaved with Kahn's scan: dist is final for a node
    // by the time it is popped, because all predecessors came first.
    reset(&mut s.dist, m, f64::NEG_INFINITY);
    if want_cycle {
        reset(&mut s.pred, m, u32::MAX);
    }
    let src = s.local[ce.to] as usize;
    s.dist[src] = 0.0;
    let mut popped = 0usize;
    while popped < s.topo.len() {
        let li = s.topo[popped] as usize;
        popped += 1;
        let v = s.comp_members[members.start + li] as usize;
        let d = s.dist[li];
        for i in s.head[v] as usize..s.head[v + 1] as usize {
            let ei = s.csr[i] as usize;
            if ei == carried_edge {
                continue;
            }
            let e = &g.edges()[ei];
            if s.comp[e.from] != s.comp[e.to] {
                continue;
            }
            let lt = s.local[e.to] as usize;
            if d > f64::NEG_INFINITY && d + e.weight > s.dist[lt] {
                s.dist[lt] = d + e.weight;
                if want_cycle {
                    s.pred[lt] = li as u32;
                }
            }
            s.indeg[lt] -= 1;
            if s.indeg[lt] == 0 {
                s.topo.push(lt as u32);
            }
        }
    }
    if popped < m {
        return None; // residual cycle: not actually acyclic without ce
    }
    let sink = s.local[ce.from] as usize;
    debug_assert!(
        s.dist[sink] > f64::NEG_INFINITY,
        "strong connectivity guarantees a path back to the carried edge"
    );
    // Walk the predecessor links back from the carried edge's tail to its
    // head: that longest path plus the carried edge is the critical cycle.
    s.cycle_buf.clear();
    if want_cycle {
        let mut li = sink;
        loop {
            s.cycle_buf
                .push(s.comp_members[members.start + li] as usize);
            if li == src {
                break;
            }
            li = s.pred[li] as usize;
        }
        s.cycle_buf.reverse();
    }
    Some((
        (s.dist[sink] + ce.weight) / f64::from(ce.count),
        std::mem::take(&mut s.cycle_buf),
    ))
}

/// Maximum cycle ratio via Lawler's binary search with Bellman–Ford
/// positive-cycle detection. Returns the ratio only (no cycle extraction).
#[must_use]
pub fn max_cycle_ratio_lawler(g: &RatioGraph) -> Mcr {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        return Mcr::Acyclic;
    }
    // A cycle with Σt = 0 and Σw > 0 makes the problem unbounded. Detect it
    // by looking for a positive cycle among count-0 edges only.
    if has_positive_cycle(g, |e| if e.count == 0 { Some(e.weight) } else { None }) {
        return Mcr::Unbounded;
    }
    // Is there any cycle through counted edges at all? λ = -1 makes every
    // counted edge attractive; weights are non-negative, so a positive
    // cycle w.r.t. (w + t) exists iff a cycle with Σt ≥ 1 exists.
    if !has_positive_cycle(g, |e| Some(e.weight + f64::from(e.count))) {
        return Mcr::Acyclic;
    }
    let mut lo = 0.0f64;
    let mut hi = 1.0 + g.edges().iter().map(|e| e.weight).sum::<f64>();
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if has_positive_cycle(g, |e| Some(e.weight - mid * f64::from(e.count))) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Mcr::Ratio {
        value: lo.max(0.0),
        cycle: Vec::new(),
    }
}

/// Bellman–Ford-style detection of a cycle with positive total weight under
/// the given edge-weight mapping (edges mapped to `None` are absent).
fn has_positive_cycle(g: &RatioGraph, weight: impl Fn(&REdge) -> Option<f64>) -> bool {
    let n = g.num_nodes();
    let mut d = vec![0.0f64; n];
    for round in 0..n {
        let mut changed = false;
        for e in g.edges() {
            let Some(w) = weight(e) else { continue };
            let cand = d[e.from] + w;
            if cand > d[e.to] + EPS {
                d[e.to] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n - 1 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(g: &RatioGraph) -> f64 {
        let h = max_cycle_ratio_howard(g);
        let l = max_cycle_ratio_lawler(g);
        assert!(
            (h.value() - l.value()).abs() < 1e-6,
            "howard {} != lawler {}",
            h.value(),
            l.value()
        );
        h.value()
    }

    #[test]
    fn empty_graph() {
        let g = RatioGraph::new(0);
        assert_eq!(max_cycle_ratio_howard(&g), Mcr::Acyclic);
        assert_eq!(max_cycle_ratio_lawler(&g), Mcr::Acyclic);
    }

    #[test]
    fn acyclic_graph() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 5.0, 0);
        g.add_edge(1, 2, 5.0, 1);
        assert_eq!(ratio(&g), 0.0);
    }

    #[test]
    fn self_loop() {
        let mut g = RatioGraph::new(1);
        g.add_edge(0, 0, 4.0, 1);
        assert!((ratio(&g) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn two_cycles_max_wins() {
        let mut g = RatioGraph::new(4);
        // cycle A: 0 -> 1 -> 0 with total weight 6 over 1 iteration
        g.add_edge(0, 1, 5.0, 0);
        g.add_edge(1, 0, 1.0, 1);
        // cycle B: 2 -> 3 -> 2 with total weight 8 over 2 iterations
        g.add_edge(2, 3, 4.0, 1);
        g.add_edge(3, 2, 4.0, 1);
        assert!((ratio(&g) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn multi_iteration_cycle() {
        // One long cycle spanning 3 iterations with latency 9 -> ratio 3.
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 3.0, 1);
        g.add_edge(1, 2, 3.0, 1);
        g.add_edge(2, 0, 3.0, 1);
        assert!((ratio(&g) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn shared_node_cycles() {
        let mut g = RatioGraph::new(3);
        // small fast loop at node 0
        g.add_edge(0, 0, 1.0, 1);
        // bigger slow loop 0 -> 1 -> 2 -> 0
        g.add_edge(0, 1, 4.0, 0);
        g.add_edge(1, 2, 4.0, 0);
        g.add_edge(2, 0, 4.0, 1);
        assert!((ratio(&g) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn unbounded_zero_count_cycle() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 1.0, 0);
        g.add_edge(1, 0, 1.0, 0);
        assert_eq!(max_cycle_ratio_howard(&g), Mcr::Unbounded);
        assert_eq!(max_cycle_ratio_lawler(&g), Mcr::Unbounded);
    }

    #[test]
    fn critical_cycle_is_reported() {
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 1.0, 1); // ratio-1 cycle
        g.add_edge(1, 0, 0.0, 0);
        g.add_edge(2, 3, 7.0, 1); // ratio-7 cycle (critical)
        g.add_edge(3, 2, 0.0, 0);
        let Mcr::Ratio { value, cycle } = max_cycle_ratio_howard(&g) else {
            panic!("expected a ratio");
        };
        assert!((value - 7.0).abs() < 1e-6);
        let mut c = cycle.clone();
        c.sort_unstable();
        assert_eq!(c, vec![2, 3]);
    }

    #[test]
    fn dependence_chain_shape() {
        // Mimics `add rax, [rsi]` loop-carried through rax: latency 6 via
        // the load path, 1 via the direct path; the direct path is the
        // carried one.
        let mut g = RatioGraph::new(3);
        // node 0: rax consumed; node 1: rax produced; node 2: rsi consumed
        g.add_edge(0, 1, 1.0, 0); // alu latency
        g.add_edge(2, 1, 6.0, 0); // load + alu latency
        g.add_edge(1, 0, 0.0, 1); // loop-carried rax dependence
        assert!((ratio(&g) - 1.0).abs() < 1e-6);
    }
}
