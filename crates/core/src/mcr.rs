//! Maximum cycle ratio solvers.
//!
//! The Precedence component (§4.9 of the paper) bounds throughput by the
//! maximum, over all cycles `C` of a dependence graph, of
//! `Σ latency(e) / Σ iteration_count(e)` for `e ∈ C`.
//!
//! Two independent solvers are provided:
//! * [`max_cycle_ratio_howard`] — Howard's policy-iteration algorithm, as
//!   used by the paper (citing Dasdan's survey); this is the production
//!   solver.
//! * [`max_cycle_ratio_lawler`] — Lawler's binary search over λ with
//!   Bellman–Ford positive-cycle detection; used to cross-check Howard in
//!   the test suite.

/// An edge of a ratio graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct REdge {
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Latency weight (numerator contribution).
    pub weight: f64,
    /// Iteration count (denominator contribution); 0 for intra-iteration
    /// edges, 1 for loop-carried edges.
    pub count: u32,
}

/// A directed graph with two edge weights, for cycle-ratio queries.
#[derive(Debug, Clone, Default)]
pub struct RatioGraph {
    n: usize,
    edges: Vec<REdge>,
}

impl RatioGraph {
    /// An empty graph with `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> RatioGraph {
        RatioGraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Reset to an empty graph with `n` nodes, keeping the edge buffer's
    /// allocation (for scratch-arena reuse across calls).
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.edges.clear();
    }

    /// Add an edge.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or the weight is negative/NaN.
    pub fn add_edge(&mut self, from: usize, to: usize, weight: f64, count: u32) {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        assert!(weight >= 0.0, "negative or NaN latency weight");
        self.edges.push(REdge {
            from,
            to,
            weight,
            count,
        });
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges of the graph.
    #[must_use]
    pub fn edges(&self) -> &[REdge] {
        &self.edges
    }
}

const EPS: f64 = 1e-9;

/// Result of a maximum-cycle-ratio query.
#[derive(Debug, Clone, PartialEq)]
pub enum Mcr {
    /// The graph has no cycle (through counted edges): no bound.
    Acyclic,
    /// The maximum ratio and one critical cycle achieving it, as a list of
    /// node indices in order (the cycle closes from the last back to the
    /// first).
    Ratio {
        /// The maximum cycle ratio.
        value: f64,
        /// Nodes of a critical cycle.
        cycle: Vec<usize>,
    },
    /// A cycle with positive latency but zero iteration count exists: the
    /// constraint system is infeasible (cannot happen for well-formed
    /// dependence graphs).
    Unbounded,
}

impl Mcr {
    /// The ratio as a plain number: 0 for acyclic graphs, infinity when
    /// unbounded.
    #[must_use]
    pub fn value(&self) -> f64 {
        match self {
            Mcr::Acyclic => 0.0,
            Mcr::Ratio { value, .. } => *value,
            Mcr::Unbounded => f64::INFINITY,
        }
    }
}

/// Reusable buffers for [`max_cycle_ratio_howard`]. The solver runs once
/// per prediction in the batch hot path; without reuse each call makes
/// eight-plus vector allocations (plus two more per trim round).
#[derive(Debug, Default)]
struct HowardScratch {
    alive: Vec<bool>,
    has_out: Vec<bool>,
    has_in: Vec<bool>,
    policy: Vec<Option<usize>>,
    lambda: Vec<f64>,
    dist: Vec<f64>,
    cycle_of: Vec<Option<usize>>,
    state: Vec<u8>,
    path: Vec<usize>,
}

thread_local! {
    static HOWARD_SCRATCH: std::cell::RefCell<HowardScratch> =
        std::cell::RefCell::new(HowardScratch::default());
}

fn reset<T: Clone>(buf: &mut Vec<T>, n: usize, value: T) {
    buf.clear();
    buf.resize(n, value);
}

/// Maximum cycle ratio via Howard's policy iteration.
#[must_use]
pub fn max_cycle_ratio_howard(g: &RatioGraph) -> Mcr {
    HOWARD_SCRATCH.with(|s| howard_with(g, &mut s.borrow_mut()))
}

#[allow(clippy::too_many_lines)]
fn howard_with(g: &RatioGraph, s: &mut HowardScratch) -> Mcr {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        return Mcr::Acyclic;
    }

    // Restrict to nodes that can lie on a cycle: iteratively trim nodes
    // without outgoing or incoming edges.
    let alive = &mut s.alive;
    reset(alive, n, true);
    loop {
        let mut changed = false;
        let has_out = &mut s.has_out;
        let has_in = &mut s.has_in;
        reset(has_out, n, false);
        reset(has_in, n, false);
        for e in g.edges() {
            if alive[e.from] && alive[e.to] {
                has_out[e.from] = true;
                has_in[e.to] = true;
            }
        }
        for v in 0..n {
            if alive[v] && (!has_out[v] || !has_in[v]) {
                alive[v] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if !alive.iter().any(|a| *a) {
        return Mcr::Acyclic;
    }

    // Initial policy: any outgoing edge to a live node.
    let policy = &mut s.policy;
    reset(policy, n, None);
    for (ei, e) in g.edges().iter().enumerate() {
        if alive[e.from] && alive[e.to] && policy[e.from].is_none() {
            policy[e.from] = Some(ei);
        }
    }

    let lambda = &mut s.lambda;
    let dist = &mut s.dist;
    let cycle_of = &mut s.cycle_of; // representative node of the policy cycle reached
    reset(lambda, n, f64::NEG_INFINITY);
    reset(dist, n, 0.0f64);
    reset(cycle_of, n, None);
    let mut best = Mcr::Acyclic;

    for _round in 0..1000 {
        // --- policy evaluation ---
        // Walk the functional policy graph; every live node reaches exactly
        // one cycle.
        let state = &mut s.state; // 0 unvisited, 1 in progress, 2 done
        reset(state, n, 0u8);
        let mut unbounded = false;
        for start in 0..n {
            if !alive[start] || state[start] != 0 {
                continue;
            }
            // Follow the policy path, marking in-progress nodes.
            let path = &mut s.path;
            path.clear();
            let mut v = start;
            while alive[v] && state[v] == 0 {
                state[v] = 1;
                path.push(v);
                v = g.edges()[policy[v].expect("live node has a policy edge")].to;
            }
            if state[v] == 1 {
                // Found a new cycle starting at `v` within `path`.
                let pos = path.iter().position(|x| *x == v).expect("v is on path");
                let cyc = &path[pos..];
                let mut w_sum = 0.0;
                let mut t_sum = 0u32;
                for &u in cyc {
                    let e = g.edges()[policy[u].expect("policy edge")];
                    w_sum += e.weight;
                    t_sum += e.count;
                }
                let lam = if t_sum == 0 {
                    if w_sum > EPS {
                        unbounded = true;
                        f64::INFINITY
                    } else {
                        0.0
                    }
                } else {
                    w_sum / f64::from(t_sum)
                };
                // Anchor distances on the cycle: d(v) = 0, propagate
                // backwards around the cycle using
                // d(u) = w(u,π(u)) − λ·t + d(π(u)).
                dist[v] = 0.0;
                lambda[v] = lam;
                cycle_of[v] = Some(v);
                let mut u = v;
                loop {
                    // find predecessor of u along the cycle
                    let pred = cyc
                        .iter()
                        .copied()
                        .find(|&p| {
                            g.edges()[policy[p].expect("edge")].to == u && p != u
                                || (p == u && cyc.len() == 1)
                        })
                        .expect("cycle predecessor exists");
                    if pred == v {
                        break;
                    }
                    let e = g.edges()[policy[pred].expect("edge")];
                    dist[pred] = e.weight - lam * f64::from(e.count) + dist[u];
                    lambda[pred] = lam;
                    cycle_of[pred] = Some(v);
                    u = pred;
                }
                for &u in cyc {
                    state[u] = 2;
                }
            }
            // Unwind the tree part of the path (nodes feeding the cycle).
            for &u in path.iter().rev() {
                if state[u] == 2 {
                    continue;
                }
                let e = g.edges()[policy[u].expect("edge")];
                let succ = e.to;
                lambda[u] = lambda[succ];
                cycle_of[u] = cycle_of[succ];
                dist[u] = e.weight - lambda[u] * f64::from(e.count) + dist[succ];
                state[u] = 2;
            }
        }
        if unbounded {
            return Mcr::Unbounded;
        }

        // --- policy improvement ---
        let mut changed = false;
        for (ei, e) in g.edges().iter().enumerate() {
            if !alive[e.from] || !alive[e.to] {
                continue;
            }
            let (u, v) = (e.from, e.to);
            if lambda[v] > lambda[u] + EPS {
                policy[u] = Some(ei);
                changed = true;
            } else if (lambda[v] - lambda[u]).abs() <= EPS {
                let cand = e.weight - lambda[u] * f64::from(e.count) + dist[v];
                if cand > dist[u] + EPS {
                    policy[u] = Some(ei);
                    changed = true;
                }
            }
        }
        if !changed {
            // Converged: the answer is the best policy cycle.
            let lam = lambda
                .iter()
                .zip(alive.iter())
                .filter(|(_, a)| **a)
                .map(|(l, _)| *l)
                .fold(f64::NEG_INFINITY, f64::max);
            if lam == f64::NEG_INFINITY {
                return Mcr::Acyclic;
            }
            // Extract one critical cycle: walk the policy from a node whose
            // λ equals the maximum.
            let start = (0..n)
                .find(|&v| alive[v] && (lambda[v] - lam).abs() <= EPS * lam.abs().max(1.0))
                .expect("a node attains the maximum ratio");
            let rep = cycle_of[start].expect("evaluated node has a cycle");
            let mut cycle = vec![rep];
            let mut v = g.edges()[policy[rep].expect("edge")].to;
            while v != rep {
                cycle.push(v);
                v = g.edges()[policy[v].expect("edge")].to;
            }
            best = Mcr::Ratio {
                value: lam.max(0.0),
                cycle,
            };
            break;
        }
    }
    if matches!(best, Mcr::Acyclic) {
        // The iteration cap was reached without convergence (should not
        // happen for well-formed graphs); fall back to the binary-search
        // solver so callers still get a sound answer.
        return max_cycle_ratio_lawler(g);
    }
    best
}

/// Maximum cycle ratio via Lawler's binary search with Bellman–Ford
/// positive-cycle detection. Returns the ratio only (no cycle extraction).
#[must_use]
pub fn max_cycle_ratio_lawler(g: &RatioGraph) -> Mcr {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        return Mcr::Acyclic;
    }
    // A cycle with Σt = 0 and Σw > 0 makes the problem unbounded. Detect it
    // by looking for a positive cycle among count-0 edges only.
    if has_positive_cycle(g, |e| if e.count == 0 { Some(e.weight) } else { None }) {
        return Mcr::Unbounded;
    }
    // Is there any cycle through counted edges at all? λ = -1 makes every
    // counted edge attractive; weights are non-negative, so a positive
    // cycle w.r.t. (w + t) exists iff a cycle with Σt ≥ 1 exists.
    if !has_positive_cycle(g, |e| Some(e.weight + f64::from(e.count))) {
        return Mcr::Acyclic;
    }
    let mut lo = 0.0f64;
    let mut hi = 1.0 + g.edges().iter().map(|e| e.weight).sum::<f64>();
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if has_positive_cycle(g, |e| Some(e.weight - mid * f64::from(e.count))) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Mcr::Ratio {
        value: lo.max(0.0),
        cycle: Vec::new(),
    }
}

/// Bellman–Ford-style detection of a cycle with positive total weight under
/// the given edge-weight mapping (edges mapped to `None` are absent).
fn has_positive_cycle(g: &RatioGraph, weight: impl Fn(&REdge) -> Option<f64>) -> bool {
    let n = g.num_nodes();
    let mut d = vec![0.0f64; n];
    for round in 0..n {
        let mut changed = false;
        for e in g.edges() {
            let Some(w) = weight(e) else { continue };
            let cand = d[e.from] + w;
            if cand > d[e.to] + EPS {
                d[e.to] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n - 1 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(g: &RatioGraph) -> f64 {
        let h = max_cycle_ratio_howard(g);
        let l = max_cycle_ratio_lawler(g);
        assert!(
            (h.value() - l.value()).abs() < 1e-6,
            "howard {} != lawler {}",
            h.value(),
            l.value()
        );
        h.value()
    }

    #[test]
    fn empty_graph() {
        let g = RatioGraph::new(0);
        assert_eq!(max_cycle_ratio_howard(&g), Mcr::Acyclic);
        assert_eq!(max_cycle_ratio_lawler(&g), Mcr::Acyclic);
    }

    #[test]
    fn acyclic_graph() {
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 5.0, 0);
        g.add_edge(1, 2, 5.0, 1);
        assert_eq!(ratio(&g), 0.0);
    }

    #[test]
    fn self_loop() {
        let mut g = RatioGraph::new(1);
        g.add_edge(0, 0, 4.0, 1);
        assert!((ratio(&g) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn two_cycles_max_wins() {
        let mut g = RatioGraph::new(4);
        // cycle A: 0 -> 1 -> 0 with total weight 6 over 1 iteration
        g.add_edge(0, 1, 5.0, 0);
        g.add_edge(1, 0, 1.0, 1);
        // cycle B: 2 -> 3 -> 2 with total weight 8 over 2 iterations
        g.add_edge(2, 3, 4.0, 1);
        g.add_edge(3, 2, 4.0, 1);
        assert!((ratio(&g) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn multi_iteration_cycle() {
        // One long cycle spanning 3 iterations with latency 9 -> ratio 3.
        let mut g = RatioGraph::new(3);
        g.add_edge(0, 1, 3.0, 1);
        g.add_edge(1, 2, 3.0, 1);
        g.add_edge(2, 0, 3.0, 1);
        assert!((ratio(&g) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn shared_node_cycles() {
        let mut g = RatioGraph::new(3);
        // small fast loop at node 0
        g.add_edge(0, 0, 1.0, 1);
        // bigger slow loop 0 -> 1 -> 2 -> 0
        g.add_edge(0, 1, 4.0, 0);
        g.add_edge(1, 2, 4.0, 0);
        g.add_edge(2, 0, 4.0, 1);
        assert!((ratio(&g) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn unbounded_zero_count_cycle() {
        let mut g = RatioGraph::new(2);
        g.add_edge(0, 1, 1.0, 0);
        g.add_edge(1, 0, 1.0, 0);
        assert_eq!(max_cycle_ratio_howard(&g), Mcr::Unbounded);
        assert_eq!(max_cycle_ratio_lawler(&g), Mcr::Unbounded);
    }

    #[test]
    fn critical_cycle_is_reported() {
        let mut g = RatioGraph::new(4);
        g.add_edge(0, 1, 1.0, 1); // ratio-1 cycle
        g.add_edge(1, 0, 0.0, 0);
        g.add_edge(2, 3, 7.0, 1); // ratio-7 cycle (critical)
        g.add_edge(3, 2, 0.0, 0);
        let Mcr::Ratio { value, cycle } = max_cycle_ratio_howard(&g) else {
            panic!("expected a ratio");
        };
        assert!((value - 7.0).abs() < 1e-6);
        let mut c = cycle.clone();
        c.sort_unstable();
        assert_eq!(c, vec![2, 3]);
    }

    #[test]
    fn dependence_chain_shape() {
        // Mimics `add rax, [rsi]` loop-carried through rax: latency 6 via
        // the load path, 1 via the direct path; the direct path is the
        // carried one.
        let mut g = RatioGraph::new(3);
        // node 0: rax consumed; node 1: rax produced; node 2: rsi consumed
        g.add_edge(0, 1, 1.0, 0); // alu latency
        g.add_edge(2, 1, 6.0, 0); // load + alu latency
        g.add_edge(1, 0, 0.0, 1); // loop-carried rax dependence
        assert!((ratio(&g) - 1.0).abs() < 1e-6);
    }
}
