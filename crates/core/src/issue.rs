//! The rename/issue stage throughput predictor (§4.7).

use facile_explain::{Component, ComponentAnalysis, Evidence, IssueEvidence};
use facile_isa::AnnotatedBlock;

/// The kernel's view of the block: the evidence struct doubles as the
/// single source of the bound's inputs.
fn issue_view(ab: &AnnotatedBlock) -> IssueEvidence {
    IssueEvidence {
        issue_uops: ab.total_issue_uops(),
        issue_width: ab.uarch().config().issue_width,
    }
}

fn issue_bound(v: IssueEvidence) -> f64 {
    f64::from(v.issue_uops) / f64::from(v.issue_width)
}

/// Issue bound: fused-domain µops after unlamination, divided by the issue
/// width. Returns predicted cycles per iteration.
#[must_use]
pub fn issue(ab: &AnnotatedBlock) -> f64 {
    issue_bound(issue_view(ab))
}

/// The issue bound as a typed [`ComponentAnalysis`], with the µop count
/// and issue width as evidence.
#[must_use]
pub fn issue_analysis(ab: &AnnotatedBlock) -> ComponentAnalysis {
    let view = issue_view(ab);
    ComponentAnalysis {
        component: Component::Issue,
        bound: issue_bound(view),
        evidence: Evidence::Issue(view),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facile_uarch::Uarch;
    use facile_x86::reg::names::*;
    use facile_x86::reg::Width;
    use facile_x86::{Block, Mem, Mnemonic, Operand};

    #[test]
    fn issue_counts_unlaminated_uops() {
        // add rax, [rsi+rdi] unlaminates on SNB (indexed) but not the plain
        // [rsi] form.
        let idx = Mem::base_index(RSI, RDI, 1, 0, Width::W64);
        let prog = vec![
            (Mnemonic::Add, vec![Operand::Reg(RAX), Operand::Mem(idx)]),
            (Mnemonic::Add, vec![Operand::Reg(RBX), Operand::Mem(idx)]),
        ];
        let ab = AnnotatedBlock::new(Block::assemble(&prog).unwrap(), Uarch::Snb);
        // 2 instructions, each 2 issue-µops after unlamination; width 4.
        assert!((issue(&ab) - 1.0).abs() < 1e-9);
        let ab = AnnotatedBlock::new(Block::assemble(&prog).unwrap(), Uarch::Skl);
        // SKL keeps them fused: 2 µops / 4 = 0.5.
        assert!((issue(&ab) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wider_issue_on_icelake() {
        let prog: Vec<_> = (0..10)
            .map(|_| (Mnemonic::Add, vec![Operand::Reg(RAX), Operand::Reg(RCX)]))
            .collect();
        let b = Block::assemble(&prog).unwrap();
        let skl = AnnotatedBlock::new(b.clone(), Uarch::Skl);
        let icl = AnnotatedBlock::new(b, Uarch::Icl);
        assert!((issue(&skl) - 2.5).abs() < 1e-9);
        assert!((issue(&icl) - 2.0).abs() < 1e-9);
    }
}
