//! The ablation variants of Table 3, as a library API.
//!
//! The paper studies the model's components in three ways: replacing the
//! detailed predecoder/decoder models with their simple counterparts,
//! running each component as a standalone predictor ("only X"), and
//! removing one component from the full model ("w/o X"). This module
//! enumerates those variants so that both the experiment harness and
//! downstream users (e.g. a compiler deciding how much precision it needs)
//! can iterate over them.

use crate::predict::{Component, FacileConfig, Mode};

/// One model variant of the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Row label, matching the paper's Table 3.
    pub name: &'static str,
    /// The model configuration.
    pub config: FacileConfig,
    /// Whether the paper evaluates this variant under TPU.
    pub applies_to_unrolled: bool,
    /// Whether the paper evaluates this variant under TPL.
    pub applies_to_loop: bool,
}

impl Variant {
    /// Whether the variant applies to the given throughput notion.
    #[must_use]
    pub fn applies_to(&self, mode: Mode) -> bool {
        match mode {
            Mode::Unrolled => self.applies_to_unrolled,
            Mode::Loop => self.applies_to_loop,
        }
    }
}

/// All ablation variants, in the paper's Table 3 row order.
#[must_use]
pub fn variants() -> Vec<Variant> {
    use Component::*;
    let both = |name, config| Variant {
        name,
        config,
        applies_to_unrolled: true,
        applies_to_loop: true,
    };
    let unrolled = |name, config| Variant {
        name,
        config,
        applies_to_unrolled: true,
        applies_to_loop: false,
    };
    let looped = |name, config| Variant {
        name,
        config,
        applies_to_unrolled: false,
        applies_to_loop: true,
    };
    let mut pp = FacileConfig::only(Predec);
    pp.set(Ports, true);
    let mut rp = FacileConfig::only(Precedence);
    rp.set(Ports, true);
    vec![
        both("Facile", FacileConfig::default()),
        unrolled(
            "Facile w/ SimplePredec",
            FacileConfig {
                simple_predec: true,
                ..FacileConfig::default()
            },
        ),
        unrolled(
            "Facile w/ SimpleDec",
            FacileConfig {
                simple_dec: true,
                ..FacileConfig::default()
            },
        ),
        unrolled("only Predec", FacileConfig::only(Predec)),
        unrolled("only Dec", FacileConfig::only(Dec)),
        looped("only DSB", FacileConfig::only(Dsb)),
        looped("only LSD", FacileConfig::only(Lsd)),
        both("only Issue", FacileConfig::only(Issue)),
        both("only Ports", FacileConfig::only(Ports)),
        both("only Precedence", FacileConfig::only(Precedence)),
        unrolled("only Predec+Ports", pp),
        both("only Precedence+Ports", rp),
        unrolled("Facile w/o Predec", FacileConfig::without(Predec)),
        unrolled("Facile w/o Dec", FacileConfig::without(Dec)),
        looped("Facile w/o DSB", FacileConfig::without(Dsb)),
        looped("Facile w/o LSD", FacileConfig::without(Lsd)),
        both("Facile w/o Issue", FacileConfig::without(Issue)),
        both("Facile w/o Ports", FacileConfig::without(Ports)),
        both("Facile w/o Precedence", FacileConfig::without(Precedence)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::Facile;
    use facile_isa::AnnotatedBlock;
    use facile_uarch::Uarch;
    use facile_x86::{Block, Mnemonic, Operand, Reg, Width};

    #[test]
    fn variant_list_matches_paper_rows() {
        let v = variants();
        assert_eq!(v.len(), 19);
        assert_eq!(v[0].name, "Facile");
        // every variant name is unique
        let mut names: Vec<_> = v.iter().map(|x| x.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), v.len());
    }

    #[test]
    fn notion_applicability() {
        let v = variants();
        let by_name = |n: &str| v.iter().find(|x| x.name == n).expect("known variant");
        assert!(by_name("only Predec").applies_to(Mode::Unrolled));
        assert!(!by_name("only Predec").applies_to(Mode::Loop));
        assert!(by_name("only LSD").applies_to(Mode::Loop));
        assert!(!by_name("only LSD").applies_to(Mode::Unrolled));
        assert!(by_name("only Ports").applies_to(Mode::Unrolled));
        assert!(by_name("only Ports").applies_to(Mode::Loop));
    }

    #[test]
    fn every_variant_produces_a_finite_prediction() {
        let prog = vec![
            (
                Mnemonic::Add,
                vec![
                    Operand::Reg(Reg::gpr(0, Width::W64)),
                    Operand::Reg(Reg::gpr(1, Width::W64)),
                ],
            ),
            (
                Mnemonic::Imul,
                vec![
                    Operand::Reg(Reg::gpr(2, Width::W64)),
                    Operand::Reg(Reg::gpr(0, Width::W64)),
                ],
            ),
        ];
        let ab = AnnotatedBlock::new(Block::assemble(&prog).unwrap(), Uarch::Skl);
        for v in variants() {
            for mode in [Mode::Unrolled, Mode::Loop] {
                if !v.applies_to(mode) {
                    continue;
                }
                let p = Facile::with_config(v.config).predict(&ab, mode);
                assert!(p.throughput.is_finite(), "{}", v.name);
                assert!(p.throughput >= 0.0, "{}", v.name);
            }
        }
    }

    #[test]
    fn full_model_dominates_only_variants() {
        // "only X" can never predict *higher* than the full model (it is a
        // subset of the maximum).
        let prog = vec![(
            Mnemonic::Add,
            vec![
                Operand::Reg(Reg::gpr(0, Width::W64)),
                Operand::Reg(Reg::gpr(1, Width::W64)),
            ],
        )];
        let ab = AnnotatedBlock::new(Block::assemble(&prog).unwrap(), Uarch::Rkl);
        let full = Facile::new().predict(&ab, Mode::Unrolled).throughput;
        for v in variants() {
            if v.name.starts_with("only") && v.applies_to(Mode::Unrolled) {
                let p = Facile::with_config(v.config).predict(&ab, Mode::Unrolled);
                assert!(p.throughput <= full + 1e-12, "{}", v.name);
            }
        }
    }
}
